//! Cross-method comparison on the paper's scenarios: how each
//! inconsistency-handling family behaves on the same contradictions —
//! the qualitative content of the paper's §1 and §5.

use baselines::classical::ClassicalBaseline;
use baselines::mcs::{McsBaseline, McsMode, RelevanceBaseline};
use baselines::stratified::StratifiedBaseline;
use baselines::{Answer, InconsistencyBaseline};
use dl::parser::parse_kb;
use dl::{Axiom, Concept, IndividualName};
use shoin4::{InclusionKind, KnowledgeBase4, Reasoner4};

fn q(i: &str, c: &str) -> Axiom {
    Axiom::ConceptAssertion(IndividualName::new(i), Concept::atomic(c))
}

/// The paper's §1 motivating claim: classically, the medical KB entails
/// even the irrelevant `Patient(john)`.
#[test]
fn classical_explosion_on_example_2() {
    let kb = parse_kb(
        "SurgicalTeam SubClassOf not ReadPatientRecordTeam
         UrgencyTeam SubClassOf ReadPatientRecordTeam
         john : SurgicalTeam
         john : UrgencyTeam",
    )
    .unwrap();
    let mut r = tableau::Reasoner::new(&kb);
    assert!(!r.is_consistent().unwrap());
    assert!(
        r.entails(&q("john", "Patient")).unwrap(),
        "ex falso quodlibet"
    );
    // The baseline wrapper reports this as a degenerate answer.
    let mut b = ClassicalBaseline::new(&kb);
    assert_eq!(b.entails(&q("john", "Patient")).unwrap(), Answer::Trivial);
}

/// Each family gives a different verdict on the contested fact; SHOIN(D)4
/// is the only one that *reports the conflict itself*.
#[test]
fn four_families_compared_on_example_2() {
    let src = "SurgicalTeam SubClassOf not ReadPatientRecordTeam
               UrgencyTeam SubClassOf ReadPatientRecordTeam
               john : SurgicalTeam
               john : UrgencyTeam";
    let kb = parse_kb(src).unwrap();
    let contested = q("john", "ReadPatientRecordTeam");

    let mut classical = ClassicalBaseline::new(&kb);
    assert_eq!(classical.entails(&contested).unwrap(), Answer::Trivial);

    let mut skeptical = McsBaseline::new(&kb, McsMode::Skeptical);
    assert_eq!(skeptical.entails(&contested).unwrap(), Answer::No);

    let mut credulous = McsBaseline::new(&kb, McsMode::Credulous);
    assert_eq!(credulous.entails(&contested).unwrap(), Answer::Yes);

    // Relevance selection: the conflict is syntactically adjacent to the
    // query, so the very first neighborhood is inconsistent.
    let mut relevance = RelevanceBaseline::new(&kb);
    assert_eq!(relevance.entails(&contested).unwrap(), Answer::Trivial);

    // Stratified (schema over data): both memberships get dropped, so
    // nothing about john is derivable.
    let mut stratified = StratifiedBaseline::tbox_over_abox(&kb);
    assert_eq!(stratified.entails(&contested).unwrap(), Answer::No);

    // SHOIN(D)4: the conflict is the answer.
    let kb4 = KnowledgeBase4::from_classical(&kb, InclusionKind::Internal);
    let four = Reasoner4::new(&kb4);
    assert_eq!(
        four.query(
            &IndividualName::new("john"),
            &Concept::atomic("ReadPatientRecordTeam")
        )
        .unwrap(),
        fourval::TruthValue::Both
    );
}

/// On a *consistent* KB all methods agree with plain entailment.
#[test]
fn all_methods_coincide_on_consistent_input() {
    let kb = parse_kb(
        "Surgeon SubClassOf Doctor
         Doctor SubClassOf Person
         s : Surgeon",
    )
    .unwrap();
    let positive = q("s", "Person");
    let negative = q("s", "Nurse");
    let methods: Vec<Box<dyn InconsistencyBaseline>> = vec![
        Box::new(ClassicalBaseline::new(&kb)),
        Box::new(McsBaseline::new(&kb, McsMode::Skeptical)),
        Box::new(McsBaseline::new(&kb, McsMode::Credulous)),
        Box::new(RelevanceBaseline::new(&kb)),
        Box::new(StratifiedBaseline::tbox_over_abox(&kb)),
    ];
    for mut m in methods {
        assert_eq!(m.entails(&positive).unwrap(), Answer::Yes, "{}", m.name());
        assert_eq!(m.entails(&negative).unwrap(), Answer::No, "{}", m.name());
    }
    let kb4 = KnowledgeBase4::from_classical(&kb, InclusionKind::Internal);
    let four = Reasoner4::new(&kb4);
    assert!(four
        .has_positive_info(&IndividualName::new("s"), &Concept::atomic("Person"))
        .unwrap());
    assert!(!four
        .has_positive_info(&IndividualName::new("s"), &Concept::atomic("Nurse"))
        .unwrap());
}

/// The paper's §5 critique of subset selection: repairs *discard*
/// information, so conclusions that depend on discarded-but-uncontested
/// facts are lost; SHOIN(D)4 keeps them.
#[test]
fn selection_loses_uncontested_conclusions() {
    // tweety is a bird (uncontested) and the bird/fly conflict is about
    // flying only.
    let kb = parse_kb(
        "Bird SubClassOf Fly
         tweety : Bird
         tweety : not Fly",
    )
    .unwrap();
    // Skeptical MCS: one repair drops `tweety : Bird`, so even
    // birdhood — never itself contradicted — is no longer skeptically
    // entailed.
    let mut skeptical = McsBaseline::new(&kb, McsMode::Skeptical);
    assert_eq!(skeptical.entails(&q("tweety", "Bird")).unwrap(), Answer::No);
    // SHOIN(D)4 keeps it.
    let kb4 = KnowledgeBase4::from_classical(&kb, InclusionKind::Internal);
    let four = Reasoner4::new(&kb4);
    assert!(four
        .has_positive_info(&IndividualName::new("tweety"), &Concept::atomic("Bird"))
        .unwrap());
}

/// Conclusions drawn by SHOIN(D)4 "may contain contradiction also …
/// however, the inconsistencies are localized" (§5): poisoned facts are
/// ⊤ and clean facts keep their classical value.
#[test]
fn localization_on_mixed_kb() {
    let kb = parse_kb(
        "A SubClassOf B
         x : A
         x : not A
         y : A",
    )
    .unwrap();
    let kb4 = KnowledgeBase4::from_classical(&kb, InclusionKind::Internal);
    let four = Reasoner4::new(&kb4);
    let (x, y) = (IndividualName::new("x"), IndividualName::new("y"));
    assert_eq!(
        four.query(&x, &Concept::atomic("A")).unwrap(),
        fourval::TruthValue::Both
    );
    // The contradiction propagates along the inclusion only positively:
    // x is B-and-not-known-not-B.
    assert_eq!(
        four.query(&x, &Concept::atomic("B")).unwrap(),
        fourval::TruthValue::True
    );
    assert_eq!(
        four.query(&y, &Concept::atomic("B")).unwrap(),
        fourval::TruthValue::True
    );
}
