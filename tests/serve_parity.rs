//! The serving layer's contract, checked differentially over the wire:
//! a [`shoin4::serve::Server`] answering the line protocol must be
//! answer-*invisible* — every verdict a concurrent TCP client reads
//! back must be bit-identical to a direct [`Reasoner4`] built from the
//! same KB under the same [`Config`], across all three §3.1 inclusion
//! kinds. The server side runs the full production pipeline (per-tenant
//! [`shoin4::Session`]s, told fast path, Horn saturation, module
//! scoping, cross-tenant shared caches, admission queue), the reference
//! side runs a direct in-process [`Reasoner4`] with none of the serving
//! machinery; agreement over ≥ 100 generated tenants is the evidence
//! that no serving shortcut changes an answer. (The reference keeps the
//! default [`QueryOptions`] — the slower `QueryOptions::baseline`
//! oracle already guards those layers in
//! `tests/{batch,module,horn,incremental}_parity.rs`; here the subject
//! is the wire + registry + shared-cache path on top.)
//!
//! Also here: the protocol smoke test CI drives by name
//! (`serve_protocol_smoke`) and the admission-control test (a saturated
//! one-worker server must shed with a typed `overloaded` reply and stay
//! healthy after the burst is cancelled).

use jsonio::Value;
use ontogen::random::{random_kb4, RandomParams};
use ontogen::tenant::{tenant_fleet, TenantFleetParams};
use shoin4::printer4::print_axiom4;
use shoin4::reasoner4::QueryOptions;
use shoin4::serve::{hostile_kb, Registry, ServeOptions, Server};
use shoin4::{Axiom4, InclusionKind, KnowledgeBase4, Reasoner4};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tableau::Config;

/// Shared server/reference config: a short budget so seeds that are
/// pathologically hard for the baseline tableau get skipped, exactly as
/// in `tests/incremental_parity.rs` — hardness is a KB property, not a
/// serving property.
fn config() -> Config {
    Config {
        model_pruning: false,
        time_budget: Some(Duration::from_millis(300)),
        ..Config::default()
    }
}

fn small_params(seed: u64) -> RandomParams {
    RandomParams {
        n_concepts: 4,
        n_roles: 2,
        n_individuals: 3,
        n_tbox: 3,
        n_abox: 5,
        max_depth: 1,
        number_restrictions: false,
        inverse_roles: true,
        seed,
    }
}

/// ≥ 100 tenants: a generated fleet with a shared core (so the parity
/// sweep also exercises the cross-tenant cache) plus random mixed-kind
/// KBs, which plant material, internal and strong inclusions.
fn tenant_kbs() -> Vec<(String, KnowledgeBase4)> {
    let fleet = tenant_fleet(&TenantFleetParams {
        tenants: 8,
        shared_core_rate: 0.5,
        ..TenantFleetParams::default()
    });
    let mut kbs = fleet.tenants;
    for seed in 0..96u64 {
        kbs.push((
            format!("rand{seed}"),
            random_kb4(&small_params(seed), (0.3, 0.4, 0.3)),
        ));
    }
    assert!(kbs.len() >= 100, "the sweep promises ≥ 100 tenants");
    kbs
}

/// One client connection with line-in/JSON-out helpers.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let writer = stream.try_clone().expect("clone");
        Client {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn ask(&mut self, line: &str) -> Value {
        // Single write per request: a `writeln!` would send the line
        // and its terminator as separate segments, and the server
        // cannot parse until the terminator lands.
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        Value::parse(&reply).unwrap_or_else(|e| panic!("bad JSON reply {reply:?}: {e}"))
    }
}

/// Interpret a server reply as `Some(value under `key`)`, `None` for a
/// resource-limit error (skip the probe), and panic on protocol errors
/// — a `parse`/`no-tenant`/`unknown-tenant` reply is a bug, not a skip.
fn reply_value(reply: &Value, key: &str, probe: &str) -> Option<Value> {
    if let Some(code) = reply.get("error").and_then(Value::as_str) {
        assert!(
            code == "budget" || code == "limit",
            "protocol error {code:?} on {probe:?}: {reply}"
        );
        return None;
    }
    Some(
        reply
            .get(key)
            .unwrap_or_else(|| panic!("reply to {probe:?} lacks {key:?}: {reply}"))
            .clone(),
    )
}

/// Drive every probe for one tenant through an open connection and
/// compare against the direct reasoner. Returns the number of probes
/// that produced comparable (unskipped) answers.
fn check_tenant(client: &mut Client, id: &str, kb: &KnowledgeBase4) -> usize {
    let created = client.ask(&format!("tenant {id}"));
    assert_eq!(
        created.get("created").and_then(Value::as_bool),
        Some(false),
        "tenant {id} should have been pre-registered"
    );
    let reference = Reasoner4::with_options(kb, config(), QueryOptions::default());
    let mut compared = 0;

    let reply = client.ask("check");
    if let (Some(got), Ok(want)) = (
        reply_value(&reply, "satisfiable", "check"),
        reference.is_satisfiable(),
    ) {
        assert_eq!(got.as_bool(), Some(want), "check diverged on {id}");
        compared += 1;
    }

    let sig = kb.signature();
    let concepts: Vec<_> = sig.concepts.iter().cloned().collect();
    let individuals: Vec<_> = sig.individuals.iter().cloned().collect();
    let roles: Vec<_> = sig.roles.iter().cloned().collect();

    // Instance queries: atomic probes (served by the told fast path)
    // and a compound probe (forced through module + shared caches).
    // Kept deliberately lean — CI runs this sweep on small machines,
    // and each budget-exhausted probe costs its full 300ms twice.
    let mut probes: Vec<dl::Concept> = concepts
        .iter()
        .take(2)
        .map(|c| dl::Concept::atomic(c.clone()))
        .collect();
    if concepts.len() >= 2 {
        probes.push(
            dl::Concept::atomic(concepts[0].clone()).and(dl::Concept::atomic(concepts[1].clone())),
        );
    }
    for a in individuals.iter().take(1) {
        for c in &probes {
            let probe = format!("query {a} {c}");
            let reply = client.ask(&probe);
            if let (Some(got), Ok(want)) = (
                reply_value(&reply, "verdict", &probe),
                reference.query(a, c),
            ) {
                assert_eq!(
                    got.as_str(),
                    Some(shoin4::serve::truth_token(want)),
                    "{probe} diverged on {id}"
                );
                compared += 1;
            }
        }
    }

    if let (Some(r), [a, b, ..]) = (roles.first(), individuals.as_slice()) {
        let probe = format!("role {r} {a} {b}");
        let reply = client.ask(&probe);
        if let (Some(got), Ok(want)) = (
            reply_value(&reply, "verdict", &probe),
            reference.query_role(r, a, b),
        ) {
            assert_eq!(
                got.as_str(),
                Some(shoin4::serve::truth_token(want)),
                "{probe} diverged on {id}"
            );
            compared += 1;
        }
    }

    // Entailment across all three inclusion kinds, on constructed
    // inclusions over the tenant's own signature.
    if concepts.len() >= 2 {
        for kind in [
            InclusionKind::Internal,
            InclusionKind::Material,
            InclusionKind::Strong,
        ] {
            let ax = Axiom4::ConceptInclusion(
                kind,
                dl::Concept::atomic(concepts[0].clone()),
                dl::Concept::atomic(concepts[1].clone()),
            );
            let probe = format!("entails {}", print_axiom4(&ax));
            let reply = client.ask(&probe);
            if let (Some(got), Ok(want)) = (
                reply_value(&reply, "entailed", &probe),
                reference.entails(&ax),
            ) {
                assert_eq!(got.as_bool(), Some(want), "{probe} diverged on {id}");
                compared += 1;
            }
        }
    }
    compared
}

#[test]
fn server_matches_direct_reasoner_across_generated_fleet() {
    let kbs = tenant_kbs();
    let registry = Arc::new(Registry::new(config()));
    for (id, kb) in &kbs {
        assert!(registry.register(id, kb));
    }
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeOptions {
            workers: 4,
            queue_depth: 256,
            lanes: None,
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let compared = AtomicUsize::new(0);
    // Concurrent clients: each thread owns a stride of the tenants and
    // its own connection, so the worker pool really interleaves
    // requests from different tenants.
    const CLIENTS: usize = 8;
    std::thread::scope(|scope| {
        for stride in 0..CLIENTS {
            let kbs = &kbs;
            let compared = &compared;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                let mut done = 0;
                for (id, kb) in kbs.iter().skip(stride).step_by(CLIENTS) {
                    done += check_tenant(&mut client, id, kb);
                }
                client.ask("quit");
                compared.fetch_add(done, Ordering::Relaxed);
            });
        }
    });
    // The budget skip must not hollow the sweep out.
    let compared = compared.load(Ordering::Relaxed);
    assert!(
        compared >= 250,
        "only {compared} probes were comparable — the sweep lost its teeth"
    );
    // The fleet's shared core must have produced real cross-tenant
    // sharing during the sweep.
    let shared = registry.shared().stats();
    assert!(
        shared.hit_ratio() > 0.0,
        "no cross-tenant cache sharing despite a shared core: {shared:?}"
    );
    server.shutdown();
}

/// The named protocol smoke test CI runs on every push: one connection,
/// every connection-level and admitted verb, typed error replies.
#[test]
fn serve_protocol_smoke() {
    let registry = Arc::new(Registry::new(config()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeOptions::default(),
    )
    .expect("bind");
    let mut c = Client::connect(server.local_addr());
    assert_eq!(
        c.ask("check").get("error").and_then(Value::as_str),
        Some("no-tenant")
    );
    assert_eq!(
        c.ask("tenant demo").get("created").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(
        c.ask("DataRole: age").get("ok").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(
        c.ask("add Penguin SubClassOf Bird")
            .get("ok")
            .and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(
        c.ask("add tweety : Penguin")
            .get("axioms")
            .and_then(Value::as_i64),
        Some(2)
    );
    assert_eq!(
        c.ask("add Adult MaterialSubClassOf age some integer[18..]")
            .get("ok")
            .and_then(Value::as_bool),
        Some(true),
        "DataRole declaration must thread into admitted parses"
    );
    assert_eq!(
        c.ask("query tweety Bird")
            .get("verdict")
            .and_then(Value::as_str),
        Some("t")
    );
    assert_eq!(
        c.ask("entails Penguin SubClassOf Bird")
            .get("entailed")
            .and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(
        c.ask("role flies tweety tweety")
            .get("verdict")
            .and_then(Value::as_str),
        Some("neither")
    );
    assert_eq!(
        c.ask("retract tweety : Penguin")
            .get("removed")
            .and_then(Value::as_bool),
        Some(true)
    );
    let stats = c.ask("stats");
    assert_eq!(stats.get("axioms").and_then(Value::as_i64), Some(2));
    assert_eq!(
        c.ask("frobnicate hard")
            .get("error")
            .and_then(Value::as_str),
        Some("parse")
    );
    assert_eq!(
        c.ask("cancel").get("revoked").and_then(Value::as_i64),
        Some(0)
    );
    assert_eq!(c.ask("quit").get("ok").and_then(Value::as_bool), Some(true));
    server.shutdown();
}

/// Admission control under saturation: a one-worker, one-slot server
/// fed hostile requests must shed with a typed `overloaded` reply, and
/// after the burst is revoked it must keep serving other tenants.
#[test]
fn saturated_server_sheds_and_recovers() {
    // A short budget bounds every hostile search: even when the poller
    // below loses an admission race and its own probe runs, it is back
    // within ~1s. Cancellation only ends searches sooner.
    let config = Config {
        time_budget: Some(Duration::from_secs(1)),
        ..Config::default()
    };
    let registry = Arc::new(Registry::new(config));
    registry.register("evil", &hostile_kb(40));
    registry.register(
        "fair",
        &shoin4::parse_kb4("A SubClassOf B\nx : A").expect("parse"),
    );
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeOptions {
            workers: 1,
            queue_depth: 1,
            lanes: None,
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Two looping hostile clients keep the single worker and the
        // single queue slot continuously occupied until told to stop,
        // so the poller below reliably finds the queue full.
        let hostile = |tag: &'static str| {
            let stop = &stop;
            scope.spawn(move || {
                let mut c = Client::connect(addr);
                c.ask("tenant evil");
                let mut completed = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let reply = c.ask("check");
                    let code = reply.get("error").and_then(Value::as_str);
                    assert!(
                        matches!(code, Some("budget" | "cancelled" | "overloaded")),
                        "{tag} got an unexpected reply: {reply}"
                    );
                    completed += 1;
                }
                (tag, completed)
            })
        };
        let h1 = hostile("h1");
        let h2 = hostile("h2");

        // A third client's probe must observe the typed shed reply. It
        // can still win an admission race in the instant between one
        // hostile reply and the next resubmission — then its own probe
        // burns its 1s budget — so poll.
        let mut c = Client::connect(addr);
        c.ask("tenant evil");
        let mut shed = None;
        for _ in 0..100 {
            let reply = c.ask("check");
            if reply.get("error").and_then(Value::as_str) == Some("overloaded") {
                shed = Some(reply);
                break;
            }
        }
        let shed = shed.expect("the saturated server never shed a request");
        assert!(
            shed.get("detail")
                .and_then(Value::as_str)
                .is_some_and(|d| d.contains("queue full")),
            "{shed}"
        );

        // Stop the burst and revoke in-flight searches so the loops
        // drain on the cancellation token, not the budget backstop.
        stop.store(true, Ordering::Relaxed);
        while !h1.is_finished() || !h2.is_finished() {
            server.cancel_tenant("evil");
            std::thread::sleep(Duration::from_millis(5));
        }
        for h in [h1, h2] {
            let (tag, completed) = h.join().expect("hostile client");
            assert!(completed >= 1, "{tag} never completed a request");
        }
    });

    // The unrelated tenant is served promptly after the burst.
    let mut fair = Client::connect(addr);
    fair.ask("tenant fair");
    let reply = fair.ask("query x B");
    assert_eq!(
        reply.get("verdict").and_then(Value::as_str),
        Some("t"),
        "fair tenant starved after the hostile burst: {reply}"
    );
    assert!(server.stats().shed.load(Ordering::Relaxed) >= 1);
    server.shutdown();
}
