//! Experiment L5/T6/C7: mechanical verification of the paper's central
//! theorems on randomly generated inputs.
//!
//! * **Lemma 5** (decomposability): for every four-valued interpretation
//!   `I` and concept `C`, `eval_Ī(C̄) = proj⁺(C^I)` and
//!   `eval_Ī(¬C̄) = proj⁻(C^I)` where `Ī` is the classical induced
//!   interpretation of Definition 8.
//! * **Theorem 6**: `I ⊨ K` iff `Ī ⊨ K̄` — and the reverse direction via
//!   Definition 9.
//! * **Corollary 7 / the reasoner**: `Reasoner4`'s answers agree with the
//!   brute-force four-valued entailment oracle on random small KBs.

use dl::{Concept, IndividualName, RoleExpr};
use fourmodels::enumerate::{EnumConfig, ModelIter};
use proptest::prelude::*;
use shoin4::induced::{classical_induced, four_valued_induced};
use shoin4::interp4::{Elem, Interp4, RolePair};
use shoin4::{
    parse_kb4, transform_concept, transform_kb, transform_neg_concept, Axiom4, InclusionKind,
    KnowledgeBase4, Reasoner4,
};
use std::collections::BTreeSet;

const N: u32 = 4;

fn subset() -> impl Strategy<Value = BTreeSet<Elem>> {
    proptest::collection::btree_set(0..N, 0..=N as usize)
}

fn interp() -> impl Strategy<Value = Interp4> {
    let role_pairs = proptest::collection::btree_set((0..N, 0..N), 0..=10);
    (
        subset(),
        subset(),
        subset(),
        subset(),
        role_pairs.clone(),
        role_pairs,
    )
        .prop_map(|(ap, an, bp, bn, rp, rn)| {
            let mut i = Interp4::with_domain_size(N);
            i.set_individual("x", 0);
            i.set_individual("y", 1);
            i.set_concept("A", fourval::SetPair { pos: ap, neg: an });
            i.set_concept("B", fourval::SetPair { pos: bp, neg: bn });
            i.set_role("r", RolePair { pos: rp, neg: rn });
            i
        })
}

fn concept() -> impl Strategy<Value = Concept> {
    let leaf = prop_oneof![
        Just(Concept::atomic("A")),
        Just(Concept::atomic("B")),
        Just(Concept::Top),
        Just(Concept::Bottom),
        Just(Concept::one_of([IndividualName::new("x")])),
    ];
    leaf.prop_recursive(3, 20, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.and(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.or(r)),
            inner.clone().prop_map(|c| c.not()),
            inner
                .clone()
                .prop_map(|c| Concept::some(RoleExpr::named("r"), c)),
            inner
                .clone()
                .prop_map(|c| Concept::all(RoleExpr::named("r").inverse(), c)),
            (1u32..3).prop_map(|n| Concept::at_least(n, RoleExpr::named("r"))),
            (0u32..3).prop_map(|n| Concept::at_most(n, RoleExpr::named("r"))),
        ]
    })
}

/// A KB mentioning the fixture signature (so Definition 8 knows which
/// names to translate).
fn fixture_kb() -> KnowledgeBase4 {
    parse_kb4(
        "A SubClassOf B
         r(x, y)
         x : A",
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lemma 5, positive and negative projections, for arbitrary
    /// concepts over arbitrary four-valued interpretations.
    #[test]
    fn lemma_5_decomposition(i in interp(), c in concept()) {
        let ci = classical_induced(&i, &fixture_kb());
        let four = i.eval(&c);
        prop_assert_eq!(
            ci.eval(&transform_concept(&c)).pos,
            four.pos,
            "positive projection mismatch for {}", c
        );
        prop_assert_eq!(
            ci.eval(&transform_neg_concept(&c)).pos,
            four.neg,
            "negative projection mismatch for {}", c
        );
    }

    /// Theorem 6 (necessity): I ⊨ K ⟹ Ī ⊨ K̄, and conversely on the
    /// same interpretation pair (satisfaction is preserved in both
    /// truth values, not just implication).
    #[test]
    fn theorem_6_transfer(i in interp(), kind_idx in 0usize..3, c in concept(), d in concept()) {
        let kind = InclusionKind::ALL[kind_idx];
        let kb = KnowledgeBase4::from_axioms([
            Axiom4::ConceptInclusion(kind, c, d),
            Axiom4::RoleAssertion(
                dl::RoleName::new("r"),
                IndividualName::new("x"),
                IndividualName::new("y"),
            ),
            Axiom4::ConceptAssertion(IndividualName::new("x"), Concept::atomic("A")),
        ]);
        let induced = transform_kb(&kb);
        let ci = classical_induced(&i, &kb);
        let classical_view =
            KnowledgeBase4::from_classical(&induced, InclusionKind::Internal);
        prop_assert_eq!(i.satisfies(&kb), ci.satisfies(&classical_view));
    }

    /// Definition 8 → Definition 9 round trip is the identity on the
    /// KB's signature.
    #[test]
    fn induced_round_trip(i in interp()) {
        let kb = fixture_kb();
        let back = four_valued_induced(&classical_induced(&i, &kb), &kb);
        for a in kb.signature().concepts {
            prop_assert_eq!(back.concept(&a), i.concept(&a));
        }
        for r in kb.signature().roles {
            prop_assert_eq!(back.role(&r), i.role(&r));
        }
    }
}

/// Reasoner4 (through the transformation + tableau) agrees with the
/// brute-force enumeration oracle on a battery of small KBs covering the
/// axiom kinds. This is the end-to-end soundness & completeness check of
/// the whole pipeline.
#[test]
fn reasoner_agrees_with_enumeration_oracle() {
    let kbs = [
        "A SubClassOf B\nx : A",
        "A SubClassOf B\nx : A\nx : not A",
        "A MaterialSubClassOf B\nx : A",
        "A MaterialSubClassOf B\nx : A\nx : not A",
        "A StrongSubClassOf B\nx : not B",
        "x : A or B\nx : not A",
        "x : A and not A\nA SubClassOf B",
        "r(x, y)\ny : A\nx : r only B",
        "not r(x, y)\nx : A",
        "A SubClassOf not B\nx : A\nx : B",
    ];
    for src in kbs {
        let kb = parse_kb4(src).unwrap();
        let cfg = EnumConfig::for_kb(&kb);
        let r = Reasoner4::new(&kb);
        // Satisfiability must agree (over the small-domain oracle these
        // KBs are domain-size-insensitive).
        let brute_sat = ModelIter::new(&kb, &cfg).any(|m| m.satisfies(&kb));
        assert_eq!(
            brute_sat,
            r.is_satisfiable().unwrap(),
            "satisfiability mismatch on {src:?}"
        );
        if !brute_sat {
            continue;
        }
        for who in ["x", "y"] {
            if !kb
                .signature()
                .individuals
                .contains(&IndividualName::new(who))
            {
                continue;
            }
            for concept in ["A", "B"] {
                if !kb
                    .signature()
                    .concepts
                    .contains(&dl::ConceptName::new(concept))
                {
                    continue;
                }
                let c = Concept::atomic(concept);
                let a = IndividualName::new(who);
                let brute_pos = fourmodels::check::entailed_positive_info(&kb, &cfg, &a, &c);
                let brute_neg = fourmodels::check::entailed_negative_info(&kb, &cfg, &a, &c);
                assert_eq!(
                    brute_pos,
                    r.has_positive_info(&a, &c).unwrap(),
                    "positive info mismatch on {src:?}, {who}:{concept}"
                );
                assert_eq!(
                    brute_neg,
                    r.has_negative_info(&a, &c).unwrap(),
                    "negative info mismatch on {src:?}, {who}:{concept}"
                );
            }
        }
    }
}

/// The fundamental paraconsistency contract, randomized: injecting a
/// contradiction about (x, A) never flips answers about an unrelated
/// individual/concept pair.
#[test]
fn contradictions_stay_local() {
    let clean = parse_kb4("C SubClassOf D\ny : C").unwrap();
    let poisoned = parse_kb4(
        "C SubClassOf D
         y : C
         x : A
         x : not A",
    )
    .unwrap();
    let r_clean = Reasoner4::new(&clean);
    let r_poisoned = Reasoner4::new(&poisoned);
    let y = IndividualName::new("y");
    for concept in ["C", "D"] {
        let c = Concept::atomic(concept);
        assert_eq!(
            r_clean.has_positive_info(&y, &c).unwrap(),
            r_poisoned.has_positive_info(&y, &c).unwrap(),
            "poisoning changed positive answer for y:{concept}"
        );
        assert_eq!(
            r_clean.has_negative_info(&y, &c).unwrap(),
            r_poisoned.has_negative_info(&y, &c).unwrap(),
            "poisoning changed negative answer for y:{concept}"
        );
    }
}
