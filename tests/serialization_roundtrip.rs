//! Serialization round-trips: binary snapshots (`dl::snapshot`) and
//! serde/JSON for both classical and four-valued KBs, over generated
//! inputs — a KB must survive every persistence path unchanged.

use dl::snapshot::{decode, encode};
use ontogen::random::{random_kb, random_kb4, RandomParams};
use ontogen::taxonomy::{taxonomy_kb, TaxonomyParams};
use ontogen::university::{university_kb, UniversityParams};
use shoin4::KnowledgeBase4;

#[test]
fn snapshot_round_trips_random_kbs() {
    for seed in 0..30u64 {
        let kb = random_kb(&RandomParams {
            seed,
            n_tbox: 12,
            n_abox: 12,
            max_depth: 3,
            ..RandomParams::default()
        });
        let bytes = encode(&kb);
        let back = decode(&bytes).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(back, kb, "seed {seed}");
    }
}

#[test]
fn snapshot_round_trips_structured_workloads() {
    let taxonomy = taxonomy_kb(&TaxonomyParams::default());
    assert_eq!(decode(&encode(&taxonomy)).unwrap(), taxonomy);
    let (university, _) = university_kb(&UniversityParams::default());
    assert_eq!(decode(&encode(&university)).unwrap(), university);
}

#[test]
fn snapshot_is_deterministic() {
    let kb = taxonomy_kb(&TaxonomyParams::default());
    assert_eq!(encode(&kb), encode(&kb));
}

#[test]
fn json_round_trips_classical_kb() {
    let kb = random_kb(&RandomParams {
        seed: 9,
        ..RandomParams::default()
    });
    let json = serde_json::to_string(&kb).expect("serializes");
    let back: dl::kb::KnowledgeBase = serde_json::from_str(&json).expect("parses");
    assert_eq!(back, kb);
}

#[test]
fn json_round_trips_four_valued_kb() {
    let kb4 = random_kb4(
        &RandomParams {
            seed: 11,
            ..RandomParams::default()
        },
        (0.3, 0.4, 0.3),
    );
    let json = serde_json::to_string(&kb4).expect("serializes");
    let back: KnowledgeBase4 = serde_json::from_str(&json).expect("parses");
    assert_eq!(back, kb4);
}

#[test]
fn json_round_trips_interpretations() {
    use fourval::SetPair;
    use shoin4::interp4::{Interp4, RolePair};
    use std::collections::BTreeSet;
    let mut i = Interp4::with_domain_size(3);
    i.set_individual("a", 0);
    i.set_concept("A", SetPair::new([0, 1], [2]));
    i.set_role(
        "r",
        RolePair {
            pos: BTreeSet::from([(0, 1)]),
            neg: BTreeSet::from([(2, 2)]),
        },
    );
    let json = serde_json::to_string(&i).expect("serializes");
    let back: Interp4 = serde_json::from_str(&json).expect("parses");
    assert_eq!(back, i);
}

#[test]
fn all_persistence_paths_agree() {
    // text → KB → snapshot → KB → text: both texts parse to the same KB.
    let kb = taxonomy_kb(&TaxonomyParams {
        depth: 2,
        branching: 3,
        sibling_disjointness: true,
        individuals_per_leaf: 2,
    });
    let via_snapshot = decode(&encode(&kb)).unwrap();
    let via_text = dl::parser::parse_kb(&dl::printer::print_kb(&kb)).unwrap();
    let via_json: dl::kb::KnowledgeBase =
        serde_json::from_str(&serde_json::to_string(&kb).unwrap()).unwrap();
    assert_eq!(via_snapshot, kb);
    assert_eq!(via_text, kb);
    assert_eq!(via_json, kb);
}
