//! Serialization round-trips: binary snapshots (`dl::snapshot`) and the
//! JSON codecs (`dl::json` / `shoin4::json`) for both classical and
//! four-valued KBs, over generated inputs — a KB must survive every
//! persistence path unchanged.

use dl::json::{kb_from_json, kb_to_json};
use dl::snapshot::{decode, encode};
use ontogen::random::{random_kb, random_kb4, RandomParams};
use ontogen::taxonomy::{taxonomy_kb, TaxonomyParams};
use ontogen::university::{university_kb, UniversityParams};
use shoin4::json::{kb4_from_json, kb4_to_json};

#[test]
fn snapshot_round_trips_random_kbs() {
    for seed in 0..30u64 {
        let kb = random_kb(&RandomParams {
            seed,
            n_tbox: 12,
            n_abox: 12,
            max_depth: 3,
            ..RandomParams::default()
        });
        let bytes = encode(&kb);
        let back = decode(&bytes).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(back, kb, "seed {seed}");
    }
}

#[test]
fn snapshot_round_trips_structured_workloads() {
    let taxonomy = taxonomy_kb(&TaxonomyParams::default());
    assert_eq!(decode(&encode(&taxonomy)).unwrap(), taxonomy);
    let (university, _) = university_kb(&UniversityParams::default());
    assert_eq!(decode(&encode(&university)).unwrap(), university);
}

#[test]
fn snapshot_is_deterministic() {
    let kb = taxonomy_kb(&TaxonomyParams::default());
    assert_eq!(encode(&kb), encode(&kb));
}

#[test]
fn json_round_trips_classical_kbs() {
    for seed in 0..10u64 {
        let kb = random_kb(&RandomParams {
            seed,
            ..RandomParams::default()
        });
        let json = kb_to_json(&kb).to_string();
        let value = jsonio::Value::parse(&json)
            .unwrap_or_else(|e| panic!("seed {seed}: invalid JSON: {e}"));
        let back = kb_from_json(&value).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(back, kb, "seed {seed}");
    }
}

#[test]
fn json_round_trips_four_valued_kbs() {
    for seed in 0..10u64 {
        let kb4 = random_kb4(
            &RandomParams {
                seed,
                ..RandomParams::default()
            },
            (0.3, 0.4, 0.3),
        );
        let json = kb4_to_json(&kb4).to_string();
        let value = jsonio::Value::parse(&json)
            .unwrap_or_else(|e| panic!("seed {seed}: invalid JSON: {e}"));
        let back = kb4_from_json(&value).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(back, kb4, "seed {seed}");
    }
}

#[test]
fn json_round_trips_interpretations() {
    use fourval::SetPair;
    use shoin4::interp4::{Interp4, RolePair};
    use std::collections::BTreeSet;
    let mut i = Interp4::with_domain_size(3);
    i.set_individual("a", 0);
    i.set_concept("A", SetPair::new([0, 1], [2]));
    i.set_role(
        "r",
        RolePair {
            pos: BTreeSet::from([(0, 1)]),
            neg: BTreeSet::from([(2, 2)]),
        },
    );
    let json = i.to_json().to_string();
    let back = Interp4::from_json(&jsonio::Value::parse(&json).unwrap()).unwrap();
    assert_eq!(back, i);
}

#[test]
fn all_persistence_paths_agree() {
    // text → KB → snapshot → KB → text: both texts parse to the same KB.
    let kb = taxonomy_kb(&TaxonomyParams {
        depth: 2,
        branching: 3,
        sibling_disjointness: true,
        individuals_per_leaf: 2,
    });
    let via_snapshot = decode(&encode(&kb)).unwrap();
    let via_text = dl::parser::parse_kb(&dl::printer::print_kb(&kb)).unwrap();
    let via_json =
        kb_from_json(&jsonio::Value::parse(&kb_to_json(&kb).to_string()).unwrap()).unwrap();
    assert_eq!(via_snapshot, kb);
    assert_eq!(via_text, kb);
    assert_eq!(via_json, kb);
}
