//! End-to-end parity between the two tableau search strategies, driven
//! through the full SHOIN(D)4 stack.
//!
//! The tableau-level differential tests (`crates/tableau/tests/
//! trail_props.rs`) fuzz the classical reasoner directly; these
//! properties fuzz the whole pipeline — the four-valued reduction, the
//! batch query engine, contradiction analysis, classification — over
//! ontogen's lint-seeded KBs with planted contradictions, asserting that
//! switching [`SearchStrategy`] is invisible in every answer while the
//! trail side never clones the completion graph.

use dl::name::IndividualName;
use dl::Concept;
use ontogen::lintseed::{lint_seeded_kb4, LintSeedParams};
use ontogen::random::{random_kb4, RandomParams};
use proptest::prelude::*;
use shoin4::analysis::{classify4, contradiction_report};
use shoin4::{KnowledgeBase4, Reasoner4};
use tableau::{Config, SearchStrategy};

fn planted_params(seed: u64) -> LintSeedParams {
    LintSeedParams {
        seed,
        n_clean_tbox: 6,
        n_clean_abox: 9,
        n_contested_direct: 2,
        n_contested_chained: 1,
        n_contested_roles: 1,
        n_duplicates: 1,
        n_cycles: 1,
        n_orphans: 1,
    }
}

fn random_params(seed: u64) -> RandomParams {
    RandomParams {
        n_concepts: 4,
        n_roles: 2,
        n_individuals: 3,
        n_tbox: 4,
        n_abox: 6,
        max_depth: 1,
        number_restrictions: true,
        inverse_roles: true,
        seed,
    }
}

fn reasoner(kb: &KnowledgeBase4, search: SearchStrategy) -> Reasoner4 {
    Reasoner4::with_config(
        kb,
        Config {
            search,
            ..Config::default()
        },
    )
}

/// Every individual × atomic-concept pair of the KB's signature.
fn signature_grid(kb: &KnowledgeBase4) -> Vec<(IndividualName, Concept)> {
    let sig = kb.signature();
    let mut grid = Vec::new();
    for a in &sig.individuals {
        for c in &sig.concepts {
            grid.push((a.clone(), Concept::atomic(c.clone())));
        }
    }
    grid
}

proptest! {
    // The heavy 256-case differential fuzzing lives at the tableau level
    // (crates/tableau/tests/trail_props.rs); here a handful of full-stack
    // grids keeps the suite fast while still exercising the reduction.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full signature grid of four-valued verdicts is bit-identical
    /// between the snapshot oracle and the trail engine, on KBs with
    /// planted contradictions — and the trail engine got there without a
    /// single whole-graph clone while the snapshot engine (on branching
    /// inputs) needed them.
    #[test]
    fn four_valued_grids_are_bit_identical(seed in 0..64u64) {
        let (kb, _) = lint_seeded_kb4(&planted_params(seed));
        let snap = reasoner(&kb, SearchStrategy::Snapshot);
        let trail = reasoner(&kb, SearchStrategy::Trail);
        for (a, c) in signature_grid(&kb) {
            let s = snap.query(&a, &c).unwrap();
            let t = trail.query(&a, &c).unwrap();
            prop_assert_eq!(s, t, "divergence on {}:{:?} (seed {})", a, c, seed);
        }
        prop_assert_eq!(trail.stats().graph_clones, 0);
        if snap.stats().branches > 0 {
            prop_assert!(snap.stats().graph_clones > 0, "snapshot branched without cloning?");
        }
    }

    /// Contradiction analysis and the four-valued taxonomy agree across
    /// strategies on random KB4s.
    #[test]
    fn analysis_agrees_across_strategies(seed in 0..64u64) {
        let kb = random_kb4(&random_params(seed), (0.3, 0.4, 0.3));
        let snap = reasoner(&kb, SearchStrategy::Snapshot);
        let trail = reasoner(&kb, SearchStrategy::Trail);

        let a = contradiction_report(&snap, &kb).unwrap();
        let b = contradiction_report(&trail, &kb).unwrap();
        prop_assert_eq!(&a.contested, &b.contested);
        prop_assert_eq!(&a.asserted, &b.asserted);
        prop_assert_eq!(&a.denied, &b.denied);
        prop_assert_eq!(a.unknown, b.unknown);

        prop_assert_eq!(classify4(&snap, &kb).unwrap(), classify4(&trail, &kb).unwrap());
    }
}

/// Deterministic spot check: planted contested facts surface identically
/// under both strategies (`Both` stays `Both`), so downstream consumers
/// (the CLI `report` path) cannot observe the search strategy.
#[test]
fn planted_contradictions_survive_both_strategies() {
    for seed in 0..4u64 {
        let (kb, truth) = lint_seeded_kb4(&planted_params(seed));
        let snap = reasoner(&kb, SearchStrategy::Snapshot);
        let trail = reasoner(&kb, SearchStrategy::Trail);
        for (a, c) in &truth.contested_concepts {
            let atom = Concept::atomic(c.clone());
            let s = snap.query(a, &atom).unwrap();
            let t = trail.query(a, &atom).unwrap();
            assert_eq!(s, t, "planted fact {a}:{c} diverged (seed {seed})");
        }
    }
}
