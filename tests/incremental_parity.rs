//! The incremental-session contract, machine-checked differentially:
//! module-granular cache invalidation (`shoin4::incremental`) must be
//! *invisible* in answers. Across ≥ 200 generated mutation traces —
//! random add/retract interleavings over mixed-kind corpora plus the
//! localized churn workloads the subsystem is optimized for — every
//! four-valued verdict and satisfiability answer out of a long-lived
//! [`Session`] must be bit-identical to a fresh [`Reasoner4`] rebuilt
//! from scratch over the session's current KB with
//! [`QueryOptions::baseline`] (no told fast path, no entailment cache,
//! no threads): if an invalidation pass ever keeps a stale module,
//! Horn program, entailment row or told row alive, some interleaving
//! here diverges.
//!
//! The durable layer is covered by crash-replay tests: a WAL whose
//! tail was torn mid-line (the partial write of a crash) must reopen
//! to exactly the committed prefix of the mutation history, and an
//! untouched WAL must reopen to the full history — byte-identical KBs,
//! not merely equisatisfiable ones.
//!
//! As in `tests/horn_parity.rs`, both sides carry a short wall-clock
//! budget and a seed that is pathologically hard for the baseline
//! tableau is skipped — hardness is a KB property, not a caching
//! property.

use dl::name::IndividualName;
use dl::Concept;
use ontogen::churn::{churn_workload, ChurnOp, ChurnParams};
use ontogen::modular::ModularParams;
use ontogen::random::{random_kb4, RandomParams};
use proptest::prelude::*;
use shoin4::reasoner4::QueryOptions;
use shoin4::{Axiom4, KnowledgeBase4, Reasoner4, Session};
use std::time::Duration;
use tableau::Config;

fn small_params(seed: u64) -> RandomParams {
    RandomParams {
        n_concepts: 4,
        n_roles: 2,
        n_individuals: 3,
        n_tbox: 3,
        n_abox: 5,
        max_depth: 1,
        number_restrictions: false,
        inverse_roles: true,
        seed,
    }
}

fn config() -> Config {
    Config {
        model_pruning: false,
        // Skip seeds that are pathologically hard for the baseline
        // tableau; both sides share the budget.
        time_budget: Some(Duration::from_millis(300)),
        ..Config::default()
    }
}

fn fresh(kb: &KnowledgeBase4) -> Reasoner4 {
    Reasoner4::with_options(kb, config(), QueryOptions::baseline())
}

/// Every individual × atomic-concept pair of the KB's signature.
fn signature_grid(kb: &KnowledgeBase4) -> Vec<(IndividualName, Concept)> {
    let sig = kb.signature();
    let mut grid = Vec::new();
    for a in &sig.individuals {
        for c in &sig.concepts {
            grid.push((a.clone(), Concept::atomic(c.clone())));
        }
    }
    grid
}

/// Compare the long-lived session against a from-scratch rebuild over
/// its current KB. Returns `false` if the time budget was exhausted
/// (the caller skips the seed).
fn session_agrees(session: &Session, seed: u64) -> Result<bool, TestCaseError> {
    let kb = session.kb();
    let reference = fresh(&kb);
    let (s_sat, r_sat) = match (session.is_satisfiable(), reference.is_satisfiable()) {
        (Ok(s), Ok(r)) => (s, r),
        _ => return Ok(false),
    };
    prop_assert_eq!(s_sat, r_sat, "satisfiability diverged (seed {})", seed);
    for (a, c) in signature_grid(&kb) {
        let (s, r) = match (session.query(&a, &c), reference.query(&a, &c)) {
            (Ok(s), Ok(r)) => (s, r),
            _ => return Ok(false),
        };
        prop_assert_eq!(
            s,
            r,
            "stale cache: divergence on {}:{:?} (seed {})",
            a,
            c,
            seed
        );
    }
    Ok(true)
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random add/retract interleavings over a mixed-kind corpus: the
    /// session is checked against a fresh rebuild at every fourth step
    /// and at the end. Retractions hit both session-added axioms and
    /// base axioms (exercising tombstoned slots inside cached module
    /// keys), and re-adds of retracted axioms exercise slot reuse.
    #[test]
    fn session_tracks_a_fresh_reasoner_across_random_traces(seed in 0..4096u64) {
        let base = random_kb4(&small_params(seed), (0.3, 0.4, 0.3));
        let pool = random_kb4(&small_params(seed ^ 0x9E37), (0.3, 0.4, 0.3));
        let mut session = Session::new(&base, config());
        if !session_agrees(&session, seed)? {
            return Ok(());
        }
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut added: Vec<Axiom4> = Vec::new();
        for step in 0..10u32 {
            rng = xorshift(rng);
            let pick = (rng >> 8) as usize;
            match rng % 3 {
                0 if !pool.is_empty() => {
                    let ax = pool.axioms()[pick % pool.len()].clone();
                    added.push(ax.clone());
                    session.add_axiom(ax).unwrap();
                }
                1 if !added.is_empty() => {
                    let ax = added.swap_remove(pick % added.len());
                    prop_assert!(session.retract_axiom(&ax).unwrap());
                }
                _ if !base.is_empty() => {
                    // May be a no-op when a previous step already took it.
                    let ax = base.axioms()[pick % base.len()].clone();
                    session.retract_axiom(&ax).unwrap();
                }
                _ => {}
            }
            if step % 4 == 3 && !session_agrees(&session, seed)? {
                return Ok(());
            }
        }
        session_agrees(&session, seed)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The localized churn workloads the subsystem is optimized for:
    /// replay the generated trace, answering every query op against a
    /// fresh rebuild of the current KB, then grid-check the end state.
    /// Modular islands make invalidation *actually* partial here, so a
    /// dirty-test that spares too much (instead of too little) has
    /// warm-but-stale modules to get caught on.
    #[test]
    fn churn_traces_answer_identically_to_rebuilds(seed in 0..4096u64) {
        let (kb, _, ops) = churn_workload(&ChurnParams {
            seed,
            modular: ModularParams {
                seed,
                n_islands: 2,
                island_tbox: 3,
                island_abox: 4,
                contaminated_islands: 1,
            },
            ops: 30,
            mutation_percent: 30,
            hot_island: 0,
        });
        let mut session = Session::new(&kb, config());
        let mut reference: Option<Reasoner4> = Some(fresh(&kb));
        for op in &ops {
            match op {
                ChurnOp::Add(ax) => {
                    session.add_axiom(ax.clone()).unwrap();
                    reference = None;
                }
                ChurnOp::Retract(ax) => {
                    prop_assert!(session.retract_axiom(ax).unwrap(), "trace retract missed");
                    reference = None;
                }
                ChurnOp::Query(a, c) => {
                    let r = reference.get_or_insert_with(|| fresh(&session.kb()));
                    let (sv, rv) = match (session.query(a, c), r.query(a, c)) {
                        (Ok(s), Ok(r)) => (s, r),
                        _ => return Ok(()),
                    };
                    prop_assert_eq!(sv, rv, "churn divergence on {}:{:?} (seed {})", a, c, seed);
                }
            }
        }
        session_agrees(&session, seed)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Add-then-retract is an exact undo: the verdict grid after the
    /// round trip must equal the grid before it — the caches the add
    /// invalidated and the retract re-invalidated must rebuild to a
    /// verdict-equivalent state, never a stale one.
    #[test]
    fn add_then_retract_restores_every_verdict(seed in 0..4096u64) {
        let base = random_kb4(&small_params(seed), (0.3, 0.4, 0.3));
        let pool = random_kb4(&small_params(seed ^ 0x517C), (0.3, 0.4, 0.3));
        if pool.is_empty() {
            return Ok(());
        }
        let mut session = Session::new(&base, config());
        let grid = signature_grid(&base);
        let mut before = Vec::with_capacity(grid.len());
        for (a, c) in &grid {
            match session.query(a, c) {
                Ok(v) => before.push(v),
                Err(_) => return Ok(()),
            }
        }
        let ax = pool.axioms()[seed as usize % pool.len()].clone();
        session.add_axiom(ax.clone()).unwrap();
        // Touch the caches in the mutated state so the retract has
        // something real to invalidate.
        for (a, c) in grid.iter().take(4) {
            if session.query(a, c).is_err() {
                return Ok(());
            }
        }
        prop_assert!(session.retract_axiom(&ax).unwrap());
        for ((a, c), want) in grid.iter().zip(before) {
            let got = match session.query(a, c) {
                Ok(v) => v,
                Err(_) => return Ok(()),
            };
            prop_assert_eq!(
                got,
                want,
                "add/retract of {:?} not an exact undo on {}:{:?} (seed {})",
                &ax,
                a,
                c,
                seed
            );
        }
    }
}

// ---------------------------------------------------------------------
// WAL crash replay
// ---------------------------------------------------------------------

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "shoin4-incremental-parity-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic mutation history over a small modular KB.
fn crash_ops() -> (KnowledgeBase4, Vec<ChurnOp>) {
    let (kb, _, ops) = churn_workload(&ChurnParams {
        seed: 11,
        modular: ModularParams {
            seed: 11,
            n_islands: 2,
            island_tbox: 3,
            island_abox: 4,
            contaminated_islands: 0,
        },
        ops: 40,
        mutation_percent: 60,
        hot_island: 0,
    });
    let muts: Vec<ChurnOp> = ops
        .into_iter()
        .filter(|op| !matches!(op, ChurnOp::Query(..)))
        .collect();
    assert!(muts.len() >= 8, "want a real history, got {}", muts.len());
    (kb, muts)
}

fn apply(session: &mut Session, op: &ChurnOp) {
    match op {
        ChurnOp::Add(ax) => session.add_axiom(ax.clone()).unwrap(),
        ChurnOp::Retract(ax) => {
            assert!(session.retract_axiom(ax).unwrap());
        }
        ChurnOp::Query(..) => unreachable!("mutations only"),
    }
}

/// The expected KB after replaying a prefix of the history in memory.
fn expected_kb(base: &KnowledgeBase4, ops: &[ChurnOp]) -> KnowledgeBase4 {
    let mut session = Session::new(base, Config::default());
    for op in ops {
        apply(&mut session, op);
    }
    session.kb()
}

#[test]
fn torn_wal_tail_recovers_exactly_the_committed_prefix() {
    let (base, muts) = crash_ops();
    let dir = scratch("prefix");
    // Seed the durable session with the base KB, then apply the history,
    // recording the WAL length after every committed mutation.
    let mut lens = Vec::new();
    {
        let mut s = Session::open_with(&dir, Config::default(), 0).unwrap();
        for ax in base.axioms() {
            s.add_axiom(ax.clone()).unwrap();
        }
        let base_len = std::fs::metadata(dir.join(shoin4::incremental::WAL_FILE))
            .unwrap()
            .len();
        lens.push(base_len);
        for op in &muts {
            apply(&mut s, op);
            lens.push(
                std::fs::metadata(dir.join(shoin4::incremental::WAL_FILE))
                    .unwrap()
                    .len(),
            );
        }
    }
    // Crash-cut the WAL mid-way through several different ops: the
    // reopened session must hold exactly the committed prefix.
    for committed in [3usize, muts.len() / 2, muts.len() - 1] {
        let cut = lens[committed] + (lens[committed + 1] - lens[committed]) / 2;
        let wal = dir.join(shoin4::incremental::WAL_FILE);
        let full = std::fs::read(&wal).unwrap();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let reopened = Session::open_with(&dir, Config::default(), 0).unwrap();
        assert_eq!(
            reopened.kb(),
            expected_kb(&base, &muts[..committed]),
            "crash cut inside op {} did not recover its prefix",
            committed + 1
        );
        drop(reopened);
        // Reopening truncated the torn tail; restore the full log for
        // the next cut point.
        std::fs::write(&wal, &full).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn untouched_wal_replays_the_full_history_bit_identically() {
    let (base, muts) = crash_ops();
    let dir = scratch("full");
    {
        let mut s = Session::open_with(&dir, Config::default(), 0).unwrap();
        for ax in base.axioms() {
            s.add_axiom(ax.clone()).unwrap();
        }
        for op in &muts {
            apply(&mut s, op);
        }
    }
    let reopened = Session::open_with(&dir, Config::default(), 0).unwrap();
    let want = expected_kb(&base, &muts);
    assert_eq!(reopened.kb(), want);
    // And the reopened session still *reasons* identically to a fresh
    // rebuild — replay restores the reasoner, not just the axiom list.
    let reference = fresh(&want);
    for (a, c) in signature_grid(&want).into_iter().take(12) {
        assert_eq!(
            reopened.query(&a, &c).unwrap(),
            reference.query(&a, &c).unwrap(),
            "replayed session diverged on {a}:{c:?}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_after_snapshot_compaction_recovers_through_the_snapshot() {
    let (base, muts) = crash_ops();
    let dir = scratch("compact");
    {
        // Aggressive compaction: snapshots punctuate the history, so
        // recovery exercises snapshot-load + WAL-suffix replay.
        let mut s = Session::open_with(&dir, Config::default(), 5).unwrap();
        for ax in base.axioms() {
            s.add_axiom(ax.clone()).unwrap();
        }
        for op in &muts {
            apply(&mut s, op);
        }
    }
    assert!(dir.join(shoin4::incremental::SNAPSHOT_FILE).exists());
    let reopened = Session::open_with(&dir, Config::default(), 5).unwrap();
    // Compaction snapshots the live axioms in slot order, so the
    // recovered KB is set-equal (and here sequence-equal) to in-memory
    // replay of the same history.
    assert_eq!(reopened.kb(), expected_kb(&base, &muts));
    std::fs::remove_dir_all(&dir).unwrap();
}
