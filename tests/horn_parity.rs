//! The Horn fast-path contract, machine-checked differentially: routing
//! queries through the consequence-driven saturation engine
//! (`Config::horn_path`, the default) must be *invisible* in answers.
//! Across mixed-kind random corpora, pure-Horn connected corpora and
//! all-material corpora (≥ 200 generated KBs in total) every
//! four-valued verdict, role verdict, entailment and satisfiability
//! answer must be bit-identical to the tableau-only engine; on small
//! KBs the routed engine's positive claims are additionally confirmed
//! by the `fourmodels` enumeration oracle.
//!
//! The routing itself is pinned through `Stats`: on the Horn corpus
//! the fast path must answer (`horn_queries > 0`) and must never fall
//! back (`horn_fallbacks == 0`); on the corpus with planted
//! disjunctive heads — module-relevant *and* non-Horn — routed queries
//! must fall back to the tableau (`horn_fallbacks > 0`); and on the
//! deterministic positive-atom material ladder — whose non-Horn images
//! can never produce positive information and, absent negative told
//! facts, never enter a positive-information query module — the
//! `has_positive_info` sweep saturates fallback-free.
//!
//! Both engines run with `QueryOptions::baseline()` (no told fast path,
//! no entailment cache, no threads) so queries actually reach the
//! router rather than a shortcut, and carry a short wall-clock budget:
//! a rare random seed that is pathologically hard for the tableau is
//! skipped, as in `tests/module_parity.rs`.

use dl::name::IndividualName;
use dl::Concept;
use fourmodels::check::{entailed_negative_info, entailed_positive_info};
use fourmodels::enumerate::EnumConfig;
use ontogen::horn::{horn_kb4, HornParams};
use ontogen::random::{random_kb4, RandomParams};
use proptest::prelude::*;
use shoin4::dataflow::ModuleExtractor;
use shoin4::horn::compile;
use shoin4::reasoner4::QueryOptions;
use shoin4::{Axiom4, InclusionKind, KnowledgeBase4, Reasoner4};
use std::time::Duration;
use tableau::Config;

fn random_params(seed: u64) -> RandomParams {
    RandomParams {
        n_concepts: 4,
        n_roles: 2,
        n_individuals: 3,
        n_tbox: 4,
        n_abox: 6,
        max_depth: 1,
        number_restrictions: false,
        inverse_roles: true,
        seed,
    }
}

fn horn_params(seed: u64) -> HornParams {
    HornParams {
        n_concepts: 6,
        n_roles: 2,
        n_individuals: 4,
        n_tbox: 8,
        n_abox: 6,
        strong_rate: 0.4,
        material_rate: 0.0,
        disjunction_rate: 0.0,
        seed,
    }
}

fn engine(kb: &KnowledgeBase4, horn_path: bool) -> Reasoner4 {
    let config = Config {
        model_pruning: false,
        horn_path,
        // Skip seeds that are pathologically hard for the baseline
        // tableau — hardness is a KB property, not a routing property.
        time_budget: Some(Duration::from_millis(300)),
        ..Config::default()
    };
    Reasoner4::with_options(kb, config, QueryOptions::baseline())
}

/// Every individual × atomic-concept pair of the KB's signature.
fn signature_grid(kb: &KnowledgeBase4) -> Vec<(IndividualName, Concept)> {
    let sig = kb.signature();
    let mut grid = Vec::new();
    for a in &sig.individuals {
        for c in &sig.concepts {
            grid.push((a.clone(), Concept::atomic(c.clone())));
        }
    }
    grid
}

/// Instance grid, role grid and satisfiability: routed answers must be
/// bit-identical to tableau-only answers. Returns `false` if the time
/// budget was exhausted (the caller skips the seed).
fn verdicts_agree(kb: &KnowledgeBase4, seed: u64) -> Result<bool, TestCaseError> {
    let routed = engine(kb, true);
    let plain = engine(kb, false);
    let (r_sat, p_sat) = match (routed.is_satisfiable(), plain.is_satisfiable()) {
        (Ok(r), Ok(p)) => (r, p),
        _ => return Ok(false),
    };
    prop_assert_eq!(r_sat, p_sat, "satisfiability diverged (seed {})", seed);
    for (a, c) in signature_grid(kb) {
        let (r, p) = match (routed.query(&a, &c), plain.query(&a, &c)) {
            (Ok(r), Ok(p)) => (r, p),
            _ => return Ok(false),
        };
        prop_assert_eq!(r, p, "divergence on {}:{:?} (seed {})", a, c, seed);
    }
    let sig = kb.signature();
    for role in &sig.roles {
        for a in &sig.individuals {
            for b in &sig.individuals {
                let (r, p) = match (routed.query_role(role, a, b), plain.query_role(role, a, b)) {
                    (Ok(r), Ok(p)) => (r, p),
                    _ => return Ok(false),
                };
                prop_assert_eq!(
                    r,
                    p,
                    "role divergence on {}({}, {}) (seed {})",
                    role,
                    a,
                    b,
                    seed
                );
            }
        }
    }
    // The tableau-only engine must never touch the Horn machinery.
    prop_assert_eq!(plain.stats().horn_queries, 0);
    prop_assert_eq!(plain.stats().horn_fallbacks, 0);
    Ok(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mixed-kind random KBs (material, internal and strong inclusions,
    /// weights 0.3/0.4/0.3): whatever mixture of Horn and non-Horn
    /// modules falls out, answers are bit-identical.
    #[test]
    fn random_kbs_verdicts_are_bit_identical(seed in 0..4096u64) {
        let kb = random_kb4(&random_params(seed), (0.3, 0.4, 0.3));
        verdicts_agree(&kb, seed)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The connected Horn corpus: answers are bit-identical, the fast
    /// path actually answers, and it *never* falls back — zero Horn-path
    /// routing on non-Horn modules means zero non-Horn modules here.
    #[test]
    fn horn_corpus_saturates_without_fallback(seed in 0..4096u64) {
        let kb = horn_kb4(&horn_params(seed));
        if !verdicts_agree(&kb, seed)? {
            return Ok(());
        }
        let routed = engine(&kb, true);
        for (a, c) in signature_grid(&kb) {
            if routed.query(&a, &c).is_err() {
                return Ok(());
            }
        }
        let stats = routed.stats();
        prop_assert!(stats.horn_queries > 0, "fast path never engaged (seed {})", seed);
        prop_assert_eq!(stats.horn_fallbacks, 0, "fallback on a Horn corpus (seed {})", seed);
        prop_assert!(stats.horn_clauses > 0, "no clauses compiled (seed {})", seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The same corpus shape with every inclusion material. A material
    /// image `C ↦ D` classicalizes to `¬π(¬C) ⊑ π(D)` — body-side
    /// negation, non-Horn — so any module it enters falls back to the
    /// tableau: parity (`verdicts_agree`) is the load-bearing claim
    /// here. The fast path must still *engage* (satisfiability's
    /// `∅`-seed module and any module the material images stay out of
    /// are trivially Horn); which queries fall back depends on which
    /// negated told facts drag a `C⁻`/`p⁺` into the cone, so the exact
    /// split is pinned deterministically in
    /// `positive_atom_material_ladder_is_invisible` instead.
    #[test]
    fn material_corpus_answers_agree_and_fast_path_engages(seed in 0..4096u64) {
        let kb = horn_kb4(&HornParams {
            material_rate: 1.0,
            ..horn_params(seed)
        });
        if !verdicts_agree(&kb, seed)? {
            return Ok(());
        }
        let routed = engine(&kb, true);
        if routed.is_satisfiable().is_err() {
            return Ok(());
        }
        for (a, c) in signature_grid(&kb) {
            if routed.query(&a, &c).is_err() {
                return Ok(());
            }
        }
        let stats = routed.stats();
        prop_assert!(stats.horn_queries > 0, "fast path never engaged (seed {})", seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Planted disjunctive heads are module-relevant *and* non-Horn:
    /// the classifier must refuse those modules and the router must
    /// count a fallback per affected query — zero Horn-path routing on
    /// non-Horn modules, observed through `Stats::horn_fallbacks`.
    #[test]
    fn disjunctive_corpus_falls_back_to_the_tableau(seed in 0..4096u64) {
        let kb = horn_kb4(&HornParams {
            disjunction_rate: 1.0,
            ..horn_params(seed)
        });
        // Even at rate 1.0 a rare seed draws only role-hierarchy /
        // transitivity chords and plants nothing disjunctive; if the
        // whole classical image still compiles Horn there is nothing to
        // fall back on — skip that seed.
        {
            let ex = ModuleExtractor::new(&kb);
            let images: Vec<_> = (0..kb.len()).flat_map(|i| ex.images(i).to_vec()).collect();
            if compile(images.iter()).is_some() {
                return Ok(());
            }
        }
        if !verdicts_agree(&kb, seed)? {
            return Ok(());
        }
        let routed = engine(&kb, true);
        for (a, c) in signature_grid(&kb) {
            if routed.query(&a, &c).is_err() {
                return Ok(());
            }
        }
        prop_assert!(
            routed.stats().horn_fallbacks > 0,
            "disjunctive modules classified as Horn (seed {})", seed
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Inclusion entailment under all three §3.1 inclusion kinds: the
    /// router turns internal/strong subsumption probes into saturation
    /// reachability and leaves material probes on the tableau — both
    /// invisibly.
    #[test]
    fn inclusion_entailment_is_preserved(seed in 0..4096u64) {
        let kb = random_kb4(&random_params(seed), (0.3, 0.4, 0.3));
        let routed = engine(&kb, true);
        let plain = engine(&kb, false);
        let concepts: Vec<Concept> = kb
            .signature()
            .concepts
            .into_iter()
            .map(Concept::atomic)
            .collect();
        for lhs in concepts.iter().take(3) {
            for rhs in concepts.iter().take(3) {
                for kind in [
                    InclusionKind::Internal,
                    InclusionKind::Material,
                    InclusionKind::Strong,
                ] {
                    let ax = Axiom4::ConceptInclusion(kind, lhs.clone(), rhs.clone());
                    let (r, p) = match (routed.entails(&ax), plain.entails(&ax)) {
                        (Ok(r), Ok(p)) => (r, p),
                        // Time budget exhausted: skip the pathological seed.
                        _ => return Ok(()),
                    };
                    prop_assert_eq!(r, p, "divergence on {:?} (seed {})", ax, seed);
                }
            }
        }
    }
}

/// The canonical material-invisibility pin, deterministic: a ladder of
/// material inclusions over *positive atoms* with a purely positive
/// ABox. Each image `¬A_i⁻ ⊑ A_{i+1}⁺` mentions only `A_i⁻` in its
/// body, and nothing in the KB puts a negative atom into a
/// positive-information cone, so ⊤-locality keeps every material image
/// out of every `has_positive_info` module: the whole sweep saturates
/// Horn with zero fallbacks, and (the `shoin4::told` counterexample at
/// scale) certifies *no* inherited memberships — only the told facts.
#[test]
fn positive_atom_material_ladder_is_invisible() {
    use dl::name::{ConceptName, RoleName};
    let mut kb = KnowledgeBase4::new();
    let atom = |i: usize| Concept::atomic(ConceptName::new(format!("L{i}")));
    let ind = |i: usize| IndividualName::new(format!("m{i}"));
    for i in 0..5 {
        kb.add(Axiom4::ConceptInclusion(
            InclusionKind::Material,
            atom(i),
            atom(i + 1),
        ));
    }
    for i in 0..3 {
        kb.add(Axiom4::ConceptAssertion(ind(i), atom(2 * i)));
        if i > 0 {
            kb.add(Axiom4::RoleAssertion(
                RoleName::new("m"),
                ind(i - 1),
                ind(i),
            ));
        }
    }
    let routed = engine(&kb, true);
    let plain = engine(&kb, false);
    for (a, c) in signature_grid(&kb) {
        let r = routed.has_positive_info(&a, &c).unwrap();
        assert_eq!(r, plain.has_positive_info(&a, &c).unwrap(), "{a}:{c}");
        // Material links certify nothing: positive info iff asserted.
        let told = kb
            .axioms()
            .iter()
            .any(|ax| matches!(ax, Axiom4::ConceptAssertion(x, tc) if *x == a && *tc == c));
        assert_eq!(r, told, "{a}:{c} must hold iff told");
    }
    let stats = routed.stats();
    assert!(stats.horn_queries > 0);
    assert_eq!(
        stats.horn_fallbacks, 0,
        "a material image leaked into a positive-information module"
    );
}

/// Oracle anchoring: on tiny KBs, every positive claim the *routed*
/// engine makes is confirmed by four-valued model enumeration. True
/// entailment implies entailment over the enumerated models, so a
/// routed claim the oracle rejects would be a soundness bug in the
/// saturation (or its module scoping).
#[test]
fn routed_claims_are_confirmed_by_the_enumeration_oracle() {
    // Enumeration is 4^(names × domain): keep the KBs tiny. Half the
    // loop uses the Horn corpus (the fast path answers), half the mixed
    // random corpus (fallbacks interleave with saturations).
    let mut claims = 0;
    for seed in 0..6u64 {
        let horn_kb = horn_kb4(&HornParams {
            n_concepts: 3,
            n_roles: 1,
            n_individuals: 2,
            n_tbox: 2,
            n_abox: 2,
            strong_rate: 0.5,
            material_rate: 0.0,
            disjunction_rate: 0.0,
            seed,
        });
        let random_kb = random_kb4(
            &RandomParams {
                n_concepts: 2,
                n_roles: 1,
                n_individuals: 2,
                n_tbox: 2,
                n_abox: 3,
                max_depth: 1,
                number_restrictions: false,
                inverse_roles: false,
                seed,
            },
            (0.4, 0.4, 0.2),
        );
        for kb in [&horn_kb, &random_kb] {
            let routed = engine(kb, true);
            let cfg = EnumConfig::for_kb(kb);
            for (a, c) in signature_grid(kb) {
                if routed.has_positive_info(&a, &c).unwrap() {
                    assert!(
                        entailed_positive_info(kb, &cfg, &a, &c),
                        "routed claim {a}:{c} rejected by the oracle (seed {seed})"
                    );
                    claims += 1;
                }
                if routed.has_negative_info(&a, &c).unwrap() {
                    assert!(
                        entailed_negative_info(kb, &cfg, &a, &c),
                        "routed claim {a}:¬{c} rejected by the oracle (seed {seed})"
                    );
                    claims += 1;
                }
            }
        }
    }
    assert!(claims >= 8, "generators degenerated: only {claims} claims");
}
