//! End-to-end reproduction of every worked example in the paper
//! (Examples 1–5), driving the full pipeline: concrete syntax →
//! SHOIN(D)4 KB → transformation → classical tableau → four-valued
//! answers.

use dl::{Concept, IndividualName, RoleExpr};
use fourval::TruthValue;
use shoin4::{parse_kb4, Axiom4, InclusionKind, Reasoner4};

fn ind(s: &str) -> IndividualName {
    IndividualName::new(s)
}

/// Example 1: instance query under a localized contradiction.
#[test]
fn example_1_bill_is_a_doctor() {
    let kb = parse_kb4(
        "hasPatient some Patient SubClassOf Doctor
         john : Doctor
         john : not Doctor
         mary : Patient
         hasPatient(bill, mary)",
    )
    .unwrap();
    let r = Reasoner4::new(&kb);
    assert!(r.is_satisfiable().unwrap(), "KB4 must be satisfiable");
    let doctor = Concept::atomic("Doctor");
    // "is there any information indicating bill is a doctor?" — yes.
    assert!(r.has_positive_info(&ind("bill"), &doctor).unwrap());
    // "…that bill is NOT a doctor?" — no (the paper exhibits a model
    // where bill ∉ proj⁻(Doctor)).
    assert!(!r.has_negative_info(&ind("bill"), &doctor).unwrap());
}

/// Example 2: the medical access-control contradiction.
#[test]
fn example_2_access_control() {
    let kb = parse_kb4(
        "SurgicalTeam SubClassOf not ReadPatientRecordTeam
         UrgencyTeam SubClassOf ReadPatientRecordTeam
         john : SurgicalTeam
         john : UrgencyTeam",
    )
    .unwrap();
    let r = Reasoner4::new(&kb);
    assert!(r.is_satisfiable().unwrap());
    let read = Concept::atomic("ReadPatientRecordTeam");
    // Both aspects of the contradiction are reported...
    assert!(r.has_positive_info(&ind("john"), &read).unwrap());
    assert!(r.has_negative_info(&ind("john"), &read).unwrap());
    // ...while unrelated queries stay silent (no explosion):
    let patient = Concept::atomic("Patient");
    assert!(!r.has_positive_info(&ind("john"), &patient).unwrap());
    assert!(!r.has_negative_info(&ind("john"), &patient).unwrap());
}

/// Example 3 (classical reading): the penguin KB is classically
/// unsatisfiable, "from which everything follows".
#[test]
fn example_3_classical_reading_explodes() {
    let kb = dl::parser::parse_kb(
        "Bird and (hasWing some Wing) SubClassOf Fly
         Penguin SubClassOf Bird
         Penguin SubClassOf hasWing some Wing
         Penguin SubClassOf not Fly
         tweety : Bird
         tweety : Penguin
         w : Wing
         hasWing(tweety, w)",
    )
    .unwrap();
    let mut r = tableau::Reasoner::new(&kb);
    assert!(!r.is_consistent().unwrap());
    // Triviality: an absurd query is "entailed".
    assert!(r
        .entails(&dl::Axiom::ConceptAssertion(
            ind("w"),
            Concept::atomic("Penguin"),
        ))
        .unwrap());
}

/// Examples 3 + 5 (four-valued reading): satisfiable, with
/// `Fly⁻(tweety)` holding and `Fly⁺(tweety)` not holding.
#[test]
fn example_3_and_5_four_valued_reading() {
    let kb = parse_kb4(
        "Bird and (hasWing some Wing) MaterialSubClassOf Fly
         Penguin SubClassOf Bird
         Penguin SubClassOf hasWing some Wing
         Penguin SubClassOf not Fly
         tweety : Bird
         tweety : Penguin
         w : Wing
         hasWing(tweety, w)",
    )
    .unwrap();
    let r = Reasoner4::new(&kb);
    assert!(r.is_satisfiable().unwrap());
    let fly = Concept::atomic("Fly");
    assert!(r.has_negative_info(&ind("tweety"), &fly).unwrap());
    assert!(!r.has_positive_info(&ind("tweety"), &fly).unwrap());
    assert_eq!(r.query(&ind("tweety"), &fly).unwrap(), TruthValue::False);
    // Non-trivial: positive info about being a penguin and a bird stays.
    assert_eq!(
        r.query(&ind("tweety"), &Concept::atomic("Penguin"))
            .unwrap(),
        TruthValue::True
    );
}

/// Example 5's transformed TBox: verify the exact classical induced KB
/// the paper prints.
#[test]
fn example_5_induced_kb_shape() {
    let kb = parse_kb4(
        "Bird and (hasWing some Wing) MaterialSubClassOf Fly
         Penguin SubClassOf Bird
         Penguin SubClassOf hasWing some Wing
         Penguin SubClassOf not Fly
         tweety : Bird
         tweety : Penguin
         w : Wing
         hasWing(tweety, w)",
    )
    .unwrap();
    let induced = shoin4::transform_kb(&kb);
    let printed = dl::printer::print_kb(&induced);
    // ¬(Bird⁻ ⊔ ∀hasWing⁺.Wing⁻) ⊑ Fly⁺  (the paper's ¬Bird⁻ ⊓ ¬∀…
    // form, de-Morganed — semantically identical, printed via our ¬(⊔)).
    assert!(
        printed.contains("not (Bird- or hasWing+ only Wing-) SubClassOf Fly+"),
        "material axiom image missing:\n{printed}"
    );
    assert!(printed.contains("Penguin+ SubClassOf Bird+"));
    assert!(printed.contains("Penguin+ SubClassOf hasWing+ some Wing+"));
    assert!(printed.contains("Penguin+ SubClassOf Fly-"));
    assert!(printed.contains("tweety : Penguin+"));
    assert!(printed.contains("hasWing+(tweety, w)"));
}

/// Example 4: the adoption KB is satisfiable and answers both queries.
#[test]
fn example_4_adoption() {
    let kb = parse_kb4(
        "hasChild min 1 SubClassOf Parent
         Parent MaterialSubClassOf Married
         hasChild(smith, kate)
         smith : not Married",
    )
    .unwrap();
    let r = Reasoner4::new(&kb);
    assert!(r.is_satisfiable().unwrap());
    assert!(r
        .has_positive_info(&ind("smith"), &Concept::atomic("Parent"))
        .unwrap());
    assert!(r
        .has_negative_info(&ind("smith"), &Concept::atomic("Married"))
        .unwrap());
    // Married(smith) is f or ⊤ across models but positive info is NOT
    // entailed (M5/M6/M9 in Table 4 have Married(s) = f).
    assert!(!r
        .has_positive_info(&ind("smith"), &Concept::atomic("Married"))
        .unwrap());
}

/// The classical counterpart of Example 4 from the paper's narrative:
/// "it can not be expressed by any classical OWL DL ontology language
/// without contradiction".
#[test]
fn example_4_classical_reading_is_inconsistent() {
    let kb = dl::parser::parse_kb(
        "hasChild min 1 SubClassOf Parent
         Parent SubClassOf Married
         hasChild(smith, kate)
         smith : not Married",
    )
    .unwrap();
    let mut r = tableau::Reasoner::new(&kb);
    assert!(!r.is_consistent().unwrap());
}

/// The three inclusion kinds behave per §3.1's bird narrative.
#[test]
fn inclusion_kind_narrative() {
    // Strong: a non-flyer is a non-bird.
    let strong = Reasoner4::new(&parse_kb4("Bird StrongSubClassOf Fly\nx : not Fly").unwrap());
    assert_eq!(
        strong.query(&ind("x"), &Concept::atomic("Bird")).unwrap(),
        TruthValue::False
    );
    // Internal: "this implication still cannot tell us whether it is not
    // a bird".
    let internal = Reasoner4::new(&parse_kb4("Bird SubClassOf Fly\nx : not Fly").unwrap());
    assert_eq!(
        internal.query(&ind("x"), &Concept::atomic("Bird")).unwrap(),
        TruthValue::Neither
    );
    // Material: the inclusion itself is entailed by its own KB.
    let material = Reasoner4::new(&parse_kb4("Bird MaterialSubClassOf Fly").unwrap());
    assert!(material
        .entails(&Axiom4::ConceptInclusion(
            InclusionKind::Material,
            Concept::atomic("Bird"),
            Concept::atomic("Fly"),
        ))
        .unwrap());
}

/// Role-level four-valued information flows end to end.
#[test]
fn role_information_end_to_end() {
    let kb = parse_kb4(
        "hasSon SubRoleOf hasChild
         hasSon(a, b)
         not hasChild(c, d)",
    )
    .unwrap();
    let r = Reasoner4::new(&kb);
    // Positive info propagates through the (internal) role hierarchy.
    assert!(r
        .has_positive_role_info(&dl::RoleName::new("hasChild"), &ind("a"), &ind("b"))
        .unwrap());
    // Negative info on an unrelated pair answers f.
    assert_eq!(
        r.query_role(&dl::RoleName::new("hasChild"), &ind("c"), &ind("d"))
            .unwrap(),
        TruthValue::False
    );
}

/// Inverse roles and number restrictions survive the transformation.
#[test]
fn inverse_and_number_restrictions_through_pipeline() {
    let kb = parse_kb4(
        "inverse employs some Company SubClassOf Employed
         employs(acme, ann)
         acme : Company",
    )
    .unwrap();
    let r = Reasoner4::new(&kb);
    assert!(r
        .has_positive_info(&ind("ann"), &Concept::atomic("Employed"))
        .unwrap());

    // ≥-restriction as the inclusion premise (Example 4's shape) with an
    // inverse role.
    let kb = parse_kb4(
        "inverse hasChild min 1 SubClassOf Child
         hasChild(smith, kate)",
    )
    .unwrap();
    let r = Reasoner4::new(&kb);
    assert!(r
        .has_positive_info(&ind("kate"), &Concept::atomic("Child"))
        .unwrap());
    assert!(!r
        .has_positive_info(&ind("smith"), &Concept::atomic("Child"))
        .unwrap());
    // Double-check the transformed role expression is the inverse of the
    // plus-companion.
    let c = Concept::at_least(1, RoleExpr::named("hasChild").inverse());
    let t = shoin4::transform_concept(&c);
    assert_eq!(
        t,
        Concept::at_least(1, RoleExpr::named("hasChild+").inverse())
    );
}
