//! Fuzz the classical tableau against brute-force classical model
//! enumeration: on randomly generated small KBs the two must agree on
//! satisfiability whenever a model of the enumerated domain size exists.
//!
//! Enumeration checks domains of a fixed size, so it can only *refute*
//! completeness claims in one direction: if enumeration finds a model the
//! tableau must say satisfiable. (A tableau "satisfiable" with no small
//! model is legitimate — SHOIN KBs can force larger models — so those
//! cases are skipped. With the generator's parameters below this
//! direction still fires on the overwhelming majority of seeds.)

use fourmodels::enumerate::{EnumConfig, ModelIter};
use ontogen::random::{random_kb, RandomParams};
use shoin4::{InclusionKind, KnowledgeBase4};
use tableau::{Config, Reasoner};

fn params(seed: u64) -> RandomParams {
    RandomParams {
        n_concepts: 3,
        n_roles: 1,
        n_individuals: 2,
        n_tbox: 3,
        n_abox: 3,
        max_depth: 1,
        number_restrictions: false,
        inverse_roles: true,
        seed,
    }
}

#[test]
fn tableau_agrees_with_classical_enumeration() {
    let mut checked = 0;
    let mut enum_sat = 0;
    for seed in 0..60u64 {
        let kb = random_kb(&params(seed));
        let kb4 = KnowledgeBase4::from_classical(&kb, InclusionKind::Internal);
        let mut cfg = EnumConfig::classical_for_kb(&kb4);
        cfg.domain_size = 2;
        cfg.max_interpretations = 20_000_000;
        let brute = ModelIter::new(&kb4, &cfg).any(|m| m.satisfies(&kb4));
        let mut r = Reasoner::with_config(&kb, Config::default());
        let tableau_answer = match r.is_consistent() {
            Ok(ans) => ans,
            Err(e) => panic!("resource limit on seed {seed}: {e}"),
        };
        if brute {
            assert!(
                tableau_answer,
                "seed {seed}: enumeration found a model but the tableau says \
                 unsatisfiable\n{}",
                dl::printer::print_kb(&kb)
            );
            enum_sat += 1;
        }
        // brute == false ⇒ no model with ≤2 elements; the tableau may
        // still (correctly) find a larger model, so no assertion.
        checked += 1;
    }
    assert_eq!(checked, 60);
    assert!(
        enum_sat >= 20,
        "generator degenerated: only {enum_sat}/60 seeds had small models"
    );
}

/// On KBs whose constructor mix cannot force large models (no
/// existentials / number restrictions / negated nominals — only
/// propositional combinations over the named individuals), a small-domain
/// countermodel search is *complete*, so the agreement check runs in both
/// directions.
#[test]
fn tableau_agrees_both_ways_on_propositional_kbs() {
    for seed in 0..40u64 {
        let kb = {
            // Strip role-flavoured axioms from the random KB, leaving a
            // propositional (ALC-without-roles) KB over two individuals.
            let full = random_kb(&params(seed ^ 0xABCD));
            let axioms: Vec<dl::Axiom> = full
                .axioms()
                .iter()
                .filter(|ax| match ax {
                    dl::Axiom::ConceptInclusion(c, d) => {
                        c.role_names().is_empty() && d.role_names().is_empty()
                    }
                    dl::Axiom::ConceptAssertion(_, c) => c.role_names().is_empty(),
                    dl::Axiom::RoleAssertion(..) => false,
                    _ => true,
                })
                .cloned()
                .collect();
            dl::kb::KnowledgeBase::from_axioms(axioms)
        };
        if kb.signature().individuals.is_empty() {
            continue;
        }
        let kb4 = KnowledgeBase4::from_classical(&kb, InclusionKind::Internal);
        let mut cfg = EnumConfig::classical_for_kb(&kb4);
        cfg.max_interpretations = 20_000_000;
        if ModelIter::new(&kb4, &cfg).total() > 5_000_000 {
            continue; // keep the suite fast
        }
        let brute = ModelIter::new(&kb4, &cfg).any(|m| m.satisfies(&kb4));
        let mut r = Reasoner::new(&kb);
        let fast = r.is_consistent().expect("within limits");
        assert_eq!(
            brute,
            fast,
            "seed {seed}: tableau and enumeration disagree on\n{}",
            dl::printer::print_kb(&kb)
        );
    }
}

/// Instance checking agrees with enumeration on propositional KBs.
#[test]
fn instance_checks_agree_on_propositional_kbs() {
    use dl::{Concept, IndividualName};
    let kbs = [
        "A SubClassOf B\nx : A",
        "A SubClassOf B or C\nx : A\nx : not C",
        "A SubClassOf not B\nx : A\ny : B",
        "x : A or B\nx : not A\nA SubClassOf C",
        "A EquivalentTo B and C\nx : B\nx : C",
    ];
    for src in kbs {
        let kb = dl::parser::parse_kb(src).unwrap();
        let kb4 = KnowledgeBase4::from_classical(&kb, InclusionKind::Internal);
        let cfg = EnumConfig::classical_for_kb(&kb4);
        let mut r = Reasoner::new(&kb);
        for who in ["x", "y"] {
            let a = IndividualName::new(who);
            if !kb.signature().individuals.contains(&a) {
                continue;
            }
            for concept in ["A", "B", "C"] {
                let cn = dl::ConceptName::new(concept);
                if !kb.signature().concepts.contains(&cn) {
                    continue;
                }
                let c = Concept::atomic(concept);
                // Brute-force entailment: a ∈ C in every classical model.
                let brute = ModelIter::new(&kb4, &cfg)
                    .filter(|m| m.satisfies(&kb4))
                    .all(|m| {
                        let e = m.individual(&a).expect("pinned");
                        m.eval(&c).pos.contains(&e)
                    });
                let fast = r.is_instance_of(&a, &c).expect("within limits");
                assert_eq!(brute, fast, "mismatch on {src:?} for {who}:{concept}");
            }
        }
    }
}
