//! Experiments T1–T3: the constructor and axiom semantics of Tables 1–3,
//! validated constructor by constructor and property-tested (Propositions
//! 3 and 4) over random four-valued interpretations.

use dl::{Concept, IndividualName, RoleExpr};
use fourval::SetPair;
use proptest::prelude::*;
use shoin4::interp4::{Elem, Interp4, RolePair};
use shoin4::{Axiom4, InclusionKind};
use std::collections::BTreeSet;

const N: u32 = 5;

fn subset_strategy() -> impl Strategy<Value = BTreeSet<Elem>> {
    proptest::collection::btree_set(0..N, 0..=N as usize)
}

fn pair_strategy() -> impl Strategy<Value = SetPair<Elem>> {
    (subset_strategy(), subset_strategy()).prop_map(|(pos, neg)| SetPair { pos, neg })
}

fn role_strategy() -> impl Strategy<Value = RolePair> {
    let pairs = proptest::collection::btree_set((0..N, 0..N), 0..=12);
    (pairs.clone(), pairs).prop_map(|(pos, neg)| RolePair { pos, neg })
}

fn interp_strategy() -> impl Strategy<Value = Interp4> {
    (
        pair_strategy(),
        pair_strategy(),
        pair_strategy(),
        role_strategy(),
        role_strategy(),
    )
        .prop_map(|(a, b, c, r, s)| {
            let mut i = Interp4::with_domain_size(N);
            i.set_individual("o0", 0);
            i.set_individual("o1", 1);
            i.set_concept("A", a);
            i.set_concept("B", b);
            i.set_concept("C", c);
            i.set_role("r", r);
            i.set_role("s", s);
            i
        })
}

/// Random concepts over the fixture signature (depth-bounded).
fn concept_strategy() -> impl Strategy<Value = Concept> {
    let leaf = prop_oneof![
        Just(Concept::atomic("A")),
        Just(Concept::atomic("B")),
        Just(Concept::atomic("C")),
        Just(Concept::Top),
        Just(Concept::Bottom),
        Just(Concept::one_of([IndividualName::new("o0")])),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.and(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.or(r)),
            inner.clone().prop_map(|c| c.not()),
            inner
                .clone()
                .prop_map(|c| Concept::some(RoleExpr::named("r"), c)),
            inner
                .clone()
                .prop_map(|c| Concept::all(RoleExpr::named("s"), c)),
            (0u32..3).prop_map(|n| Concept::at_least(n, RoleExpr::named("r"))),
            (0u32..3).prop_map(|n| Concept::at_most(n, RoleExpr::named("r").inverse())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Proposition 3: ⊤/⊥ are unit/absorbing for ⊓/⊔ under every
    /// interpretation and every concept.
    #[test]
    fn proposition_3_units(i in interp_strategy(), c in concept_strategy()) {
        prop_assert_eq!(i.eval(&c.clone().and(Concept::Top)), i.eval(&c));
        prop_assert_eq!(i.eval(&c.clone().or(Concept::Top)), i.eval(&Concept::Top));
        prop_assert_eq!(i.eval(&c.clone().and(Concept::Bottom)), i.eval(&Concept::Bottom));
        prop_assert_eq!(i.eval(&c.clone().or(Concept::Bottom)), i.eval(&c));
    }

    /// Proposition 4: double negation, De Morgan, quantifier and
    /// number-restriction dualities hold semantically.
    #[test]
    fn proposition_4_dualities(
        i in interp_strategy(),
        c in concept_strategy(),
        d in concept_strategy(),
        n in 0u32..3,
    ) {
        prop_assert_eq!(i.eval(&c.clone().not().not()), i.eval(&c));
        prop_assert_eq!(
            i.eval(&c.clone().or(d.clone()).not()),
            i.eval(&c.clone().not().and(d.clone().not()))
        );
        prop_assert_eq!(
            i.eval(&c.clone().and(d.clone()).not()),
            i.eval(&c.clone().not().or(d.clone().not()))
        );
        let r = RoleExpr::named("r");
        prop_assert_eq!(
            i.eval(&Concept::all(r.clone(), c.clone()).not()),
            i.eval(&Concept::some(r.clone(), c.clone().not()))
        );
        prop_assert_eq!(
            i.eval(&Concept::some(r.clone(), c.clone()).not()),
            i.eval(&Concept::all(r.clone(), c.clone().not()))
        );
        prop_assert_eq!(
            i.eval(&Concept::at_least(n + 1, r.clone()).not()),
            i.eval(&Concept::at_most(n, r.clone()))
        );
        prop_assert_eq!(
            i.eval(&Concept::at_most(n, r.clone()).not()),
            i.eval(&Concept::at_least(n + 1, r))
        );
    }

    /// NNF is semantics-preserving under the FOUR-valued semantics
    /// (the fact Proposition 4 exists to establish).
    #[test]
    fn nnf_preserves_four_valued_semantics(
        i in interp_strategy(),
        c in concept_strategy(),
    ) {
        prop_assert_eq!(i.eval(&dl::nnf::nnf(&c)), i.eval(&c));
    }

    /// Table 3 kind relationships: strong ⟹ internal on every
    /// interpretation; and when the interpretation is classical on the
    /// relevant names, all three coincide with classical ⊑.
    #[test]
    fn inclusion_kind_lattice(
        i in interp_strategy(),
        c in concept_strategy(),
        d in concept_strategy(),
    ) {
        let strong = i.satisfies_axiom(&Axiom4::ConceptInclusion(
            InclusionKind::Strong, c.clone(), d.clone()));
        let internal = i.satisfies_axiom(&Axiom4::ConceptInclusion(
            InclusionKind::Internal, c.clone(), d.clone()));
        if strong {
            prop_assert!(internal, "strong must imply internal for {c} vs {d}");
        }
    }

    /// Definition 3: the status function tracks the projections.
    #[test]
    fn definition_3_status(i in interp_strategy(), c in concept_strategy()) {
        let p = i.eval(&c);
        for x in 0..N {
            let tv = p.status(&x);
            prop_assert_eq!(tv.has_true_info(), p.pos.contains(&x));
            prop_assert_eq!(tv.has_false_info(), p.neg.contains(&x));
        }
    }
}

/// On classical interpretations the three inclusion kinds coincide
/// (deterministic check on a classical fixture).
#[test]
fn kinds_coincide_on_classical_interpretations() {
    let mut i = Interp4::with_domain_size(4);
    i.set_concept("A", SetPair::new([0, 1], [2, 3]));
    i.set_concept("B", SetPair::new([0, 1, 2], [3]));
    assert!(i.is_classical());
    let (a, b) = (Concept::atomic("A"), Concept::atomic("B"));
    for kind in InclusionKind::ALL {
        assert!(
            i.satisfies_axiom(&Axiom4::ConceptInclusion(kind, a.clone(), b.clone())),
            "{kind} should hold classically"
        );
        assert!(
            !i.satisfies_axiom(&Axiom4::ConceptInclusion(kind, b.clone(), a.clone())),
            "converse {kind} should fail classically"
        );
    }
}

/// Table 1 semantics via the classical fragment: the evaluator on a
/// classical interpretation reproduces the textbook extensions.
#[test]
fn table1_rows_on_classical_fixture() {
    let mut i = Interp4::with_domain_size(3);
    i.set_individual("o0", 0);
    i.set_concept("A", SetPair::new([0, 1], [2]));
    i.set_role(
        "r",
        RolePair {
            pos: BTreeSet::from([(0, 1), (1, 2)]),
            neg: BTreeSet::from([(0, 0), (0, 2), (1, 0), (1, 1), (2, 0), (2, 1), (2, 2)]),
        },
    );
    let r = RoleExpr::named("r");
    // ∃r.A = {0} (0→1∈A); 1→2∉A.
    assert_eq!(
        i.eval(&Concept::some(r.clone(), Concept::atomic("A"))).pos,
        BTreeSet::from([0])
    );
    // ∀r.A = {0, 2} (2 has no successor).
    assert_eq!(
        i.eval(&Concept::all(r.clone(), Concept::atomic("A"))).pos,
        BTreeSet::from([0, 2])
    );
    // ≥1.r = {0,1}; ≤0.r = {2}.
    assert_eq!(
        i.eval(&Concept::at_least(1, r.clone())).pos,
        BTreeSet::from([0, 1])
    );
    assert_eq!(
        i.eval(&Concept::at_most(0, r.clone())).pos,
        BTreeSet::from([2])
    );
    // Inverse: ∃r⁻.⊤ = range(r) = {1,2}.
    assert_eq!(
        i.eval(&Concept::some(r.inverse(), Concept::Top)).pos,
        BTreeSet::from([1, 2])
    );
    // Nominal: {o0} = {0}.
    assert_eq!(
        i.eval(&Concept::one_of([IndividualName::new("o0")])).pos,
        BTreeSet::from([0])
    );
}
