//! Experiments P1/P2: Propositions 1 and 2 of the paper at the
//! propositional level, verified exhaustively and with randomized
//! schemata.

use fourval::consequence::{countermodel, entails4, tautology4};
use fourval::prop::Formula;
use fourval::TruthValue;
use proptest::prelude::*;

fn atom(s: &str) -> Formula {
    Formula::atom(s)
}

/// Random formulas over three atoms with all connectives.
fn formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(atom("p")),
        Just(atom("q")),
        Just(atom("r")),
        Just(Formula::constant(TruthValue::True)),
        Just(Formula::constant(TruthValue::Both)),
    ];
    leaf.prop_recursive(3, 20, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.material_imp(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.internal_imp(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.strong_imp(b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 1 (deduction theorem): Γ,ψ ⊨4 φ iff Γ ⊨4 ψ ⊃ φ, for
    /// random Γ = {γ}, ψ, φ.
    #[test]
    fn proposition_1_deduction_theorem(
        gamma in formula(),
        psi in formula(),
        phi in formula(),
    ) {
        let with_psi = vec![gamma.clone(), psi.clone()];
        let lhs = entails4(&with_psi, &phi);
        let rhs = entails4(
            std::slice::from_ref(&gamma),
            &psi.clone().internal_imp(phi.clone()),
        );
        prop_assert_eq!(lhs, rhs, "ψ={} φ={}", psi, phi);
    }

    /// Proposition 1 (modus ponens): {ψ, ψ⊃φ} ⊨4 φ.
    #[test]
    fn proposition_1_modus_ponens(psi in formula(), phi in formula()) {
        let imp = psi.clone().internal_imp(phi.clone());
        prop_assert!(entails4(&[psi, imp], &phi));
    }

    /// Proposition 2: ψ↔φ ⊨4 Θ(ψ)↔Θ(φ) for a random context Θ built by
    /// substituting into a random formula.
    #[test]
    fn proposition_2_congruence(theta in formula(), psi in formula(), phi in formula()) {
        let iff = psi.clone().strong_iff(phi.clone());
        let lhs = theta.substitute("p", &psi);
        let rhs = theta.substitute("p", &phi);
        prop_assert!(
            entails4(&[iff], &lhs.strong_iff(rhs)),
            "congruence failed for Θ={} ψ={} φ={}", theta, psi, phi
        );
    }

    /// Strong implication entails internal implication pointwise.
    #[test]
    fn strong_implies_internal(psi in formula(), phi in formula()) {
        let strong = psi.clone().strong_imp(phi.clone());
        let internal = psi.internal_imp(phi);
        prop_assert!(entails4(&[strong], &internal));
    }

    /// The signed reduction (→ classical SAT via DPLL) agrees with
    /// four-valued model enumeration on random consequence questions —
    /// the propositional twin of Lemma 5 / Theorem 6.
    #[test]
    fn signed_reduction_matches_enumeration(
        gamma in formula(),
        delta in formula(),
        phi in formula(),
    ) {
        let premises = vec![gamma, delta];
        prop_assert_eq!(
            fourval::signed::entails4_signed(&premises, &phi),
            entails4(&premises, &phi),
            "signed reduction disagrees on φ={}", phi
        );
    }
}

/// The paper's two explicit counterexamples, verbatim.
#[test]
fn proposition_1_counterexamples() {
    let (psi, phi) = (atom("p"), atom("q"));
    // {ψ, ¬ψ, ¬φ} ⊨4 ψ↦φ but ⊭4 φ.
    let gamma = vec![psi.clone(), psi.clone().not(), phi.clone().not()];
    assert!(entails4(&gamma, &psi.clone().material_imp(phi.clone())));
    assert!(!entails4(&gamma, &phi));
    let cm = countermodel(&gamma, &phi).expect("countermodel exists");
    assert_eq!(cm.get("p"), TruthValue::Both);
    // {ψ, φ, ¬φ} ⊨4 φ, but {φ, ¬φ} ⊭4 ψ→φ.
    assert!(entails4(
        &[psi.clone(), phi.clone(), phi.clone().not()],
        &phi
    ));
    assert!(!entails4(
        &[phi.clone(), phi.clone().not()],
        &psi.strong_imp(phi)
    ));
}

/// The designated-set discipline: no four-valued explosion, and the
/// classical tautology landscape shifts exactly as Belnap predicts.
#[test]
fn designated_set_landscape() {
    let p = atom("p");
    let q = atom("q");
    // Ex falso fails.
    assert!(!entails4(&[p.clone(), p.clone().not()], &q));
    // Excluded middle is not a tautology; ⊃-reflexivity is.
    assert!(!tautology4(&p.clone().or(p.clone().not())));
    assert!(tautology4(&p.clone().internal_imp(p.clone())));
    // Weakening holds.
    assert!(entails4(std::slice::from_ref(&p), &p.clone().or(q.clone())));
    // Conjunction behaves classically on the designated set.
    assert!(entails4(&[p.clone(), q.clone()], &p.and(q)));
}
