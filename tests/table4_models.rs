//! Experiment T4: the Table 4 reproduction as an integration test — the
//! enumerated models of Example 4 must match the paper's nine models
//! M1–M9 row for row, and the reasoner's answers must be consistent with
//! the model table.

use dl::{Concept, IndividualName};
use fourmodels::table4::{example4_config, example4_kb, table4_grouped, table4_rows};
use fourval::TruthValue::{Both, False, Neither, True};
use shoin4::Reasoner4;

#[test]
fn nine_models_exactly() {
    assert_eq!(table4_rows().len(), 9);
}

#[test]
fn paper_grouping_reproduced() {
    let groups = table4_grouped();
    let labels: Vec<&str> = groups.iter().map(|g| g.label).collect();
    assert_eq!(labels, ["M1-M4", "M5-M6", "M7-M8", "M9"]);
    let counts: Vec<usize> = groups.iter().map(|g| g.row_count).collect();
    assert_eq!(counts, [4, 2, 2, 1]);
}

#[test]
fn entailment_is_the_intersection_of_the_model_rows() {
    // What all nine rows agree on is exactly what the reasoner entails.
    let rows = table4_rows();
    let r = Reasoner4::new(&example4_kb());
    let smith = IndividualName::new("smith");

    // Parent(smith): positive info in every row (values t or ⊤) but
    // negative info NOT in every row.
    assert!(rows.iter().all(|row| row.parent.has_true_info()));
    assert!(!rows.iter().all(|row| row.parent.has_false_info()));
    let parent = r.query(&smith, &Concept::atomic("Parent")).unwrap();
    assert_eq!(parent, True);

    // Married(smith): negative info in every row; positive only in some.
    assert!(rows.iter().all(|row| row.married.has_false_info()));
    assert!(!rows.iter().all(|row| row.married.has_true_info()));
    let married = r.query(&smith, &Concept::atomic("Married")).unwrap();
    assert_eq!(married, False);
}

#[test]
fn kate_remains_unknown() {
    // The table is about smith; kate carries no concept information.
    let r = Reasoner4::new(&example4_kb());
    let kate = IndividualName::new("kate");
    for concept in ["Parent", "Married"] {
        assert_eq!(
            r.query(&kate, &Concept::atomic(concept)).unwrap(),
            Neither,
            "kate should be ⊥ on {concept}"
        );
    }
}

#[test]
fn truth_value_inventory_matches_paper() {
    // Across all nine rows, hasChild(s,k) takes only {t, ⊤}; Married(s)
    // only {⊤, f}; ≥1.hasChild(s) only {t, ⊤}.
    let rows = table4_rows();
    for row in &rows {
        assert!(matches!(row.has_child, True | Both), "{row:?}");
        assert!(matches!(row.married, Both | False), "{row:?}");
        assert!(matches!(row.at_least_one_child, True | Both), "{row:?}");
        assert!(matches!(row.parent, True | Both), "{row:?}");
    }
    // The ⊤-heavy rows exist (M7–M9) and the clean rows exist (M1).
    assert!(rows.iter().any(|r| r.at_least_one_child == Both));
    assert!(rows.iter().any(|r| r.has_child == True && r.parent == True));
}

#[test]
fn nonreflexivity_note_is_honoured() {
    // The enumeration bars hasChild(smith, smith) from proj⁺ — verify by
    // checking every model.
    use fourmodels::ModelIter;
    let kb = example4_kb();
    let cfg = example4_config();
    let smith_elem = 1u32; // individuals pinned in sorted order: kate=0, smith=1
    for m in ModelIter::new(&kb, &cfg).filter(|m| m.satisfies(&kb)) {
        let r = m.role(&dl::RoleName::new("hasChild"));
        assert!(
            !r.pos.contains(&(smith_elem, smith_elem)),
            "reflexive positive hasChild pair must be barred"
        );
    }
}
