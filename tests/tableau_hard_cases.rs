//! Hard-case battery for the SHOIN(D) tableau: the constructor
//! interactions that historically break DL reasoners — inverse roles with
//! number restrictions, nominals with cardinalities (the `NN`-rule
//! territory), transitivity with hierarchies, and classic satisfiability
//! puzzles in the style of the DL'98 test suites.

use dl::parser::{parse_concept, parse_kb};
use dl::Concept;
use tableau::{Config, Reasoner};

fn consistent(src: &str) -> bool {
    Reasoner::new(&parse_kb(src).unwrap())
        .is_consistent()
        .expect("within limits")
}

fn concept_sat(kb_src: &str, concept_src: &str) -> bool {
    let kb = parse_kb(kb_src).unwrap();
    let c = parse_concept(concept_src).unwrap();
    Reasoner::new(&kb)
        .is_concept_satisfiable(&c)
        .expect("within limits")
}

#[test]
fn propositional_puzzles() {
    // (A ⊔ B) ⊓ (A ⊔ ¬B) ⊓ (¬A ⊔ B) ⊓ (¬A ⊔ ¬B) — unsat.
    assert!(!concept_sat(
        "",
        "(A or B) and (A or not B) and (not A or B) and (not A or not B)"
    ));
    // Drop one conjunct — sat.
    assert!(concept_sat(
        "",
        "(A or B) and (A or not B) and (not A or B)"
    ));
}

#[test]
fn modal_interaction() {
    // ∃r.A ⊓ ∃r.B ⊓ ¬∃r.(A ⊓ B) is satisfiable (two successors)…
    assert!(concept_sat(
        "",
        "(r some A) and (r some B) and not (r some (A and B))"
    ));
    // …but adding ≤1.r forces the merge and a clash.
    assert!(!concept_sat(
        "",
        "(r some A) and (r some B) and not (r some (A and B)) and r max 1"
    ));
}

#[test]
fn exists_forall_conflict() {
    assert!(!concept_sat("", "(r some A) and (r only not A)"));
    assert!(concept_sat("", "(r some A) and (r only A)"));
    // Nested depth-3 conflict.
    assert!(!concept_sat(
        "",
        "(r some (s some (t some A))) and (r only (s only (t only not A)))"
    ));
}

#[test]
fn inverse_role_round_trip() {
    // C ⊓ ∀r.(∃r⁻.¬C) is unsatisfiable when C has an r-successor.
    assert!(!concept_sat(
        "",
        "C and (r some Thing) and (r only (inverse r only not C))"
    ));
    // Without the successor it is satisfiable.
    assert!(concept_sat("", "C and (r only (inverse r only not C))"));
}

#[test]
fn number_restrictions_with_hierarchy() {
    // son ⊑ child; 2 distinct sons + ≤1 child: unsat.
    assert!(!consistent(
        "hasSon SubRoleOf hasChild
         hasSon(a, b)
         hasSon(a, c)
         b != c
         a : hasChild max 1"
    ));
    // ≥3 sons but ≤2 children: unsat via subrole counting.
    assert!(!concept_sat(
        "hasSon SubRoleOf hasChild",
        "(hasSon min 3) and (hasChild max 2)"
    ));
    // ≥2 sons, ≤2 children: fine.
    assert!(concept_sat(
        "hasSon SubRoleOf hasChild",
        "(hasSon min 2) and (hasChild max 2)"
    ));
}

#[test]
fn inverse_number_interaction() {
    // a has 2 distinct children; each child's parent-count ≤ 1 is fine;
    // but if the two children are the same node forced by the parent's
    // ≤1-child cap, distinctness clashes.
    assert!(consistent(
        "hasChild(a, b)
         hasChild(a, c)
         b : inverse hasChild max 1
         c : inverse hasChild max 1"
    ));
    assert!(!consistent(
        "hasChild(a, b)
         hasChild(a, c)
         b != c
         a : hasChild max 1"
    ));
}

#[test]
fn transitivity_with_forall_propagation() {
    // Trans(r), ∀r.C at the root, chain of r-edges: C everywhere below —
    // and a ¬C at depth 3 clashes.
    assert!(!consistent(
        "Transitive(r)
         r(a, b)
         r(b, c)
         r(c, d)
         a : r only C
         d : not C"
    ));
    // Without transitivity, only b is constrained: consistent.
    assert!(consistent(
        "r(a, b)
         r(b, c)
         r(c, d)
         a : r only C
         d : not C"
    ));
}

#[test]
fn transitive_subrole_propagation() {
    // Trans(p), p ⊑ r: ∀r.C must propagate along p-chains (the ∀₊ rule).
    assert!(!consistent(
        "Transitive(p)
         p SubRoleOf r
         p(a, b)
         p(b, c)
         a : r only C
         c : not C"
    ));
}

#[test]
fn nominal_merging_cascades() {
    // x = {y} and y = {z} chains force a three-way merge with label
    // union; a contradiction anywhere in the chain surfaces.
    assert!(!consistent(
        "x : {y}
         y : {z}
         x : A
         z : not A"
    ));
    assert!(consistent(
        "x : {y}
         y : {z}
         x : A
         z : A"
    ));
}

#[test]
fn nominal_cardinality_upper_bound() {
    // {o} has at most one element: two distinct individuals both equal to
    // {o} is a clash.
    assert!(!consistent(
        "a : {o}
         b : {o}
         a != b"
    ));
    // Without distinctness they merge happily.
    assert!(consistent(
        "a : {o}
         b : {o}"
    ));
}

#[test]
fn nominals_make_domains_global() {
    // ⊤ ⊑ {o}: a one-element universe. Asserting two distinct
    // individuals clashes.
    assert!(!consistent(
        "Thing SubClassOf {o}
         a != b"
    ));
    assert!(consistent("Thing SubClassOf {o}\na : A"));
}

#[test]
fn nn_rule_territory() {
    // A nominal with a bounded role from blockable predecessors:
    // ⊤ ⊑ ∃r.{o} makes every element r-point to o; ≤2.r⁻ at o bounds the
    // universe at 2 elements. Three distinct individuals: unsat.
    assert!(!consistent(
        "Thing SubClassOf r some {o}
         o : inverse r max 2
         a != b
         a != c
         b != c"
    ));
    // Two distinct individuals: satisfiable (o can be one of them).
    assert!(consistent(
        "Thing SubClassOf r some {o}
         o : inverse r max 2
         a != b"
    ));
}

#[test]
fn blocking_produces_infinite_models_safely() {
    // Classic: an infinite-model-only TBox must be satisfiable and fast.
    assert!(consistent(
        "Person SubClassOf hasParent some Person
         Person SubClassOf hasParent only Person
         p : Person"
    ));
    // A poisoned variant where the chain must eventually clash: every
    // Person has a parent, parents are Persons, and Persons are not
    // allowed: unsat via the first step.
    assert!(!consistent(
        "Person SubClassOf hasParent some Person
         Person SubClassOf not Person
         p : Person"
    ));
}

#[test]
fn inverse_blocking_interaction() {
    // ∃r.(∀r⁻.A) pattern under a cyclic TBox — pairwise blocking must not
    // block prematurely (subset blocking would).
    let kb = parse_kb(
        "A SubClassOf r some B
         B SubClassOf r some A
         B SubClassOf inverse r only C
         x : A",
    )
    .unwrap();
    let mut pairwise = Reasoner::new(&kb);
    assert!(pairwise.is_consistent().expect("within limits"));
    // And x must be C (x is an r-predecessor of a B).
    assert!(pairwise
        .is_instance_of(&dl::IndividualName::new("x"), &Concept::atomic("C"))
        .expect("within limits"));
}

#[test]
fn datatype_hard_cases() {
    // Bounded integer range exhausted by distinctness.
    assert!(!consistent(
        "DataRole: score
         a : score min 4
         a : score only integer[1..3]"
    ));
    assert!(consistent(
        "DataRole: score
         a : score min 3
         a : score only integer[1..3]"
    ));
    // Boolean exhaustion with a cap from above.
    assert!(!consistent(
        "DataRole: flag
         a : flag min 3
         a : flag only boolean"
    ));
    // Mixed: a specific value excluded by a complement range.
    assert!(!consistent(
        "DataRole: v
         v(a, 5)
         a : v only not({5})"
    ));
}

#[test]
fn global_tbox_with_at_most_zero() {
    // ⊤ ⊑ ≤0.r forbids all r-edges.
    assert!(!consistent(
        "Thing SubClassOf r max 0
         r(a, b)"
    ));
    assert!(consistent("Thing SubClassOf r max 0\na : A"));
}

#[test]
fn resource_limits_do_not_misreport() {
    // With a tiny node budget the reasoner must error, not guess.
    let kb = parse_kb(
        "A SubClassOf r some A
         x : A",
    )
    .unwrap();
    let mut r = Reasoner::with_config(
        &kb,
        Config {
            max_nodes: 1,
            ..Config::default()
        },
    );
    assert!(r.is_consistent().is_err());
}

#[test]
fn deep_taxonomy_instance_retrieval() {
    // depth-6 chain: instance checks climb the whole chain.
    let mut src = String::new();
    for i in 0..6 {
        src.push_str(&format!("L{} SubClassOf L{}\n", i + 1, i));
    }
    src.push_str("x : L6\n");
    let kb = parse_kb(&src).unwrap();
    let mut r = Reasoner::new(&kb);
    assert!(r
        .is_instance_of(&dl::IndividualName::new("x"), &Concept::atomic("L0"))
        .expect("within limits"));
    assert!(!r
        .is_instance_of(&dl::IndividualName::new("x"), &Concept::atomic("M"))
        .expect("within limits"));
}

#[test]
fn merge_cascade_stress() {
    // A chain of ≤1-merges: a's children all collapse into one node that
    // accumulates every label.
    assert!(!consistent(
        "hasChild(a, b1)
         hasChild(a, b2)
         hasChild(a, b3)
         a : hasChild max 1
         b1 : A
         b2 : B
         b3 : not A"
    ));
    assert!(consistent(
        "hasChild(a, b1)
         hasChild(a, b2)
         hasChild(a, b3)
         a : hasChild max 1
         b1 : A
         b2 : B
         b3 : A"
    ));
}
