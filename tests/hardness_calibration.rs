//! Calibration evidence for the static hardness analyzer
//! (`shoin4::hardness`): the predicted score is only useful for
//! cost-aware admission if it *ranks* modules the way real search cost
//! does, and only trustworthy if it is a pure function of the module.
//!
//! * **Rank correlation** — over the ≥ 100-KB [`ontogen::hardness_mix`]
//!   corpus, Spearman's ρ between the predicted score and the measured
//!   tableau cost (`rule_applications + branch_depth_peak` of the
//!   probe query, under the same default config the serving layer
//!   uses) must clear 0.5. This is the machine-checked form of the
//!   "calibrated against ontogen corpora" claim in the analyzer docs.
//! * **Invariance laws** (randomized): the score is stable under axiom
//!   reordering, and analyzing a module in situ gives exactly the
//!   score of the module's axioms extracted into a KB of their own —
//!   the property that makes the serving layer's structural-key score
//!   cache sound.

use ontogen::hardness_mix::{hardness_mix, HardnessMixParams, HardnessShape};
use proptest::prelude::*;
use shoin4::hardness::analyze_kb;
use shoin4::{KnowledgeBase4, Reasoner4};
use tableau::Config;

/// Average-rank (ties-aware) Spearman ρ.
fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    fn ranks(v: &[f64]) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
        let mut out = vec![0.0; v.len()];
        let mut i = 0;
        while i < idx.len() {
            let mut j = i;
            while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
                j += 1;
            }
            let rank = (i + j) as f64 / 2.0 + 1.0;
            for &k in &idx[i..=j] {
                out[k] = rank;
            }
            i = j + 1;
        }
        out
    }
    let (rx, ry) = (ranks(xs), ranks(ys));
    let n = xs.len() as f64;
    let mean = (n + 1.0) / 2.0;
    let (mut num, mut dx, mut dy) = (0.0, 0.0, 0.0);
    for (a, b) in rx.iter().zip(&ry) {
        num += (a - mean) * (b - mean);
        dx += (a - mean).powi(2);
        dy += (b - mean).powi(2);
    }
    num / (dx.sqrt() * dy.sqrt())
}

#[test]
fn predicted_score_rank_correlates_with_measured_search_cost() {
    let corpus = hardness_mix(&HardnessMixParams::default());
    assert!(
        corpus.len() >= 100,
        "the calibration corpus promises ≥ 100 KBs"
    );
    let mut predicted = Vec::with_capacity(corpus.len());
    let mut measured = Vec::with_capacity(corpus.len());
    for l in &corpus {
        predicted.push(analyze_kb(&l.kb).max_score());
        // Measured under the serving layer's default config (Horn fast
        // path on): cheap shapes saturate with next to no tableau work,
        // hard shapes pay for their branching/expansion — exactly the
        // asymmetry the lanes bet on.
        let r = Reasoner4::with_config(&l.kb, Config::default());
        let (ind, goal) = &l.probe;
        r.query(ind, goal).expect("probe within limits");
        let stats = r.stats();
        measured.push((stats.rule_applications + stats.branch_depth_peak) as f64);
    }
    let rho = spearman(&predicted, &measured);
    assert!(
        rho >= 0.5,
        "predicted hardness no longer ranks measured cost: ρ = {rho:.3}"
    );

    // The prediction separates the planted shapes in the aggregate:
    // every Horn chain must score below every ∃-tower and below every
    // disjunctive KB of nontrivial size.
    let max_horn = corpus
        .iter()
        .zip(&predicted)
        .filter(|(l, _)| l.shape == HardnessShape::HornChain)
        .map(|(_, &s)| s)
        .fold(f64::MIN, f64::max);
    for (l, &score) in corpus.iter().zip(&predicted) {
        if l.shape.expect_residue() {
            assert!(
                score > max_horn,
                "{}: hard shape scored {score:.1} ≤ best Horn {max_horn:.1}",
                l.id
            );
        }
    }
}

/// `splitmix64` — a tiny seeded generator for the Fisher–Yates shuffles
/// below (no RNG dependency in this test crate).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn shuffled(kb: &KnowledgeBase4, seed: u64) -> KnowledgeBase4 {
    let mut axioms = kb.axioms().to_vec();
    let mut state = seed;
    for i in (1..axioms.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        axioms.swap(i, j);
    }
    KnowledgeBase4::from_axioms(axioms)
}

/// Per-module scores, order-independent.
fn score_multiset(kb: &KnowledgeBase4) -> Vec<f64> {
    let mut scores: Vec<f64> = analyze_kb(kb)
        .modules
        .iter()
        .map(|m| m.report.score)
        .collect();
    scores.sort_by(f64::total_cmp);
    scores
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Law 1: the analysis is a function of the axiom *set* — any
    /// reordering yields the same per-module score multiset.
    #[test]
    fn scores_are_stable_under_axiom_reorder(pick in 0usize..102, seed in any::<u64>()) {
        let corpus = hardness_mix(&HardnessMixParams::default());
        let kb = &corpus[pick % corpus.len()].kb;
        prop_assert_eq!(score_multiset(kb), score_multiset(&shuffled(kb, seed)));
    }

    /// Law 2: a module analyzed in situ scores exactly what its axioms
    /// score extracted into a KB of their own — the soundness condition
    /// for caching scores by structural key across tenants.
    #[test]
    fn in_situ_module_score_equals_extracted_score(picks in proptest::collection::vec(0usize..102, 2..4)) {
        let corpus = hardness_mix(&HardnessMixParams::default());
        // Concatenate several islands into one KB; each stays its own
        // dataflow module (the generator namespaces them).
        let mut axioms = Vec::new();
        for &p in &picks {
            axioms.extend(corpus[p % corpus.len()].kb.axioms().iter().cloned());
        }
        let combined = KnowledgeBase4::from_axioms(axioms);
        let analysis = analyze_kb(&combined);
        for m in &analysis.modules {
            let alone = KnowledgeBase4::from_axioms(
                m.axioms
                    .iter()
                    .map(|&i| combined.axioms()[i].clone())
                    .collect::<Vec<_>>(),
            );
            let alone_analysis = analyze_kb(&alone);
            prop_assert_eq!(alone_analysis.modules.len(), 1);
            let re = &alone_analysis.modules[0].report;
            prop_assert_eq!(re.cost, m.report.cost);
            prop_assert_eq!(re.score, m.report.score);
        }
    }
}
