//! Role-level four-valued semantics, end to end: the three role-inclusion
//! kinds (Table 3, middle block), negative role assertions, and inverse
//! roles — validated both through the reasoner (transformation + tableau)
//! and against the brute-force enumeration oracle.

use dl::RoleExpr;
use fourmodels::enumerate::{EnumConfig, ModelIter};
use fourval::TruthValue;
use shoin4::{parse_kb4, Axiom4, InclusionKind, KnowledgeBase4, Reasoner4};

fn role(s: &str) -> RoleExpr {
    RoleExpr::named(s)
}

/// Brute-force: does every model over the configured domain satisfy the
/// axiom?
fn oracle_entails(kb: &KnowledgeBase4, ax: &Axiom4) -> bool {
    let mut cfg = EnumConfig::for_kb(kb);
    cfg.max_interpretations = 40_000_000;
    ModelIter::new(kb, &cfg)
        .filter(|m| m.satisfies(kb))
        .all(|m| m.satisfies_axiom(ax))
}

#[test]
fn internal_role_inclusion_moves_positive_info_only() {
    let kb = parse_kb4(
        "r SubRoleOf s
         r(a, b)
         not r(a, c)",
    )
    .unwrap();
    let reasoner = Reasoner4::new(&kb);
    // Positive info flows r → s.
    assert_eq!(
        reasoner
            .query_role(&dl::RoleName::new("s"), &"a".into(), &"b".into())
            .unwrap(),
        TruthValue::True
    );
    // Negative info about r does NOT flow to s under internal inclusion.
    assert!(!reasoner
        .has_negative_role_info(&dl::RoleName::new("s"), &"a".into(), &"c".into())
        .unwrap());
}

#[test]
fn strong_role_inclusion_contraposes_negative_info() {
    let kb = parse_kb4(
        "r StrongSubRoleOf s
         not s(a, b)",
    )
    .unwrap();
    let reasoner = Reasoner4::new(&kb);
    // proj⁻(s) ⊆ proj⁻(r): negative info flows backwards.
    assert!(reasoner
        .has_negative_role_info(&dl::RoleName::new("r"), &"a".into(), &"b".into())
        .unwrap());
    // And not under mere internal inclusion.
    let kb = parse_kb4(
        "r SubRoleOf s
         not s(a, b)",
    )
    .unwrap();
    let reasoner = Reasoner4::new(&kb);
    assert!(!reasoner
        .has_negative_role_info(&dl::RoleName::new("r"), &"a".into(), &"b".into())
        .unwrap());
}

#[test]
fn role_inclusion_kind_entailments_match_oracle() {
    // Premise: r ⊏ s (internal). Which inclusion kinds over (r, s) are
    // then four-valued entailed? Check reasoner vs oracle for all kinds
    // and both directions.
    let kb = parse_kb4(
        "r SubRoleOf s
         r(a, b)",
    )
    .unwrap();
    let reasoner = Reasoner4::new(&kb);
    for kind in InclusionKind::ALL {
        for (sub, sup) in [("r", "s"), ("s", "r")] {
            let ax = Axiom4::RoleInclusion(kind, role(sub), role(sup));
            let fast = reasoner.entails(&ax).unwrap();
            let brute = oracle_entails(&kb, &ax);
            assert_eq!(
                fast, brute,
                "mismatch for {sub} {kind} {sup} (reasoner={fast}, oracle={brute})"
            );
        }
    }
}

#[test]
fn strong_role_premises_entail_internal_conclusions() {
    let kb = parse_kb4("r StrongSubRoleOf s").unwrap();
    let reasoner = Reasoner4::new(&kb);
    assert!(reasoner
        .entails(&Axiom4::RoleInclusion(
            InclusionKind::Internal,
            role("r"),
            role("s"),
        ))
        .unwrap());
    assert!(reasoner
        .entails(&Axiom4::RoleInclusion(
            InclusionKind::Strong,
            role("r"),
            role("s"),
        ))
        .unwrap());
    // Internal premises do not entail strong conclusions.
    let kb = parse_kb4("r SubRoleOf s").unwrap();
    let reasoner = Reasoner4::new(&kb);
    assert!(!reasoner
        .entails(&Axiom4::RoleInclusion(
            InclusionKind::Strong,
            role("r"),
            role("s"),
        ))
        .unwrap());
}

#[test]
fn negative_role_assertions_are_localized() {
    // ¬r(a,b) coexists with r(a,b): role-level ⊤, nothing explodes.
    let kb = parse_kb4(
        "r(a, b)
         not r(a, b)
         r(c, d)",
    )
    .unwrap();
    let reasoner = Reasoner4::new(&kb);
    assert!(reasoner.is_satisfiable().unwrap());
    assert_eq!(
        reasoner
            .query_role(&dl::RoleName::new("r"), &"a".into(), &"b".into())
            .unwrap(),
        TruthValue::Both
    );
    // The clean pair keeps its clean answer.
    assert_eq!(
        reasoner
            .query_role(&dl::RoleName::new("r"), &"c".into(), &"d".into())
            .unwrap(),
        TruthValue::True
    );
}

#[test]
fn negative_role_info_blocks_exists_inference_only_partially() {
    // ∃r.⊤ ⊏ HasSucc with both r(a,b) and ¬r(a,b): the positive half
    // still drives the inclusion (a ∈ proj⁺(∃r.⊤)).
    let kb = parse_kb4(
        "r some Thing SubClassOf HasSucc
         r(a, b)
         not r(a, b)",
    )
    .unwrap();
    let reasoner = Reasoner4::new(&kb);
    assert!(reasoner
        .has_positive_info(&"a".into(), &dl::Concept::atomic("HasSucc"))
        .unwrap());
}

#[test]
fn inverse_roles_in_negative_assertions() {
    // ¬r(a,b) gives negative info for r⁻(b,a) semantically: check via
    // the enumeration oracle on the satisfaction level.
    let kb = parse_kb4("not r(a, b)").unwrap();
    let cfg = EnumConfig::for_kb(&kb);
    for m in ModelIter::new(&kb, &cfg).filter(|m| m.satisfies(&kb)) {
        let a = m.individual(&dl::IndividualName::new("a")).unwrap();
        let b = m.individual(&dl::IndividualName::new("b")).unwrap();
        assert!(m.role_neg(&role("r")).contains(&(a, b)));
        assert!(m.role_neg(&role("r").inverse()).contains(&(b, a)));
    }
}

#[test]
fn material_role_inclusion_semantics_on_models() {
    // Material role inclusion r ↦ s: Δ×Δ ∖ proj⁻(r) ⊆ proj⁺(s). Verify
    // the enumerator honours it: in every model, any pair without
    // negative r-info has positive s-info.
    let kb4 = KnowledgeBase4::from_axioms([
        Axiom4::RoleInclusion(InclusionKind::Material, role("r"), role("s")),
        Axiom4::RoleAssertion(
            dl::RoleName::new("r"),
            dl::IndividualName::new("a"),
            dl::IndividualName::new("b"),
        ),
    ]);
    let cfg = EnumConfig::for_kb(&kb4);
    let mut count = 0;
    for m in ModelIter::new(&kb4, &cfg).filter(|m| m.satisfies(&kb4)) {
        count += 1;
        let rn = m.role_neg(&role("r"));
        let sp = m.role_pos(&role("s"));
        for x in m.domain().iter().copied() {
            for y in m.domain().iter().copied() {
                if !rn.contains(&(x, y)) {
                    assert!(sp.contains(&(x, y)));
                }
            }
        }
    }
    assert!(count > 0, "material role inclusion must be satisfiable");
}
