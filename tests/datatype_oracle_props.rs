//! Property tests for the concrete-domain machinery: the candidate
//! universe must be complete (if a conjunction of ranges is satisfiable
//! at all, a candidate witnesses it; if it admits ≥ k values, k witnesses
//! are found), validated against brute-force scans over a wide value
//! window.

use dl::datatype::{BuiltinDatatype, DataRange, DataValue};
use proptest::prelude::*;

fn value() -> impl Strategy<Value = DataValue> {
    prop_oneof![
        (-6i64..6).prop_map(DataValue::Integer),
        any::<bool>().prop_map(DataValue::Boolean),
        "[ab]{1,2}".prop_map(DataValue::Str),
    ]
}

fn range() -> impl Strategy<Value = DataRange> {
    let base = prop_oneof![
        Just(DataRange::Datatype(BuiltinDatatype::Integer)),
        Just(DataRange::Datatype(BuiltinDatatype::Boolean)),
        Just(DataRange::Datatype(BuiltinDatatype::Str)),
        proptest::collection::vec(value(), 0..4).prop_map(DataRange::one_of),
        (-6i64..6, -6i64..6).prop_map(|(a, b)| DataRange::IntRange {
            min: Some(a.min(b)),
            max: Some(a.max(b)),
        }),
        (-6i64..6).prop_map(|a| DataRange::IntRange {
            min: Some(a),
            max: None,
        }),
        (-6i64..6).prop_map(|b| DataRange::IntRange {
            min: None,
            max: Some(b),
        }),
    ];
    // One optional complement layer (complements collapse, so one is
    // representative).
    prop_oneof![base.clone(), base.prop_map(|r| r.complement())]
}

/// A wide brute-force window: all integers in [-20, 20], both booleans,
/// the strings of length ≤ 2 over {a, b}, plus an exotic string.
fn window() -> Vec<DataValue> {
    let mut w: Vec<DataValue> = (-20i64..=20).map(DataValue::Integer).collect();
    w.push(DataValue::Boolean(true));
    w.push(DataValue::Boolean(false));
    for s in ["a", "b", "aa", "ab", "ba", "bb", "zzz_exotic"] {
        w.push(DataValue::Str(s.into()));
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Satisfiability of a conjunction agrees with the brute-force window
    /// scan. (The window is finite, so it can only under-approximate
    /// satisfiability; the oracle must find a witness whenever the window
    /// does.)
    #[test]
    fn oracle_at_least_as_complete_as_window(
        ranges in proptest::collection::vec(range(), 1..4)
    ) {
        let window_sat = window().iter().any(|v| ranges.iter().all(|r| r.contains(v)));
        let oracle_sat = DataRange::conjunction_satisfiable(&ranges);
        if window_sat {
            prop_assert!(oracle_sat, "window found a witness, oracle did not: {ranges:?}");
        }
    }

    /// Every witness returned actually satisfies the conjunction, and
    /// witnesses are pairwise distinct.
    #[test]
    fn witnesses_are_sound_and_distinct(
        ranges in proptest::collection::vec(range(), 1..4),
        k in 1usize..5,
    ) {
        let ws = DataRange::witnesses(&ranges, k);
        prop_assert!(ws.len() <= k);
        for w in &ws {
            for r in &ranges {
                prop_assert!(r.contains(w), "witness {w} fails {r}");
            }
        }
        let set: std::collections::BTreeSet<_> = ws.iter().collect();
        prop_assert_eq!(set.len(), ws.len(), "duplicated witnesses");
    }

    /// k-witness completeness against the window: if the window contains
    /// ≥ k admissible values, the oracle returns k witnesses.
    #[test]
    fn k_witness_completeness(
        ranges in proptest::collection::vec(range(), 1..4),
        k in 1usize..4,
    ) {
        let in_window = window()
            .into_iter()
            .filter(|v| ranges.iter().all(|r| r.contains(v)))
            .count();
        let ws = DataRange::witnesses(&ranges, k);
        if in_window >= k {
            prop_assert_eq!(
                ws.len(), k,
                "window admits {} values but only {} witnesses returned for {:?}",
                in_window, ws.len(), ranges
            );
        }
    }

    /// Complement is an involution and flips membership pointwise.
    #[test]
    fn complement_involution(r in range(), v in value()) {
        prop_assert_eq!(r.complement().complement(), r.clone());
        prop_assert_eq!(r.complement().contains(&v), !r.contains(&v));
    }
}
