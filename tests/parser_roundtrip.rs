//! Parser/printer round-trip properties: `parse(print(kb)) == kb` for
//! generated knowledge bases, and `parse(print(c)) == c` for random
//! concepts — the guarantee that the concrete syntax is a faithful
//! serialization of the abstract syntax.

use dl::parser::{parse_concept, parse_kb};
use dl::printer::print_kb;
use dl::{Concept, IndividualName, RoleExpr};
use ontogen::random::{random_kb, RandomParams};
use ontogen::taxonomy::{taxonomy_kb, TaxonomyParams};
use proptest::prelude::*;

#[test]
fn random_kbs_round_trip() {
    for seed in 0..25u64 {
        let kb = random_kb(&RandomParams {
            seed,
            n_tbox: 15,
            n_abox: 15,
            max_depth: 3,
            ..RandomParams::default()
        });
        let printed = print_kb(&kb);
        let reparsed = parse_kb(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{printed}"));
        assert_eq!(reparsed, kb, "seed {seed} round trip failed:\n{printed}");
    }
}

#[test]
fn taxonomies_round_trip() {
    let kb = taxonomy_kb(&TaxonomyParams::default());
    let printed = print_kb(&kb);
    assert_eq!(parse_kb(&printed).unwrap(), kb);
}

#[test]
fn transformed_kbs_round_trip() {
    // The induced KB mints `A+`/`A-`/`r=`-style names; those must stay
    // parseable so K̄ can be exported to other tools.
    let kb4 = shoin4::parse_kb4(
        "Bird and (hasWing some Wing) MaterialSubClassOf Fly
         Penguin StrongSubClassOf Bird
         r SubRoleOf s
         tweety : Penguin
         hasWing(tweety, w)
         not r(tweety, w)",
    )
    .unwrap();
    let induced = shoin4::transform_kb(&kb4);
    let printed = print_kb(&induced);
    let reparsed =
        parse_kb(&printed).unwrap_or_else(|e| panic!("induced KB reparse failed: {e}\n{printed}"));
    assert_eq!(reparsed, induced, "induced KB round trip:\n{printed}");
}

fn concept_strategy() -> impl Strategy<Value = Concept> {
    let leaf = prop_oneof![
        Just(Concept::atomic("Alpha")),
        Just(Concept::atomic("Beta")),
        Just(Concept::Top),
        Just(Concept::Bottom),
        Just(Concept::one_of([
            IndividualName::new("a"),
            IndividualName::new("b")
        ])),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.and(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.or(r)),
            inner.clone().prop_map(|c| c.not()),
            inner
                .clone()
                .prop_map(|c| Concept::some(RoleExpr::named("rel"), c)),
            inner
                .clone()
                .prop_map(|c| Concept::all(RoleExpr::named("rel").inverse(), c)),
            (0u32..5).prop_map(|n| Concept::at_least(n, RoleExpr::named("rel"))),
            (0u32..5).prop_map(|n| Concept::at_most(n, RoleExpr::named("rel"))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn concepts_round_trip(c in concept_strategy()) {
        let printed = c.to_string();
        let reparsed = parse_concept(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e} in `{printed}`")))?;
        prop_assert_eq!(reparsed, c, "printed: {}", printed);
    }

    /// NNF also round-trips (it introduces negated nominals, number
    /// duals, etc.).
    #[test]
    fn nnf_round_trips(c in concept_strategy()) {
        let n = dl::nnf::nnf(&c);
        let printed = n.to_string();
        let reparsed = parse_concept(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e} in `{printed}`")))?;
        prop_assert_eq!(reparsed, n);
    }

    /// The SHOIN(D)4 transformation's output round-trips too.
    #[test]
    fn transformed_concepts_round_trip(c in concept_strategy()) {
        for t in [shoin4::transform_concept(&c), shoin4::transform_neg_concept(&c)] {
            let printed = t.to_string();
            let reparsed = parse_concept(&printed)
                .map_err(|e| TestCaseError::fail(format!("{e} in `{printed}`")))?;
            prop_assert_eq!(reparsed, t);
        }
    }
}
