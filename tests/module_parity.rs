//! The module-scoping contract, machine-checked differentially: running
//! every query on its extracted module (`Config::module_scoping`) must be
//! *invisible* in answers. Across random, planted-contradiction and
//! modular corpora (≥ 256 generated KBs in total) every four-valued
//! verdict, role verdict, entailment and satisfiability answer must be
//! bit-identical to the unscoped engine; on small KBs the scoped
//! engine's positive claims are additionally confirmed by the
//! `fourmodels` enumeration oracle. The extraction itself is pinned to
//! its algebraic law: modules are monotone in the query seed, so the
//! full-signature module bounds every query module.
//!
//! Both engines run with `QueryOptions::baseline()` (no told fast path,
//! no entailment cache, no threads) so every single query actually
//! exercises the scoped tableau rather than a shortcut. With those
//! crutches off, a rare random seed is pathologically hard for the
//! classical tableau; the engines carry a short wall-clock budget and a
//! case whose queries exhaust it is skipped — tableau hardness is a
//! property of the KB, not of scoping, and is fuzzed elsewhere.

use dl::name::IndividualName;
use dl::Concept;
use fourmodels::check::{entailed_negative_info, entailed_positive_info};
use fourmodels::enumerate::EnumConfig;
use ontogen::lintseed::{lint_seeded_kb4, LintSeedParams};
use ontogen::modular::{modular_kb4, ModularParams};
use ontogen::random::{random_kb4, RandomParams};
use proptest::prelude::*;
use shoin4::dataflow::{concept_seed, full_signature_seed, ModuleExtractor, SigAtom};
use shoin4::reasoner4::QueryOptions;
use shoin4::{Axiom4, InclusionKind, KnowledgeBase4, Reasoner4};
use std::collections::BTreeSet;
use std::time::Duration;
use tableau::Config;

fn random_params(seed: u64) -> RandomParams {
    RandomParams {
        n_concepts: 4,
        n_roles: 2,
        n_individuals: 3,
        n_tbox: 4,
        n_abox: 6,
        max_depth: 1,
        number_restrictions: false,
        inverse_roles: true,
        seed,
    }
}

fn planted_params(seed: u64) -> LintSeedParams {
    LintSeedParams {
        seed,
        n_clean_tbox: 6,
        n_clean_abox: 9,
        n_contested_direct: 2,
        n_contested_chained: 1,
        n_contested_roles: 1,
        n_duplicates: 1,
        n_cycles: 1,
        n_orphans: 1,
    }
}

fn engine(kb: &KnowledgeBase4, module_scoping: bool) -> Reasoner4 {
    let config = Config {
        model_pruning: false,
        module_scoping,
        // This suite pins *scoping* against the plain tableau; with the
        // Horn fast path on (the default) many queries would never reach
        // the scoped search at all. Horn-vs-tableau parity has its own
        // differential suite in `tests/horn_parity.rs`.
        horn_path: false,
        // A short wall-clock budget: with the baseline options (no
        // pruning, no told path) a rare random seed is pathologically
        // hard for the classical tableau. That is a pre-existing
        // hardness fact about the KB, not a scoping property, so such
        // cases are *skipped* (both engines give up identically) rather
        // than allowed to dominate the suite's runtime.
        time_budget: Some(Duration::from_millis(300)),
        ..Config::default()
    };
    Reasoner4::with_options(kb, config, QueryOptions::baseline())
}

/// Every individual × atomic-concept pair of the KB's signature.
fn signature_grid(kb: &KnowledgeBase4) -> Vec<(IndividualName, Concept)> {
    let sig = kb.signature();
    let mut grid = Vec::new();
    for a in &sig.individuals {
        for c in &sig.concepts {
            grid.push((a.clone(), Concept::atomic(c.clone())));
        }
    }
    grid
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Instance queries, role queries and satisfiability on random KBs:
    /// scoped answers are bit-identical to unscoped answers, and the
    /// scoped run really scopes (the counters move).
    #[test]
    fn random_kbs_verdicts_are_bit_identical(seed in 0..4096u64) {
        let kb = random_kb4(&random_params(seed), (0.3, 0.4, 0.3));
        let plain = engine(&kb, false);
        let scoped = engine(&kb, true);
        let (p_sat, s_sat) = match (plain.is_satisfiable(), scoped.is_satisfiable()) {
            (Ok(p), Ok(s)) => (p, s),
            // Time budget exhausted: skip the pathological seed.
            _ => return Ok(()),
        };
        prop_assert_eq!(p_sat, s_sat, "satisfiability diverged (seed {})", seed);
        for (a, c) in signature_grid(&kb) {
            let (p, s) = match (plain.query(&a, &c), scoped.query(&a, &c)) {
                (Ok(p), Ok(s)) => (p, s),
                _ => return Ok(()),
            };
            prop_assert_eq!(p, s, "divergence on {}:{:?} (seed {})", a, c, seed);
        }
        let sig = kb.signature();
        for r in &sig.roles {
            for a in &sig.individuals {
                for b in &sig.individuals {
                    let (p, s) = match (plain.query_role(r, a, b), scoped.query_role(r, a, b)) {
                        (Ok(p), Ok(s)) => (p, s),
                        _ => return Ok(()),
                    };
                    prop_assert_eq!(
                        p, s,
                        "role divergence on {}({}, {}) (seed {})", r, a, b, seed
                    );
                }
            }
        }
        let stats = scoped.stats();
        prop_assert!(stats.scoped_queries > 0, "scoping never engaged (seed {})", seed);
        prop_assert_eq!(plain.stats().scoped_queries, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Planted-contradiction KBs (the linter's corpus): the contested
    /// verdicts — the paper's whole point — survive scoping unchanged.
    #[test]
    fn planted_kbs_verdicts_are_bit_identical(seed in 0..4096u64) {
        let (kb, truth) = lint_seeded_kb4(&planted_params(seed));
        let plain = engine(&kb, false);
        let scoped = engine(&kb, true);
        // The planted contested facts first (they must come out ⊤), then
        // a slice of the full grid for the clean names.
        for (a, c) in &truth.contested_concepts {
            let concept = Concept::atomic(c.clone());
            let (want, got) = match (plain.query(a, &concept), scoped.query(a, &concept)) {
                (Ok(p), Ok(s)) => (p, s),
                // Time budget exhausted: skip the pathological seed.
                _ => return Ok(()),
            };
            prop_assert_eq!(want, fourval::TruthValue::Both, "seed {}", seed);
            prop_assert_eq!(got, want, "seed {}", seed);
        }
        for (a, c) in signature_grid(&kb).into_iter().take(16) {
            let (p, s) = match (plain.query(&a, &c), scoped.query(&a, &c)) {
                (Ok(p), Ok(s)) => (p, s),
                _ => return Ok(()),
            };
            prop_assert_eq!(p, s, "divergence on {}:{:?} (seed {})", a, c, seed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Inclusion entailment under all three §3.1 inclusion kinds is
    /// preserved by scoping (each kind couples different signature
    /// halves, so each exercises a different module shape).
    #[test]
    fn inclusion_entailment_is_preserved(seed in 0..4096u64) {
        let kb = random_kb4(&random_params(seed), (0.3, 0.4, 0.3));
        let plain = engine(&kb, false);
        let scoped = engine(&kb, true);
        let concepts: Vec<Concept> = kb
            .signature()
            .concepts
            .into_iter()
            .map(Concept::atomic)
            .collect();
        for lhs in concepts.iter().take(3) {
            for rhs in concepts.iter().take(3) {
                for kind in [
                    InclusionKind::Internal,
                    InclusionKind::Material,
                    InclusionKind::Strong,
                ] {
                    let ax = Axiom4::ConceptInclusion(kind, lhs.clone(), rhs.clone());
                    let (p, s) = match (plain.entails(&ax), scoped.entails(&ax)) {
                        (Ok(p), Ok(s)) => (p, s),
                        // Time budget exhausted: skip the pathological seed.
                        _ => return Ok(()),
                    };
                    prop_assert_eq!(p, s, "divergence on {:?} (seed {})", ax, seed);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The extraction law behind scoping's soundness: modules are
    /// monotone in the seed, so the full-signature module is an upper
    /// bound for the module of every query over the KB's names.
    #[test]
    fn modules_are_monotone_in_the_seed(seed in 0..4096u64) {
        let kb = random_kb4(&random_params(seed), (0.3, 0.4, 0.3));
        let extractor = ModuleExtractor::new(&kb);
        let sig = kb.signature();
        let seeds: Vec<BTreeSet<SigAtom>> = sig
            .concepts
            .iter()
            .map(|c| concept_seed(&Concept::atomic(c.clone())))
            .collect();
        let full = extractor.extract(&full_signature_seed(&kb));
        for (i, a) in seeds.iter().enumerate() {
            let small = extractor.extract(a);
            prop_assert!(
                small.axioms.is_subset(&full.axioms),
                "module ⊄ full-signature module (seed {})", seed
            );
            for b in seeds.iter().skip(i + 1) {
                let union: BTreeSet<SigAtom> = a.union(b).cloned().collect();
                let big = extractor.extract(&union);
                prop_assert!(
                    small.axioms.is_subset(&big.axioms),
                    "module not monotone in the seed (seed {})", seed
                );
            }
        }
    }
}

/// The modular corpus with planted ground truth: queries about a clean
/// island answer identically under scoping, and their modules never
/// leave the island — the clean region provably never pays for the
/// contested one.
#[test]
fn modular_corpus_scoped_queries_stay_on_their_island() {
    for seed in 0..8u64 {
        let p = ModularParams {
            seed,
            n_islands: 3,
            island_tbox: 4,
            island_abox: 6,
            contaminated_islands: 1,
        };
        let (kb, truth) = modular_kb4(&p);
        let extractor = ModuleExtractor::new(&kb);
        let plain = engine(&kb, false);
        let scoped = engine(&kb, true);
        for &island in &truth.clean() {
            let island_axioms: BTreeSet<usize> = truth.islands[island].iter().copied().collect();
            for name in truth.island_concepts[island].iter().take(3) {
                let concept = Concept::atomic(name.clone());
                let module = extractor.extract(&concept_seed(&concept));
                assert!(
                    module.axioms.is_subset(&island_axioms),
                    "module of {name} leaks off island {island} (seed {seed})"
                );
                for a in truth.island_individuals[island].iter().take(2) {
                    assert_eq!(
                        plain.query(a, &concept).unwrap(),
                        scoped.query(a, &concept).unwrap(),
                        "divergence on {a}:{name} (seed {seed})"
                    );
                }
            }
        }
        // Scoped modules were strictly smaller than the KB.
        let stats = scoped.stats();
        assert!(stats.scoped_queries > 0, "seed {seed}");
        assert!(
            stats.module_axioms < stats.scoped_queries * kb.len() as u64,
            "modules never shrank below the whole KB (seed {seed})"
        );
    }
}

/// Oracle anchoring: on tiny KBs, every positive claim the *scoped*
/// engine makes is confirmed by four-valued model enumeration over the
/// full (unscoped!) KB. True entailment implies entailment over the
/// enumerated models, so a scoped claim the oracle rejects would be a
/// soundness bug in the extraction.
#[test]
fn scoped_claims_are_confirmed_by_the_enumeration_oracle() {
    // Enumeration is 4^(names × domain): keep the KBs tiny or this test
    // alone dwarfs the rest of the suite.
    let mut claims = 0;
    for seed in 0..8u64 {
        let params = RandomParams {
            n_concepts: 2,
            n_roles: 1,
            n_individuals: 2,
            n_tbox: 2,
            n_abox: 3,
            max_depth: 1,
            number_restrictions: false,
            inverse_roles: false,
            seed,
        };
        let kb = random_kb4(&params, (0.4, 0.4, 0.2));
        let scoped = engine(&kb, true);
        let cfg = EnumConfig::for_kb(&kb);
        for (a, c) in signature_grid(&kb) {
            if scoped.has_positive_info(&a, &c).unwrap() {
                assert!(
                    entailed_positive_info(&kb, &cfg, &a, &c),
                    "scoped claim {a}:{c} rejected by the oracle (seed {seed})"
                );
                claims += 1;
            }
            if scoped.has_negative_info(&a, &c).unwrap() {
                assert!(
                    entailed_negative_info(&kb, &cfg, &a, &c),
                    "scoped claim {a}:¬{c} rejected by the oracle (seed {seed})"
                );
                claims += 1;
            }
        }
    }
    assert!(claims >= 8, "generator degenerated: only {claims} claims");
}
