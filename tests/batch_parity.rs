//! Parity properties for the parallel batch query engine.
//!
//! The performance pipeline (worker threads, the entailment cache, the
//! told-information fast path, model-based pruning) must be *invisible*
//! in answers: every accelerated configuration has to return results
//! bit-identical to the sequential baseline that runs one tableau search
//! per classical entailment check. These properties fuzz that claim over
//! ontogen's random KBs and its planted-contradiction KBs.

use dl::name::IndividualName;
use dl::Concept;
use ontogen::lintseed::{lint_seeded_kb4, LintSeedParams};
use ontogen::random::{random_kb4, RandomParams};
use proptest::prelude::*;
use shoin4::analysis::{classify4, contradiction_report};
use shoin4::reasoner4::QueryOptions;
use shoin4::{KnowledgeBase4, Reasoner4};
use tableau::Config;

/// Small enough that the whole signature grid stays cheap even for the
/// baseline reasoner (two tableau searches per pair, no caches).
fn random_params(seed: u64) -> RandomParams {
    RandomParams {
        n_concepts: 4,
        n_roles: 2,
        n_individuals: 3,
        n_tbox: 4,
        n_abox: 6,
        max_depth: 1,
        number_restrictions: false,
        inverse_roles: true,
        seed,
    }
}

fn planted_params(seed: u64) -> LintSeedParams {
    LintSeedParams {
        seed,
        n_clean_tbox: 6,
        n_clean_abox: 9,
        n_contested_direct: 2,
        n_contested_chained: 1,
        n_contested_roles: 1,
        n_duplicates: 1,
        n_cycles: 1,
        n_orphans: 1,
    }
}

/// One tableau search per entailment check: no threads, no caches, no
/// told fast path, no model pruning.
fn baseline(kb: &KnowledgeBase4) -> Reasoner4 {
    let config = Config {
        model_pruning: false,
        ..Config::default()
    };
    Reasoner4::with_options(kb, config, QueryOptions::baseline())
}

/// Everything on, with an explicit worker count.
fn accelerated(kb: &KnowledgeBase4, jobs: usize) -> Reasoner4 {
    Reasoner4::with_options(
        kb,
        Config::default(),
        QueryOptions {
            jobs,
            ..QueryOptions::default()
        },
    )
}

/// Every individual × atomic-concept pair of the KB's signature, in
/// signature (= sorted) order.
fn signature_grid(kb: &KnowledgeBase4) -> Vec<(IndividualName, Concept)> {
    let sig = kb.signature();
    let mut grid = Vec::new();
    for a in &sig.individuals {
        for c in &sig.concepts {
            grid.push((a.clone(), Concept::atomic(c.clone())));
        }
    }
    grid
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `query_batch` under any worker count answers exactly what the
    /// baseline answers one query at a time.
    #[test]
    fn batch_queries_match_sequential_baseline(seed in 0..64u64, jobs in 1..5usize) {
        let kb = random_kb4(&random_params(seed), (0.3, 0.4, 0.3));
        let grid = signature_grid(&kb);
        let slow = baseline(&kb);
        let fast = accelerated(&kb, jobs);
        let batched = fast.query_batch(&grid).unwrap();
        prop_assert_eq!(batched.len(), grid.len());
        for ((a, c), got) in grid.iter().zip(&batched) {
            let want = slow.query(a, c).unwrap();
            prop_assert_eq!(*got, want, "divergence on {}:{:?} (seed {})", a, c, seed);
        }
    }

    /// The full survey and the taxonomy are bit-identical between the
    /// sequential baseline and the parallel cached pipeline, including on
    /// KBs with planted contradictions.
    #[test]
    fn surveys_and_taxonomies_are_bit_identical(seed in 0..32u64, jobs in 2..5usize) {
        let (kb, _) = lint_seeded_kb4(&planted_params(seed));
        let slow = baseline(&kb);
        let fast = accelerated(&kb, jobs);

        let a = contradiction_report(&slow, &kb).unwrap();
        let b = contradiction_report(&fast, &kb).unwrap();
        prop_assert_eq!(&a.contested, &b.contested);
        prop_assert_eq!(&a.asserted, &b.asserted);
        prop_assert_eq!(&a.denied, &b.denied);
        prop_assert_eq!(a.unknown, b.unknown);

        prop_assert_eq!(classify4(&slow, &kb).unwrap(), classify4(&fast, &kb).unwrap());
    }

    /// Every positive claim the told index makes is confirmed by the
    /// bare tableau. (The fast path only ever certifies *presence* of
    /// information — `false` components claim nothing.)
    #[test]
    fn told_fast_path_agrees_with_the_tableau(seed in 0..64u64) {
        let kb = random_kb4(&random_params(seed), (0.3, 0.4, 0.3));
        let slow = baseline(&kb);
        let fast = accelerated(&kb, 1);
        let sig = kb.signature();
        for a in &sig.individuals {
            for c in &sig.concepts {
                let (pos, neg) = fast.told_verdict(a, c).expect("fast path enabled");
                let atom = Concept::atomic(c.clone());
                if pos {
                    prop_assert!(
                        slow.has_positive_info(a, &atom).unwrap(),
                        "told index claimed {}:{} positively (seed {})", a, c, seed
                    );
                }
                if neg {
                    prop_assert!(
                        slow.has_negative_info(a, &atom).unwrap(),
                        "told index claimed {}:¬{} (seed {})", a, c, seed
                    );
                }
            }
        }
    }
}

/// Planted contradictions exercise the `Both` verdict through the batch
/// path: a deterministic end-to-end check that planted facts surface
/// identically with and without acceleration.
#[test]
fn planted_contradictions_survive_every_pipeline() {
    for seed in 0..4u64 {
        let (kb, truth) = lint_seeded_kb4(&planted_params(seed));
        let queries: Vec<(IndividualName, Concept)> = truth
            .contested_concepts
            .iter()
            .map(|(a, c)| (a.clone(), Concept::atomic(c.clone())))
            .collect();
        let slow = baseline(&kb);
        let fast = accelerated(&kb, 4);
        let sequential: Vec<_> = queries
            .iter()
            .map(|(a, c)| slow.query(a, c).unwrap())
            .collect();
        assert_eq!(fast.query_batch(&queries).unwrap(), sequential);
        for v in &sequential {
            assert_eq!(*v, fourval::TruthValue::Both, "seed {seed}");
        }
    }
}
