//! Cost-aware admission lanes, checked differentially over the wire: a
//! [`shoin4::serve::Server`] with lanes enabled must be answer-
//! *invisible* — every verdict a client reads back must be bit-identical
//! to the same request sequence against a single-queue server over the
//! same KBs under the same [`Config`]. Lanes only change *where* a
//! request queues (and optionally its budget — disabled here so the
//! answers stay comparable), never *what* it answers.
//!
//! The corpus is [`ontogen::hardness_mix`]: Horn chains (cheap lane),
//! disjunctive residue and `∃`-doubling towers (heavy lane), so the
//! sweep drives both lanes for real — asserted on the admission
//! counters at the end, not assumed.

use jsonio::Value;
use ontogen::hardness_mix::{hardness_mix, HardnessMixParams};
use shoin4::serve::{LaneOptions, Registry, ServeOptions, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use tableau::Config;

/// A generous budget: every corpus KB completes well inside it, so no
/// reply is time-dependent and the transcripts compare exactly.
fn config() -> Config {
    Config {
        time_budget: Some(Duration::from_secs(20)),
        ..Config::default()
    }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let writer = stream.try_clone().expect("clone");
        Client {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn ask(&mut self, line: &str) -> Value {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        Value::parse(&reply).unwrap_or_else(|e| panic!("bad JSON reply {reply:?}: {e}"))
    }
}

/// Drive the full probe sequence against one server and return the
/// transcript as `(probe, reply)` pairs.
fn transcript(opts: ServeOptions) -> (Vec<(String, String)>, Arc<Registry>, u64, u64) {
    let corpus = hardness_mix(&HardnessMixParams {
        per_shape: 8,
        ..HardnessMixParams::default()
    });
    let registry = Arc::new(Registry::new(config()));
    for l in &corpus {
        assert!(registry.register(&l.id, &l.kb));
    }
    let server = Server::bind("127.0.0.1:0", Arc::clone(&registry), opts).expect("bind");
    let mut client = Client::connect(server.local_addr());
    let mut out = Vec::new();
    for l in &corpus {
        client.ask(&format!("tenant {}", l.id));
        let (ind, goal) = &l.probe;
        for probe in [
            "check".to_string(),
            format!("query {ind} {goal}"),
            format!("entails {ind} : {goal}"),
        ] {
            let reply = client.ask(&probe);
            assert!(
                reply.get("error").is_none(),
                "unexpected error on {probe} against {}: {reply}",
                l.id
            );
            out.push((format!("{}: {probe}", l.id), reply.to_string()));
        }
    }
    client.ask("quit");
    let stats = server.stats();
    let cheap = stats.cheap_admitted.load(Ordering::Relaxed);
    let heavy = stats.heavy_admitted.load(Ordering::Relaxed);
    server.shutdown();
    (out, registry, cheap, heavy)
}

#[test]
fn lanes_are_answer_invisible_across_the_hardness_corpus() {
    let (baseline, _, base_cheap, base_heavy) = transcript(ServeOptions {
        workers: 2,
        queue_depth: 64,
        lanes: None,
    });
    let (laned, registry, cheap, heavy) = transcript(ServeOptions {
        workers: 2,
        queue_depth: 64,
        lanes: Some(LaneOptions {
            // No heavy-lane budget: the point here is routing parity,
            // and a budget would make heavy replies time-dependent.
            heavy_budget: None,
            ..LaneOptions::default()
        }),
    });

    assert_eq!(baseline.len(), laned.len());
    for ((probe_a, reply_a), (probe_b, reply_b)) in baseline.iter().zip(&laned) {
        assert_eq!(probe_a, probe_b);
        assert_eq!(reply_a, reply_b, "lanes changed the answer to {probe_a}");
    }

    // The sweep must have exercised both lanes, or the parity claim is
    // vacuous: the single-queue server admits everything cheap, the
    // laned server must have routed the disjunctive/∃-deep tenants
    // heavy and the Horn chains cheap.
    assert_eq!(base_heavy, 0, "lanes off must not count heavy admissions");
    assert!(base_cheap > 0);
    assert!(heavy >= 1, "no probe routed to the heavy lane");
    assert!(cheap >= 1, "no probe stayed on the cheap lane");

    // Routing consulted the shared score cache: repeated probes against
    // the same module must not re-run the analyzer every time.
    let shared = registry.shared().stats();
    assert!(
        shared.score_hits > 0,
        "per-request scoring never hit the shared score cache: {shared:?}"
    );
}
