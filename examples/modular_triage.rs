//! Modular triage: on a KB assembled from independent regions, a
//! contradiction in one region is *statically* confined — the signature
//! dataflow analysis partitions the axioms into clean and contaminated
//! regions without running the tableau, and module-scoped query
//! execution lets clean-region queries run on their own island's
//! axioms, never paying for the contested ones.
//!
//! Run with `cargo run --example modular_triage -- [n_islands]`.

use dl::Concept;
use ontogen::modular::{modular_kb4, ModularParams};
use ontolint::dataflow::{contradiction_seeds, propagate, ModuleExtractor};
use shoin4::dataflow::concept_seed;
use shoin4::reasoner4::QueryOptions;
use shoin4::Reasoner4;
use tableau::Config;

fn main() {
    let n_islands: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let (kb, truth) = modular_kb4(&ModularParams {
        seed: 1,
        n_islands,
        ..ModularParams::default()
    });
    println!(
        "modular KB: {} axioms in {} islands, {} carrying a planted contradiction",
        kb.len(),
        n_islands,
        truth.contaminated.len()
    );

    // Static triage: lint, seed the propagation with the contradiction
    // findings, and partition the KB. No tableau so far.
    let diags = ontolint::lint_kb4(&kb);
    let seeds = contradiction_seeds(&diags);
    let extractor = ModuleExtractor::new(&kb);
    let cont = propagate(extractor.graph(), &seeds);
    println!(
        "\ncontamination: {} seed axioms → {} contaminated / {} clean axioms \
         (radius {})",
        cont.seeds.len(),
        cont.contaminated.len(),
        cont.clean.len(),
        cont.max_radius().unwrap_or(0)
    );
    println!("\nper-region report:");
    for (i, island) in truth.islands.iter().enumerate() {
        let dirty = island
            .iter()
            .filter(|a| cont.distance[**a].is_some())
            .count();
        let status = if dirty > 0 {
            format!("CONTAMINATED ({dirty}/{} axioms reachable)", island.len())
        } else {
            "clean".to_string()
        };
        println!("  island {i:>2}: {status}");
        // The analysis must agree with the planted ground truth.
        assert_eq!(dirty > 0, truth.contaminated.contains(&i));
    }

    // Module-scoped querying: each query runs the tableau on its
    // extracted module only.
    let scoped = Reasoner4::with_options(
        &kb,
        Config {
            module_scoping: true,
            ..Config::default()
        },
        QueryOptions {
            jobs: 1,
            told_fast_path: false,
            ..QueryOptions::default()
        },
    );
    let plain = Reasoner4::new(&kb);

    println!("\nclean-region queries (module-scoped):");
    for &island in &truth.clean() {
        let a = &truth.island_individuals[island][0];
        let c = Concept::atomic(truth.island_concepts[island][2].clone());
        let module = extractor.extract(&concept_seed(&c));
        let v = scoped.query(a, &c).expect("within limits");
        println!(
            "  {a} : {c} = {v}   (module: {} of {} axioms, all on island {island})",
            module.axioms.len(),
            kb.len()
        );
        assert_eq!(v, plain.query(a, &c).expect("within limits"));
        let island_set: std::collections::BTreeSet<usize> =
            truth.islands[island].iter().copied().collect();
        assert!(module.axioms.is_subset(&island_set));
        assert!(module.axioms.iter().all(|i| cont.distance[*i].is_none()));
    }

    // The contested fact itself still answers — and answers ⊤.
    let dirty = truth.contaminated[0];
    let a = &truth.island_individuals[dirty][0];
    let c = Concept::atomic(truth.island_concepts[dirty][0].clone());
    let v = scoped.query(a, &c).expect("within limits");
    println!("\ncontested fact: {a} : {c} = {v}");
    assert_eq!(v, fourval::TruthValue::Both);

    let stats = scoped.stats();
    println!(
        "\n{} scoped queries touched {} module axioms in total — an unscoped \
         engine would have carried {} axioms into every search.",
        stats.scoped_queries,
        stats.module_axioms,
        kb.len()
    );
    assert!(stats.module_axioms < stats.scoped_queries * kb.len() as u64);
}
