//! The paper's Examples 3 and 5: Tweety the penguin, material vs
//! internal inclusion, and the transformation pipeline made visible.
//!
//! Run with `cargo run --example penguin`.
//!
//! As a classical SHOIN(D) KB the penguin ontology is unsatisfiable —
//! everything follows from it. As a SHOIN(D)4 KB with the bird-flying
//! rule read *materially* ("birds generally fly"), tweety is simply an
//! exception: `Fly⁻(tweety)` holds and `Fly⁺(tweety)` does not
//! (Example 5's exact result).

use dl::{Concept, IndividualName};
use fourval::TruthValue;
use shoin4::{parse_kb4, Reasoner4};
use tableau::Reasoner;

const CLASSICAL: &str = "Bird and (hasWing some Wing) SubClassOf Fly
Penguin SubClassOf Bird
Penguin SubClassOf hasWing some Wing
Penguin SubClassOf not Fly
tweety : Bird
tweety : Penguin
w : Wing
hasWing(tweety, w)";

const FOUR_VALUED: &str = "Bird and (hasWing some Wing) MaterialSubClassOf Fly
Penguin SubClassOf Bird
Penguin SubClassOf hasWing some Wing
Penguin SubClassOf not Fly
tweety : Bird
tweety : Penguin
w : Wing
hasWing(tweety, w)";

fn main() {
    // --- Classical reading: explosion. -----------------------------------
    let classical = dl::parser::parse_kb(CLASSICAL).expect("classical KB parses");
    let mut classical_reasoner = Reasoner::new(&classical);
    let consistent = classical_reasoner.is_consistent().unwrap();
    println!("classical SHOIN(D) reading consistent? {consistent}");
    assert!(!consistent);
    println!("=> every query is (vacuously) entailed; the KB is useless.\n");

    // --- Four-valued reading: the exception is just an exception. --------
    let kb4 = parse_kb4(FOUR_VALUED).expect("four-valued KB parses");
    let r4 = Reasoner4::new(&kb4);
    println!(
        "SHOIN(D)4 reading satisfiable? {}",
        r4.is_satisfiable().unwrap()
    );

    println!("\nclassical induced KB K̄ (Example 5's transformation):");
    println!("{}", dl::printer::print_kb(r4.induced_kb()));

    let tweety = IndividualName::new("tweety");
    for concept in ["Fly", "Bird", "Penguin"] {
        let c = Concept::atomic(concept);
        let v = r4.query(&tweety, &c).unwrap();
        println!("tweety : {concept:<8} = {v}");
    }
    let fly = Concept::atomic("Fly");
    assert_eq!(r4.query(&tweety, &fly).unwrap(), TruthValue::False);
    println!("\nExample 5 verified: Fly⁻(tweety) holds, Fly⁺(tweety) does not —");
    println!("tweety cannot fly, and nothing else explodes.");
}
