//! Quickstart: paraconsistent reasoning in five minutes.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The scenario is the paper's opening example: a hospital ontology in
//! which john is both in the surgical team (no record access) and in the
//! urgency team (record access). Classical OWL DL explodes; SHOIN(D)4
//! localizes the contradiction and keeps answering.

use dl::{Concept, IndividualName};
use shoin4::{parse_kb4, Reasoner4};

fn main() {
    let kb = parse_kb4(
        "SurgicalTeam SubClassOf not ReadPatientRecordTeam
         UrgencyTeam SubClassOf ReadPatientRecordTeam
         Doctor SubClassOf Staff
         john : SurgicalTeam
         john : UrgencyTeam
         john : Doctor
         mary : Doctor",
    )
    .expect("the quickstart ontology parses");

    let reasoner = Reasoner4::new(&kb);

    println!(
        "KB satisfiable (four-valued): {}",
        reasoner.is_satisfiable().unwrap()
    );
    println!();

    let queries = [
        ("john", "ReadPatientRecordTeam"),
        ("john", "Staff"),
        ("john", "Patient"),
        ("mary", "Staff"),
        ("mary", "ReadPatientRecordTeam"),
    ];
    println!("{:<8} {:<24} four-valued answer", "who", "concept");
    println!("{}", "-".repeat(50));
    for (who, what) in queries {
        let answer = reasoner
            .query(&IndividualName::new(who), &Concept::atomic(what))
            .unwrap();
        let gloss = match answer {
            fourval::TruthValue::True => "t  (information: yes)",
            fourval::TruthValue::False => "f  (information: no)",
            fourval::TruthValue::Both => "⊤  (contradictory information!)",
            fourval::TruthValue::Neither => "⊥  (no information)",
        };
        println!("{who:<8} {what:<24} {gloss}");
    }

    println!();
    println!("The contradiction about john's record access stays local:");
    println!("john is still known to be Staff, and nothing leaks onto mary.");
    println!();
    println!(
        "Classical induced KB (what the tableau actually reasons over):\n{}",
        dl::printer::print_kb(reasoner.induced_kb())
    );
}
