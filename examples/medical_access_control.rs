//! The paper's Example 2 scaled up: a hospital access-control ontology
//! with conflicting team permissions, comparing what each approach can
//! still answer once conflicts appear.
//!
//! Run with `cargo run --example medical_access_control`.

use baselines::{Answer, InconsistencyBaseline};
use dl::{Concept, IndividualName};
use ontogen::medical::{medical_kb, permission_class, staff_name, MedicalParams};
use shoin4::{InclusionKind, KnowledgeBase4, Reasoner4};

fn main() {
    let params = MedicalParams {
        n_teams: 6,
        n_staff: 12,
        conflict_fraction: 0.25,
        seed: 2006,
    };
    let (kb, conflicted) = medical_kb(&params);
    println!(
        "generated medical KB: {} axioms, {} staff, {} with conflicting memberships\n",
        kb.len(),
        params.n_staff,
        conflicted.len()
    );

    // Classical baseline.
    let mut classical = baselines::classical::ClassicalBaseline::new(&kb);
    // Stratified baseline: schema over data.
    let mut stratified = baselines::stratified::StratifiedBaseline::tbox_over_abox(&kb);
    // SHOIN(D)4.
    let kb4 = KnowledgeBase4::from_classical(&kb, InclusionKind::Internal);
    let four = Reasoner4::new(&kb4);

    let perm = Concept::atomic(permission_class());
    println!(
        "{:<10} {:<11} {:<12} {:<22}",
        "staff", "classical", "stratified", "SHOIN(D)4"
    );
    println!("{}", "-".repeat(58));
    let mut classical_meaningful = 0usize;
    let mut stratified_meaningful = 0usize;
    for s in 0..params.n_staff {
        let who = staff_name(s);
        let query = dl::Axiom::ConceptAssertion(who.clone(), perm.clone());
        let c = classical.entails(&query).unwrap();
        let st = stratified.entails(&query).unwrap();
        let f = four.query(&who, &perm).unwrap();
        classical_meaningful += usize::from(c.is_meaningful());
        stratified_meaningful += usize::from(st.is_meaningful());
        let mark = if conflicted.contains(&s) { "*" } else { " " };
        println!(
            "{:<10} {:<11} {:<12} {:<22}",
            format!("{who}{mark}"),
            fmt_answer(c),
            fmt_answer(st),
            fmt_truth(f),
        );
    }
    println!("\n(* = staff member with deliberately conflicting memberships)");
    println!(
        "\nmeaningful answers: classical {classical_meaningful}/{n}, stratified \
         {stratified_meaningful}/{n}, SHOIN(D)4 {n}/{n}",
        n = params.n_staff
    );
    println!(
        "SHOIN(D)4 answers every query with a four-valued verdict; conflicts \
         surface as ⊤ on exactly the conflicted staff."
    );

    // Sanity assertions so the example doubles as an end-to-end check.
    assert!(four.is_satisfiable().unwrap());
    for &s in &conflicted {
        let v = four.query(&staff_name(s), &perm).unwrap();
        assert_eq!(
            v,
            fourval::TruthValue::Both,
            "conflicted staff{s} must be ⊤"
        );
    }
}

fn fmt_answer(a: Answer) -> &'static str {
    match a {
        Answer::Yes => "yes",
        Answer::No => "no",
        Answer::Trivial => "(trivial)",
    }
}

fn fmt_truth(t: fourval::TruthValue) -> String {
    match t {
        fourval::TruthValue::True => "t   may read".into(),
        fourval::TruthValue::False => "f   may not read".into(),
        fourval::TruthValue::Both => "⊤   CONFLICT".into(),
        fourval::TruthValue::Neither => "⊥   unknown".into(),
    }
}

// Keep the unused import lint honest: IndividualName is used via staff_name's
// return type in signatures above.
#[allow(dead_code)]
fn _type_anchor(_: IndividualName) {}
