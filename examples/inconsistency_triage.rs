//! Inconsistency triage at scale: inject contradictions into a clean
//! taxonomy and measure which approach still answers which queries —
//! the interactive twin of benchmark X1.
//!
//! Run with `cargo run --example inconsistency_triage -- [n_injections]`.

use baselines::classical::ClassicalBaseline;
use baselines::mcs::RelevanceBaseline;
use baselines::stratified::StratifiedBaseline;
use baselines::{Answer, InconsistencyBaseline};
use dl::{Axiom, Concept};
use ontogen::inject::inject_contradictions;
use ontogen::queries::instance_queries;
use ontogen::taxonomy::{taxonomy_kb, TaxonomyParams};
use shoin4::{InclusionKind, KnowledgeBase4, Reasoner4};

fn main() {
    let n_injections: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let params = TaxonomyParams {
        depth: 3,
        branching: 2,
        sibling_disjointness: true,
        individuals_per_leaf: 1,
    };
    let mut kb = taxonomy_kb(&params);
    let clean_len = kb.len();
    let injected = inject_contradictions(&mut kb, n_injections, 99);
    println!(
        "taxonomy: {clean_len} axioms; injected {} contradictions:",
        injected.len()
    );
    for inj in &injected {
        println!(
            "  {} : {} and not {}",
            inj.individual, inj.concept, inj.concept
        );
    }

    let queries = instance_queries(&kb, 40, 7);

    let mut classical = ClassicalBaseline::new(&kb);
    let mut relevance = RelevanceBaseline::new(&kb);
    let mut stratified = StratifiedBaseline::tbox_over_abox(&kb);
    let kb4 = KnowledgeBase4::from_classical(&kb, InclusionKind::Internal);
    let four = Reasoner4::new(&kb4);

    let mut tally: Vec<(&str, usize, usize)> = Vec::new(); // (name, meaningful, yes)
    for (name, baseline) in [
        (
            "classical",
            &mut classical as &mut dyn InconsistencyBaseline,
        ),
        ("syntactic-relevance", &mut relevance),
        ("stratified", &mut stratified),
    ] {
        let mut meaningful = 0;
        let mut yes = 0;
        for q in &queries {
            match baseline.entails(q) {
                Ok(a) => {
                    meaningful += usize::from(a.is_meaningful());
                    yes += usize::from(a == Answer::Yes);
                }
                Err(e) => println!("  {name}: resource limit on a query: {e}"),
            }
        }
        tally.push((name, meaningful, yes));
    }

    // SHOIN(D)4: every query gets a four-valued verdict; count the
    // non-⊥ ones as informative and the positives for comparison.
    let mut informative = 0;
    let mut yes4 = 0;
    for q in &queries {
        let Axiom::ConceptAssertion(a, c) = q else {
            continue;
        };
        let v = four.query(a, c).unwrap();
        informative += usize::from(v != fourval::TruthValue::Neither);
        yes4 += usize::from(v.has_true_info());
    }

    println!("\n{:<22} {:>12} {:>8}", "method", "meaningful", "yes");
    println!("{}", "-".repeat(44));
    for (name, meaningful, yes) in &tally {
        println!("{name:<22} {meaningful:>9}/{} {yes:>8}", queries.len());
    }
    println!(
        "{:<22} {:>9}/{} {:>8}   (meaningful = every query; {} informative ≠ ⊥)",
        "shoin4",
        queries.len(),
        queries.len(),
        yes4,
        informative
    );

    println!(
        "\nClassical reasoning trivializes after the first contradiction; \
         selection-based repairs answer only where their subset reaches; \
         SHOIN(D)4 answers everything and flags the poisoned facts as ⊤."
    );

    // The poisoned facts really do come back as ⊤.
    for inj in &injected {
        let v = four
            .query(&inj.individual, &Concept::atomic(inj.concept.as_str()))
            .unwrap();
        assert_eq!(v, fourval::TruthValue::Both);
    }
}
