//! Ontology diagnosis: survey a contradictory ontology instead of
//! refusing to reason about it.
//!
//! Run with `cargo run --example diagnose`.
//!
//! A classical reasoner answers one bit about an inconsistent ontology
//! ("inconsistent") and stops being useful. The paraconsistent reasoner
//! turns the same ontology into a *map*: which facts are contested,
//! which are clean, and how contaminated the KB is.

use shoin4::analysis::{classify4, contradiction_report};
use shoin4::{parse_kb4, Reasoner4};

fn main() {
    // A merged hospital ontology with three independent problems.
    let kb = parse_kb4(
        "Surgeon SubClassOf Doctor
         Doctor SubClassOf Staff
         Nurse SubClassOf Staff
         SurgicalTeam SubClassOf not ReadPatientRecordTeam
         UrgencyTeam SubClassOf ReadPatientRecordTeam
         # problem 1: conflicting team memberships (Example 2)
         john : SurgicalTeam
         john : UrgencyTeam
         # problem 2: a data-entry contradiction
         ann : Nurse
         ann : not Nurse
         # problem 3: an inferred contradiction (both directly denied and
         # entailed through the taxonomy)
         bob : Surgeon
         bob : not Staff
         # clean facts
         carol : Doctor",
    )
    .expect("ontology parses");

    let r = Reasoner4::new(&kb);
    println!(
        "satisfiable (four-valued)? {}\n",
        r.is_satisfiable().unwrap()
    );

    let report = contradiction_report(&r, &kb).expect("within limits");
    println!(
        "surveyed {} facts: {} contested, {} asserted, {} denied, {} unknown",
        report.total(),
        report.contested.len(),
        report.asserted.len(),
        report.denied.len(),
        report.unknown
    );
    println!("contamination: {:.1}%\n", 100.0 * report.contamination());

    println!("contested facts (the ⊤ map):");
    for (who, what) in &report.contested {
        println!("  ⊤  {who} : {what}");
    }
    println!("\nclean positive facts:");
    for (who, what) in &report.asserted {
        println!("  t  {who} : {what}");
    }

    // Classification still works on the inconsistent ontology.
    let taxonomy = classify4(&r, &kb).expect("within limits");
    println!("\nconcept taxonomy (internal ⊏, computed via Corollary 7):");
    for (class, supers) in &taxonomy {
        let proper: Vec<String> = supers
            .iter()
            .filter(|s| s.as_str() != class.as_str())
            .map(ToString::to_string)
            .collect();
        if !proper.is_empty() {
            println!("  {class} ⊏ {}", proper.join(", "));
        }
    }

    // The three problems surface exactly where injected.
    assert!(report
        .contested
        .iter()
        .any(|(w, c)| w.as_str() == "john" && c.as_str() == "ReadPatientRecordTeam"));
    assert!(report
        .contested
        .iter()
        .any(|(w, c)| w.as_str() == "ann" && c.as_str() == "Nurse"));
    assert!(report
        .contested
        .iter()
        .any(|(w, c)| w.as_str() == "bob" && c.as_str() == "Staff"));
    // Carol stays clean.
    assert!(report.contested.iter().all(|(w, _)| w.as_str() != "carol"));
    println!("\nall three injected problems localized; carol untouched.");
}
