//! The paper's Example 4 ("single Smith adopts a child Kate") and the
//! regeneration of **Table 4** — the paper's only model table — by
//! exhaustive four-valued model enumeration.
//!
//! Run with `cargo run --example adoption`.

use dl::{Concept, IndividualName};
use fourmodels::table4::{example4_config, example4_kb, render_table4, table4_rows};
use fourmodels::ModelIter;
use shoin4::Reasoner4;

fn main() {
    let kb = example4_kb();
    println!("Example 4 knowledge base:");
    for ax in kb.axioms() {
        println!("  {ax}");
    }

    // Reasoning view (via the transformation + classical tableau).
    let r = Reasoner4::new(&kb);
    println!(
        "\nsatisfiable (four-valued)? {}",
        r.is_satisfiable().unwrap()
    );
    let smith = IndividualName::new("smith");
    for concept in ["Parent", "Married"] {
        let v = r.query(&smith, &Concept::atomic(concept)).unwrap();
        println!("smith : {concept:<8} = {v}");
    }

    // Model-theory view: enumerate all models over {smith, kate} with a
    // non-reflexive hasChild, and project them to the paper's columns.
    let cfg = example4_config();
    let total_models = ModelIter::new(&kb, &cfg)
        .filter(|m| m.satisfies(&kb))
        .count();
    let rows = table4_rows();
    println!(
        "\nmodels over {{smith, kate}} (hasChild non-reflexive): {total_models}; \
         distinct Table-4 projections: {}",
        rows.len()
    );
    println!("\nTable 4, regenerated:\n\n{}", render_table4());
    assert_eq!(rows.len(), 9, "the paper lists nine models M1–M9");
    println!("nine projected models M1–M9, exactly as printed in the paper.");
}
