//! Stratification-based baseline (Benferhat et al., SACMAT'03 — the
//! paper's reference 4): axioms carry priority levels; reasoning uses the
//! *possibilistic* cut — the strata strictly above the inconsistency
//! level.
//!
//! This is the "knowledge with different exactness" competitor the
//! paper's §3.1 discusses: instead of typing the *inclusions* (material /
//! internal / strong), the KB designer ranks whole axioms.

use crate::{Answer, InconsistencyBaseline};
use dl::kb::KnowledgeBase;
use dl::Axiom;
use tableau::{Config, Reasoner, ReasonerError};

/// A KB whose axioms are ranked into strata; stratum 0 is the most
/// reliable.
pub struct StratifiedBaseline {
    strata: Vec<Vec<Axiom>>,
    config: Config,
}

impl StratifiedBaseline {
    /// Build from ranked strata (`strata[0]` most reliable).
    pub fn new(strata: Vec<Vec<Axiom>>) -> Self {
        StratifiedBaseline {
            strata,
            config: Config::default(),
        }
    }

    /// Convenience: TBox in stratum 0, ABox in stratum 1 — the common
    /// "trust the schema over the data" ranking.
    pub fn tbox_over_abox(kb: &KnowledgeBase) -> Self {
        let tbox: Vec<Axiom> = kb.tbox().cloned().collect();
        let abox: Vec<Axiom> = kb.abox().cloned().collect();
        Self::new(vec![tbox, abox])
    }

    /// The number of leading strata that are jointly consistent (the
    /// possibilistic cut).
    pub fn consistent_prefix_len(&self) -> Result<usize, ReasonerError> {
        let mut kept = Vec::new();
        for (i, stratum) in self.strata.iter().enumerate() {
            kept.extend(stratum.iter().cloned());
            let kb = KnowledgeBase::from_axioms(kept.iter().cloned());
            if !Reasoner::with_config(&kb, self.config.clone()).is_consistent()? {
                return Ok(i);
            }
        }
        Ok(self.strata.len())
    }

    /// The working KB: all strata above the inconsistency level.
    pub fn cut(&self) -> Result<KnowledgeBase, ReasonerError> {
        let n = self.consistent_prefix_len()?;
        Ok(KnowledgeBase::from_axioms(
            self.strata[..n].iter().flatten().cloned(),
        ))
    }
}

impl InconsistencyBaseline for StratifiedBaseline {
    fn name(&self) -> &'static str {
        "stratified-possibilistic"
    }

    fn entails(&mut self, query: &Axiom) -> Result<Answer, ReasonerError> {
        let n = self.consistent_prefix_len()?;
        if n == 0 {
            // Even the top stratum is inconsistent: degenerate.
            return Ok(Answer::Trivial);
        }
        let kb = self.cut()?;
        Ok(
            if Reasoner::with_config(&kb, self.config.clone()).entails(query)? {
                Answer::Yes
            } else {
                Answer::No
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::parser::parse_kb;
    use dl::{Concept, IndividualName};

    fn q(i: &str, c: &str) -> Axiom {
        Axiom::ConceptAssertion(IndividualName::new(i), Concept::atomic(c))
    }

    #[test]
    fn consistent_kb_keeps_all_strata() {
        let kb = parse_kb("A SubClassOf B\nx : A").unwrap();
        let mut b = StratifiedBaseline::tbox_over_abox(&kb);
        assert_eq!(b.consistent_prefix_len().unwrap(), 2);
        assert_eq!(b.entails(&q("x", "B")).unwrap(), Answer::Yes);
    }

    #[test]
    fn inconsistent_abox_is_cut_away() {
        // Schema consistent, data contradicts it: keep the schema only.
        let kb = parse_kb(
            "Penguin SubClassOf Bird
             Penguin SubClassOf not Fly
             Bird SubClassOf Fly
             tweety : Penguin",
        )
        .unwrap();
        let mut b = StratifiedBaseline::tbox_over_abox(&kb);
        // Wait: the TBox alone makes Penguin unsatisfiable but the KB
        // consistent; inconsistency needs tweety. So prefix = 1.
        assert_eq!(b.consistent_prefix_len().unwrap(), 1);
        // Schema-level queries still answer…
        assert_eq!(b.entails(&q("tweety", "Bird")).unwrap(), Answer::No);
        // …because the ABox (tweety : Penguin) was discarded wholesale —
        // the bluntness the four-valued approach avoids.
    }

    #[test]
    fn top_stratum_inconsistency_degenerates() {
        let kb = parse_kb("A SubClassOf not A\nx : A").unwrap();
        // Put everything in one stratum: inconsistent at level 0.
        let mut b = StratifiedBaseline::new(vec![kb.axioms().to_vec()]);
        assert_eq!(b.entails(&q("x", "A")).unwrap(), Answer::Trivial);
    }

    #[test]
    fn finer_strata_keep_more() {
        // Three strata: schema / trusted facts / dubious facts.
        let kb = parse_kb(
            "Bird SubClassOf Fly
             tweety : Bird
             tweety : not Fly",
        )
        .unwrap();
        let axioms = kb.axioms();
        let mut b = StratifiedBaseline::new(vec![
            vec![axioms[0].clone()],
            vec![axioms[1].clone()],
            vec![axioms[2].clone()],
        ]);
        assert_eq!(b.consistent_prefix_len().unwrap(), 2);
        assert_eq!(b.entails(&q("tweety", "Fly")).unwrap(), Answer::Yes);
    }
}
