//! Baseline approaches to reasoning with inconsistent ontologies — the
//! three families §1 and §5 of the paper position SHOIN(D)4 against:
//!
//! 1. [`classical`] — do nothing: a classical reasoner on an inconsistent
//!    KB entails *everything* (the triviality the paper opens with);
//! 2. [`mcs`] — reason with consistent subsets: maximal consistent
//!    subsets (skeptical / credulous), and Huang-style syntactic-relevance
//!    selection;
//! 3. [`stratified`] — Benferhat-style possibilistic stratification:
//!    keep the reliable strata, drop everything at and below the
//!    inconsistency level.
//!
//! All baselines answer the same interface so the benchmark harness can
//! compare *meaningful answer rates* on KBs with injected contradictions
//! (experiment X1 in DESIGN.md).

pub mod classical;
pub mod mcs;
pub mod stratified;

use dl::Axiom;
use tableau::ReasonerError;

/// A yes/no/degenerate answer from a baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Answer {
    /// Entailed for a meaningful reason.
    Yes,
    /// Not entailed.
    No,
    /// The method degenerated (e.g. classical explosion: "yes, but only
    /// because everything is entailed").
    Trivial,
}

impl Answer {
    /// Did the method produce usable information?
    pub fn is_meaningful(self) -> bool {
        !matches!(self, Answer::Trivial)
    }
}

/// Common interface over the baselines.
pub trait InconsistencyBaseline {
    /// Human-readable method name for reports.
    fn name(&self) -> &'static str;

    /// Answer an entailment query over the (possibly inconsistent) KB.
    fn entails(&mut self, query: &Axiom) -> Result<Answer, ReasonerError>;
}
