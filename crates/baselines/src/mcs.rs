//! Consistent-subset baselines.
//!
//! * [`McsBaseline`] — reason over **maximal consistent subsets** (MCS)
//!   of the axiom set: *skeptical* (entailed by every MCS) or *credulous*
//!   (entailed by some MCS). Exponential in the number of axioms touched
//!   by conflicts; usable for the benchmark sizes.
//! * [`RelevanceBaseline`] — Huang-style *syntactic relevance* selection
//!   (§5 of the paper, citing Huang et al., IJCAI 2005): grow a
//!   neighborhood of the query by shared symbols, one hop at a time, and
//!   answer from the largest still-consistent neighborhood.

use crate::{Answer, InconsistencyBaseline};
use dl::kb::{KnowledgeBase, Signature};
use dl::Axiom;
use tableau::{Config, Reasoner, ReasonerError};

/// Skeptical vs credulous MCS entailment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McsMode {
    /// Entailed by every maximal consistent subset.
    Skeptical,
    /// Entailed by at least one maximal consistent subset.
    Credulous,
}

/// Maximal-consistent-subset reasoning.
pub struct McsBaseline {
    axioms: Vec<Axiom>,
    mode: McsMode,
    config: Config,
    /// Cached maximal consistent subsets (axiom index sets).
    mcs_cache: Option<Vec<Vec<usize>>>,
}

impl McsBaseline {
    /// Practical cap: subset enumeration is exponential.
    pub const MAX_AXIOMS: usize = 24;

    /// Wrap a KB.
    pub fn new(kb: &KnowledgeBase, mode: McsMode) -> Self {
        assert!(
            kb.len() <= Self::MAX_AXIOMS,
            "MCS baseline caps at {} axioms, got {}",
            Self::MAX_AXIOMS,
            kb.len()
        );
        McsBaseline {
            axioms: kb.axioms().to_vec(),
            mode,
            config: Config::default(),
            mcs_cache: None,
        }
    }

    fn is_consistent_subset(&self, indices: &[usize]) -> Result<bool, ReasonerError> {
        let kb = KnowledgeBase::from_axioms(indices.iter().map(|&i| self.axioms[i].clone()));
        Reasoner::with_config(&kb, self.config.clone()).is_consistent()
    }

    /// All maximal consistent subsets, as sorted index vectors.
    pub fn maximal_consistent_subsets(&mut self) -> Result<Vec<Vec<usize>>, ReasonerError> {
        if let Some(cache) = &self.mcs_cache {
            return Ok(cache.clone());
        }
        let n = self.axioms.len();
        // Enumerate subsets largest-first; a subset is an MCS iff it is
        // consistent and no already-found MCS contains it.
        let mut found: Vec<Vec<usize>> = Vec::new();
        let mut by_size: Vec<Vec<Vec<usize>>> = vec![Vec::new(); n + 1];
        for mask in 0u32..(1 << n) {
            let subset: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            by_size[subset.len()].push(subset);
        }
        for size in (0..=n).rev() {
            for subset in &by_size[size] {
                let dominated = found.iter().any(|m| subset.iter().all(|i| m.contains(i)));
                if dominated {
                    continue;
                }
                if self.is_consistent_subset(subset)? {
                    found.push(subset.clone());
                }
            }
        }
        self.mcs_cache = Some(found.clone());
        Ok(found)
    }
}

impl InconsistencyBaseline for McsBaseline {
    fn name(&self) -> &'static str {
        match self.mode {
            McsMode::Skeptical => "mcs-skeptical",
            McsMode::Credulous => "mcs-credulous",
        }
    }

    fn entails(&mut self, query: &Axiom) -> Result<Answer, ReasonerError> {
        let subsets = self.maximal_consistent_subsets()?;
        if subsets.is_empty() {
            // Even the empty set is consistent, so this cannot happen;
            // defend anyway.
            return Ok(Answer::Trivial);
        }
        let mode = self.mode;
        let config = self.config.clone();
        let axioms = self.axioms.clone();
        let mut any = false;
        let mut all = true;
        for subset in &subsets {
            let kb = KnowledgeBase::from_axioms(subset.iter().map(|&i| axioms[i].clone()));
            let hit = Reasoner::with_config(&kb, config.clone()).entails(query)?;
            any |= hit;
            all &= hit;
        }
        Ok(match (mode, any, all) {
            (McsMode::Skeptical, _, true) | (McsMode::Credulous, true, _) => Answer::Yes,
            _ => Answer::No,
        })
    }
}

/// Huang-style syntactic-relevance selection.
pub struct RelevanceBaseline {
    axioms: Vec<Axiom>,
    config: Config,
}

impl RelevanceBaseline {
    /// Wrap a KB.
    pub fn new(kb: &KnowledgeBase) -> Self {
        RelevanceBaseline {
            axioms: kb.axioms().to_vec(),
            config: Config::default(),
        }
    }

    fn axiom_signature(ax: &Axiom) -> Signature {
        let mut sig = Signature::default();
        sig.extend_from_axiom(ax);
        sig
    }

    fn shares_symbol(a: &Signature, b: &Signature) -> bool {
        a.concepts.intersection(&b.concepts).next().is_some()
            || a.roles.intersection(&b.roles).next().is_some()
            || a.data_roles.intersection(&b.data_roles).next().is_some()
            || a.individuals.intersection(&b.individuals).next().is_some()
    }

    /// The increasing relevance neighborhoods `Σ₁ ⊆ Σ₂ ⊆ …` of a query:
    /// `Σ₁` is the directly relevant axioms, `Σ_{k+1}` adds axioms
    /// sharing a symbol with `Σ_k`.
    pub fn neighborhoods(&self, query: &Axiom) -> Vec<Vec<usize>> {
        let sigs: Vec<Signature> = self.axioms.iter().map(Self::axiom_signature).collect();
        let mut frontier_sig = Self::axiom_signature(query);
        let mut selected: Vec<usize> = Vec::new();
        let mut out = Vec::new();
        loop {
            let mut grew = false;
            for (i, sig) in sigs.iter().enumerate() {
                if !selected.contains(&i) && Self::shares_symbol(&frontier_sig, sig) {
                    selected.push(i);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
            selected.sort_unstable();
            out.push(selected.clone());
            // Extend the frontier signature with everything selected.
            for &i in &selected {
                let s = &sigs[i];
                frontier_sig.concepts.extend(s.concepts.iter().cloned());
                frontier_sig.roles.extend(s.roles.iter().cloned());
                frontier_sig.data_roles.extend(s.data_roles.iter().cloned());
                frontier_sig
                    .individuals
                    .extend(s.individuals.iter().cloned());
            }
        }
        out
    }
}

impl InconsistencyBaseline for RelevanceBaseline {
    fn name(&self) -> &'static str {
        "syntactic-relevance"
    }

    fn entails(&mut self, query: &Axiom) -> Result<Answer, ReasonerError> {
        let hoods = self.neighborhoods(query);
        // Use the largest consistent neighborhood.
        let mut chosen: Option<Vec<usize>> = None;
        for hood in &hoods {
            let kb = KnowledgeBase::from_axioms(hood.iter().map(|&i| self.axioms[i].clone()));
            if Reasoner::with_config(&kb, self.config.clone()).is_consistent()? {
                chosen = Some(hood.clone());
            } else {
                break;
            }
        }
        let Some(indices) = chosen else {
            // Even the directly relevant axioms are inconsistent: the
            // selection strategy degenerates.
            return Ok(Answer::Trivial);
        };
        let kb = KnowledgeBase::from_axioms(indices.iter().map(|&i| self.axioms[i].clone()));
        Ok(
            if Reasoner::with_config(&kb, self.config.clone()).entails(query)? {
                Answer::Yes
            } else {
                Answer::No
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::parser::parse_kb;
    use dl::{Concept, IndividualName};

    fn q(i: &str, c: &str) -> Axiom {
        Axiom::ConceptAssertion(IndividualName::new(i), Concept::atomic(c))
    }

    /// The medical KB of the paper's Example 2, classically inconsistent.
    fn example2() -> KnowledgeBase {
        parse_kb(
            "SurgicalTeam SubClassOf not ReadPatientRecordTeam
             UrgencyTeam SubClassOf ReadPatientRecordTeam
             john : SurgicalTeam
             john : UrgencyTeam",
        )
        .unwrap()
    }

    #[test]
    fn mcs_enumeration_finds_repairs() {
        let mut b = McsBaseline::new(&example2(), McsMode::Skeptical);
        let subsets = b.maximal_consistent_subsets().unwrap();
        // Dropping any single axiom restores consistency → four MCS of
        // size 3.
        assert_eq!(subsets.len(), 4);
        assert!(subsets.iter().all(|s| s.len() == 3));
    }

    #[test]
    fn skeptical_vs_credulous() {
        let query = q("john", "ReadPatientRecordTeam");
        let mut skeptical = McsBaseline::new(&example2(), McsMode::Skeptical);
        let mut credulous = McsBaseline::new(&example2(), McsMode::Credulous);
        // Some repairs drop UrgencyTeam(john) or the second axiom, so the
        // skeptical answer is No; a repair keeping them gives credulous
        // Yes.
        assert_eq!(skeptical.entails(&query).unwrap(), Answer::No);
        assert_eq!(credulous.entails(&query).unwrap(), Answer::Yes);
    }

    #[test]
    fn mcs_on_consistent_kb_is_plain_entailment() {
        let kb = parse_kb("A SubClassOf B\nx : A").unwrap();
        let mut b = McsBaseline::new(&kb, McsMode::Skeptical);
        assert_eq!(b.entails(&q("x", "B")).unwrap(), Answer::Yes);
        assert_eq!(b.entails(&q("x", "C")).unwrap(), Answer::No);
    }

    #[test]
    fn relevance_neighborhoods_grow_monotonically() {
        let kb = parse_kb(
            "A SubClassOf B
             B SubClassOf C
             D SubClassOf E
             x : A",
        )
        .unwrap();
        let b = RelevanceBaseline::new(&kb);
        let hoods = b.neighborhoods(&q("x", "A"));
        assert!(!hoods.is_empty());
        for w in hoods.windows(2) {
            assert!(w[0].len() <= w[1].len());
            assert!(w[0].iter().all(|i| w[1].contains(i)));
        }
        // The D ⊑ E axiom is never relevant.
        let last = hoods.last().unwrap();
        assert!(!last.contains(&2));
    }

    #[test]
    fn relevance_answers_from_consistent_neighborhood() {
        // The contradiction lives far from the query, so relevance-based
        // selection answers meaningfully where classical explodes.
        let kb = parse_kb(
            "A SubClassOf B
             x : A
             y : Weird and not Weird",
        )
        .unwrap();
        let mut b = RelevanceBaseline::new(&kb);
        assert_eq!(b.entails(&q("x", "B")).unwrap(), Answer::Yes);
    }

    #[test]
    fn relevance_degenerates_when_conflict_is_local() {
        // The query symbol is the conflict: Σ₁ already inconsistent.
        let kb = parse_kb("x : A\nx : not A").unwrap();
        let mut b = RelevanceBaseline::new(&kb);
        assert_eq!(b.entails(&q("x", "A")).unwrap(), Answer::Trivial);
    }
}
