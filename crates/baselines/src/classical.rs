//! The do-nothing baseline: classical reasoning, which trivializes on
//! inconsistent input ("a single contradiction … leads to the only
//! trivial logic consequence which includes everything", §1).

use crate::{Answer, InconsistencyBaseline};
use dl::kb::KnowledgeBase;
use dl::Axiom;
use tableau::{Config, Reasoner, ReasonerError};

/// Classical SHOIN(D) entailment; reports [`Answer::Trivial`] for every
/// query once the KB is inconsistent.
pub struct ClassicalBaseline {
    reasoner: Reasoner,
    consistent: Option<bool>,
}

impl ClassicalBaseline {
    /// Wrap a KB.
    pub fn new(kb: &KnowledgeBase) -> Self {
        Self::with_config(kb, Config::default())
    }

    /// Wrap a KB with an explicit tableau configuration.
    pub fn with_config(kb: &KnowledgeBase, config: Config) -> Self {
        ClassicalBaseline {
            reasoner: Reasoner::with_config(kb, config),
            consistent: None,
        }
    }

    /// Is the underlying KB consistent?
    pub fn is_consistent(&mut self) -> Result<bool, ReasonerError> {
        if let Some(c) = self.consistent {
            return Ok(c);
        }
        let c = self.reasoner.is_consistent()?;
        self.consistent = Some(c);
        Ok(c)
    }
}

impl InconsistencyBaseline for ClassicalBaseline {
    fn name(&self) -> &'static str {
        "classical"
    }

    fn entails(&mut self, query: &Axiom) -> Result<Answer, ReasonerError> {
        if !self.is_consistent()? {
            return Ok(Answer::Trivial);
        }
        Ok(if self.reasoner.entails(query)? {
            Answer::Yes
        } else {
            Answer::No
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::parser::parse_kb;
    use dl::{Concept, IndividualName};

    #[test]
    fn consistent_kb_answers_normally() {
        let kb = parse_kb("A SubClassOf B\nx : A").unwrap();
        let mut b = ClassicalBaseline::new(&kb);
        let q = Axiom::ConceptAssertion(IndividualName::new("x"), Concept::atomic("B"));
        assert_eq!(b.entails(&q).unwrap(), Answer::Yes);
        let q = Axiom::ConceptAssertion(IndividualName::new("x"), Concept::atomic("C"));
        assert_eq!(b.entails(&q).unwrap(), Answer::No);
    }

    #[test]
    fn inconsistent_kb_trivializes() {
        let kb = parse_kb("x : A and not A").unwrap();
        let mut b = ClassicalBaseline::new(&kb);
        let q = Axiom::ConceptAssertion(IndividualName::new("unrelated"), Concept::atomic("Q"));
        assert_eq!(b.entails(&q).unwrap(), Answer::Trivial);
        assert!(!b.entails(&q).unwrap().is_meaningful());
    }
}
