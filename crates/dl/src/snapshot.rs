//! Compact binary snapshots of knowledge bases.
//!
//! A tagged, length-prefixed binary format for persisting and shipping
//! KBs (the text syntax is for humans; snapshots are for caches and
//! benchmark corpora). The format is self-contained and versioned:
//!
//! ```text
//! "DLKB" <version:u8> <axiom-count:u32> <axiom>*
//! ```
//!
//! with recursive tag bytes for concepts, roles and data ranges. Decoding
//! never panics on corrupt input — every failure is a typed
//! [`SnapshotError`].
//!
//! The wire primitives (`put_*`/`get_*`) are public so downstream
//! formats — e.g. the four-valued session snapshots and write-ahead
//! log in `shoin4::incremental` — can frame their own structures in
//! the same encoding instead of inventing a second one.

use crate::axiom::{Axiom, RoleExpr};
use crate::concept::Concept;
use crate::datatype::{BuiltinDatatype, DataRange, DataValue};
use crate::kb::KnowledgeBase;
use crate::name::{ConceptName, DataRoleName, IndividualName, RoleName};
use std::fmt;

const MAGIC: &[u8; 4] = b"DLKB";
const VERSION: u8 = 1;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the `DLKB` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The buffer ended mid-structure.
    UnexpectedEof,
    /// An unknown tag byte for the given structure kind.
    BadTag(&'static str, u8),
    /// A string payload was not UTF-8.
    BadUtf8,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a DLKB snapshot"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::UnexpectedEof => write!(f, "truncated snapshot"),
            SnapshotError::BadTag(kind, t) => write!(f, "bad {kind} tag byte {t:#x}"),
            SnapshotError::BadUtf8 => write!(f, "non-UTF-8 string in snapshot"),
        }
    }
}

impl std::error::Error for SnapshotError {}

type Result<T> = std::result::Result<T, SnapshotError>;

/// Serialize a KB to bytes.
pub fn encode(kb: &KnowledgeBase) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + kb.size() * 8);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    put_u32(&mut buf, kb.len() as u32);
    for ax in kb.axioms() {
        put_axiom(&mut buf, ax);
    }
    buf
}

/// Deserialize a KB from bytes.
pub fn decode(mut buf: &[u8]) -> Result<KnowledgeBase> {
    if buf.len() < 4 {
        return Err(SnapshotError::UnexpectedEof);
    }
    let (magic, rest) = buf.split_at(4);
    buf = rest;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = get_u8(&mut buf)?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let count = get_u32(&mut buf)?;
    let mut axioms = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        axioms.push(get_axiom(&mut buf)?);
    }
    Ok(KnowledgeBase::from_axioms(axioms))
}

/// Append a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, n: u32) {
    buf.extend_from_slice(&n.to_le_bytes());
}

/// Append a little-endian `i64`.
pub fn put_i64(buf: &mut Vec<u8>, n: i64) {
    buf.extend_from_slice(&n.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Read one byte.
pub fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    let (&b, rest) = buf.split_first().ok_or(SnapshotError::UnexpectedEof)?;
    *buf = rest;
    Ok(b)
}

/// Read a little-endian `u32`.
pub fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.len() < 4 {
        return Err(SnapshotError::UnexpectedEof);
    }
    let (head, rest) = buf.split_at(4);
    *buf = rest;
    Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
}

/// Read a little-endian `i64`.
pub fn get_i64(buf: &mut &[u8]) -> Result<i64> {
    if buf.len() < 8 {
        return Err(SnapshotError::UnexpectedEof);
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    Ok(i64::from_le_bytes(head.try_into().expect("8 bytes")))
}

/// Read a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut &[u8]) -> Result<String> {
    let len = get_u32(buf)? as usize;
    if buf.len() < len {
        return Err(SnapshotError::UnexpectedEof);
    }
    let (head, rest) = buf.split_at(len);
    *buf = rest;
    String::from_utf8(head.to_vec()).map_err(|_| SnapshotError::BadUtf8)
}

/// Append a role expression (inverse flag + name).
pub fn put_role(buf: &mut Vec<u8>, r: &RoleExpr) {
    buf.push(u8::from(r.is_inverse()));
    put_str(buf, r.name().as_str());
}

/// Read a role expression.
pub fn get_role(buf: &mut &[u8]) -> Result<RoleExpr> {
    let inv = get_u8(buf)? != 0;
    let name = get_str(buf)?;
    let r = RoleExpr::named(name);
    Ok(if inv { r.inverse() } else { r })
}

/// Append a tagged data value.
pub fn put_value(buf: &mut Vec<u8>, v: &DataValue) {
    match v {
        DataValue::Integer(i) => {
            buf.push(0);
            put_i64(buf, *i);
        }
        DataValue::Boolean(b) => {
            buf.push(1);
            buf.push(u8::from(*b));
        }
        DataValue::Str(s) => {
            buf.push(2);
            put_str(buf, s);
        }
    }
}

/// Read a tagged data value.
pub fn get_value(buf: &mut &[u8]) -> Result<DataValue> {
    match get_u8(buf)? {
        0 => Ok(DataValue::Integer(get_i64(buf)?)),
        1 => Ok(DataValue::Boolean(get_u8(buf)? != 0)),
        2 => Ok(DataValue::Str(get_str(buf)?)),
        t => Err(SnapshotError::BadTag("data value", t)),
    }
}

/// Append a tagged data range.
pub fn put_range(buf: &mut Vec<u8>, d: &DataRange) {
    match d {
        DataRange::Datatype(dt) => {
            buf.push(0);
            buf.push(match dt {
                BuiltinDatatype::Integer => 0,
                BuiltinDatatype::Boolean => 1,
                BuiltinDatatype::Str => 2,
            });
        }
        DataRange::OneOf(vs) => {
            buf.push(1);
            put_u32(buf, vs.len() as u32);
            for v in vs {
                put_value(buf, v);
            }
        }
        DataRange::IntRange { min, max } => {
            buf.push(2);
            buf.push(u8::from(min.is_some()));
            if let Some(m) = min {
                put_i64(buf, *m);
            }
            buf.push(u8::from(max.is_some()));
            if let Some(m) = max {
                put_i64(buf, *m);
            }
        }
        DataRange::Not(inner) => {
            buf.push(3);
            put_range(buf, inner);
        }
    }
}

/// Read a tagged data range.
pub fn get_range(buf: &mut &[u8]) -> Result<DataRange> {
    match get_u8(buf)? {
        0 => Ok(DataRange::Datatype(match get_u8(buf)? {
            0 => BuiltinDatatype::Integer,
            1 => BuiltinDatatype::Boolean,
            2 => BuiltinDatatype::Str,
            t => return Err(SnapshotError::BadTag("datatype", t)),
        })),
        1 => {
            let n = get_u32(buf)?;
            let mut vs = Vec::with_capacity(n.min(1 << 16) as usize);
            for _ in 0..n {
                vs.push(get_value(buf)?);
            }
            Ok(DataRange::one_of(vs))
        }
        2 => {
            let min = if get_u8(buf)? != 0 {
                Some(get_i64(buf)?)
            } else {
                None
            };
            let max = if get_u8(buf)? != 0 {
                Some(get_i64(buf)?)
            } else {
                None
            };
            Ok(DataRange::IntRange { min, max })
        }
        3 => Ok(DataRange::Not(Box::new(get_range(buf)?))),
        t => Err(SnapshotError::BadTag("data range", t)),
    }
}

/// Append a concept, recursively tagged.
pub fn put_concept(buf: &mut Vec<u8>, c: &Concept) {
    match c {
        Concept::Top => buf.push(0),
        Concept::Bottom => buf.push(1),
        Concept::Atomic(a) => {
            buf.push(2);
            put_str(buf, a.as_str());
        }
        Concept::Not(inner) => {
            buf.push(3);
            put_concept(buf, inner);
        }
        Concept::And(l, r) => {
            buf.push(4);
            put_concept(buf, l);
            put_concept(buf, r);
        }
        Concept::Or(l, r) => {
            buf.push(5);
            put_concept(buf, l);
            put_concept(buf, r);
        }
        Concept::OneOf(os) => {
            buf.push(6);
            put_u32(buf, os.len() as u32);
            for o in os {
                put_str(buf, o.as_str());
            }
        }
        Concept::Some(r, f) => {
            buf.push(7);
            put_role(buf, r);
            put_concept(buf, f);
        }
        Concept::All(r, f) => {
            buf.push(8);
            put_role(buf, r);
            put_concept(buf, f);
        }
        Concept::AtLeast(n, r) => {
            buf.push(9);
            put_u32(buf, *n);
            put_role(buf, r);
        }
        Concept::AtMost(n, r) => {
            buf.push(10);
            put_u32(buf, *n);
            put_role(buf, r);
        }
        Concept::DataSome(u, d) => {
            buf.push(11);
            put_str(buf, u.as_str());
            put_range(buf, d);
        }
        Concept::DataAll(u, d) => {
            buf.push(12);
            put_str(buf, u.as_str());
            put_range(buf, d);
        }
        Concept::DataAtLeast(n, u) => {
            buf.push(13);
            put_u32(buf, *n);
            put_str(buf, u.as_str());
        }
        Concept::DataAtMost(n, u) => {
            buf.push(14);
            put_u32(buf, *n);
            put_str(buf, u.as_str());
        }
    }
}

/// Read a concept.
pub fn get_concept(buf: &mut &[u8]) -> Result<Concept> {
    Ok(match get_u8(buf)? {
        0 => Concept::Top,
        1 => Concept::Bottom,
        2 => Concept::atomic(get_str(buf)?),
        3 => get_concept(buf)?.not(),
        4 => {
            let l = get_concept(buf)?;
            let r = get_concept(buf)?;
            l.and(r)
        }
        5 => {
            let l = get_concept(buf)?;
            let r = get_concept(buf)?;
            l.or(r)
        }
        6 => {
            let n = get_u32(buf)?;
            let mut os = Vec::with_capacity(n.min(1 << 16) as usize);
            for _ in 0..n {
                os.push(IndividualName::new(get_str(buf)?));
            }
            Concept::one_of(os)
        }
        7 => {
            let r = get_role(buf)?;
            Concept::some(r, get_concept(buf)?)
        }
        8 => {
            let r = get_role(buf)?;
            Concept::all(r, get_concept(buf)?)
        }
        9 => {
            let n = get_u32(buf)?;
            Concept::at_least(n, get_role(buf)?)
        }
        10 => {
            let n = get_u32(buf)?;
            Concept::at_most(n, get_role(buf)?)
        }
        11 => {
            let u = DataRoleName::new(get_str(buf)?);
            Concept::DataSome(u, get_range(buf)?)
        }
        12 => {
            let u = DataRoleName::new(get_str(buf)?);
            Concept::DataAll(u, get_range(buf)?)
        }
        13 => {
            let n = get_u32(buf)?;
            Concept::DataAtLeast(n, DataRoleName::new(get_str(buf)?))
        }
        14 => {
            let n = get_u32(buf)?;
            Concept::DataAtMost(n, DataRoleName::new(get_str(buf)?))
        }
        t => return Err(SnapshotError::BadTag("concept", t)),
    })
}

/// Append a classical axiom.
pub fn put_axiom(buf: &mut Vec<u8>, ax: &Axiom) {
    match ax {
        Axiom::ConceptInclusion(c, d) => {
            buf.push(0);
            put_concept(buf, c);
            put_concept(buf, d);
        }
        Axiom::RoleInclusion(r, s) => {
            buf.push(1);
            put_role(buf, r);
            put_role(buf, s);
        }
        Axiom::Transitive(r) => {
            buf.push(2);
            put_str(buf, r.as_str());
        }
        Axiom::DataRoleInclusion(u, v) => {
            buf.push(3);
            put_str(buf, u.as_str());
            put_str(buf, v.as_str());
        }
        Axiom::ConceptAssertion(a, c) => {
            buf.push(4);
            put_str(buf, a.as_str());
            put_concept(buf, c);
        }
        Axiom::RoleAssertion(r, a, b) => {
            buf.push(5);
            put_str(buf, r.as_str());
            put_str(buf, a.as_str());
            put_str(buf, b.as_str());
        }
        Axiom::DataAssertion(u, a, v) => {
            buf.push(6);
            put_str(buf, u.as_str());
            put_str(buf, a.as_str());
            put_value(buf, v);
        }
        Axiom::SameIndividual(a, b) => {
            buf.push(7);
            put_str(buf, a.as_str());
            put_str(buf, b.as_str());
        }
        Axiom::DifferentIndividuals(a, b) => {
            buf.push(8);
            put_str(buf, a.as_str());
            put_str(buf, b.as_str());
        }
    }
}

/// Read a classical axiom.
pub fn get_axiom(buf: &mut &[u8]) -> Result<Axiom> {
    Ok(match get_u8(buf)? {
        0 => {
            let c = get_concept(buf)?;
            let d = get_concept(buf)?;
            Axiom::ConceptInclusion(c, d)
        }
        1 => {
            let r = get_role(buf)?;
            let s = get_role(buf)?;
            Axiom::RoleInclusion(r, s)
        }
        2 => Axiom::Transitive(RoleName::new(get_str(buf)?)),
        3 => {
            let u = DataRoleName::new(get_str(buf)?);
            let v = DataRoleName::new(get_str(buf)?);
            Axiom::DataRoleInclusion(u, v)
        }
        4 => {
            let a = IndividualName::new(get_str(buf)?);
            Axiom::ConceptAssertion(a, get_concept(buf)?)
        }
        5 => {
            let r = RoleName::new(get_str(buf)?);
            let a = IndividualName::new(get_str(buf)?);
            let b = IndividualName::new(get_str(buf)?);
            Axiom::RoleAssertion(r, a, b)
        }
        6 => {
            let u = DataRoleName::new(get_str(buf)?);
            let a = IndividualName::new(get_str(buf)?);
            Axiom::DataAssertion(u, a, get_value(buf)?)
        }
        7 => {
            let a = IndividualName::new(get_str(buf)?);
            let b = IndividualName::new(get_str(buf)?);
            Axiom::SameIndividual(a, b)
        }
        8 => {
            let a = IndividualName::new(get_str(buf)?);
            let b = IndividualName::new(get_str(buf)?);
            Axiom::DifferentIndividuals(a, b)
        }
        t => return Err(SnapshotError::BadTag("axiom", t)),
    })
}

// Silence the unused-import warning for ConceptName: names in snapshots
// are created through `Concept::atomic`, keeping one construction path.
#[allow(unused_imports)]
use ConceptName as _ConceptNameUsedViaAtomic;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kb;

    fn sample() -> KnowledgeBase {
        parse_kb(
            "DataRole: hasAge
             Adult EquivalentTo Person and hasAge some integer[18..]
             Kid SubClassOf not Adult and (hasParent some {alice, bob})
             inverse hasParent SubRoleOf hasChild
             Transitive(partOf)
             u SubDataRoleOf v
             alice : Adult
             hasParent(kid1, alice)
             hasAge(alice, 40)
             name(alice, \"Alice\")
             flag(alice, true)
             alice = al
             alice != bob
             Kid SubClassOf hasParent min 1
             Kid SubClassOf hasParent max 2
             Weird SubClassOf hasAge only not({1, 2})",
        )
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let kb = sample();
        let bytes = encode(&kb);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, kb);
    }

    #[test]
    fn round_trip_empty() {
        let kb = KnowledgeBase::new();
        assert_eq!(decode(&encode(&kb)).unwrap(), kb);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOPE....."), Err(SnapshotError::BadMagic));
        assert_eq!(decode(b""), Err(SnapshotError::UnexpectedEof));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[4] = 99;
        assert_eq!(decode(&bytes), Err(SnapshotError::BadVersion(99)));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode(&sample());
        // Every proper prefix must fail cleanly (no panic, no wrong KB).
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Err(_) => {}
                Ok(kb) => {
                    // A prefix that decodes must be a KB with fewer
                    // axioms declared — impossible since the count is in
                    // the header; treat as failure.
                    panic!("prefix of length {cut} decoded to {} axioms", kb.len());
                }
            }
        }
    }

    #[test]
    fn corrupted_tags_rejected() {
        let bytes = encode(&sample()).to_vec();
        // Flip a byte somewhere past the header and require a clean
        // result (either an error or a *different* KB, never a panic).
        for i in 9..bytes.len().min(60) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            let _ = decode(&corrupt);
        }
    }

    #[test]
    fn snapshots_are_compact() {
        let kb = sample();
        let bytes = encode(&kb);
        let text = crate::printer::print_kb(&kb);
        // Not a strong guarantee, just a sanity bound: the binary form
        // should not balloon past ~3x the text form.
        assert!(
            bytes.len() < text.len() * 3,
            "{} vs {}",
            bytes.len(),
            text.len()
        );
    }
}
