//! Compact binary snapshots of knowledge bases.
//!
//! A tagged, length-prefixed binary format for persisting and shipping
//! KBs (the text syntax is for humans; snapshots are for caches and
//! benchmark corpora). The format is self-contained and versioned:
//!
//! ```text
//! "DLKB" <version:u8> <axiom-count:u32> <axiom>*
//! ```
//!
//! with recursive tag bytes for concepts, roles and data ranges. Decoding
//! never panics on corrupt input — every failure is a typed
//! [`SnapshotError`].

use crate::axiom::{Axiom, RoleExpr};
use crate::concept::Concept;
use crate::datatype::{BuiltinDatatype, DataRange, DataValue};
use crate::kb::KnowledgeBase;
use crate::name::{ConceptName, DataRoleName, IndividualName, RoleName};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"DLKB";
const VERSION: u8 = 1;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the `DLKB` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The buffer ended mid-structure.
    UnexpectedEof,
    /// An unknown tag byte for the given structure kind.
    BadTag(&'static str, u8),
    /// A string payload was not UTF-8.
    BadUtf8,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a DLKB snapshot"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::UnexpectedEof => write!(f, "truncated snapshot"),
            SnapshotError::BadTag(kind, t) => write!(f, "bad {kind} tag byte {t:#x}"),
            SnapshotError::BadUtf8 => write!(f, "non-UTF-8 string in snapshot"),
        }
    }
}

impl std::error::Error for SnapshotError {}

type Result<T> = std::result::Result<T, SnapshotError>;

/// Serialize a KB to bytes.
pub fn encode(kb: &KnowledgeBase) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + kb.size() * 8);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32_le(kb.len() as u32);
    for ax in kb.axioms() {
        put_axiom(&mut buf, ax);
    }
    buf.freeze()
}

/// Deserialize a KB from bytes.
pub fn decode(mut buf: &[u8]) -> Result<KnowledgeBase> {
    let mut magic = [0u8; 4];
    if buf.remaining() < 4 {
        return Err(SnapshotError::UnexpectedEof);
    }
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = get_u8(&mut buf)?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let count = get_u32(&mut buf)?;
    let mut axioms = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        axioms.push(get_axiom(&mut buf)?);
    }
    Ok(KnowledgeBase::from_axioms(axioms))
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(SnapshotError::UnexpectedEof);
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(SnapshotError::UnexpectedEof);
    }
    Ok(buf.get_u32_le())
}

fn get_i64(buf: &mut &[u8]) -> Result<i64> {
    if buf.remaining() < 8 {
        return Err(SnapshotError::UnexpectedEof);
    }
    Ok(buf.get_i64_le())
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(SnapshotError::UnexpectedEof);
    }
    let bytes = buf[..len].to_vec();
    buf.advance(len);
    String::from_utf8(bytes).map_err(|_| SnapshotError::BadUtf8)
}

fn put_role(buf: &mut BytesMut, r: &RoleExpr) {
    buf.put_u8(u8::from(r.is_inverse()));
    put_str(buf, r.name().as_str());
}

fn get_role(buf: &mut &[u8]) -> Result<RoleExpr> {
    let inv = get_u8(buf)? != 0;
    let name = get_str(buf)?;
    let r = RoleExpr::named(name);
    Ok(if inv { r.inverse() } else { r })
}

fn put_value(buf: &mut BytesMut, v: &DataValue) {
    match v {
        DataValue::Integer(i) => {
            buf.put_u8(0);
            buf.put_i64_le(*i);
        }
        DataValue::Boolean(b) => {
            buf.put_u8(1);
            buf.put_u8(u8::from(*b));
        }
        DataValue::Str(s) => {
            buf.put_u8(2);
            put_str(buf, s);
        }
    }
}

fn get_value(buf: &mut &[u8]) -> Result<DataValue> {
    match get_u8(buf)? {
        0 => Ok(DataValue::Integer(get_i64(buf)?)),
        1 => Ok(DataValue::Boolean(get_u8(buf)? != 0)),
        2 => Ok(DataValue::Str(get_str(buf)?)),
        t => Err(SnapshotError::BadTag("data value", t)),
    }
}

fn put_range(buf: &mut BytesMut, d: &DataRange) {
    match d {
        DataRange::Datatype(dt) => {
            buf.put_u8(0);
            buf.put_u8(match dt {
                BuiltinDatatype::Integer => 0,
                BuiltinDatatype::Boolean => 1,
                BuiltinDatatype::Str => 2,
            });
        }
        DataRange::OneOf(vs) => {
            buf.put_u8(1);
            buf.put_u32_le(vs.len() as u32);
            for v in vs {
                put_value(buf, v);
            }
        }
        DataRange::IntRange { min, max } => {
            buf.put_u8(2);
            buf.put_u8(u8::from(min.is_some()));
            if let Some(m) = min {
                buf.put_i64_le(*m);
            }
            buf.put_u8(u8::from(max.is_some()));
            if let Some(m) = max {
                buf.put_i64_le(*m);
            }
        }
        DataRange::Not(inner) => {
            buf.put_u8(3);
            put_range(buf, inner);
        }
    }
}

fn get_range(buf: &mut &[u8]) -> Result<DataRange> {
    match get_u8(buf)? {
        0 => Ok(DataRange::Datatype(match get_u8(buf)? {
            0 => BuiltinDatatype::Integer,
            1 => BuiltinDatatype::Boolean,
            2 => BuiltinDatatype::Str,
            t => return Err(SnapshotError::BadTag("datatype", t)),
        })),
        1 => {
            let n = get_u32(buf)?;
            let mut vs = Vec::with_capacity(n.min(1 << 16) as usize);
            for _ in 0..n {
                vs.push(get_value(buf)?);
            }
            Ok(DataRange::one_of(vs))
        }
        2 => {
            let min = if get_u8(buf)? != 0 {
                Some(get_i64(buf)?)
            } else {
                None
            };
            let max = if get_u8(buf)? != 0 {
                Some(get_i64(buf)?)
            } else {
                None
            };
            Ok(DataRange::IntRange { min, max })
        }
        3 => Ok(DataRange::Not(Box::new(get_range(buf)?))),
        t => Err(SnapshotError::BadTag("data range", t)),
    }
}

fn put_concept(buf: &mut BytesMut, c: &Concept) {
    match c {
        Concept::Top => buf.put_u8(0),
        Concept::Bottom => buf.put_u8(1),
        Concept::Atomic(a) => {
            buf.put_u8(2);
            put_str(buf, a.as_str());
        }
        Concept::Not(inner) => {
            buf.put_u8(3);
            put_concept(buf, inner);
        }
        Concept::And(l, r) => {
            buf.put_u8(4);
            put_concept(buf, l);
            put_concept(buf, r);
        }
        Concept::Or(l, r) => {
            buf.put_u8(5);
            put_concept(buf, l);
            put_concept(buf, r);
        }
        Concept::OneOf(os) => {
            buf.put_u8(6);
            buf.put_u32_le(os.len() as u32);
            for o in os {
                put_str(buf, o.as_str());
            }
        }
        Concept::Some(r, f) => {
            buf.put_u8(7);
            put_role(buf, r);
            put_concept(buf, f);
        }
        Concept::All(r, f) => {
            buf.put_u8(8);
            put_role(buf, r);
            put_concept(buf, f);
        }
        Concept::AtLeast(n, r) => {
            buf.put_u8(9);
            buf.put_u32_le(*n);
            put_role(buf, r);
        }
        Concept::AtMost(n, r) => {
            buf.put_u8(10);
            buf.put_u32_le(*n);
            put_role(buf, r);
        }
        Concept::DataSome(u, d) => {
            buf.put_u8(11);
            put_str(buf, u.as_str());
            put_range(buf, d);
        }
        Concept::DataAll(u, d) => {
            buf.put_u8(12);
            put_str(buf, u.as_str());
            put_range(buf, d);
        }
        Concept::DataAtLeast(n, u) => {
            buf.put_u8(13);
            buf.put_u32_le(*n);
            put_str(buf, u.as_str());
        }
        Concept::DataAtMost(n, u) => {
            buf.put_u8(14);
            buf.put_u32_le(*n);
            put_str(buf, u.as_str());
        }
    }
}

fn get_concept(buf: &mut &[u8]) -> Result<Concept> {
    Ok(match get_u8(buf)? {
        0 => Concept::Top,
        1 => Concept::Bottom,
        2 => Concept::atomic(get_str(buf)?),
        3 => get_concept(buf)?.not(),
        4 => {
            let l = get_concept(buf)?;
            let r = get_concept(buf)?;
            l.and(r)
        }
        5 => {
            let l = get_concept(buf)?;
            let r = get_concept(buf)?;
            l.or(r)
        }
        6 => {
            let n = get_u32(buf)?;
            let mut os = Vec::with_capacity(n.min(1 << 16) as usize);
            for _ in 0..n {
                os.push(IndividualName::new(get_str(buf)?));
            }
            Concept::one_of(os)
        }
        7 => {
            let r = get_role(buf)?;
            Concept::some(r, get_concept(buf)?)
        }
        8 => {
            let r = get_role(buf)?;
            Concept::all(r, get_concept(buf)?)
        }
        9 => {
            let n = get_u32(buf)?;
            Concept::at_least(n, get_role(buf)?)
        }
        10 => {
            let n = get_u32(buf)?;
            Concept::at_most(n, get_role(buf)?)
        }
        11 => {
            let u = DataRoleName::new(get_str(buf)?);
            Concept::DataSome(u, get_range(buf)?)
        }
        12 => {
            let u = DataRoleName::new(get_str(buf)?);
            Concept::DataAll(u, get_range(buf)?)
        }
        13 => {
            let n = get_u32(buf)?;
            Concept::DataAtLeast(n, DataRoleName::new(get_str(buf)?))
        }
        14 => {
            let n = get_u32(buf)?;
            Concept::DataAtMost(n, DataRoleName::new(get_str(buf)?))
        }
        t => return Err(SnapshotError::BadTag("concept", t)),
    })
}

fn put_axiom(buf: &mut BytesMut, ax: &Axiom) {
    match ax {
        Axiom::ConceptInclusion(c, d) => {
            buf.put_u8(0);
            put_concept(buf, c);
            put_concept(buf, d);
        }
        Axiom::RoleInclusion(r, s) => {
            buf.put_u8(1);
            put_role(buf, r);
            put_role(buf, s);
        }
        Axiom::Transitive(r) => {
            buf.put_u8(2);
            put_str(buf, r.as_str());
        }
        Axiom::DataRoleInclusion(u, v) => {
            buf.put_u8(3);
            put_str(buf, u.as_str());
            put_str(buf, v.as_str());
        }
        Axiom::ConceptAssertion(a, c) => {
            buf.put_u8(4);
            put_str(buf, a.as_str());
            put_concept(buf, c);
        }
        Axiom::RoleAssertion(r, a, b) => {
            buf.put_u8(5);
            put_str(buf, r.as_str());
            put_str(buf, a.as_str());
            put_str(buf, b.as_str());
        }
        Axiom::DataAssertion(u, a, v) => {
            buf.put_u8(6);
            put_str(buf, u.as_str());
            put_str(buf, a.as_str());
            put_value(buf, v);
        }
        Axiom::SameIndividual(a, b) => {
            buf.put_u8(7);
            put_str(buf, a.as_str());
            put_str(buf, b.as_str());
        }
        Axiom::DifferentIndividuals(a, b) => {
            buf.put_u8(8);
            put_str(buf, a.as_str());
            put_str(buf, b.as_str());
        }
    }
}

fn get_axiom(buf: &mut &[u8]) -> Result<Axiom> {
    Ok(match get_u8(buf)? {
        0 => {
            let c = get_concept(buf)?;
            let d = get_concept(buf)?;
            Axiom::ConceptInclusion(c, d)
        }
        1 => {
            let r = get_role(buf)?;
            let s = get_role(buf)?;
            Axiom::RoleInclusion(r, s)
        }
        2 => Axiom::Transitive(RoleName::new(get_str(buf)?)),
        3 => {
            let u = DataRoleName::new(get_str(buf)?);
            let v = DataRoleName::new(get_str(buf)?);
            Axiom::DataRoleInclusion(u, v)
        }
        4 => {
            let a = IndividualName::new(get_str(buf)?);
            Axiom::ConceptAssertion(a, get_concept(buf)?)
        }
        5 => {
            let r = RoleName::new(get_str(buf)?);
            let a = IndividualName::new(get_str(buf)?);
            let b = IndividualName::new(get_str(buf)?);
            Axiom::RoleAssertion(r, a, b)
        }
        6 => {
            let u = DataRoleName::new(get_str(buf)?);
            let a = IndividualName::new(get_str(buf)?);
            Axiom::DataAssertion(u, a, get_value(buf)?)
        }
        7 => {
            let a = IndividualName::new(get_str(buf)?);
            let b = IndividualName::new(get_str(buf)?);
            Axiom::SameIndividual(a, b)
        }
        8 => {
            let a = IndividualName::new(get_str(buf)?);
            let b = IndividualName::new(get_str(buf)?);
            Axiom::DifferentIndividuals(a, b)
        }
        t => return Err(SnapshotError::BadTag("axiom", t)),
    })
}

// Silence the unused-import warning for ConceptName: names in snapshots
// are created through `Concept::atomic`, keeping one construction path.
#[allow(unused_imports)]
use ConceptName as _ConceptNameUsedViaAtomic;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kb;

    fn sample() -> KnowledgeBase {
        parse_kb(
            "DataRole: hasAge
             Adult EquivalentTo Person and hasAge some integer[18..]
             Kid SubClassOf not Adult and (hasParent some {alice, bob})
             inverse hasParent SubRoleOf hasChild
             Transitive(partOf)
             u SubDataRoleOf v
             alice : Adult
             hasParent(kid1, alice)
             hasAge(alice, 40)
             name(alice, \"Alice\")
             flag(alice, true)
             alice = al
             alice != bob
             Kid SubClassOf hasParent min 1
             Kid SubClassOf hasParent max 2
             Weird SubClassOf hasAge only not({1, 2})",
        )
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let kb = sample();
        let bytes = encode(&kb);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, kb);
    }

    #[test]
    fn round_trip_empty() {
        let kb = KnowledgeBase::new();
        assert_eq!(decode(&encode(&kb)).unwrap(), kb);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOPE....."), Err(SnapshotError::BadMagic));
        assert_eq!(decode(b""), Err(SnapshotError::UnexpectedEof));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[4] = 99;
        assert_eq!(decode(&bytes), Err(SnapshotError::BadVersion(99)));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode(&sample());
        // Every proper prefix must fail cleanly (no panic, no wrong KB).
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Err(_) => {}
                Ok(kb) => {
                    // A prefix that decodes must be a KB with fewer
                    // axioms declared — impossible since the count is in
                    // the header; treat as failure.
                    panic!("prefix of length {cut} decoded to {} axioms", kb.len());
                }
            }
        }
    }

    #[test]
    fn corrupted_tags_rejected() {
        let bytes = encode(&sample()).to_vec();
        // Flip a byte somewhere past the header and require a clean
        // result (either an error or a *different* KB, never a panic).
        for i in 9..bytes.len().min(60) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            let _ = decode(&corrupt);
        }
    }

    #[test]
    fn snapshots_are_compact() {
        let kb = sample();
        let bytes = encode(&kb);
        let text = crate::printer::print_kb(&kb);
        // Not a strong guarantee, just a sanity bound: the binary form
        // should not balloon past ~3x the text form.
        assert!(bytes.len() < text.len() * 3, "{} vs {}", bytes.len(), text.len());
    }
}
