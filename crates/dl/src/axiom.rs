//! SHOIN(D) axioms — the TBox, RBox and ABox forms of Table 1 — and role
//! expressions (named roles and their inverses).

use crate::concept::Concept;
use crate::datatype::DataValue;
use crate::name::{DataRoleName, IndividualName, RoleName};
use std::fmt;

/// An object role expression: a named role or the inverse of one.
///
/// SHOIN(D) allows inverse roles (`I`); `R⁻⁻` is normalized to `R` by
/// construction, so every `RoleExpr` is either `R` or `R⁻` for named `R`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RoleExpr {
    name: RoleName,
    inverted: bool,
}

impl RoleExpr {
    /// A named role `R`.
    pub fn named(name: impl Into<RoleName>) -> Self {
        RoleExpr {
            name: name.into(),
            inverted: false,
        }
    }

    /// The inverse `self⁻`, with `R⁻⁻ = R`.
    pub fn inverse(&self) -> Self {
        RoleExpr {
            name: self.name.clone(),
            inverted: !self.inverted,
        }
    }

    /// The underlying role name.
    pub fn name(&self) -> &RoleName {
        &self.name
    }

    /// Is this an inverse role?
    pub fn is_inverse(&self) -> bool {
        self.inverted
    }

    /// Apply this expression's direction to an edge `(a, b)`: a named role
    /// relates `a → b`, an inverse role relates `b → a`.
    pub fn orient<T>(&self, a: T, b: T) -> (T, T) {
        if self.inverted {
            (b, a)
        } else {
            (a, b)
        }
    }
}

impl fmt::Display for RoleExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inverted {
            write!(f, "inverse {}", self.name)
        } else {
            write!(f, "{}", self.name)
        }
    }
}

/// A SHOIN(D) axiom (Table 1, lower block).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axiom {
    /// Concept inclusion `C₁ ⊑ C₂`.
    ConceptInclusion(Concept, Concept),
    /// Object role inclusion `R₁ ⊑ R₂`.
    RoleInclusion(RoleExpr, RoleExpr),
    /// Object role transitivity `Trans(R)`.
    Transitive(RoleName),
    /// Datatype role inclusion `U₁ ⊑ U₂`.
    DataRoleInclusion(DataRoleName, DataRoleName),
    /// Individual (concept) assertion `a : C`.
    ConceptAssertion(IndividualName, Concept),
    /// Object role assertion `R(a, b)`.
    RoleAssertion(RoleName, IndividualName, IndividualName),
    /// Datatype role assertion `U(a, v)`.
    DataAssertion(DataRoleName, IndividualName, DataValue),
    /// Individual equality `a = b`.
    SameIndividual(IndividualName, IndividualName),
    /// Individual inequality `a ≠ b`.
    DifferentIndividuals(IndividualName, IndividualName),
}

impl Axiom {
    /// Is this a terminological (TBox/RBox) axiom?
    pub fn is_tbox(&self) -> bool {
        matches!(
            self,
            Axiom::ConceptInclusion(..)
                | Axiom::RoleInclusion(..)
                | Axiom::Transitive(..)
                | Axiom::DataRoleInclusion(..)
        )
    }

    /// Is this an assertional (ABox) axiom?
    pub fn is_abox(&self) -> bool {
        !self.is_tbox()
    }

    /// Structural size (AST nodes), for complexity measurements.
    pub fn size(&self) -> usize {
        match self {
            Axiom::ConceptInclusion(c, d) => 1 + c.size() + d.size(),
            Axiom::ConceptAssertion(_, c) => 1 + c.size(),
            _ => 1,
        }
    }

    /// Concept equivalence `C ≡ D` encoded as two inclusions.
    pub fn equivalent(c: Concept, d: Concept) -> [Axiom; 2] {
        [
            Axiom::ConceptInclusion(c.clone(), d.clone()),
            Axiom::ConceptInclusion(d, c),
        ]
    }

    /// Concept disjointness `C ⊓ D ⊑ ⊥` as an inclusion.
    pub fn disjoint(c: Concept, d: Concept) -> Axiom {
        Axiom::ConceptInclusion(c.and(d), Concept::Bottom)
    }

    /// Domain restriction `∃R.⊤ ⊑ C`.
    pub fn domain(role: RoleExpr, c: Concept) -> Axiom {
        Axiom::ConceptInclusion(Concept::some(role, Concept::Top), c)
    }

    /// Range restriction `⊤ ⊑ ∀R.C`.
    pub fn range(role: RoleExpr, c: Concept) -> Axiom {
        Axiom::ConceptInclusion(Concept::Top, Concept::all(role, c))
    }

    /// Functionality `⊤ ⊑ ≤1.R`.
    pub fn functional(role: RoleExpr) -> Axiom {
        Axiom::ConceptInclusion(Concept::Top, Concept::at_most(1, role))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_normalizes_double_inversion() {
        let r = RoleExpr::named("worksFor");
        assert_eq!(r.inverse().inverse(), r);
        assert!(r.inverse().is_inverse());
        assert!(!r.is_inverse());
    }

    #[test]
    fn orient_respects_direction() {
        let r = RoleExpr::named("r");
        assert_eq!(r.orient(1, 2), (1, 2));
        assert_eq!(r.inverse().orient(1, 2), (2, 1));
    }

    #[test]
    fn tbox_abox_partition() {
        let all = [
            Axiom::ConceptInclusion(Concept::Top, Concept::Top),
            Axiom::RoleInclusion(RoleExpr::named("r"), RoleExpr::named("s")),
            Axiom::Transitive(RoleName::new("r")),
            Axiom::DataRoleInclusion(DataRoleName::new("u"), DataRoleName::new("v")),
            Axiom::ConceptAssertion(IndividualName::new("a"), Concept::Top),
            Axiom::RoleAssertion(
                RoleName::new("r"),
                IndividualName::new("a"),
                IndividualName::new("b"),
            ),
            Axiom::DataAssertion(
                DataRoleName::new("u"),
                IndividualName::new("a"),
                DataValue::Integer(1),
            ),
            Axiom::SameIndividual(IndividualName::new("a"), IndividualName::new("b")),
            Axiom::DifferentIndividuals(IndividualName::new("a"), IndividualName::new("b")),
        ];
        let tbox_count = all.iter().filter(|a| a.is_tbox()).count();
        assert_eq!(tbox_count, 4);
        for a in &all {
            assert_ne!(a.is_tbox(), a.is_abox());
        }
    }

    #[test]
    fn sugar_constructors() {
        let [a, b] = Axiom::equivalent(Concept::atomic("A"), Concept::atomic("B"));
        assert!(matches!(a, Axiom::ConceptInclusion(..)));
        assert!(matches!(b, Axiom::ConceptInclusion(..)));
        let d = Axiom::disjoint(Concept::atomic("A"), Concept::atomic("B"));
        assert!(matches!(
            d,
            Axiom::ConceptInclusion(Concept::And(..), Concept::Bottom)
        ));
        assert!(matches!(
            Axiom::functional(RoleExpr::named("r")),
            Axiom::ConceptInclusion(Concept::Top, Concept::AtMost(1, _))
        ));
    }

    #[test]
    fn size_counts_concept_nodes() {
        let ax = Axiom::ConceptInclusion(
            Concept::atomic("A").and(Concept::atomic("B")),
            Concept::atomic("C"),
        );
        assert_eq!(ax.size(), 1 + 3 + 1);
    }
}
