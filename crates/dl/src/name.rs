//! Interned entity names.
//!
//! Every name kind is a distinct newtype over `Arc<str>` so the type system
//! keeps concept, role, data-role, individual and datatype namespaces apart
//! — a cheap static defence against the most common ontology-handling bug.
//! Clones are pointer copies.

use std::fmt;
use std::sync::Arc;

macro_rules! name_type {
    ($(#[$doc:meta])* $ty:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord,
        )]
        pub struct $ty(Arc<str>);

        impl $ty {
            /// Create a name. No syntactic restrictions are imposed here;
            /// the parser enforces identifier syntax for parseable KBs.
            pub fn new(s: impl AsRef<str>) -> Self {
                $ty(Arc::from(s.as_ref()))
            }

            /// The underlying string.
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// Derive a related name by appending a suffix — used by the
            /// SHOIN(D)4 → SHOIN(D) transformation to mint `A⁺`, `A⁻`,
            /// `R⁺`, `R⁼` companions.
            pub fn with_suffix(&self, suffix: &str) -> Self {
                $ty(Arc::from(format!("{}{}", self.0, suffix).as_str()))
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $ty {
            fn from(s: &str) -> Self {
                $ty::new(s)
            }
        }

        impl From<String> for $ty {
            fn from(s: String) -> Self {
                $ty::new(s)
            }
        }

        impl AsRef<str> for $ty {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

name_type! {
    /// An atomic concept (OWL class) name such as `Doctor`.
    ConceptName
}
name_type! {
    /// An abstract (object) role name such as `hasPatient`.
    RoleName
}
name_type! {
    /// A datatype (data property) role name such as `hasAge`.
    DataRoleName
}
name_type! {
    /// An individual name such as `john`.
    IndividualName
}
name_type! {
    /// A datatype name such as `integer`.
    DatatypeName
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_namespaces_do_not_unify() {
        // This is a compile-time property; at runtime we can only check
        // values. Same spelling, different types.
        let c = ConceptName::new("X");
        let r = RoleName::new("X");
        assert_eq!(c.as_str(), r.as_str());
    }

    #[test]
    fn suffix_derivation() {
        let a = ConceptName::new("Doctor");
        assert_eq!(a.with_suffix("+").as_str(), "Doctor+");
        assert_eq!(a.with_suffix("-").as_str(), "Doctor-");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [ConceptName::new("b"), ConceptName::new("a")];
        v.sort();
        assert_eq!(v[0].as_str(), "a");
    }

    #[test]
    fn display_and_from() {
        let i: IndividualName = "tweety".into();
        assert_eq!(i.to_string(), "tweety");
        let d: DatatypeName = String::from("integer").into();
        assert_eq!(d.as_ref(), "integer");
    }
}
