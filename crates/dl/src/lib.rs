//! Abstract syntax for the description logic SHOIN(D) — the logic
//! underlying OWL DL (Table 1 of the paper) — together with knowledge
//! bases, negation normal form, a Manchester-like concrete syntax, and a
//! pretty printer.
//!
//! The crate is purely syntactic: semantics live in `fourmodels`
//! (model checking / enumeration) and `tableau` (satisfiability).
//!
//! # Layout
//!
//! * [`name`] — interned names for concepts, roles, individuals, datatypes.
//! * [`concept`] — the concept language: `⊤ ⊥ A ¬C C⊓D C⊔D {o…} ∃R.C ∀R.C
//!   ≥n.R ≤n.R ∃U.D ∀U.D ≥n.U ≤n.U`.
//! * [`datatype`] — the concrete domain `D`: values and data ranges.
//! * [`axiom`] — TBox / RBox / ABox axioms per Table 1.
//! * [`kb`] — knowledge bases and signatures.
//! * [`nnf`] — negation normal form.
//! * [`parser`] / [`printer`] — a compact Manchester-like text syntax.
//!
//! # Example
//!
//! ```
//! use dl::parser::parse_kb;
//!
//! let kb = parse_kb(
//!     "SurgicalTeam SubClassOf not ReadPatientRecordTeam
//!      UrgencyTeam SubClassOf ReadPatientRecordTeam
//!      john : SurgicalTeam
//!      john : UrgencyTeam",
//! )
//! .unwrap();
//! assert_eq!(kb.tbox().count(), 2);
//! assert_eq!(kb.abox().count(), 2);
//! ```

pub mod axiom;
pub mod concept;
pub mod datatype;
pub mod json;
pub mod kb;
pub mod name;
pub mod nnf;
pub mod parser;
pub mod printer;
pub mod snapshot;

pub use axiom::{Axiom, RoleExpr};
pub use concept::{Concept, ConceptVariant};
pub use datatype::{DataRange, DataValue};
pub use kb::{KnowledgeBase, Signature};
pub use name::{ConceptName, DataRoleName, DatatypeName, IndividualName, RoleName};
