//! A compact, line-oriented Manchester-like concrete syntax for SHOIN(D).
//!
//! Each non-empty, non-comment line is one statement. `#` starts a comment.
//!
//! ```text
//! # declarations (only needed to disambiguate data roles)
//! DataRole: hasAge hasName
//!
//! # TBox / RBox
//! Doctor SubClassOf Person
//! Surgeon EquivalentTo Doctor and (performs some Surgery)
//! Cat DisjointWith Dog
//! hasParent SubRoleOf hasAncestor
//! inverse hasChild SubRoleOf hasParent
//! hasAge SubDataRoleOf hasProperty
//! Transitive(hasAncestor)
//!
//! # ABox
//! john : Doctor and not Patient
//! hasPatient(bill, mary)
//! hasAge(john, 42)
//! john = johnny
//! john != mary
//! ```
//!
//! Concept syntax (precedence low→high: `or`, `and`, unary):
//!
//! ```text
//! C, D ::= Thing | Nothing | A | not C | C and D | C or D | (C)
//!        | {a, b, c}                       # nominal
//!        | R some C | R only C             # ∃R.C, ∀R.C
//!        | R min n  | R max n              # ≥n.R, ≤n.R
//!        | inverse R some C | ...          # inverse roles
//!        | U some DR | U only DR | U min n | U max n   # datatype forms
//! DR   ::= integer | integer[lo..hi] | boolean | string
//!        | {1, 2} | {"a"} | {true} | not(DR)
//! ```
//!
//! A restriction is a *datatype* restriction when the role is declared via
//! `DataRole:` or the filler is unambiguously a data range (datatype name,
//! facet, or a brace set of literals).

use crate::axiom::{Axiom, RoleExpr};
use crate::concept::Concept;
use crate::datatype::{BuiltinDatatype, DataRange, DataValue};
use crate::kb::KnowledgeBase;
use crate::name::{DataRoleName, IndividualName, RoleName};
use std::collections::BTreeSet;
use std::fmt;

/// A parse error with 1-based line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Eq,
    Neq,
    DotDot,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(i) => write!(f, "`{i}`"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Neq => write!(f, "`!=`"),
            Tok::DotDot => write!(f, "`..`"),
        }
    }
}

fn tokenize(line: &str, lineno: usize) -> Result<Vec<Tok>> {
    let err = |message: String| ParseError {
        line: lineno,
        message,
    };
    let mut toks = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '#' => break,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Neq);
                    i += 2;
                } else {
                    return Err(err("stray `!` (expected `!=`)".into()));
                }
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    toks.push(Tok::DotDot);
                    i += 2;
                } else {
                    return Err(err("stray `.` (expected `..`)".into()));
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(err("unterminated string literal".into())),
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            match bytes.get(i + 1) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                _ => return Err(err("bad escape in string".into())),
                            }
                            i += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &line[start..i];
                if text == "-" {
                    return Err(err("stray `-`".into()));
                }
                toks.push(Tok::Int(
                    text.parse()
                        .map_err(|_| err(format!("integer out of range: {text}")))?,
                ));
            }
            _ if c.is_alphabetic() || c == '_' => {
                // `+`, `-` and `=` are allowed inside names so the
                // SHOIN(D)4 transformation's `A+`/`A-`/`R=` companions are
                // parseable; equality statements therefore need spaces
                // around `=` (the printer always emits them).
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_alphanumeric() || matches!(b, '_' | '+' | '-' | '=' | '\'') {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(line[start..i].to_string()));
            }
            other => return Err(err(format!("unexpected character `{other}`"))),
        }
    }
    Ok(toks)
}

/// Statement-level parser state shared across lines (data-role
/// declarations accumulate as they are seen).
struct Parser {
    data_roles: BTreeSet<String>,
}

/// Cursor over the tokens of one line.
struct Cursor<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(ParseError {
            line: self.line,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos + 1)
    }

    fn peek_n(&self, n: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + n)
    }

    fn peek3(&self) -> Option<&'a Tok> {
        self.peek_n(2)
    }

    fn next(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<()> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            Some(t) => self.err(format!("expected {want}, found {t}")),
            None => self.err(format!("expected {want}, found end of line")),
        }
    }

    fn expect_ident(&mut self) -> Result<&'a str> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => self.err(format!("expected a name, found {t}")),
            None => self.err("expected a name, found end of line"),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn done(&self) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            self.err(format!("unexpected trailing {}", self.toks[self.pos]))
        }
    }
}

const RESTRICTION_KEYWORDS: [&str; 4] = ["some", "only", "min", "max"];
const DATATYPE_NAMES: [&str; 3] = ["integer", "boolean", "string"];

impl Parser {
    fn new() -> Self {
        Parser {
            data_roles: BTreeSet::new(),
        }
    }

    fn parse_statement(&mut self, cur: &mut Cursor<'_>, out: &mut Vec<Axiom>) -> Result<()> {
        // Declarations: `DataRole: u v w` / `Role: r s` (Role: accepted and
        // ignored — object roles are the default).
        if let (Some(Tok::Ident(head)), Some(Tok::Colon)) = (cur.peek(), cur.peek2()) {
            if head == "DataRole" {
                cur.next();
                cur.next();
                while let Some(Tok::Ident(name)) = cur.peek() {
                    self.data_roles.insert(name.clone());
                    cur.next();
                }
                return cur.done();
            }
            if head == "Role" {
                cur.next();
                cur.next();
                while matches!(cur.peek(), Some(Tok::Ident(_))) {
                    cur.next();
                }
                return cur.done();
            }
        }

        // `Transitive(r)`
        if let Some(Tok::Ident(head)) = cur.peek() {
            if head == "Transitive" && cur.peek2() == Some(&Tok::LParen) {
                cur.next();
                cur.next();
                let name = cur.expect_ident()?.to_string();
                cur.expect(&Tok::RParen)?;
                cur.done()?;
                out.push(Axiom::Transitive(RoleName::new(name)));
                return Ok(());
            }
        }

        // Role inclusions: `[inverse] r SubRoleOf [inverse] s`,
        // `u SubDataRoleOf v`.
        if let Some(axiom) = self.try_role_inclusion(cur)? {
            out.push(axiom);
            return Ok(());
        }

        // Simple-name-headed ABox forms: `a : C`, `r(a,b)`, `u(a,v)`,
        // `a = b`, `a != b`. Reserved words head concept expressions
        // (`not (A or B) SubClassOf …`), never ABox statements.
        const RESERVED: [&str; 8] = ["not", "inverse", "and", "or", "some", "only", "min", "max"];
        if let Some(Tok::Ident(name)) = cur.peek() {
            if RESERVED.contains(&name.as_str()) {
                // fall through to the TBox concept parse below
            } else {
                match cur.peek2() {
                    Some(Tok::Colon) => {
                        let subject = name.clone();
                        cur.next();
                        cur.next();
                        let c = self.parse_concept_expr(cur)?;
                        cur.done()?;
                        out.push(Axiom::ConceptAssertion(IndividualName::new(subject), c));
                        return Ok(());
                    }
                    Some(Tok::Eq) => {
                        let a = name.clone();
                        cur.next();
                        cur.next();
                        let b = cur.expect_ident()?.to_string();
                        cur.done()?;
                        out.push(Axiom::SameIndividual(
                            IndividualName::new(a),
                            IndividualName::new(b),
                        ));
                        return Ok(());
                    }
                    Some(Tok::Neq) => {
                        let a = name.clone();
                        cur.next();
                        cur.next();
                        let b = cur.expect_ident()?.to_string();
                        cur.done()?;
                        out.push(Axiom::DifferentIndividuals(
                            IndividualName::new(a),
                            IndividualName::new(b),
                        ));
                        return Ok(());
                    }
                    Some(Tok::LParen) => {
                        let role = name.clone();
                        cur.next();
                        cur.next();
                        let a = cur.expect_ident()?.to_string();
                        cur.expect(&Tok::Comma)?;
                        let axiom = match cur.next() {
                            Some(Tok::Ident(b)) if b == "true" || b == "false" => {
                                Axiom::DataAssertion(
                                    DataRoleName::new(role),
                                    IndividualName::new(a),
                                    DataValue::Boolean(b == "true"),
                                )
                            }
                            Some(Tok::Ident(b)) => Axiom::RoleAssertion(
                                RoleName::new(role),
                                IndividualName::new(a),
                                IndividualName::new(b.clone()),
                            ),
                            Some(Tok::Int(i)) => Axiom::DataAssertion(
                                DataRoleName::new(role),
                                IndividualName::new(a),
                                DataValue::Integer(*i),
                            ),
                            Some(Tok::Str(s)) => Axiom::DataAssertion(
                                DataRoleName::new(role),
                                IndividualName::new(a),
                                DataValue::Str(s.clone()),
                            ),
                            other => {
                                return cur.err(format!(
                                    "expected individual or literal, found {}",
                                    other.map_or("end of line".to_string(), |t| t.to_string())
                                ))
                            }
                        };
                        cur.expect(&Tok::RParen)?;
                        cur.done()?;
                        out.push(axiom);
                        return Ok(());
                    }
                    _ => {}
                }
            }
        }

        // TBox: `C SubClassOf D` / `C EquivalentTo D` / `C DisjointWith D`.
        let lhs = self.parse_concept_expr(cur)?;
        let keyword = match cur.next() {
            Some(Tok::Ident(k)) => k.as_str(),
            Some(t) => {
                return cur.err(format!(
                    "expected SubClassOf/EquivalentTo/DisjointWith, found {t}"
                ))
            }
            None => return cur.err("expected SubClassOf/EquivalentTo/DisjointWith"),
        };
        let rhs = self.parse_concept_expr(cur)?;
        cur.done()?;
        match keyword {
            "SubClassOf" => out.push(Axiom::ConceptInclusion(lhs, rhs)),
            "EquivalentTo" => out.extend(Axiom::equivalent(lhs, rhs)),
            "DisjointWith" => out.push(Axiom::disjoint(lhs, rhs)),
            other => {
                return cur.err(format!(
                "unknown axiom keyword `{other}` (expected SubClassOf/EquivalentTo/DisjointWith)"
            ))
            }
        }
        Ok(())
    }

    /// Try `[inverse] r SubRoleOf [inverse] s` or `u SubDataRoleOf v`
    /// without consuming input on failure.
    fn try_role_inclusion(&mut self, cur: &mut Cursor<'_>) -> Result<Option<Axiom>> {
        let save = cur.pos;
        let parse_role = |cur: &mut Cursor<'_>| -> Option<RoleExpr> {
            match cur.peek() {
                Some(Tok::Ident(s)) if s == "inverse" => {
                    cur.next();
                    match cur.next() {
                        Some(Tok::Ident(n)) => Some(RoleExpr::named(n.as_str()).inverse()),
                        _ => None,
                    }
                }
                Some(Tok::Ident(_)) => {
                    let Some(Tok::Ident(n)) = cur.next() else {
                        unreachable!()
                    };
                    Some(RoleExpr::named(n.as_str()))
                }
                _ => None,
            }
        };
        if let Some(r) = parse_role(cur) {
            if let Some(Tok::Ident(k)) = cur.peek() {
                if k == "SubRoleOf" {
                    cur.next();
                    let Some(s) = parse_role(cur) else {
                        return cur.err("expected role after SubRoleOf");
                    };
                    cur.done()?;
                    return Ok(Some(Axiom::RoleInclusion(r, s)));
                }
                if k == "SubDataRoleOf" {
                    if r.is_inverse() {
                        return cur.err("data roles have no inverses");
                    }
                    cur.next();
                    let v = cur.expect_ident()?.to_string();
                    cur.done()?;
                    let u = r.name().as_str().to_string();
                    self.data_roles.insert(u.clone());
                    self.data_roles.insert(v.clone());
                    return Ok(Some(Axiom::DataRoleInclusion(
                        DataRoleName::new(u),
                        DataRoleName::new(v),
                    )));
                }
            }
        }
        cur.pos = save;
        Ok(None)
    }

    fn parse_concept_expr(&self, cur: &mut Cursor<'_>) -> Result<Concept> {
        // or-level
        let mut c = self.parse_and(cur)?;
        while matches!(cur.peek(), Some(Tok::Ident(k)) if k == "or") {
            cur.next();
            let rhs = self.parse_and(cur)?;
            c = c.or(rhs);
        }
        Ok(c)
    }

    fn parse_and(&self, cur: &mut Cursor<'_>) -> Result<Concept> {
        let mut c = self.parse_unary(cur)?;
        while matches!(cur.peek(), Some(Tok::Ident(k)) if k == "and") {
            cur.next();
            let rhs = self.parse_unary(cur)?;
            c = c.and(rhs);
        }
        Ok(c)
    }

    fn parse_unary(&self, cur: &mut Cursor<'_>) -> Result<Concept> {
        match cur.peek() {
            Some(Tok::Ident(k)) if k == "not" => {
                cur.next();
                Ok(self.parse_unary(cur)?.not())
            }
            Some(Tok::Ident(k)) if k == "inverse" => {
                // `inverse R some C` etc.
                cur.next();
                let name = cur.expect_ident()?.to_string();
                let role = RoleExpr::named(name).inverse();
                self.parse_restriction_tail(cur, RoleOrData::Role(role))
            }
            Some(Tok::Ident(_)) => {
                let Some(Tok::Ident(name)) = cur.next() else {
                    unreachable!()
                };
                // Restriction if followed by a restriction keyword.
                if matches!(cur.peek(), Some(Tok::Ident(k)) if RESTRICTION_KEYWORDS.contains(&k.as_str()))
                {
                    let rod = if self.data_roles.contains(name) {
                        RoleOrData::Data(DataRoleName::new(name.as_str()))
                    } else {
                        RoleOrData::Undetermined(name.clone())
                    };
                    self.parse_restriction_tail(cur, rod)
                } else {
                    Ok(match name.as_str() {
                        "Thing" => Concept::Top,
                        "Nothing" => Concept::Bottom,
                        _ => Concept::atomic(name.as_str()),
                    })
                }
            }
            Some(Tok::LParen) => {
                cur.next();
                let c = self.parse_concept_expr(cur)?;
                cur.expect(&Tok::RParen)?;
                Ok(c)
            }
            Some(Tok::LBrace) => {
                cur.next();
                // Nominal {a, b} — literals in braces only occur as data
                // ranges, which are handled inside restrictions.
                let mut names = Vec::new();
                loop {
                    match cur.next() {
                        Some(Tok::Ident(n)) => names.push(IndividualName::new(n.as_str())),
                        Some(t) => {
                            return cur
                                .err(format!("expected individual name in nominal, found {t}"))
                        }
                        None => return cur.err("unterminated nominal"),
                    }
                    match cur.next() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::RBrace) => break,
                        Some(t) => return cur.err(format!("expected `,` or `}}`, found {t}")),
                        None => return cur.err("unterminated nominal"),
                    }
                }
                Ok(Concept::one_of(names))
            }
            Some(t) => cur.err(format!("expected a concept, found {t}")),
            None => cur.err("expected a concept, found end of line"),
        }
    }

    fn parse_restriction_tail(&self, cur: &mut Cursor<'_>, role: RoleOrData) -> Result<Concept> {
        let Some(Tok::Ident(kw)) = cur.next() else {
            return cur.err("expected restriction keyword");
        };
        match kw.as_str() {
            "some" | "only" => {
                // Datatype filler?
                if role.could_be_data() && self.filler_is_data_range(cur) {
                    let range = self.parse_data_range(cur)?;
                    let u = role.into_data(cur)?;
                    Ok(if kw == "some" {
                        Concept::DataSome(u, range)
                    } else {
                        Concept::DataAll(u, range)
                    })
                } else {
                    let filler = self.parse_unary(cur)?;
                    let r = role.into_role(cur)?;
                    Ok(if kw == "some" {
                        Concept::some(r, filler)
                    } else {
                        Concept::all(r, filler)
                    })
                }
            }
            "min" | "max" => {
                let n = match cur.next() {
                    Some(Tok::Int(i)) if *i >= 0 => *i as u32,
                    Some(t) => return cur.err(format!("expected cardinality, found {t}")),
                    None => return cur.err("expected cardinality"),
                };
                match role {
                    RoleOrData::Data(u) => Ok(if kw == "min" {
                        Concept::DataAtLeast(n, u)
                    } else {
                        Concept::DataAtMost(n, u)
                    }),
                    other => {
                        let r = other.into_role(cur)?;
                        Ok(if kw == "min" {
                            Concept::at_least(n, r)
                        } else {
                            Concept::at_most(n, r)
                        })
                    }
                }
            }
            other => cur.err(format!("unknown restriction keyword `{other}`")),
        }
    }

    /// Lookahead: does the filler start a data range rather than a concept?
    fn filler_is_data_range(&self, cur: &Cursor<'_>) -> bool {
        match cur.peek() {
            Some(Tok::Ident(k)) if DATATYPE_NAMES.contains(&k.as_str()) => true,
            Some(Tok::Ident(k)) if k == "not" => {
                // `not(<datatype>…)` / `not({literal…})` is a data-range
                // complement; `not (C …)` is a concept. Complements never
                // nest (they collapse on construction), so the token
                // after `(` decides.
                cur.peek2() == Some(&Tok::LParen)
                    && match cur.peek3() {
                        Some(Tok::Ident(k2)) => DATATYPE_NAMES.contains(&k2.as_str()),
                        // `not({…})`: literal set = data, nominal = concept.
                        Some(Tok::LBrace) => {
                            matches!(cur.peek_n(3), Some(Tok::Int(_)) | Some(Tok::Str(_)))
                                || matches!(
                                    cur.peek_n(3),
                                    Some(Tok::Ident(b)) if b == "true" || b == "false"
                                )
                        }
                        _ => false,
                    }
            }
            Some(Tok::LBrace) => {
                matches!(cur.peek2(), Some(Tok::Int(_)) | Some(Tok::Str(_)))
                    || matches!(cur.peek2(), Some(Tok::Ident(b)) if b == "true" || b == "false")
            }
            _ => false,
        }
    }

    fn parse_data_range(&self, cur: &mut Cursor<'_>) -> Result<DataRange> {
        match cur.next() {
            Some(Tok::Ident(k)) if k == "not" => {
                cur.expect(&Tok::LParen)?;
                let inner = self.parse_data_range(cur)?;
                cur.expect(&Tok::RParen)?;
                Ok(inner.complement())
            }
            Some(Tok::Ident(k)) if k == "integer" || k == "int" => {
                if cur.peek() == Some(&Tok::LBracket) {
                    cur.next();
                    let min = match cur.peek() {
                        Some(Tok::Int(i)) => {
                            let v = *i;
                            cur.next();
                            Some(v)
                        }
                        _ => None,
                    };
                    cur.expect(&Tok::DotDot)?;
                    let max = match cur.peek() {
                        Some(Tok::Int(i)) => {
                            let v = *i;
                            cur.next();
                            Some(v)
                        }
                        _ => None,
                    };
                    cur.expect(&Tok::RBracket)?;
                    Ok(DataRange::IntRange { min, max })
                } else {
                    Ok(DataRange::Datatype(BuiltinDatatype::Integer))
                }
            }
            Some(Tok::Ident(k)) if k == "boolean" || k == "bool" => {
                Ok(DataRange::Datatype(BuiltinDatatype::Boolean))
            }
            Some(Tok::Ident(k)) if k == "string" => Ok(DataRange::Datatype(BuiltinDatatype::Str)),
            Some(Tok::LBrace) => {
                let mut values = Vec::new();
                loop {
                    match cur.next() {
                        Some(Tok::Int(i)) => values.push(DataValue::Integer(*i)),
                        Some(Tok::Str(s)) => values.push(DataValue::Str(s.clone())),
                        Some(Tok::Ident(b)) if b == "true" || b == "false" => {
                            values.push(DataValue::Boolean(b == "true"))
                        }
                        Some(t) => return cur.err(format!("expected literal, found {t}")),
                        None => return cur.err("unterminated literal set"),
                    }
                    match cur.next() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::RBrace) => break,
                        Some(t) => return cur.err(format!("expected `,` or `}}`, found {t}")),
                        None => return cur.err("unterminated literal set"),
                    }
                }
                Ok(DataRange::one_of(values))
            }
            Some(t) => cur.err(format!("expected data range, found {t}")),
            None => cur.err("expected data range"),
        }
    }
}

/// Which kind of role a restriction head names; `Undetermined` resolves to
/// an object role unless the filler forces a data reading.
enum RoleOrData {
    Role(RoleExpr),
    Data(DataRoleName),
    Undetermined(String),
}

impl RoleOrData {
    fn could_be_data(&self) -> bool {
        !matches!(self, RoleOrData::Role(_))
    }

    fn into_role(self, cur: &Cursor<'_>) -> Result<RoleExpr> {
        match self {
            RoleOrData::Role(r) => Ok(r),
            RoleOrData::Undetermined(n) => Ok(RoleExpr::named(n)),
            RoleOrData::Data(u) => cur.err(format!(
                "`{u}` is declared as a data role but used with a concept filler"
            )),
        }
    }

    fn into_data(self, cur: &Cursor<'_>) -> Result<DataRoleName> {
        match self {
            RoleOrData::Data(u) => Ok(u),
            RoleOrData::Undetermined(n) => Ok(DataRoleName::new(n)),
            RoleOrData::Role(r) => cur.err(format!(
                "inverse role `{r}` cannot be used with a data range"
            )),
        }
    }
}

/// Parse a whole knowledge base (one statement per line).
pub fn parse_kb(input: &str) -> Result<KnowledgeBase> {
    let mut parser = Parser::new();
    let mut axioms = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let toks = tokenize(raw, lineno)?;
        if toks.is_empty() {
            continue;
        }
        let mut cur = Cursor {
            toks: &toks,
            pos: 0,
            line: lineno,
        };
        parser.parse_statement(&mut cur, &mut axioms)?;
    }
    Ok(KnowledgeBase::from_axioms(axioms))
}

/// Parse a single concept expression (no data-role declarations in scope).
pub fn parse_concept(input: &str) -> Result<Concept> {
    let toks = tokenize(input, 1)?;
    let mut cur = Cursor {
        toks: &toks,
        pos: 0,
        line: 1,
    };
    let parser = Parser::new();
    let c = parser.parse_concept_expr(&mut cur)?;
    cur.done()?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Concept {
        Concept::atomic(s)
    }

    #[test]
    fn parse_simple_inclusion() {
        let kb = parse_kb("A SubClassOf B").unwrap();
        assert_eq!(kb.axioms(), &[Axiom::ConceptInclusion(a("A"), a("B"))]);
    }

    #[test]
    fn parse_precedence_or_binds_loosest() {
        let c = parse_concept("A and B or C").unwrap();
        assert_eq!(c, a("A").and(a("B")).or(a("C")));
        let c = parse_concept("A or B and C").unwrap();
        assert_eq!(c, a("A").or(a("B").and(a("C"))));
        let c = parse_concept("not A and B").unwrap();
        assert_eq!(c, a("A").not().and(a("B")));
    }

    #[test]
    fn parse_parentheses() {
        let c = parse_concept("A and (B or C)").unwrap();
        assert_eq!(c, a("A").and(a("B").or(a("C"))));
        let c = parse_concept("not (A and B)").unwrap();
        assert_eq!(c, a("A").and(a("B")).not());
    }

    #[test]
    fn parse_restrictions() {
        let c = parse_concept("hasPatient some Patient").unwrap();
        assert_eq!(
            c,
            Concept::some(RoleExpr::named("hasPatient"), a("Patient"))
        );
        let c = parse_concept("r only (A or B)").unwrap();
        assert_eq!(c, Concept::all(RoleExpr::named("r"), a("A").or(a("B"))));
        let c = parse_concept("hasChild min 1").unwrap();
        assert_eq!(c, Concept::at_least(1, RoleExpr::named("hasChild")));
        let c = parse_concept("r max 0").unwrap();
        assert_eq!(c, Concept::at_most(0, RoleExpr::named("r")));
    }

    #[test]
    fn parse_inverse_restriction() {
        let c = parse_concept("inverse hasChild some Person").unwrap();
        assert_eq!(
            c,
            Concept::some(RoleExpr::named("hasChild").inverse(), a("Person"))
        );
    }

    #[test]
    fn restriction_filler_binds_tighter_than_and() {
        let c = parse_concept("r some A and B").unwrap();
        // `some` takes one unary filler: (∃r.A) ⊓ B.
        assert_eq!(c, Concept::some(RoleExpr::named("r"), a("A")).and(a("B")));
    }

    #[test]
    fn nested_restrictions() {
        let c = parse_concept("r some (s only (A and Thing))").unwrap();
        assert_eq!(
            c,
            Concept::some(
                RoleExpr::named("r"),
                Concept::all(RoleExpr::named("s"), a("A").and(Concept::Top))
            )
        );
    }

    #[test]
    fn parse_nominals() {
        let c = parse_concept("{kate, smith}").unwrap();
        assert_eq!(
            c,
            Concept::one_of([IndividualName::new("kate"), IndividualName::new("smith")])
        );
    }

    #[test]
    fn parse_thing_nothing() {
        assert_eq!(parse_concept("Thing").unwrap(), Concept::Top);
        assert_eq!(parse_concept("Nothing").unwrap(), Concept::Bottom);
    }

    #[test]
    fn parse_abox_forms() {
        let kb =
            parse_kb("john : Doctor\nhasPatient(bill, mary)\njohn = johnny\nbill != mary").unwrap();
        assert_eq!(kb.len(), 4);
        assert!(matches!(kb.axioms()[0], Axiom::ConceptAssertion(..)));
        assert!(matches!(kb.axioms()[1], Axiom::RoleAssertion(..)));
        assert!(matches!(kb.axioms()[2], Axiom::SameIndividual(..)));
        assert!(matches!(kb.axioms()[3], Axiom::DifferentIndividuals(..)));
    }

    #[test]
    fn parse_data_assertions_by_literal_kind() {
        let kb = parse_kb("age(john, 42)\nname(john, \"J\")\nflag(x, true)").unwrap();
        assert!(matches!(
            &kb.axioms()[0],
            Axiom::DataAssertion(_, _, DataValue::Integer(42))
        ));
        assert!(matches!(
            &kb.axioms()[1],
            Axiom::DataAssertion(_, _, DataValue::Str(s)) if s == "J"
        ));
        assert!(matches!(
            &kb.axioms()[2],
            Axiom::DataAssertion(_, _, DataValue::Boolean(true))
        ));
    }

    #[test]
    fn parse_role_axioms() {
        let kb = parse_kb(
            "hasParent SubRoleOf hasAncestor\n\
             inverse hasChild SubRoleOf hasParent\n\
             Transitive(hasAncestor)",
        )
        .unwrap();
        assert_eq!(kb.len(), 3);
        assert!(matches!(
            &kb.axioms()[1],
            Axiom::RoleInclusion(r, _) if r.is_inverse()
        ));
        assert!(matches!(&kb.axioms()[2], Axiom::Transitive(_)));
    }

    #[test]
    fn parse_data_role_declaration_disambiguates() {
        let kb =
            parse_kb("DataRole: hasAge\nAdult EquivalentTo Person and hasAge some integer[18..]")
                .unwrap();
        assert_eq!(kb.len(), 2); // EquivalentTo expands to two inclusions
        let Axiom::ConceptInclusion(_, rhs) = &kb.axioms()[0] else {
            panic!()
        };
        let expected = a("Person").and(Concept::DataSome(
            DataRoleName::new("hasAge"),
            DataRange::IntRange {
                min: Some(18),
                max: None,
            },
        ));
        assert_eq!(rhs, &expected);
    }

    #[test]
    fn data_range_detected_from_filler_without_declaration() {
        let c = parse_concept("hasAge some integer[0..150]").unwrap();
        assert!(matches!(c, Concept::DataSome(..)));
        let c = parse_concept("score some {1, 2, 3}").unwrap();
        assert!(matches!(c, Concept::DataSome(..)));
        let c = parse_concept("val only not(boolean)").unwrap();
        assert!(matches!(c, Concept::DataAll(..)));
    }

    #[test]
    fn declared_data_role_min_max() {
        let kb = parse_kb("DataRole: u\nC SubClassOf u min 2\nD SubClassOf u max 0").unwrap();
        let Axiom::ConceptInclusion(_, rhs) = &kb.axioms()[0] else {
            panic!()
        };
        assert!(matches!(rhs, Concept::DataAtLeast(2, _)));
        let Axiom::ConceptInclusion(_, rhs) = &kb.axioms()[1] else {
            panic!()
        };
        assert!(matches!(rhs, Concept::DataAtMost(0, _)));
    }

    #[test]
    fn equivalent_and_disjoint_sugar() {
        let kb = parse_kb("A EquivalentTo B\nC DisjointWith D").unwrap();
        assert_eq!(kb.len(), 3);
        assert!(matches!(
            &kb.axioms()[2],
            Axiom::ConceptInclusion(Concept::And(..), Concept::Bottom)
        ));
    }

    #[test]
    fn comments_and_blank_lines() {
        let kb = parse_kb("# a comment\n\nA SubClassOf B # trailing\n").unwrap();
        assert_eq!(kb.len(), 1);
    }

    #[test]
    fn transformed_names_parse() {
        // The SHOIN(D)4 transformation mints names like `Doctor+`, `Fly-`.
        let kb = parse_kb("Doctor+ SubClassOf not Fly-").unwrap();
        assert_eq!(
            kb.axioms()[0],
            Axiom::ConceptInclusion(a("Doctor+"), a("Fly-").not())
        );
    }

    #[test]
    fn error_reporting_has_line_numbers() {
        let err = parse_kb("A SubClassOf B\nA SubClassOf").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_kb("A SubClassOf B C").unwrap_err();
        assert!(err.message.contains("trailing"));
        let err = parse_kb("A ~ B").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn negative_cardinality_rejected() {
        assert!(parse_kb("A SubClassOf r min -1").is_err());
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(parse_kb("name(a, \"oops)").is_err());
    }

    #[test]
    fn paper_example_2_parses() {
        let kb = parse_kb(
            "SurgicalTeam SubClassOf not ReadPatientRecordTeam
             UrgencyTeam SubClassOf ReadPatientRecordTeam
             john : SurgicalTeam
             john : UrgencyTeam",
        )
        .unwrap();
        assert_eq!(kb.tbox().count(), 2);
        assert_eq!(kb.abox().count(), 2);
    }

    #[test]
    fn paper_example_3_parses() {
        let kb = parse_kb(
            "Bird and (hasWing some Wing) SubClassOf Fly
             Penguin SubClassOf Bird
             Penguin SubClassOf hasWing some Wing
             Penguin SubClassOf not Fly
             tweety : Bird
             tweety : Penguin
             w : Wing
             hasWing(tweety, w)",
        )
        .unwrap();
        assert_eq!(kb.tbox().count(), 4);
        assert_eq!(kb.abox().count(), 4);
    }
}
