//! The concrete domain `D` of SHOIN(D): data values and data ranges.
//!
//! The paper leaves the datatype domain abstract ("disjoint from the
//! datatype domain Δ_D"); we supply the standard OWL DL core — integers,
//! booleans and strings — with `oneOf` enumerations, complements, and
//! min/max facets on integers. This is enough to exercise every
//! `U`-constructor row of Tables 1 and 2, and it admits a complete,
//! self-contained satisfiability oracle (used by the tableau).

use crate::name::DatatypeName;
use std::collections::BTreeSet;
use std::fmt;

/// A concrete data value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataValue {
    /// An integer literal such as `42`.
    Integer(i64),
    /// A boolean literal.
    Boolean(bool),
    /// A string literal such as `"abc"`.
    Str(String),
}

impl DataValue {
    /// The built-in datatype this value belongs to.
    pub fn datatype(&self) -> BuiltinDatatype {
        match self {
            DataValue::Integer(_) => BuiltinDatatype::Integer,
            DataValue::Boolean(_) => BuiltinDatatype::Boolean,
            DataValue::Str(_) => BuiltinDatatype::Str,
        }
    }
}

impl fmt::Display for DataValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataValue::Integer(i) => write!(f, "{i}"),
            DataValue::Boolean(b) => write!(f, "{b}"),
            DataValue::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// The built-in datatypes of the concrete domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BuiltinDatatype {
    /// 64-bit integers.
    Integer,
    /// Booleans.
    Boolean,
    /// Unicode strings.
    Str,
}

impl BuiltinDatatype {
    /// Resolve a datatype name (`integer`, `boolean`, `string`).
    pub fn from_name(name: &DatatypeName) -> Option<Self> {
        match name.as_str() {
            "integer" | "int" | "xsd:integer" => Some(BuiltinDatatype::Integer),
            "boolean" | "bool" | "xsd:boolean" => Some(BuiltinDatatype::Boolean),
            "string" | "xsd:string" => Some(BuiltinDatatype::Str),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> DatatypeName {
        match self {
            BuiltinDatatype::Integer => DatatypeName::new("integer"),
            BuiltinDatatype::Boolean => DatatypeName::new("boolean"),
            BuiltinDatatype::Str => DatatypeName::new("string"),
        }
    }

    /// Is this datatype's value space finite?
    pub fn is_finite(self) -> bool {
        matches!(self, BuiltinDatatype::Boolean)
    }
}

impl fmt::Display for BuiltinDatatype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A data range (the `D` in `∃U.D` / `∀U.D`): datatype names, enumerations
/// of values, integer facets, and complements.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataRange {
    /// A built-in datatype, e.g. `integer`.
    Datatype(BuiltinDatatype),
    /// An enumeration `{v1, …, vn}` (datatype oneOf, Table 1).
    OneOf(BTreeSet<DataValue>),
    /// Integers restricted to `[min, max]` (either bound optional).
    IntRange {
        /// Inclusive lower bound.
        min: Option<i64>,
        /// Inclusive upper bound.
        max: Option<i64>,
    },
    /// Complement of a range (relative to the whole concrete domain).
    Not(Box<DataRange>),
}

impl DataRange {
    /// An enumeration range.
    pub fn one_of(values: impl IntoIterator<Item = DataValue>) -> Self {
        DataRange::OneOf(values.into_iter().collect())
    }

    /// Does a value fall inside this range?
    pub fn contains(&self, v: &DataValue) -> bool {
        match self {
            DataRange::Datatype(dt) => v.datatype() == *dt,
            DataRange::OneOf(set) => set.contains(v),
            DataRange::IntRange { min, max } => match v {
                DataValue::Integer(i) => min.is_none_or(|m| *i >= m) && max.is_none_or(|m| *i <= m),
                _ => false,
            },
            DataRange::Not(inner) => !inner.contains(v),
        }
    }

    /// The complement of this range.
    pub fn complement(&self) -> DataRange {
        match self {
            DataRange::Not(inner) => (**inner).clone(),
            other => DataRange::Not(Box::new(other.clone())),
        }
    }

    /// Is the *conjunction* of the given ranges satisfiable, i.e. is there
    /// a data value in all of them? Complete for this concrete domain.
    ///
    /// Strategy: candidate values come from (a) the enumerations mentioned,
    /// (b) integer-facet boundary points and points just outside them,
    /// (c) the booleans, and (d) a fresh string plus a fresh integer (the
    /// value spaces of `string` and `integer` are infinite, so a conjunction
    /// that only *excludes* finitely many values is satisfied by a fresh
    /// one).
    pub fn conjunction_satisfiable(ranges: &[DataRange]) -> bool {
        Self::witness(ranges).is_some()
    }

    /// A value satisfying all the ranges, if one exists.
    pub fn witness(ranges: &[DataRange]) -> Option<DataValue> {
        Self::witnesses(ranges, 1).into_iter().next()
    }

    /// Up to `k` *distinct* values satisfying all the ranges.
    ///
    /// Complete in the following sense: if the conjunction admits at least
    /// `k` distinct values, `k` are returned; otherwise every admissible
    /// value is returned. This powers the datatype cardinality oracle
    /// (`≥n.U` needs `n` distinct witnesses).
    pub fn witnesses(ranges: &[DataRange], k: usize) -> Vec<DataValue> {
        Self::candidate_universe(ranges, k)
            .into_iter()
            .filter(|v| ranges.iter().all(|r| r.contains(v)))
            .take(k)
            .collect()
    }

    /// A finite candidate universe that is *complete* for conjunctions of
    /// the given ranges: every satisfiable Boolean combination of the
    /// ranges is satisfied by some candidate, and any combination
    /// admitting ≥ `k` distinct values has ≥ `k` candidates. Built from
    /// the enumerated values, integer facet boundary regions, the
    /// booleans, and `k` fresh strings.
    pub fn candidate_universe(ranges: &[DataRange], k: usize) -> Vec<DataValue> {
        let mut candidates: BTreeSet<DataValue> = BTreeSet::new();
        candidates.insert(DataValue::Boolean(true));
        candidates.insert(DataValue::Boolean(false));
        // Fresh strings not mentioned anywhere (prefix built by
        // concatenating all mentioned strings plus a marker).
        let mut fresh = String::from("_fresh");
        let mut int_points: BTreeSet<i64> = BTreeSet::new();
        int_points.insert(0);
        fn visit(
            r: &DataRange,
            candidates: &mut BTreeSet<DataValue>,
            fresh: &mut String,
            int_points: &mut BTreeSet<i64>,
        ) {
            match r {
                DataRange::Datatype(_) => {}
                DataRange::OneOf(set) => {
                    for v in set {
                        candidates.insert(v.clone());
                        if let DataValue::Str(s) = v {
                            fresh.push_str(s);
                        }
                        if let DataValue::Integer(i) = v {
                            int_points.extend([*i, i.saturating_add(1), i.saturating_sub(1)]);
                        }
                    }
                }
                DataRange::IntRange { min, max } => {
                    for b in [min, max].into_iter().flatten() {
                        int_points.extend([*b, b.saturating_add(1), b.saturating_sub(1)]);
                    }
                }
                DataRange::Not(inner) => visit(inner, candidates, fresh, int_points),
            }
        }
        for r in ranges {
            visit(r, &mut candidates, &mut fresh, &mut int_points);
        }
        // The mentioned integer points partition ℤ into finitely many
        // intervals on which every range is constant. Cover each interval:
        // the points themselves, plus runs of k values beyond the extremes
        // and after each point (for gaps wider than 1, a run of k starting
        // just above a boundary covers "k distinct values in this gap").
        let extra: Vec<i64> = int_points
            .iter()
            .flat_map(|p| (0..=k as i64).map(move |d| p.saturating_add(d)))
            .chain(int_points.iter().map(|p| p.saturating_sub(1)))
            .chain({
                let lo = int_points.iter().next().copied().unwrap_or(0);
                let hi = int_points.iter().next_back().copied().unwrap_or(0);
                (1..=k as i64).flat_map(move |d| [lo.saturating_sub(d), hi.saturating_add(d)])
            })
            .collect();
        int_points.extend(extra);
        candidates.extend(int_points.into_iter().map(DataValue::Integer));
        for i in 0..k {
            candidates.insert(DataValue::Str(format!("{fresh}{i}")));
        }
        candidates.into_iter().collect()
    }
}

impl fmt::Display for DataRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataRange::Datatype(dt) => write!(f, "{dt}"),
            DataRange::OneOf(set) => {
                write!(f, "{{")?;
                for (i, v) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            DataRange::IntRange { min, max } => match (min, max) {
                (Some(a), Some(b)) => write!(f, "integer[{a}..{b}]"),
                (Some(a), None) => write!(f, "integer[{a}..]"),
                (None, Some(b)) => write!(f, "integer[..{b}]"),
                (None, None) => write!(f, "integer"),
            },
            DataRange::Not(inner) => write!(f, "not({inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_by_datatype() {
        let ints = DataRange::Datatype(BuiltinDatatype::Integer);
        assert!(ints.contains(&DataValue::Integer(5)));
        assert!(!ints.contains(&DataValue::Boolean(true)));
        assert!(!ints.contains(&DataValue::Str("5".into())));
    }

    #[test]
    fn one_of_membership() {
        let r = DataRange::one_of([DataValue::Integer(1), DataValue::Str("a".into())]);
        assert!(r.contains(&DataValue::Integer(1)));
        assert!(r.contains(&DataValue::Str("a".into())));
        assert!(!r.contains(&DataValue::Integer(2)));
    }

    #[test]
    fn int_range_facets() {
        let r = DataRange::IntRange {
            min: Some(3),
            max: Some(5),
        };
        assert!(!r.contains(&DataValue::Integer(2)));
        assert!(r.contains(&DataValue::Integer(3)));
        assert!(r.contains(&DataValue::Integer(5)));
        assert!(!r.contains(&DataValue::Integer(6)));
        assert!(!r.contains(&DataValue::Boolean(true)));
    }

    #[test]
    fn complement_involutes() {
        let r = DataRange::Datatype(BuiltinDatatype::Boolean);
        assert_eq!(r.complement().complement(), r);
        assert!(r.complement().contains(&DataValue::Integer(0)));
        assert!(!r.complement().contains(&DataValue::Boolean(true)));
    }

    #[test]
    fn conjunction_of_overlapping_ranges_is_sat() {
        let a = DataRange::IntRange {
            min: Some(0),
            max: Some(10),
        };
        let b = DataRange::IntRange {
            min: Some(5),
            max: None,
        };
        let w = DataRange::witness(&[a, b]).expect("sat");
        assert!(matches!(w, DataValue::Integer(i) if (5..=10).contains(&i)));
    }

    #[test]
    fn conjunction_of_disjoint_ranges_is_unsat() {
        let a = DataRange::IntRange {
            min: None,
            max: Some(2),
        };
        let b = DataRange::IntRange {
            min: Some(3),
            max: None,
        };
        assert!(!DataRange::conjunction_satisfiable(&[a, b]));
    }

    #[test]
    fn negated_enumeration_still_satisfiable_via_fresh_value() {
        // ¬{ all booleans } ∧ ¬{"x"} is satisfied by a fresh string or int.
        let no_bools =
            DataRange::one_of([DataValue::Boolean(true), DataValue::Boolean(false)]).complement();
        let not_x = DataRange::one_of([DataValue::Str("x".into())]).complement();
        assert!(DataRange::conjunction_satisfiable(&[no_bools, not_x]));
    }

    #[test]
    fn boolean_exhaustion_is_detected() {
        // boolean ∧ ¬{true} ∧ ¬{false} is unsatisfiable.
        let ranges = vec![
            DataRange::Datatype(BuiltinDatatype::Boolean),
            DataRange::one_of([DataValue::Boolean(true)]).complement(),
            DataRange::one_of([DataValue::Boolean(false)]).complement(),
        ];
        assert!(!DataRange::conjunction_satisfiable(&ranges));
    }

    #[test]
    fn datatype_vs_facet_interaction() {
        // string ∧ integer[0..] is unsatisfiable (disjoint value spaces).
        let ranges = vec![
            DataRange::Datatype(BuiltinDatatype::Str),
            DataRange::IntRange {
                min: Some(0),
                max: None,
            },
        ];
        assert!(!DataRange::conjunction_satisfiable(&ranges));
    }

    #[test]
    fn builtin_resolution() {
        assert_eq!(
            BuiltinDatatype::from_name(&DatatypeName::new("integer")),
            Some(BuiltinDatatype::Integer)
        );
        assert_eq!(
            BuiltinDatatype::from_name(&DatatypeName::new("xsd:boolean")),
            Some(BuiltinDatatype::Boolean)
        );
        assert_eq!(
            BuiltinDatatype::from_name(&DatatypeName::new("weird")),
            None
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            DataRange::IntRange {
                min: Some(1),
                max: Some(2)
            }
            .to_string(),
            "integer[1..2]"
        );
        assert_eq!(DataValue::Str("a".into()).to_string(), "\"a\"");
    }
}
