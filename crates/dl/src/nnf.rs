//! Negation normal form (NNF).
//!
//! Pushes `¬` inward until it applies only to atomic concepts and nominals,
//! using exactly the dualities that Proposition 4 of the paper proves valid
//! *also* under the four-valued semantics — which is what makes NNF safe to
//! use on both sides of the reduction:
//!
//! ```text
//! ¬¬C = C           ¬⊤ = ⊥           ¬⊥ = ⊤
//! ¬(C⊓D) = ¬C⊔¬D    ¬(C⊔D) = ¬C⊓¬D
//! ¬∃R.C = ∀R.¬C     ¬∀R.C = ∃R.¬C
//! ¬(≥n.R) = ≤(n−1).R  (n ≥ 1; ¬(≥0.R) = ⊥)
//! ¬(≤n.R) = ≥(n+1).R
//! ```
//! (and the same shapes for datatype restrictions, with data-range
//! complement on fillers).

use crate::concept::Concept;

/// Convert a concept to negation normal form.
pub fn nnf(c: &Concept) -> Concept {
    match c {
        Concept::Top
        | Concept::Bottom
        | Concept::Atomic(_)
        | Concept::OneOf(_)
        | Concept::AtLeast(..)
        | Concept::AtMost(..)
        | Concept::DataAtLeast(..)
        | Concept::DataAtMost(..)
        | Concept::DataSome(..)
        | Concept::DataAll(..) => c.clone(),
        Concept::And(l, r) => nnf(l).and(nnf(r)),
        Concept::Or(l, r) => nnf(l).or(nnf(r)),
        Concept::Some(role, f) => Concept::some(role.clone(), nnf(f)),
        Concept::All(role, f) => Concept::all(role.clone(), nnf(f)),
        Concept::Not(inner) => nnf_neg(inner),
    }
}

/// NNF of `¬c`.
fn nnf_neg(c: &Concept) -> Concept {
    match c {
        Concept::Top => Concept::Bottom,
        Concept::Bottom => Concept::Top,
        Concept::Atomic(_) => c.clone().not(),
        // A negated nominal is a legal NNF literal (there is no dual
        // constructor for it in SHOIN).
        Concept::OneOf(_) => c.clone().not(),
        Concept::Not(inner) => nnf(inner),
        Concept::And(l, r) => nnf_neg(l).or(nnf_neg(r)),
        Concept::Or(l, r) => nnf_neg(l).and(nnf_neg(r)),
        Concept::Some(role, f) => Concept::all(role.clone(), nnf_neg(f)),
        Concept::All(role, f) => Concept::some(role.clone(), nnf_neg(f)),
        Concept::AtLeast(n, role) => {
            if *n == 0 {
                // ≥0.R is ⊤, so its negation is ⊥.
                Concept::Bottom
            } else {
                Concept::at_most(n - 1, role.clone())
            }
        }
        Concept::AtMost(n, role) => Concept::at_least(n + 1, role.clone()),
        Concept::DataSome(u, d) => Concept::DataAll(u.clone(), d.complement()),
        Concept::DataAll(u, d) => Concept::DataSome(u.clone(), d.complement()),
        Concept::DataAtLeast(n, u) => {
            if *n == 0 {
                Concept::Bottom
            } else {
                Concept::DataAtMost(n - 1, u.clone())
            }
        }
        Concept::DataAtMost(n, u) => Concept::DataAtLeast(n + 1, u.clone()),
    }
}

/// Is a concept already in NNF (negation only on atoms/nominals)?
pub fn is_nnf(c: &Concept) -> bool {
    match c {
        Concept::Not(inner) => {
            matches!(**inner, Concept::Atomic(_) | Concept::OneOf(_))
        }
        Concept::And(l, r) | Concept::Or(l, r) => is_nnf(l) && is_nnf(r),
        Concept::Some(_, f) | Concept::All(_, f) => is_nnf(f),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::RoleExpr;
    use crate::datatype::{BuiltinDatatype, DataRange};
    use crate::name::{DataRoleName, IndividualName};

    fn a(s: &str) -> Concept {
        Concept::atomic(s)
    }
    fn r(s: &str) -> RoleExpr {
        RoleExpr::named(s)
    }

    #[test]
    fn double_negation_cancels() {
        assert_eq!(nnf(&a("A").not().not()), a("A"));
        assert_eq!(nnf(&a("A").not().not().not()), a("A").not());
    }

    #[test]
    fn de_morgan() {
        assert_eq!(
            nnf(&a("A").and(a("B")).not()),
            a("A").not().or(a("B").not())
        );
        assert_eq!(
            nnf(&a("A").or(a("B")).not()),
            a("A").not().and(a("B").not())
        );
    }

    #[test]
    fn quantifier_duals() {
        assert_eq!(
            nnf(&Concept::some(r("r"), a("A")).not()),
            Concept::all(r("r"), a("A").not())
        );
        assert_eq!(
            nnf(&Concept::all(r("r"), a("A")).not()),
            Concept::some(r("r"), a("A").not())
        );
    }

    #[test]
    fn number_restriction_duals() {
        assert_eq!(
            nnf(&Concept::at_least(3, r("r")).not()),
            Concept::at_most(2, r("r"))
        );
        assert_eq!(
            nnf(&Concept::at_most(3, r("r")).not()),
            Concept::at_least(4, r("r"))
        );
        assert_eq!(nnf(&Concept::at_least(0, r("r")).not()), Concept::Bottom);
    }

    #[test]
    fn top_bottom_duals() {
        assert_eq!(nnf(&Concept::Top.not()), Concept::Bottom);
        assert_eq!(nnf(&Concept::Bottom.not()), Concept::Top);
    }

    #[test]
    fn negated_nominal_is_a_literal() {
        let nom = Concept::one_of([IndividualName::new("a")]);
        let n = nnf(&nom.clone().not());
        assert_eq!(n, nom.not());
        assert!(is_nnf(&n));
    }

    #[test]
    fn datatype_duals() {
        let u = DataRoleName::new("age");
        let d = DataRange::Datatype(BuiltinDatatype::Integer);
        assert_eq!(
            nnf(&Concept::DataSome(u.clone(), d.clone()).not()),
            Concept::DataAll(u.clone(), d.complement())
        );
        assert_eq!(
            nnf(&Concept::DataAtMost(2, u.clone()).not()),
            Concept::DataAtLeast(3, u.clone())
        );
        assert_eq!(nnf(&Concept::DataAtLeast(0, u).not()), Concept::Bottom);
    }

    #[test]
    fn nnf_is_idempotent_and_detected() {
        let c = Concept::some(r("r"), a("A").and(a("B")).not())
            .not()
            .or(a("C"));
        let n = nnf(&c);
        assert!(is_nnf(&n));
        assert!(!is_nnf(&c));
        assert_eq!(nnf(&n), n);
    }

    #[test]
    fn registry_every_concept_variant_normalizes() {
        // Exhaustiveness over the constructor registry: `nnf` must push a
        // negation through every constructor (and leave every positive
        // occurrence in normal form), idempotently.
        for v in crate::concept::ConceptVariant::ALL {
            let s = v.sample();
            assert_eq!(s.variant(), v, "sample must use its own constructor");
            let n = nnf(&s);
            assert!(is_nnf(&n), "{v:?}: nnf(`{s}`) = `{n}` is not in NNF");
            assert_eq!(nnf(&n), n, "{v:?}: nnf is not idempotent");
            let neg = nnf(&s.clone().not());
            assert!(
                is_nnf(&neg),
                "{v:?}: nnf(`not ({s})`) = `{neg}` is not in NNF"
            );
            assert_eq!(nnf(&neg), neg, "{v:?}: nnf is not idempotent on negations");
        }
    }

    #[test]
    fn nnf_preserves_size_polynomially() {
        // NNF at most doubles the size (each node visited once, negation
        // absorbed into atoms).
        let mut c = a("A");
        for i in 0..10 {
            c = Concept::some(r(&format!("r{i}")), c.clone().and(a("B")).not());
        }
        let n = nnf(&c);
        assert!(n.size() <= 2 * c.size());
    }
}
