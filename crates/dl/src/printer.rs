//! Pretty printer emitting the same Manchester-like syntax the parser
//! reads, so `parse(print(kb)) == kb` (round-trip property-tested in the
//! integration suite).

use crate::axiom::Axiom;
use crate::concept::Concept;
use crate::kb::KnowledgeBase;
use std::fmt;

/// Operator precedence levels used to decide parenthesization.
#[derive(PartialEq, PartialOrd, Clone, Copy)]
enum Prec {
    Or,
    And,
    Unary,
}

fn fmt_concept(c: &Concept, parent: Prec, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let mine = match c {
        Concept::Or(..) => Prec::Or,
        Concept::And(..) => Prec::And,
        _ => Prec::Unary,
    };
    let needs_parens = (mine as u8) < (parent as u8);
    if needs_parens {
        write!(f, "(")?;
    }
    match c {
        Concept::Top => write!(f, "Thing")?,
        Concept::Bottom => write!(f, "Nothing")?,
        Concept::Atomic(a) => write!(f, "{a}")?,
        Concept::Not(inner) => {
            write!(f, "not ")?;
            fmt_concept(inner, Prec::Unary, f)?;
        }
        Concept::And(l, r) => {
            // The parser is left-associative; parenthesize a right-nested
            // `and` so the printed form reparses to the same tree.
            fmt_concept(l, Prec::And, f)?;
            write!(f, " and ")?;
            let rp = if matches!(**r, Concept::And(..)) {
                Prec::Unary
            } else {
                Prec::And
            };
            fmt_concept(r, rp, f)?;
        }
        Concept::Or(l, r) => {
            fmt_concept(l, Prec::Or, f)?;
            write!(f, " or ")?;
            let rp = if matches!(**r, Concept::Or(..)) {
                Prec::And
            } else {
                Prec::Or
            };
            fmt_concept(r, rp, f)?;
        }
        Concept::OneOf(os) => {
            write!(f, "{{")?;
            for (i, o) in os.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{o}")?;
            }
            write!(f, "}}")?;
        }
        Concept::Some(r, filler) => {
            write!(f, "{r} some ")?;
            fmt_filler(filler, f)?;
        }
        Concept::All(r, filler) => {
            write!(f, "{r} only ")?;
            fmt_filler(filler, f)?;
        }
        Concept::AtLeast(n, r) => write!(f, "{r} min {n}")?,
        Concept::AtMost(n, r) => write!(f, "{r} max {n}")?,
        Concept::DataSome(u, d) => write!(f, "{u} some {d}")?,
        Concept::DataAll(u, d) => write!(f, "{u} only {d}")?,
        Concept::DataAtLeast(n, u) => write!(f, "{u} min {n}")?,
        Concept::DataAtMost(n, u) => write!(f, "{u} max {n}")?,
    }
    if needs_parens {
        write!(f, ")")?;
    }
    Ok(())
}

/// Restriction fillers are unary in the grammar: parenthesize anything
/// that is not already unary-tight.
fn fmt_filler(c: &Concept, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match c {
        Concept::And(..) | Concept::Or(..) => {
            write!(f, "(")?;
            fmt_concept(c, Prec::Or, f)?;
            write!(f, ")")
        }
        // Nested restrictions parse greedily; parenthesize for clarity.
        Concept::Some(..)
        | Concept::All(..)
        | Concept::AtLeast(..)
        | Concept::AtMost(..)
        | Concept::DataSome(..)
        | Concept::DataAll(..)
        | Concept::DataAtLeast(..)
        | Concept::DataAtMost(..) => {
            write!(f, "(")?;
            fmt_concept(c, Prec::Or, f)?;
            write!(f, ")")
        }
        _ => fmt_concept(c, Prec::Unary, f),
    }
}

impl fmt::Display for Concept {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_concept(self, Prec::Or, f)
    }
}

impl fmt::Display for Axiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axiom::ConceptInclusion(c, d) => write!(f, "{c} SubClassOf {d}"),
            Axiom::RoleInclusion(r, s) => write!(f, "{r} SubRoleOf {s}"),
            Axiom::Transitive(r) => write!(f, "Transitive({r})"),
            Axiom::DataRoleInclusion(u, v) => write!(f, "{u} SubDataRoleOf {v}"),
            Axiom::ConceptAssertion(a, c) => write!(f, "{a} : {c}"),
            Axiom::RoleAssertion(r, a, b) => write!(f, "{r}({a}, {b})"),
            Axiom::DataAssertion(u, a, v) => write!(f, "{u}({a}, {v})"),
            Axiom::SameIndividual(a, b) => write!(f, "{a} = {b}"),
            Axiom::DifferentIndividuals(a, b) => write!(f, "{a} != {b}"),
        }
    }
}

/// Render a whole KB in parseable form, emitting a `DataRole:` declaration
/// first when needed so data restrictions re-parse as data restrictions.
pub fn print_kb(kb: &KnowledgeBase) -> String {
    let mut out = String::new();
    let sig = kb.signature();
    if !sig.data_roles.is_empty() {
        out.push_str("DataRole:");
        for u in &sig.data_roles {
            out.push(' ');
            out.push_str(u.as_str());
        }
        out.push('\n');
    }
    for ax in kb.axioms() {
        out.push_str(&ax.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::RoleExpr;
    use crate::parser::{parse_concept, parse_kb};

    fn a(s: &str) -> Concept {
        Concept::atomic(s)
    }

    #[test]
    fn precedence_aware_printing() {
        let c = a("A").and(a("B").or(a("C")));
        assert_eq!(c.to_string(), "A and (B or C)");
        let c = a("A").and(a("B")).or(a("C"));
        assert_eq!(c.to_string(), "A and B or C");
        let c = a("A").or(a("B")).not();
        assert_eq!(c.to_string(), "not (A or B)");
    }

    #[test]
    fn restriction_fillers_parenthesized() {
        let c = Concept::some(RoleExpr::named("r"), a("A").and(a("B")));
        assert_eq!(c.to_string(), "r some (A and B)");
        let c = Concept::all(
            RoleExpr::named("r"),
            Concept::some(RoleExpr::named("s"), a("A")),
        );
        assert_eq!(c.to_string(), "r only (s some A)");
    }

    #[test]
    fn concept_round_trip() {
        let cases = [
            "A and B or not C",
            "r some (A and (s only B))",
            "inverse r some {a, b}",
            "r min 3 and r max 5",
            "hasAge some integer[0..150]",
            "u only {1, 2}",
            "Thing and not Nothing",
        ];
        for src in cases {
            let c = parse_concept(src).unwrap();
            let printed = c.to_string();
            let reparsed = parse_concept(&printed)
                .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
            assert_eq!(reparsed, c, "round trip failed for `{src}` → `{printed}`");
        }
    }

    #[test]
    fn kb_round_trip_with_data_roles() {
        let src = "DataRole: hasAge
Adult SubClassOf Person and hasAge some integer[18..]
Transitive(partOf)
hasParent SubRoleOf hasAncestor
john : Adult
hasAge(john, 42)
hasFriend(john, mary)
john != mary";
        let kb = parse_kb(src).unwrap();
        let printed = print_kb(&kb);
        let reparsed = parse_kb(&printed).unwrap();
        assert_eq!(reparsed, kb, "printed form:\n{printed}");
    }

    #[test]
    fn registry_every_concept_variant_round_trips() {
        // Exhaustiveness over the constructor registry: the printer must
        // emit a reparseable form for every constructor. Embedding the
        // sample in a KB lets `print_kb` declare data roles, so datatype
        // restrictions re-parse as datatype restrictions.
        for v in crate::concept::ConceptVariant::ALL {
            let sample = v.sample();
            assert_eq!(sample.variant(), v, "sample must use its own constructor");
            let kb = crate::kb::KnowledgeBase::from_axioms([Axiom::ConceptInclusion(
                Concept::atomic("C"),
                sample,
            )]);
            let printed = print_kb(&kb);
            let reparsed = parse_kb(&printed)
                .unwrap_or_else(|e| panic!("{v:?}: reparse of `{printed}` failed: {e}"));
            assert_eq!(reparsed, kb, "{v:?}: round trip via `{printed}`");
        }
    }

    #[test]
    fn data_min_max_reparse_via_declaration() {
        let kb = parse_kb("DataRole: u\nC SubClassOf u min 2").unwrap();
        let printed = print_kb(&kb);
        assert!(printed.starts_with("DataRole: u\n"), "{printed}");
        assert_eq!(parse_kb(&printed).unwrap(), kb);
    }
}
