//! The SHOIN(D) concept language (Table 1 of the paper).
//!
//! Constructors: `⊤`, `⊥`, atomic concepts, full negation `¬C`,
//! conjunction `C ⊓ D`, disjunction `C ⊔ D`, nominals `{o₁,…}`, exists /
//! value restrictions `∃R.C` / `∀R.C`, unqualified number restrictions
//! `≥n.R` / `≤n.R` (SHOIN has no qualified ones), and the datatype
//! counterparts `∃U.D`, `∀U.D`, `≥n.U`, `≤n.U`.
//!
//! Concepts are immutable trees with `Arc` sharing, so cloning a complex
//! concept is O(1) and the SHOIN(D)4 transformation can share subterms.

use crate::axiom::RoleExpr;
use crate::datatype::DataRange;
use crate::name::{ConceptName, DataRoleName, IndividualName};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A (possibly complex) SHOIN(D) concept.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Concept {
    /// The top concept `⊤` (the whole object domain).
    Top,
    /// The bottom concept `⊥` (the empty set).
    Bottom,
    /// An atomic concept name `A`.
    Atomic(ConceptName),
    /// Full negation `¬C`.
    Not(Arc<Concept>),
    /// Conjunction `C ⊓ D`.
    And(Arc<Concept>, Arc<Concept>),
    /// Disjunction `C ⊔ D`.
    Or(Arc<Concept>, Arc<Concept>),
    /// A nominal `{o₁, …, oₙ}`.
    OneOf(BTreeSet<IndividualName>),
    /// Exists restriction `∃R.C`.
    Some(RoleExpr, Arc<Concept>),
    /// Value restriction `∀R.C`.
    All(RoleExpr, Arc<Concept>),
    /// At-least restriction `≥ n.R` (unqualified).
    AtLeast(u32, RoleExpr),
    /// At-most restriction `≤ n.R` (unqualified).
    AtMost(u32, RoleExpr),
    /// Datatype exists restriction `∃U.D`.
    DataSome(DataRoleName, DataRange),
    /// Datatype value restriction `∀U.D`.
    DataAll(DataRoleName, DataRange),
    /// Datatype at-least restriction `≥ n.U`.
    DataAtLeast(u32, DataRoleName),
    /// Datatype at-most restriction `≤ n.U`.
    DataAtMost(u32, DataRoleName),
}

impl Concept {
    /// An atomic concept.
    pub fn atomic(name: impl Into<ConceptName>) -> Concept {
        Concept::Atomic(name.into())
    }

    /// `¬self`, with double negations collapsed structurally *not* here —
    /// NNF handles that; this stays purely syntactic to honour the paper's
    /// transformation cases (which treat `¬¬D` explicitly).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Concept {
        Concept::Not(Arc::new(self))
    }

    /// `self ⊓ rhs`
    pub fn and(self, rhs: Concept) -> Concept {
        Concept::And(Arc::new(self), Arc::new(rhs))
    }

    /// `self ⊔ rhs`
    pub fn or(self, rhs: Concept) -> Concept {
        Concept::Or(Arc::new(self), Arc::new(rhs))
    }

    /// Fold a non-empty sequence of concepts into a left-nested `⊓`.
    /// Returns `⊤` for an empty sequence.
    pub fn and_all(cs: impl IntoIterator<Item = Concept>) -> Concept {
        cs.into_iter()
            .reduce(|a, b| a.and(b))
            .unwrap_or(Concept::Top)
    }

    /// Fold a non-empty sequence of concepts into a left-nested `⊔`.
    /// Returns `⊥` for an empty sequence.
    pub fn or_all(cs: impl IntoIterator<Item = Concept>) -> Concept {
        cs.into_iter()
            .reduce(|a, b| a.or(b))
            .unwrap_or(Concept::Bottom)
    }

    /// `∃R.self` reads better flipped: `Concept::some(r, c)`.
    pub fn some(role: RoleExpr, filler: Concept) -> Concept {
        Concept::Some(role, Arc::new(filler))
    }

    /// `∀R.C`
    pub fn all(role: RoleExpr, filler: Concept) -> Concept {
        Concept::All(role, Arc::new(filler))
    }

    /// `≥ n.R`
    pub fn at_least(n: u32, role: RoleExpr) -> Concept {
        Concept::AtLeast(n, role)
    }

    /// `≤ n.R`
    pub fn at_most(n: u32, role: RoleExpr) -> Concept {
        Concept::AtMost(n, role)
    }

    /// `{o₁, …}`
    pub fn one_of(individuals: impl IntoIterator<Item = IndividualName>) -> Concept {
        Concept::OneOf(individuals.into_iter().collect())
    }

    /// Is this a literal — an atomic concept or its negation?
    pub fn is_literal(&self) -> bool {
        match self {
            Concept::Atomic(_) => true,
            Concept::Not(inner) => matches!(**inner, Concept::Atomic(_)),
            _ => false,
        }
    }

    /// Structural size (number of AST nodes) — the measure for the
    /// "polynomial-time transformation" claim.
    pub fn size(&self) -> usize {
        match self {
            Concept::Top
            | Concept::Bottom
            | Concept::Atomic(_)
            | Concept::OneOf(_)
            | Concept::AtLeast(..)
            | Concept::AtMost(..)
            | Concept::DataSome(..)
            | Concept::DataAll(..)
            | Concept::DataAtLeast(..)
            | Concept::DataAtMost(..) => 1,
            Concept::Not(c) => 1 + c.size(),
            Concept::And(l, r) | Concept::Or(l, r) => 1 + l.size() + r.size(),
            Concept::Some(_, c) | Concept::All(_, c) => 1 + c.size(),
        }
    }

    /// Maximal nesting depth of role restrictions — the "modal depth" knob
    /// used by workload generators.
    pub fn modal_depth(&self) -> usize {
        match self {
            Concept::Some(_, c) | Concept::All(_, c) => 1 + c.modal_depth(),
            Concept::Not(c) => c.modal_depth(),
            Concept::And(l, r) | Concept::Or(l, r) => l.modal_depth().max(r.modal_depth()),
            _ => 0,
        }
    }

    /// Visit every subconcept (including `self`), outer first.
    pub fn for_each_subconcept<'a>(&'a self, f: &mut impl FnMut(&'a Concept)) {
        f(self);
        match self {
            Concept::Not(c) | Concept::Some(_, c) | Concept::All(_, c) => c.for_each_subconcept(f),
            Concept::And(l, r) | Concept::Or(l, r) => {
                l.for_each_subconcept(f);
                r.for_each_subconcept(f);
            }
            _ => {}
        }
    }

    /// All atomic concept names occurring in the concept.
    pub fn concept_names(&self) -> BTreeSet<ConceptName> {
        let mut out = BTreeSet::new();
        self.for_each_subconcept(&mut |c| {
            if let Concept::Atomic(a) = c {
                out.insert(a.clone());
            }
        });
        out
    }

    /// All object role names (through inverses) occurring in the concept.
    pub fn role_names(&self) -> BTreeSet<crate::name::RoleName> {
        let mut out = BTreeSet::new();
        self.for_each_subconcept(&mut |c| match c {
            Concept::Some(r, _) | Concept::All(r, _) => {
                out.insert(r.name().clone());
            }
            Concept::AtLeast(_, r) | Concept::AtMost(_, r) => {
                out.insert(r.name().clone());
            }
            _ => {}
        });
        out
    }

    /// All data role names occurring in the concept.
    pub fn data_role_names(&self) -> BTreeSet<DataRoleName> {
        let mut out = BTreeSet::new();
        self.for_each_subconcept(&mut |c| match c {
            Concept::DataSome(u, _)
            | Concept::DataAll(u, _)
            | Concept::DataAtLeast(_, u)
            | Concept::DataAtMost(_, u) => {
                out.insert(u.clone());
            }
            _ => {}
        });
        out
    }

    /// All individual names in nominals.
    pub fn individual_names(&self) -> BTreeSet<IndividualName> {
        let mut out = BTreeSet::new();
        self.for_each_subconcept(&mut |c| {
            if let Concept::OneOf(os) = c {
                out.extend(os.iter().cloned());
            }
        });
        out
    }
}

/// One entry per [`Concept`] constructor — the exhaustiveness registry.
///
/// Passes like NNF, printing, and the Definition 5–7 transformation must
/// handle *every* constructor. Each keeps a coverage test that walks
/// [`ConceptVariant::ALL`] and feeds it [`ConceptVariant::sample`]; adding
/// a constructor here without extending [`Concept::variant`] fails to
/// compile (the match below is exhaustive with no wildcard), and adding it
/// in both places makes every coverage test exercise the new case for
/// free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConceptVariant {
    Top,
    Bottom,
    Atomic,
    Not,
    And,
    Or,
    OneOf,
    Some,
    All,
    AtLeast,
    AtMost,
    DataSome,
    DataAll,
    DataAtLeast,
    DataAtMost,
}

impl ConceptVariant {
    /// Every constructor of the concept language, in declaration order.
    pub const ALL: [ConceptVariant; 15] = [
        ConceptVariant::Top,
        ConceptVariant::Bottom,
        ConceptVariant::Atomic,
        ConceptVariant::Not,
        ConceptVariant::And,
        ConceptVariant::Or,
        ConceptVariant::OneOf,
        ConceptVariant::Some,
        ConceptVariant::All,
        ConceptVariant::AtLeast,
        ConceptVariant::AtMost,
        ConceptVariant::DataSome,
        ConceptVariant::DataAll,
        ConceptVariant::DataAtLeast,
        ConceptVariant::DataAtMost,
    ];

    /// A small representative concept using this constructor at the root,
    /// with non-trivial sub-structure where the constructor allows it.
    pub fn sample(self) -> Concept {
        let a = Concept::atomic("A");
        let b = Concept::atomic("B");
        let r = RoleExpr::named("r");
        let u = DataRoleName::new("u");
        let d = DataRange::IntRange {
            min: Some(0),
            max: Some(9),
        };
        match self {
            ConceptVariant::Top => Concept::Top,
            ConceptVariant::Bottom => Concept::Bottom,
            ConceptVariant::Atomic => a,
            ConceptVariant::Not => a.and(b).not(),
            ConceptVariant::And => a.and(b.not()),
            ConceptVariant::Or => a.or(b),
            ConceptVariant::OneOf => {
                Concept::one_of([IndividualName::new("o1"), IndividualName::new("o2")])
            }
            ConceptVariant::Some => Concept::some(r, a.not()),
            ConceptVariant::All => Concept::all(r, a.or(b)),
            ConceptVariant::AtLeast => Concept::at_least(2, r),
            ConceptVariant::AtMost => Concept::at_most(1, r.inverse()),
            ConceptVariant::DataSome => Concept::DataSome(u, d),
            ConceptVariant::DataAll => Concept::DataAll(u, d),
            ConceptVariant::DataAtLeast => Concept::DataAtLeast(2, u),
            ConceptVariant::DataAtMost => Concept::DataAtMost(1, u),
        }
    }
}

impl Concept {
    /// The constructor at the root of this concept.
    ///
    /// The match is deliberately wildcard-free: a new `Concept` variant
    /// fails compilation here until [`ConceptVariant`] learns about it,
    /// which in turn routes it into every registry-driven coverage test.
    pub fn variant(&self) -> ConceptVariant {
        match self {
            Concept::Top => ConceptVariant::Top,
            Concept::Bottom => ConceptVariant::Bottom,
            Concept::Atomic(_) => ConceptVariant::Atomic,
            Concept::Not(_) => ConceptVariant::Not,
            Concept::And(..) => ConceptVariant::And,
            Concept::Or(..) => ConceptVariant::Or,
            Concept::OneOf(_) => ConceptVariant::OneOf,
            Concept::Some(..) => ConceptVariant::Some,
            Concept::All(..) => ConceptVariant::All,
            Concept::AtLeast(..) => ConceptVariant::AtLeast,
            Concept::AtMost(..) => ConceptVariant::AtMost,
            Concept::DataSome(..) => ConceptVariant::DataSome,
            Concept::DataAll(..) => ConceptVariant::DataAll,
            Concept::DataAtLeast(..) => ConceptVariant::DataAtLeast,
            Concept::DataAtMost(..) => ConceptVariant::DataAtMost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::RoleExpr;

    fn r(s: &str) -> RoleExpr {
        RoleExpr::named(s)
    }

    #[test]
    fn builders_compose() {
        let c = Concept::atomic("Bird").and(Concept::some(r("hasWing"), Concept::atomic("Wing")));
        assert_eq!(c.size(), 4);
        assert_eq!(c.modal_depth(), 1);
    }

    #[test]
    fn and_all_or_all_handle_edges() {
        assert_eq!(Concept::and_all([]), Concept::Top);
        assert_eq!(Concept::or_all([]), Concept::Bottom);
        let a = Concept::atomic("A");
        assert_eq!(Concept::and_all([a.clone()]), a);
    }

    #[test]
    fn literal_recognition() {
        assert!(Concept::atomic("A").is_literal());
        assert!(Concept::atomic("A").not().is_literal());
        assert!(!Concept::atomic("A").not().not().is_literal());
        assert!(!Concept::Top.is_literal());
    }

    #[test]
    fn signature_extraction() {
        let c = Concept::some(
            r("hasChild"),
            Concept::atomic("Parent").or(Concept::one_of([IndividualName::new("kate")])),
        )
        .and(Concept::DataSome(
            DataRoleName::new("hasAge"),
            DataRange::IntRange {
                min: Some(0),
                max: None,
            },
        ));
        assert!(c.concept_names().contains(&ConceptName::new("Parent")));
        assert!(c
            .role_names()
            .contains(&crate::name::RoleName::new("hasChild")));
        assert!(c.data_role_names().contains(&DataRoleName::new("hasAge")));
        assert!(c.individual_names().contains(&IndividualName::new("kate")));
    }

    #[test]
    fn inverse_roles_contribute_their_name() {
        let c = Concept::some(r("worksFor").inverse(), Concept::Top);
        assert!(c
            .role_names()
            .contains(&crate::name::RoleName::new("worksFor")));
    }

    #[test]
    fn modal_depth_nests() {
        let c = Concept::some(r("r"), Concept::all(r("s"), Concept::atomic("A")));
        assert_eq!(c.modal_depth(), 2);
    }

    #[test]
    fn sharing_makes_clone_cheap() {
        // Clones share subterm allocations (pointer equality on the Arc).
        let base = Concept::atomic("A").and(Concept::atomic("B"));
        let c1 = base.clone();
        if let (Concept::And(l1, _), Concept::And(l2, _)) = (&base, &c1) {
            assert!(Arc::ptr_eq(l1, l2));
        } else {
            panic!("expected And");
        }
    }
}
