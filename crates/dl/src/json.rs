//! JSON persistence for classical knowledge bases.
//!
//! A KB is serialized as its parseable text form (see [`crate::printer`])
//! wrapped in a small JSON envelope, so the JSON path inherits the
//! property-tested `parse(print(kb)) == kb` round trip:
//!
//! ```json
//! {"format":"dl-text/1","kb":"A SubClassOf B\na : A\n"}
//! ```

use crate::kb::KnowledgeBase;
use crate::parser::parse_kb;
use crate::printer::print_kb;
use jsonio::Value;

/// The envelope format tag.
pub const KB_FORMAT: &str = "dl-text/1";

/// Serialize a KB to a JSON value.
pub fn kb_to_json(kb: &KnowledgeBase) -> Value {
    Value::object([("format", KB_FORMAT.into()), ("kb", print_kb(kb).into())])
}

/// Deserialize a KB from a JSON value.
pub fn kb_from_json(v: &Value) -> Result<KnowledgeBase, String> {
    let format = v.get("format").and_then(Value::as_str);
    if format != Some(KB_FORMAT) {
        return Err(format!(
            "unsupported KB format {format:?} (expected {KB_FORMAT:?})"
        ));
    }
    let text = v
        .get("kb")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing `kb` text field".to_string())?;
    parse_kb(text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kb_round_trips_through_json_text() {
        let kb = parse_kb(
            "DataRole: age
             Adult SubClassOf Person and age some integer[18..]
             john : Adult
             age(john, 42)",
        )
        .unwrap();
        let json = kb_to_json(&kb).to_string();
        let back = kb_from_json(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(back, kb);
    }

    #[test]
    fn wrong_format_tag_is_rejected() {
        let v = Value::object([("format", "csv".into()), ("kb", "".into())]);
        assert!(kb_from_json(&v).is_err());
        assert!(kb_from_json(&Value::Null).is_err());
    }
}
