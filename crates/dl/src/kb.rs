//! Knowledge bases: ordered collections of axioms with TBox/ABox views,
//! signatures, and role-hierarchy utilities used by the reasoners.

use crate::axiom::{Axiom, RoleExpr};
use crate::concept::Concept;
use crate::name::{ConceptName, DataRoleName, DatatypeName, IndividualName, RoleName};
use std::collections::{BTreeMap, BTreeSet};

/// The signature of a knowledge base: every name it mentions, by kind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Signature {
    /// Atomic concept names.
    pub concepts: BTreeSet<ConceptName>,
    /// Object role names.
    pub roles: BTreeSet<RoleName>,
    /// Datatype role names.
    pub data_roles: BTreeSet<DataRoleName>,
    /// Individual names.
    pub individuals: BTreeSet<IndividualName>,
    /// Datatype names (currently only built-ins occur).
    pub datatypes: BTreeSet<DatatypeName>,
}

impl Signature {
    /// Number of names across all kinds.
    pub fn len(&self) -> usize {
        self.concepts.len()
            + self.roles.len()
            + self.data_roles.len()
            + self.individuals.len()
            + self.datatypes.len()
    }

    /// Is the signature empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accumulate the names of one concept.
    pub fn extend_from_concept(&mut self, c: &Concept) {
        self.concepts.extend(c.concept_names());
        self.roles.extend(c.role_names());
        self.data_roles.extend(c.data_role_names());
        self.individuals.extend(c.individual_names());
    }

    /// Accumulate the names of one axiom.
    pub fn extend_from_axiom(&mut self, axiom: &Axiom) {
        match axiom {
            Axiom::ConceptInclusion(c, d) => {
                self.extend_from_concept(c);
                self.extend_from_concept(d);
            }
            Axiom::RoleInclusion(r, s) => {
                self.roles.insert(r.name().clone());
                self.roles.insert(s.name().clone());
            }
            Axiom::Transitive(r) => {
                self.roles.insert(r.clone());
            }
            Axiom::DataRoleInclusion(u, v) => {
                self.data_roles.insert(u.clone());
                self.data_roles.insert(v.clone());
            }
            Axiom::ConceptAssertion(a, c) => {
                self.individuals.insert(a.clone());
                self.extend_from_concept(c);
            }
            Axiom::RoleAssertion(r, a, b) => {
                self.roles.insert(r.clone());
                self.individuals.insert(a.clone());
                self.individuals.insert(b.clone());
            }
            Axiom::DataAssertion(u, a, _) => {
                self.data_roles.insert(u.clone());
                self.individuals.insert(a.clone());
            }
            Axiom::SameIndividual(a, b) | Axiom::DifferentIndividuals(a, b) => {
                self.individuals.insert(a.clone());
                self.individuals.insert(b.clone());
            }
        }
    }
}

/// A SHOIN(D) knowledge base: a sequence of axioms (order preserved for
/// reproducible processing and printing).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KnowledgeBase {
    axioms: Vec<Axiom>,
}

impl KnowledgeBase {
    /// An empty KB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from axioms.
    pub fn from_axioms(axioms: impl IntoIterator<Item = Axiom>) -> Self {
        KnowledgeBase {
            axioms: axioms.into_iter().collect(),
        }
    }

    /// Add one axiom.
    pub fn add(&mut self, axiom: Axiom) {
        self.axioms.push(axiom);
    }

    /// Add many axioms.
    pub fn extend(&mut self, axioms: impl IntoIterator<Item = Axiom>) {
        self.axioms.extend(axioms);
    }

    /// All axioms, in insertion order.
    pub fn axioms(&self) -> &[Axiom] {
        &self.axioms
    }

    /// Number of axioms.
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// Is the KB empty?
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }

    /// Terminological axioms (TBox + RBox).
    pub fn tbox(&self) -> impl Iterator<Item = &Axiom> {
        self.axioms.iter().filter(|a| a.is_tbox())
    }

    /// Assertional axioms (ABox).
    pub fn abox(&self) -> impl Iterator<Item = &Axiom> {
        self.axioms.iter().filter(|a| a.is_abox())
    }

    /// Total structural size — the input measure for complexity claims.
    pub fn size(&self) -> usize {
        self.axioms.iter().map(Axiom::size).sum()
    }

    /// The KB's signature.
    pub fn signature(&self) -> Signature {
        let mut sig = Signature::default();
        for ax in &self.axioms {
            sig.extend_from_axiom(ax);
        }
        sig
    }

    /// Transitive role names declared by `Trans(·)` axioms.
    pub fn transitive_roles(&self) -> BTreeSet<RoleName> {
        self.axioms
            .iter()
            .filter_map(|a| match a {
                Axiom::Transitive(r) => Some(r.clone()),
                _ => None,
            })
            .collect()
    }

    /// The reflexive-transitive closure of the role hierarchy `⊑*`,
    /// closed under inverses: if `R ⊑ S` then `R⁻ ⊑ S⁻`.
    ///
    /// Returns, for each role expression appearing in the hierarchy, the
    /// set of its super-role expressions (including itself). Role
    /// expressions not mentioned in any role-inclusion axiom map to just
    /// themselves on lookup via [`RoleHierarchy::supers`].
    pub fn role_hierarchy(&self) -> RoleHierarchy {
        let mut direct: BTreeMap<RoleExpr, BTreeSet<RoleExpr>> = BTreeMap::new();
        for ax in &self.axioms {
            if let Axiom::RoleInclusion(r, s) = ax {
                direct.entry(r.clone()).or_default().insert(s.clone());
                direct.entry(r.inverse()).or_default().insert(s.inverse());
            }
        }
        // Floyd–Warshall-style closure over the (small) set of mentioned
        // role expressions.
        let nodes: BTreeSet<RoleExpr> = direct
            .iter()
            .flat_map(|(k, vs)| std::iter::once(k.clone()).chain(vs.iter().cloned()))
            .collect();
        let mut closed: BTreeMap<RoleExpr, BTreeSet<RoleExpr>> = nodes
            .iter()
            .map(|n| {
                let mut s = BTreeSet::new();
                s.insert(n.clone());
                (n.clone(), s)
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for n in &nodes {
                let mut additions: BTreeSet<RoleExpr> = BTreeSet::new();
                for s in closed[n].clone() {
                    if let Some(direct_supers) = direct.get(&s) {
                        for sup in direct_supers {
                            if !closed[n].contains(sup) {
                                additions.insert(sup.clone());
                            }
                        }
                    }
                }
                if !additions.is_empty() {
                    closed.get_mut(n).expect("node present").extend(additions);
                    changed = true;
                }
            }
        }
        RoleHierarchy {
            supers: closed,
            transitive: self.transitive_roles(),
        }
    }

    /// Datatype role hierarchy closure (`U ⊑* V`), reflexive.
    pub fn data_role_hierarchy(&self) -> BTreeMap<DataRoleName, BTreeSet<DataRoleName>> {
        let mut direct: BTreeMap<DataRoleName, BTreeSet<DataRoleName>> = BTreeMap::new();
        for ax in &self.axioms {
            if let Axiom::DataRoleInclusion(u, v) = ax {
                direct.entry(u.clone()).or_default().insert(v.clone());
            }
        }
        let nodes: BTreeSet<DataRoleName> = direct
            .iter()
            .flat_map(|(k, vs)| std::iter::once(k.clone()).chain(vs.iter().cloned()))
            .collect();
        let mut closed: BTreeMap<DataRoleName, BTreeSet<DataRoleName>> = nodes
            .iter()
            .map(|n| (n.clone(), BTreeSet::from([n.clone()])))
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for n in &nodes {
                let mut additions = BTreeSet::new();
                for s in closed[n].clone() {
                    if let Some(ds) = direct.get(&s) {
                        for sup in ds {
                            if !closed[n].contains(sup) {
                                additions.insert(sup.clone());
                            }
                        }
                    }
                }
                if !additions.is_empty() {
                    closed.get_mut(n).expect("node present").extend(additions);
                    changed = true;
                }
            }
        }
        closed
    }
}

impl FromIterator<Axiom> for KnowledgeBase {
    fn from_iter<I: IntoIterator<Item = Axiom>>(iter: I) -> Self {
        KnowledgeBase::from_axioms(iter)
    }
}

/// The closed role hierarchy of a KB, plus its transitive-role set.
#[derive(Debug, Clone, Default)]
pub struct RoleHierarchy {
    supers: BTreeMap<RoleExpr, BTreeSet<RoleExpr>>,
    transitive: BTreeSet<RoleName>,
}

impl RoleHierarchy {
    /// All super-roles of `r` including `r` itself.
    pub fn supers(&self, r: &RoleExpr) -> BTreeSet<RoleExpr> {
        self.supers.get(r).cloned().unwrap_or_else(|| {
            let mut s = BTreeSet::new();
            s.insert(r.clone());
            s
        })
    }

    /// Is `r ⊑* s`?
    pub fn is_subrole(&self, r: &RoleExpr, s: &RoleExpr) -> bool {
        r == s || self.supers.get(r).is_some_and(|set| set.contains(s))
    }

    /// Is the role expression transitive? (`Trans(R)` declares both `R`
    /// and `R⁻` transitive: `R = R⁺` iff `R⁻ = (R⁻)⁺`.)
    pub fn is_transitive(&self, r: &RoleExpr) -> bool {
        self.transitive.contains(r.name())
    }

    /// Sub-role expressions of `s` that are transitive — needed by the
    /// tableau's ∀₊ propagation rule.
    pub fn transitive_subroles(&self, s: &RoleExpr) -> Vec<RoleExpr> {
        let mut out: Vec<RoleExpr> = self
            .supers
            .iter()
            .filter(|(r, sups)| sups.contains(s) && self.is_transitive(r))
            .map(|(r, _)| r.clone())
            .collect();
        if self.is_transitive(s) && !out.contains(s) {
            out.push(s.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Concept {
        Concept::atomic(s)
    }

    #[test]
    fn tbox_abox_views() {
        let kb = KnowledgeBase::from_axioms([
            Axiom::ConceptInclusion(c("A"), c("B")),
            Axiom::ConceptAssertion(IndividualName::new("a"), c("A")),
        ]);
        assert_eq!(kb.tbox().count(), 1);
        assert_eq!(kb.abox().count(), 1);
        assert_eq!(kb.len(), 2);
        assert_eq!(kb.size(), 3 + 2);
    }

    #[test]
    fn signature_collects_all_kinds() {
        let kb = KnowledgeBase::from_axioms([
            Axiom::ConceptInclusion(c("A"), Concept::some(RoleExpr::named("r"), c("B"))),
            Axiom::RoleAssertion(
                RoleName::new("s"),
                IndividualName::new("x"),
                IndividualName::new("y"),
            ),
            Axiom::DataAssertion(
                DataRoleName::new("age"),
                IndividualName::new("x"),
                crate::datatype::DataValue::Integer(3),
            ),
        ]);
        let sig = kb.signature();
        assert_eq!(sig.concepts.len(), 2);
        assert_eq!(sig.roles.len(), 2);
        assert_eq!(sig.data_roles.len(), 1);
        assert_eq!(sig.individuals.len(), 2);
        assert!(!sig.is_empty());
    }

    #[test]
    fn role_hierarchy_closure_with_inverses() {
        let kb = KnowledgeBase::from_axioms([
            Axiom::RoleInclusion(RoleExpr::named("r"), RoleExpr::named("s")),
            Axiom::RoleInclusion(RoleExpr::named("s"), RoleExpr::named("t")),
        ]);
        let h = kb.role_hierarchy();
        let r = RoleExpr::named("r");
        let t = RoleExpr::named("t");
        assert!(h.is_subrole(&r, &t));
        assert!(h.is_subrole(&r.inverse(), &t.inverse()));
        assert!(!h.is_subrole(&t, &r));
        // Unmentioned roles are their own supers.
        let u = RoleExpr::named("unmentioned");
        assert!(h.is_subrole(&u, &u));
        assert_eq!(h.supers(&u).len(), 1);
    }

    #[test]
    fn transitive_subroles_for_forall_plus() {
        // Trans(r), r ⊑ s: pushing ∀s.C through an r-edge needs ∀r.C
        // propagation; transitive_subroles(s) must contain r.
        let kb = KnowledgeBase::from_axioms([
            Axiom::Transitive(RoleName::new("r")),
            Axiom::RoleInclusion(RoleExpr::named("r"), RoleExpr::named("s")),
        ]);
        let h = kb.role_hierarchy();
        let subs = h.transitive_subroles(&RoleExpr::named("s"));
        assert!(subs.contains(&RoleExpr::named("r")));
        assert!(h.is_transitive(&RoleExpr::named("r")));
        assert!(h.is_transitive(&RoleExpr::named("r").inverse()));
        assert!(!h.is_transitive(&RoleExpr::named("s")));
    }

    #[test]
    fn data_role_hierarchy_closure() {
        let kb = KnowledgeBase::from_axioms([
            Axiom::DataRoleInclusion(DataRoleName::new("u"), DataRoleName::new("v")),
            Axiom::DataRoleInclusion(DataRoleName::new("v"), DataRoleName::new("w")),
        ]);
        let h = kb.data_role_hierarchy();
        assert!(h[&DataRoleName::new("u")].contains(&DataRoleName::new("w")));
    }

    #[test]
    fn from_iterator() {
        let kb: KnowledgeBase = [Axiom::ConceptInclusion(c("A"), c("B"))]
            .into_iter()
            .collect();
        assert_eq!(kb.len(), 1);
    }
}
