//! Differential properties between the two search strategies.
//!
//! The trail engine (dependency-directed backjumping over an undo log)
//! must be *invisible* in answers: on every input it has to return the
//! same satisfiability verdict as the snapshot engine, and on consistent
//! inputs the same first model — backjumping only ever skips subtrees
//! that are provably modelless, and the undo log restores the graph
//! bit-exactly, so even node identities line up. These properties fuzz
//! that claim over ontogen's random KBs, plus a graph-level property that
//! a full trail unwind restores the pre-branch graph exactly (`==` on
//! `CompletionGraph`).

use dl::Concept;
use ontogen::random::{random_kb, RandomParams};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use tableau::graph::CompletionGraph;
use tableau::trail::DepSet;
use tableau::{Config, Reasoner, SearchStrategy};

fn params(seed: u64) -> RandomParams {
    RandomParams {
        n_concepts: 4,
        n_roles: 2,
        n_individuals: 3,
        n_tbox: 5,
        n_abox: 6,
        max_depth: 1,
        number_restrictions: true,
        inverse_roles: true,
        seed,
    }
}

fn cfg(search: SearchStrategy) -> Config {
    Config {
        search,
        // Keep pathological cases cheap: a limit error on either engine
        // skips the comparison (no verdict was produced to compare). The
        // snapshot oracle is the slow side — without a tight budget a few
        // hard seeds would dominate the whole 256-case run.
        max_rule_applications: 50_000,
        time_budget: Some(std::time::Duration::from_millis(200)),
        ..Config::default()
    }
}

proptest! {
    // 256 cases (the vendored-proptest default) per property.

    /// Identical verdicts, and on consistent KBs the identical first
    /// model — including node identities, because the trail search only
    /// skips modelless subtrees and rewinds allocations exactly.
    #[test]
    fn snapshot_and_trail_agree(seed in 0..u64::MAX) {
        let kb = random_kb(&params(seed));
        let mut snap = Reasoner::with_config(&kb, cfg(SearchStrategy::Snapshot));
        let mut trail = Reasoner::with_config(&kb, cfg(SearchStrategy::Trail));
        let (s, t) = (snap.is_consistent(), trail.is_consistent());
        let (Ok(s), Ok(t)) = (s, t) else {
            return Ok(()); // a resource limit fired; nothing to compare
        };
        prop_assert_eq!(s, t, "verdict divergence (seed {})", seed);
        prop_assert_eq!(
            trail.stats().graph_clones, 0,
            "the trail path must never clone the graph (seed {})", seed
        );
        if s {
            let (Ok(ms), Ok(mt)) = (snap.find_model(), trail.find_model()) else {
                return Ok(());
            };
            prop_assert_eq!(ms, mt, "model divergence (seed {})", seed);
        }
    }

    /// A full unwind of the trail restores the pre-branch graph exactly —
    /// not just observably: `==` over the whole structure (nodes, labels,
    /// dep maps, edges, distinctness, merge map, nominal registry).
    #[test]
    fn trail_unwind_restores_graph_exactly(seed in 0..u64::MAX) {
        use dl::axiom::RoleExpr;
        use dl::name::IndividualName;

        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = CompletionGraph::new();
        // An untrailed base, as the engine builds before searching.
        let (a, b) = (g.new_root(), g.new_root());
        g.add_concept(a, Concept::atomic("A"));
        g.add_edge(a, b, &RoleExpr::named("r0"));
        g.set_nominal_node(IndividualName::new("o"), b);

        g.set_trailing(true);
        let before = g.clone();
        let mark = g.mark();

        // A random mutation burst of every trailed operation kind. Merges
        // prune subtrees, so re-collect the live nodes each step instead
        // of indexing a stale list.
        for step in 0..rng.gen_range(1..24usize) {
            let live: Vec<_> = g.live_nodes().collect();
            let dep = DepSet::single(rng.gen_range(0..4u64) as u32);
            let x = live[rng.gen_range(0..live.len())];
            let y = live[rng.gen_range(0..live.len())];
            match rng.gen_range(0..6u8) {
                0 => {
                    let name = format!("C{}", rng.gen_range(0..3u8));
                    g.add_concept_d(x, Concept::atomic(name), dep);
                }
                1 => {
                    let role = RoleExpr::named(if rng.gen_bool(0.5) { "r0" } else { "r1" });
                    let role = if rng.gen_bool(0.3) { role.inverse() } else { role };
                    if x != y {
                        g.add_edge_d(x, y, &role, dep);
                    }
                }
                2 => {
                    if x != y {
                        let _ = g.set_distinct_d(x, y, dep);
                    }
                }
                3 => {
                    if rng.gen_bool(0.5) {
                        g.new_root_d(dep);
                    } else {
                        g.new_blockable_d(x, dep);
                    }
                }
                4 => {
                    let o = IndividualName::new(format!("o{step}"));
                    if g.nominal_node(&o).is_none() {
                        g.set_nominal_node(o, x);
                    }
                }
                _ => {
                    // Never merge a node into its own descendant — the
                    // engine's merge-direction rules exclude that (the
                    // prune of the source's subtree would erase the
                    // target); mirror the restriction here.
                    if x != y && !g.ancestors(y).contains(&x) {
                        let _ = g.merge_d(x, y, dep);
                    }
                }
            }
        }

        g.undo_to(mark);
        prop_assert_eq!(g, before, "unwind failed to restore the graph (seed {})", seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Subsumption/satisfiability queries (which augment the KB with
    /// internalized query concepts, exercising branching harder than the
    /// base consistency check) also agree.
    #[test]
    fn query_answers_agree(seed in 0..u64::MAX) {
        let kb = random_kb(&params(seed));
        let mut snap = Reasoner::with_config(&kb, cfg(SearchStrategy::Snapshot));
        let mut trail = Reasoner::with_config(&kb, cfg(SearchStrategy::Trail));
        let c0 = Concept::atomic("C0");
        let c1 = Concept::atomic("C1");
        let queries = [
            (c0.clone(), c1.clone()),
            (c1.clone(), c0.clone()),
            (c0.clone().and(c1.clone()), c0.clone().or(c1.clone())),
        ];
        for (sub, sup) in &queries {
            let (s, t) = (snap.is_subsumed_by(sub, sup), trail.is_subsumed_by(sub, sup));
            if let (Ok(s), Ok(t)) = (s, t) {
                prop_assert_eq!(s, t, "subsumption divergence on {:?} ⊑ {:?} (seed {})", sub, sup, seed);
            }
        }
        let (s, t) = (snap.is_concept_satisfiable(&c0), trail.is_concept_satisfiable(&c0));
        if let (Ok(s), Ok(t)) = (s, t) {
            prop_assert_eq!(s, t, "satisfiability divergence (seed {})", seed);
        }
    }
}
