//! Completion-graph nodes.

use crate::trail::DepSet;
use dl::{Concept, IndividualName};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a completion-graph node. Stable for the lifetime of one
/// graph (merged nodes keep their id but are redirected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One node of a completion graph.
///
/// *Root* nodes represent ABox individuals and NN-rule nominals; they are
/// never blocked and never pruned. *Blockable* nodes form trees hanging off
/// root nodes, created by the `∃`/`≥` generating rules; `parent` is the
/// tree predecessor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// The concept label `L(x)` — concepts in NNF.
    pub label: BTreeSet<Concept>,
    /// Branch-choice dependencies of label concepts. Concepts with an
    /// empty dep-set (unconditional facts) are omitted, so the snapshot
    /// engine — which passes empty deps everywhere — stores nothing here
    /// and `label` stays the single source of truth for blocking's label
    /// comparisons.
    pub label_deps: BTreeMap<Concept, DepSet>,
    /// Individuals this node stands for (non-empty exactly for root nodes
    /// and nodes merged into them).
    pub nominals: BTreeSet<IndividualName>,
    /// Tree predecessor (`None` for root nodes).
    pub parent: Option<NodeId>,
    /// Is this a root (nominal/ABox) node?
    pub is_root: bool,
    /// Branch choices this node's existence relies on (empty for base-graph
    /// and root-level nodes).
    pub creation: DepSet,
}

impl Node {
    /// A fresh root node.
    pub fn root(id: NodeId) -> Self {
        Node {
            id,
            label: BTreeSet::new(),
            label_deps: BTreeMap::new(),
            nominals: BTreeSet::new(),
            parent: None,
            is_root: true,
            creation: DepSet::empty(),
        }
    }

    /// A fresh blockable tree node under `parent`.
    pub fn blockable(id: NodeId, parent: NodeId) -> Self {
        Node {
            id,
            label: BTreeSet::new(),
            label_deps: BTreeMap::new(),
            nominals: BTreeSet::new(),
            parent: Some(parent),
            is_root: false,
            creation: DepSet::empty(),
        }
    }

    /// Can this node be blocked? (Only blockable tree nodes.)
    pub fn is_blockable(&self) -> bool {
        !self.is_root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_vs_blockable() {
        let r = Node::root(NodeId(0));
        assert!(r.is_root && !r.is_blockable() && r.parent.is_none());
        let b = Node::blockable(NodeId(1), NodeId(0));
        assert!(!b.is_root && b.is_blockable());
        assert_eq!(b.parent, Some(NodeId(0)));
    }

    #[test]
    fn node_id_displays() {
        assert_eq!(NodeId(7).to_string(), "n7");
    }
}
