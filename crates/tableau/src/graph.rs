//! The completion graph: nodes, role edges, the inequality relation, and
//! the merge/prune machinery shared by the `o`-, `≤`- and `NN`-rules.
//!
//! Edges are stored in the *named* direction: inserting an edge for an
//! inverse role `R⁻` from `x` to `y` stores `(y, x, R)`. Neighbour queries
//! consult the role hierarchy (closed under inverses) in both directions.

use crate::clash::Clash;
use crate::node::{Node, NodeId};
use dl::axiom::RoleExpr;
use dl::kb::RoleHierarchy;
use dl::{Concept, IndividualName};
use std::collections::{BTreeMap, BTreeSet};

/// A completion graph. Cloning a graph is the branching mechanism of the
/// tableau search: cheap enough for our workloads and immune to
/// undo-trail bugs.
#[derive(Debug, Clone, Default)]
pub struct CompletionGraph {
    nodes: Vec<Option<Node>>,
    /// Directed edges in named-role direction, with their role-name label
    /// sets (a set because several assertions may label one edge).
    edges: BTreeMap<(NodeId, NodeId), BTreeSet<RoleExpr>>,
    /// The `≠` relation, stored as normalized `(min, max)` pairs.
    distinct: BTreeSet<(NodeId, NodeId)>,
    /// Redirections left behind by merges: `merged_into[y] = x`.
    merged_into: BTreeMap<NodeId, NodeId>,
    /// The root node standing for each individual.
    nominal_nodes: BTreeMap<IndividualName, NodeId>,
}

impl CompletionGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a root (nominal/ABox) node.
    pub fn new_root(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(Node::root(id)));
        id
    }

    /// Create a blockable tree node under `parent`.
    pub fn new_blockable(&mut self, parent: NodeId) -> NodeId {
        let parent = self.resolve(parent);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(Node::blockable(id, parent)));
        id
    }

    /// Number of live nodes.
    pub fn live_node_count(&self) -> usize {
        self.nodes.iter().flatten().count()
    }

    /// Total ids ever allocated (live + merged/pruned).
    pub fn allocated_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Follow merge redirections to the surviving node.
    pub fn resolve(&self, mut id: NodeId) -> NodeId {
        while let Some(&next) = self.merged_into.get(&id) {
            id = next;
        }
        id
    }

    /// Borrow a live node.
    pub fn node(&self, id: NodeId) -> &Node {
        let id = self.resolve(id);
        self.nodes[id.0 as usize]
            .as_ref()
            .expect("resolved node must be live")
    }

    /// Is this id (after resolution) still part of the graph? Pruned
    /// subtrees disappear without a redirect.
    pub fn is_live(&self, id: NodeId) -> bool {
        let id = self.resolve(id);
        self.nodes[id.0 as usize].is_some()
    }

    /// Iterate over live node ids.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().flatten().map(|n| n.id)
    }

    /// Add a concept to a node's label. Returns `true` if the label grew.
    pub fn add_concept(&mut self, id: NodeId, c: Concept) -> bool {
        let id = self.resolve(id);
        self.nodes[id.0 as usize]
            .as_mut()
            .expect("resolved node must be live")
            .label
            .insert(c)
    }

    /// Does the node's label contain the concept?
    pub fn has_concept(&self, id: NodeId, c: &Concept) -> bool {
        self.node(id).label.contains(c)
    }

    /// Register `node` as the root standing for individual `o`.
    pub fn set_nominal_node(&mut self, o: IndividualName, node: NodeId) {
        let node = self.resolve(node);
        self.nodes[node.0 as usize]
            .as_mut()
            .expect("live")
            .nominals
            .insert(o.clone());
        self.nominal_nodes.insert(o, node);
    }

    /// The root node for an individual, if registered.
    pub fn nominal_node(&self, o: &IndividualName) -> Option<NodeId> {
        self.nominal_nodes.get(o).map(|&id| self.resolve(id))
    }

    /// Add an edge `x --role--> y`, canonicalized to the named direction.
    pub fn add_edge(&mut self, x: NodeId, y: NodeId, role: &RoleExpr) {
        let (x, y) = (self.resolve(x), self.resolve(y));
        let (from, to) = role.orient(x, y);
        self.edges
            .entry((from, to))
            .or_default()
            .insert(RoleExpr::named(role.name().clone()));
    }

    /// Mark two nodes as distinct. Returns a clash if they are (or have
    /// been merged into) the same node.
    pub fn set_distinct(&mut self, a: NodeId, b: NodeId) -> Option<Clash> {
        let (a, b) = (self.resolve(a), self.resolve(b));
        if a == b {
            return Some(Clash::MergedDistinct(a, b));
        }
        let pair = if a < b { (a, b) } else { (b, a) };
        self.distinct.insert(pair);
        None
    }

    /// Are two nodes known to be distinct?
    pub fn are_distinct(&self, a: NodeId, b: NodeId) -> bool {
        let (a, b) = (self.resolve(a), self.resolve(b));
        let pair = if a < b { (a, b) } else { (b, a) };
        a != b && self.distinct.contains(&pair)
    }

    /// All `R`-neighbours of `x` under the given role hierarchy: nodes `y`
    /// with an edge whose label implies `R` in the right direction.
    pub fn neighbours(&self, x: NodeId, role: &RoleExpr, hierarchy: &RoleHierarchy) -> Vec<NodeId> {
        let x = self.resolve(x);
        let mut out = BTreeSet::new();
        for (&(from, to), labels) in &self.edges {
            if from == x {
                // Stored S: `to` is an S-neighbour; need S ⊑* R.
                if labels.iter().any(|s| hierarchy.is_subrole(s, role)) {
                    out.insert(to);
                }
            }
            if to == x {
                // Stored S from `from` to x: `from` is an S⁻-neighbour of
                // x; need S⁻ ⊑* R.
                if labels
                    .iter()
                    .any(|s| hierarchy.is_subrole(&s.inverse(), role))
                {
                    out.insert(from);
                }
            }
        }
        out.into_iter().collect()
    }

    /// The connecting role label between a tree parent and its child, as
    /// role expressions in parent→child direction (used by pairwise
    /// blocking).
    pub fn connecting_label(&self, parent: NodeId, child: NodeId) -> BTreeSet<RoleExpr> {
        let (parent, child) = (self.resolve(parent), self.resolve(child));
        let mut out = BTreeSet::new();
        if let Some(labels) = self.edges.get(&(parent, child)) {
            out.extend(labels.iter().cloned());
        }
        if let Some(labels) = self.edges.get(&(child, parent)) {
            out.extend(labels.iter().map(|r| r.inverse()));
        }
        out
    }

    /// Merge node `y` into node `x` (SHOIQ `Merge`): union the labels and
    /// nominals, reroute `y`'s edges to `x`, transfer `≠` pairs, then
    /// prune `y`'s blockable subtree. Returns a clash if `x ≠ y` was
    /// asserted.
    pub fn merge(&mut self, y: NodeId, x: NodeId) -> Option<Clash> {
        let (y, x) = (self.resolve(y), self.resolve(x));
        if y == x {
            return None;
        }
        if self.are_distinct(x, y) {
            return Some(Clash::MergedDistinct(x, y));
        }
        // Union label and nominals.
        let y_node = self.nodes[y.0 as usize].take().expect("live");
        {
            let x_node = self.nodes[x.0 as usize].as_mut().expect("live");
            x_node.label.extend(y_node.label.iter().cloned());
            x_node.nominals.extend(y_node.nominals.iter().cloned());
        }
        for o in &y_node.nominals {
            self.nominal_nodes.insert(o.clone(), x);
        }
        // Reroute edges touching y. Collect first to appease the borrow
        // checker; edge maps are small.
        let touching: Vec<((NodeId, NodeId), BTreeSet<RoleExpr>)> = self
            .edges
            .iter()
            .filter(|(&(f, t), _)| f == y || t == y)
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        for ((f, t), labels) in touching {
            self.edges.remove(&(f, t));
            let nf = if f == y { x } else { f };
            let nt = if t == y { x } else { t };
            if nf == nt {
                // A y–y self-loop (or y–x edge collapsing): keep as a
                // self-loop on x; neighbour queries handle it uniformly.
                self.edges.entry((nf, nt)).or_default().extend(labels);
            } else {
                self.edges.entry((nf, nt)).or_default().extend(labels);
            }
        }
        // Transfer ≠ pairs.
        let pairs: Vec<(NodeId, NodeId)> = self
            .distinct
            .iter()
            .filter(|&&(a, b)| a == y || b == y)
            .copied()
            .collect();
        for (a, b) in pairs {
            self.distinct.remove(&(a, b));
            let na = if a == y { x } else { a };
            let nb = if b == y { x } else { b };
            if na == nb {
                // x was in the transferred pair: x ≠ x.
                self.merged_into.insert(y, x);
                return Some(Clash::MergedDistinct(x, x));
            }
            let pair = if na < nb { (na, nb) } else { (nb, na) };
            self.distinct.insert(pair);
        }
        self.merged_into.insert(y, x);
        // Prune y's blockable subtree: children of y that were blockable
        // tree successors vanish.
        self.prune_children_of(y);
        None
    }

    /// Remove blockable nodes whose tree parent is `dead` (recursively),
    /// along with their edges.
    fn prune_children_of(&mut self, dead: NodeId) {
        let children: Vec<NodeId> = self
            .nodes
            .iter()
            .flatten()
            .filter(|n| n.is_blockable() && n.parent == Some(dead))
            .map(|n| n.id)
            .collect();
        for c in children {
            self.nodes[c.0 as usize] = None;
            let touching: Vec<(NodeId, NodeId)> = self
                .edges
                .keys()
                .filter(|&&(f, t)| f == c || t == c)
                .copied()
                .collect();
            for k in touching {
                self.edges.remove(&k);
            }
            let pairs: Vec<(NodeId, NodeId)> = self
                .distinct
                .iter()
                .filter(|&&(a, b)| a == c || b == c)
                .copied()
                .collect();
            for p in pairs {
                self.distinct.remove(&p);
            }
            self.prune_children_of(c);
        }
    }

    /// The tree ancestors of a node (parent first), stopping at a root.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.resolve(id);
        while let Some(p) = self.node(cur).parent {
            if !self.is_live(p) {
                break;
            }
            let p = self.resolve(p);
            out.push(p);
            cur = p;
            if self.node(cur).is_root {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::kb::KnowledgeBase;
    use dl::Axiom;

    fn hierarchy() -> RoleHierarchy {
        KnowledgeBase::new().role_hierarchy()
    }

    fn r(s: &str) -> RoleExpr {
        RoleExpr::named(s)
    }

    #[test]
    fn edges_canonicalize_inverse_direction() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        g.add_edge(a, b, &r("p").inverse());
        // Stored as b --p--> a, so a is a p⁻-neighbour of b? No: b is the
        // p-source. a's p⁻-neighbours = {b}? Check both views:
        let h = hierarchy();
        assert_eq!(g.neighbours(b, &r("p"), &h), vec![a]);
        assert_eq!(g.neighbours(a, &r("p").inverse(), &h), vec![b]);
        assert!(g.neighbours(a, &r("p"), &h).is_empty());
    }

    #[test]
    fn neighbours_respect_hierarchy() {
        let kb = KnowledgeBase::from_axioms([Axiom::RoleInclusion(r("p"), r("q"))]);
        let h = kb.role_hierarchy();
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        g.add_edge(a, b, &r("p"));
        assert_eq!(g.neighbours(a, &r("q"), &h), vec![b]);
        assert_eq!(g.neighbours(b, &r("q").inverse(), &h), vec![a]);
        assert!(g.neighbours(a, &r("q").inverse(), &h).is_empty());
    }

    #[test]
    fn merge_unions_labels_and_reroutes_edges() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        let c = g.new_root();
        g.add_edge(b, c, &r("p"));
        g.add_concept(b, Concept::atomic("B"));
        g.add_concept(a, Concept::atomic("A"));
        assert!(g.merge(b, a).is_none());
        assert_eq!(g.resolve(b), a);
        assert!(g.has_concept(a, &Concept::atomic("A")));
        assert!(g.has_concept(a, &Concept::atomic("B")));
        let h = hierarchy();
        assert_eq!(g.neighbours(a, &r("p"), &h), vec![c]);
        assert_eq!(g.live_node_count(), 2);
    }

    #[test]
    fn merge_of_distinct_nodes_clashes() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        assert!(g.set_distinct(a, b).is_none());
        assert!(matches!(g.merge(b, a), Some(Clash::MergedDistinct(..))));
    }

    #[test]
    fn distinctness_transfers_through_merge() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        let c = g.new_root();
        g.set_distinct(b, c);
        assert!(g.merge(b, a).is_none());
        assert!(g.are_distinct(a, c));
        // Now merging c into a must clash.
        assert!(g.merge(c, a).is_some());
    }

    #[test]
    fn merge_prunes_blockable_subtree() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        let t1 = g.new_blockable(b);
        let t2 = g.new_blockable(t1);
        g.add_edge(b, t1, &r("p"));
        g.add_edge(t1, t2, &r("p"));
        assert_eq!(g.live_node_count(), 4);
        g.merge(b, a).unwrap_none_or_panic();
        assert_eq!(g.live_node_count(), 1);
        assert!(!g.is_live(t1));
    }

    // Small helper so the intent reads clearly in tests.
    trait UnwrapNone {
        fn unwrap_none_or_panic(self);
    }
    impl UnwrapNone for Option<Clash> {
        fn unwrap_none_or_panic(self) {
            assert!(self.is_none(), "unexpected clash: {:?}", self);
        }
    }

    #[test]
    fn nominal_registration_follows_merges() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        g.set_nominal_node(IndividualName::new("o"), b);
        g.merge(b, a);
        assert_eq!(g.nominal_node(&IndividualName::new("o")), Some(a));
        assert!(g.node(a).nominals.contains(&IndividualName::new("o")));
    }

    #[test]
    fn ancestors_walk_to_root() {
        let mut g = CompletionGraph::new();
        let root = g.new_root();
        let t1 = g.new_blockable(root);
        let t2 = g.new_blockable(t1);
        assert_eq!(g.ancestors(t2), vec![t1, root]);
        assert!(g.ancestors(root).is_empty());
    }

    #[test]
    fn connecting_label_merges_both_directions() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_blockable(a);
        g.add_edge(a, b, &r("p"));
        g.add_edge(b, a, &r("q")); // i.e. a --q⁻--> b
        let lbl = g.connecting_label(a, b);
        assert!(lbl.contains(&r("p")));
        assert!(lbl.contains(&r("q").inverse()));
    }
}
