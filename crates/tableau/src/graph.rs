//! The completion graph: nodes, role edges, the inequality relation, and
//! the merge/prune machinery shared by the `o`-, `≤`- and `NN`-rules.
//!
//! Edges are stored in the *named* direction: inserting an edge for an
//! inverse role `R⁻` from `x` to `y` stores `(y, x, R)`. Neighbour queries
//! consult the role hierarchy (closed under inverses) in both directions.
//!
//! Every fact carries a [`DepSet`] of responsible branch points, and —
//! when trailing is enabled (`SearchStrategy::Trail`) — every mutation
//! appends a `TrailEntry` so [`CompletionGraph::undo_to`] can restore
//! any earlier state exactly in O(changes undone). The `_d` method
//! variants thread dep-sets; the plain variants pass empty deps and serve
//! the snapshot engine and graph setup, where facts are unconditional.

use crate::clash::{Clash, ClashInfo};
use crate::node::{Node, NodeId};
use crate::trail::{DepSet, TrailEntry};
use dl::axiom::RoleExpr;
use dl::kb::RoleHierarchy;
use dl::{Concept, IndividualName};
use std::collections::{BTreeMap, BTreeSet};

/// A completion graph. Two branching mechanisms share this structure: the
/// snapshot engine clones the whole graph per alternative, the trail
/// engine records mutations and undoes them on backtracking.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompletionGraph {
    nodes: Vec<Option<Node>>,
    /// Directed edges in named-role direction; each role label that tags
    /// the edge carries the dep-set of the assertion that put it there.
    edges: BTreeMap<(NodeId, NodeId), BTreeMap<RoleExpr, DepSet>>,
    /// The `≠` relation, stored as normalized `(min, max)` pairs with the
    /// dep-set of the inequality's derivation.
    distinct: BTreeMap<(NodeId, NodeId), DepSet>,
    /// Redirections left behind by merges: `merged_into[y] = (x, deps)`.
    merged_into: BTreeMap<NodeId, (NodeId, DepSet)>,
    /// The root node standing for each individual.
    nominal_nodes: BTreeMap<IndividualName, NodeId>,
    /// The undo log (empty unless `trailing`).
    trail: Vec<TrailEntry>,
    /// Record mutations on the trail? Enabled by the trail search after
    /// graph setup; off for the snapshot engine.
    trailing: bool,
}

impl CompletionGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start (or stop) recording mutations on the undo trail.
    pub fn set_trailing(&mut self, on: bool) {
        self.trailing = on;
    }

    /// Is the undo trail recording?
    pub fn trailing(&self) -> bool {
        self.trailing
    }

    /// Current trail position — pass to [`Self::undo_to`] to roll back to
    /// this state.
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Trail length (for the `trail_len_peak` statistic).
    pub fn trail_len(&self) -> usize {
        self.trail.len()
    }

    /// Drop the trail (after a successful search; the graph itself stays).
    pub fn clear_trail(&mut self) {
        self.trail.clear();
        self.trailing = false;
    }

    /// Roll the graph back to an earlier [`Self::mark`], undoing every
    /// recorded mutation in reverse order. Restores the earlier state
    /// exactly (`==`), including dep-set bookkeeping.
    pub fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let entry = self.trail.pop().expect("trail entry above mark");
            match entry {
                TrailEntry::ConceptAdded(id, c) => {
                    let node = self.nodes[id.0 as usize]
                        .as_mut()
                        .expect("node live at undo");
                    node.label.remove(&c);
                    node.label_deps.remove(&c);
                }
                TrailEntry::EdgeLabelAdded(key, role) => {
                    if let Some(labels) = self.edges.get_mut(&key) {
                        labels.remove(&role);
                        if labels.is_empty() {
                            self.edges.remove(&key);
                        }
                    }
                }
                TrailEntry::EdgeRemoved(key, labels) => {
                    self.edges.insert(key, labels);
                }
                TrailEntry::DistinctAdded(pair) => {
                    self.distinct.remove(&pair);
                }
                TrailEntry::DistinctRemoved(pair, deps) => {
                    self.distinct.insert(pair, deps);
                }
                TrailEntry::NodeCreated(id) => {
                    debug_assert_eq!(
                        id.0 as usize,
                        self.nodes.len() - 1,
                        "nodes are undone in reverse allocation order"
                    );
                    self.nodes.pop();
                }
                TrailEntry::NodeRemoved(id, node) => {
                    self.nodes[id.0 as usize] = Some(*node);
                }
                TrailEntry::NominalMapped(o, prev) => {
                    match prev {
                        Some(n) => self.nominal_nodes.insert(o, n),
                        None => self.nominal_nodes.remove(&o),
                    };
                }
                TrailEntry::NominalTagged(id, o) => {
                    self.nodes[id.0 as usize]
                        .as_mut()
                        .expect("node live at undo")
                        .nominals
                        .remove(&o);
                }
                TrailEntry::MergedInto(y) => {
                    self.merged_into.remove(&y);
                }
            }
        }
    }

    /// Create a root (nominal/ABox) node with no branch dependencies.
    pub fn new_root(&mut self) -> NodeId {
        self.new_root_d(DepSet::empty())
    }

    /// Create a root node whose existence depends on branch choices
    /// (`o`-rule materialization, `NN`-rule nominals).
    pub fn new_root_d(&mut self, deps: DepSet) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let mut node = Node::root(id);
        node.creation = deps;
        self.nodes.push(Some(node));
        if self.trailing {
            self.trail.push(TrailEntry::NodeCreated(id));
        }
        id
    }

    /// Create a blockable tree node under `parent`.
    pub fn new_blockable(&mut self, parent: NodeId) -> NodeId {
        self.new_blockable_d(parent, DepSet::empty())
    }

    /// Create a blockable tree node whose existence depends on branch
    /// choices (the deps of the `∃`/`≥` fact that generated it).
    pub fn new_blockable_d(&mut self, parent: NodeId, mut deps: DepSet) -> NodeId {
        let parent = self.resolve(parent);
        deps.union_with(&self.node(parent).creation);
        let id = NodeId(self.nodes.len() as u32);
        let mut node = Node::blockable(id, parent);
        node.creation = deps;
        self.nodes.push(Some(node));
        if self.trailing {
            self.trail.push(TrailEntry::NodeCreated(id));
        }
        id
    }

    /// Number of live nodes.
    pub fn live_node_count(&self) -> usize {
        self.nodes.iter().flatten().count()
    }

    /// Total ids ever allocated (live + merged/pruned).
    pub fn allocated_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Follow merge redirections to the surviving node.
    pub fn resolve(&self, mut id: NodeId) -> NodeId {
        while let Some(&(next, _)) = self.merged_into.get(&id) {
            id = next;
        }
        id
    }

    /// The branch choices responsible for the merge chain from `id` to
    /// its surviving node (empty when `id` is itself live).
    pub fn resolve_deps(&self, mut id: NodeId) -> DepSet {
        let mut deps = DepSet::empty();
        while let Some((next, d)) = self.merged_into.get(&id) {
            deps.union_with(d);
            id = *next;
        }
        deps
    }

    /// Borrow a live node.
    pub fn node(&self, id: NodeId) -> &Node {
        let id = self.resolve(id);
        self.nodes[id.0 as usize]
            .as_ref()
            .expect("resolved node must be live")
    }

    /// Is this id (after resolution) still part of the graph? Pruned
    /// subtrees disappear without a redirect.
    pub fn is_live(&self, id: NodeId) -> bool {
        let id = self.resolve(id);
        self.nodes[id.0 as usize].is_some()
    }

    /// Iterate over live node ids.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().flatten().map(|n| n.id)
    }

    /// Add a concept to a node's label as an unconditional fact. Returns
    /// `true` if the label grew.
    pub fn add_concept(&mut self, id: NodeId, c: Concept) -> bool {
        self.add_concept_d(id, c, DepSet::empty())
    }

    /// Add a concept with the dep-set of its derivation. The node's own
    /// creation deps are folded in, so the stored dep-set transitively
    /// covers the choices that brought the node into existence. When the
    /// concept is already present the earlier (equally valid) derivation's
    /// deps are kept.
    pub fn add_concept_d(&mut self, id: NodeId, c: Concept, mut deps: DepSet) -> bool {
        let id = self.resolve(id);
        let node = self.nodes[id.0 as usize]
            .as_mut()
            .expect("resolved node must be live");
        if node.label.contains(&c) {
            return false;
        }
        deps.union_with(&node.creation);
        node.label.insert(c.clone());
        if !deps.is_empty() {
            node.label_deps.insert(c.clone(), deps);
        }
        if self.trailing {
            self.trail.push(TrailEntry::ConceptAdded(id, c));
        }
        true
    }

    /// Does the node's label contain the concept?
    pub fn has_concept(&self, id: NodeId, c: &Concept) -> bool {
        self.node(id).label.contains(c)
    }

    /// The branch choices a label fact relies on (empty = unconditional).
    pub fn concept_deps(&self, id: NodeId, c: &Concept) -> DepSet {
        self.node(id).label_deps.get(c).cloned().unwrap_or_default()
    }

    /// Register `node` as the root standing for individual `o`.
    pub fn set_nominal_node(&mut self, o: IndividualName, node: NodeId) {
        let node = self.resolve(node);
        let tagged = self.nodes[node.0 as usize]
            .as_mut()
            .expect("live")
            .nominals
            .insert(o.clone());
        if self.trailing && tagged {
            self.trail.push(TrailEntry::NominalTagged(node, o.clone()));
        }
        let prev = self.nominal_nodes.insert(o.clone(), node);
        if self.trailing {
            self.trail.push(TrailEntry::NominalMapped(o, prev));
        }
    }

    /// The root node for an individual, if registered.
    pub fn nominal_node(&self, o: &IndividualName) -> Option<NodeId> {
        self.nominal_nodes.get(o).map(|&id| self.resolve(id))
    }

    /// Add an edge `x --role--> y` as an unconditional fact.
    pub fn add_edge(&mut self, x: NodeId, y: NodeId, role: &RoleExpr) {
        self.add_edge_d(x, y, role, DepSet::empty());
    }

    /// Add an edge with the dep-set of its derivation, canonicalized to
    /// the named direction. Both endpoints' creation deps are folded in.
    pub fn add_edge_d(&mut self, x: NodeId, y: NodeId, role: &RoleExpr, mut deps: DepSet) {
        let (x, y) = (self.resolve(x), self.resolve(y));
        deps.union_with(&self.node(x).creation);
        deps.union_with(&self.node(y).creation);
        let (from, to) = role.orient(x, y);
        let named = RoleExpr::named(role.name().clone());
        let labels = self.edges.entry((from, to)).or_default();
        if !labels.contains_key(&named) {
            labels.insert(named.clone(), deps);
            if self.trailing {
                self.trail
                    .push(TrailEntry::EdgeLabelAdded((from, to), named));
            }
        }
    }

    /// The union of dep-sets of all role labels connecting two nodes (in
    /// either stored direction) — the choices the neighbour relation
    /// between them relies on.
    pub fn edge_deps_between(&self, x: NodeId, y: NodeId) -> DepSet {
        let (x, y) = (self.resolve(x), self.resolve(y));
        let mut deps = DepSet::empty();
        for key in [(x, y), (y, x)] {
            if let Some(labels) = self.edges.get(&key) {
                for d in labels.values() {
                    deps.union_with(d);
                }
            }
        }
        deps
    }

    fn norm_pair(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a < b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Mark two nodes as distinct (unconditional). Returns a clash if they
    /// are (or have been merged into) the same node.
    pub fn set_distinct(&mut self, a: NodeId, b: NodeId) -> Option<Clash> {
        self.set_distinct_d(a, b, DepSet::empty())
            .map(|ci| ci.clash)
    }

    /// Mark two nodes as distinct with the dep-set of the inequality's
    /// derivation.
    pub fn set_distinct_d(&mut self, a: NodeId, b: NodeId, mut deps: DepSet) -> Option<ClashInfo> {
        deps.union_with(&self.resolve_deps(a));
        deps.union_with(&self.resolve_deps(b));
        let (a, b) = (self.resolve(a), self.resolve(b));
        if a == b {
            deps.union_with(&self.node(a).creation);
            return Some(ClashInfo::new(Clash::MergedDistinct(a, b), deps));
        }
        deps.union_with(&self.node(a).creation);
        deps.union_with(&self.node(b).creation);
        let pair = Self::norm_pair(a, b);
        if let std::collections::btree_map::Entry::Vacant(e) = self.distinct.entry(pair) {
            e.insert(deps);
            if self.trailing {
                self.trail.push(TrailEntry::DistinctAdded(pair));
            }
        }
        None
    }

    /// Are two nodes known to be distinct?
    pub fn are_distinct(&self, a: NodeId, b: NodeId) -> bool {
        let (a, b) = (self.resolve(a), self.resolve(b));
        a != b && self.distinct.contains_key(&Self::norm_pair(a, b))
    }

    /// The branch choices a recorded inequality relies on.
    pub fn distinct_deps(&self, a: NodeId, b: NodeId) -> DepSet {
        let (a, b) = (self.resolve(a), self.resolve(b));
        self.distinct
            .get(&Self::norm_pair(a, b))
            .cloned()
            .unwrap_or_default()
    }

    /// All `R`-neighbours of `x` under the given role hierarchy: nodes `y`
    /// with an edge whose label implies `R` in the right direction.
    pub fn neighbours(&self, x: NodeId, role: &RoleExpr, hierarchy: &RoleHierarchy) -> Vec<NodeId> {
        let x = self.resolve(x);
        let mut out = BTreeSet::new();
        for (&(from, to), labels) in &self.edges {
            if from == x {
                // Stored S: `to` is an S-neighbour; need S ⊑* R.
                if labels.keys().any(|s| hierarchy.is_subrole(s, role)) {
                    out.insert(to);
                }
            }
            if to == x {
                // Stored S from `from` to x: `from` is an S⁻-neighbour of
                // x; need S⁻ ⊑* R.
                if labels
                    .keys()
                    .any(|s| hierarchy.is_subrole(&s.inverse(), role))
                {
                    out.insert(from);
                }
            }
        }
        out.into_iter().collect()
    }

    /// The connecting role label between a tree parent and its child, as
    /// role expressions in parent→child direction (used by pairwise
    /// blocking).
    pub fn connecting_label(&self, parent: NodeId, child: NodeId) -> BTreeSet<RoleExpr> {
        let (parent, child) = (self.resolve(parent), self.resolve(child));
        let mut out = BTreeSet::new();
        if let Some(labels) = self.edges.get(&(parent, child)) {
            out.extend(labels.keys().cloned());
        }
        if let Some(labels) = self.edges.get(&(child, parent)) {
            out.extend(labels.keys().map(|r| r.inverse()));
        }
        out
    }

    /// Merge node `y` into node `x` (unconditional form).
    pub fn merge(&mut self, y: NodeId, x: NodeId) -> Option<Clash> {
        self.merge_d(y, x, DepSet::empty()).map(|ci| ci.clash)
    }

    /// Merge node `y` into node `x` (SHOIQ `Merge`): union the labels and
    /// nominals, reroute `y`'s edges to `x`, transfer `≠` pairs, then
    /// prune `y`'s blockable subtree. Returns a clash if `x ≠ y` was
    /// asserted. `deps` are the branch choices the merge decision relies
    /// on; every transferred fact's dep-set is widened by them (the fact
    /// now holds *at x* only because of the merge).
    pub fn merge_d(&mut self, y: NodeId, x: NodeId, deps: DepSet) -> Option<ClashInfo> {
        let mut mdeps = deps;
        mdeps.union_with(&self.resolve_deps(y));
        mdeps.union_with(&self.resolve_deps(x));
        let (y, x) = (self.resolve(y), self.resolve(x));
        if y == x {
            return None;
        }
        mdeps.union_with(&self.node(y).creation);
        mdeps.union_with(&self.node(x).creation);
        if self.are_distinct(x, y) {
            mdeps.union_with(&self.distinct_deps(x, y));
            return Some(ClashInfo::new(Clash::MergedDistinct(x, y), mdeps));
        }
        // Union label and nominals.
        let y_node = self.nodes[y.0 as usize].take().expect("live");
        if self.trailing {
            self.trail
                .push(TrailEntry::NodeRemoved(y, Box::new(y_node.clone())));
        }
        for c in &y_node.label {
            let mut cdeps = mdeps.clone();
            if let Some(d) = y_node.label_deps.get(c) {
                cdeps.union_with(d);
            }
            self.add_concept_d(x, c.clone(), cdeps);
        }
        for o in &y_node.nominals {
            let tagged = self.nodes[x.0 as usize]
                .as_mut()
                .expect("live")
                .nominals
                .insert(o.clone());
            if self.trailing && tagged {
                self.trail.push(TrailEntry::NominalTagged(x, o.clone()));
            }
            let prev = self.nominal_nodes.insert(o.clone(), x);
            if self.trailing {
                self.trail.push(TrailEntry::NominalMapped(o.clone(), prev));
            }
        }
        // Reroute edges touching y. Collect first to appease the borrow
        // checker; edge maps are small.
        let touching: Vec<(NodeId, NodeId)> = self
            .edges
            .keys()
            .filter(|&&(f, t)| f == y || t == y)
            .copied()
            .collect();
        for (f, t) in touching {
            let labels = self.edges.remove(&(f, t)).expect("collected key");
            if self.trailing {
                self.trail
                    .push(TrailEntry::EdgeRemoved((f, t), labels.clone()));
            }
            let nf = if f == y { x } else { f };
            let nt = if t == y { x } else { t };
            // A y–y self-loop (or y–x edge collapsing) becomes a self-loop
            // on x; neighbour queries handle it uniformly.
            let target = self.edges.entry((nf, nt)).or_default();
            for (role, rdeps) in labels {
                if !target.contains_key(&role) {
                    let mut d = rdeps;
                    d.union_with(&mdeps);
                    target.insert(role.clone(), d);
                    if self.trailing {
                        self.trail.push(TrailEntry::EdgeLabelAdded((nf, nt), role));
                    }
                }
            }
        }
        // Transfer ≠ pairs.
        let pairs: Vec<(NodeId, NodeId)> = self
            .distinct
            .keys()
            .filter(|&&(a, b)| a == y || b == y)
            .copied()
            .collect();
        for (a, b) in pairs {
            let pdeps = self.distinct.remove(&(a, b)).expect("collected pair");
            if self.trailing {
                self.trail
                    .push(TrailEntry::DistinctRemoved((a, b), pdeps.clone()));
            }
            let na = if a == y { x } else { a };
            let nb = if b == y { x } else { b };
            if na == nb {
                // x was in the transferred pair: x ≠ x.
                self.merged_into.insert(y, (x, mdeps.clone()));
                if self.trailing {
                    self.trail.push(TrailEntry::MergedInto(y));
                }
                let mut cdeps = pdeps;
                cdeps.union_with(&mdeps);
                return Some(ClashInfo::new(Clash::MergedDistinct(x, x), cdeps));
            }
            let pair = Self::norm_pair(na, nb);
            if let std::collections::btree_map::Entry::Vacant(e) = self.distinct.entry(pair) {
                let mut d = pdeps;
                d.union_with(&mdeps);
                e.insert(d);
                if self.trailing {
                    self.trail.push(TrailEntry::DistinctAdded(pair));
                }
            }
        }
        self.merged_into.insert(y, (x, mdeps));
        if self.trailing {
            self.trail.push(TrailEntry::MergedInto(y));
        }
        // Prune y's blockable subtree: children of y that were blockable
        // tree successors vanish.
        self.prune_children_of(y);
        None
    }

    /// Remove blockable nodes whose tree parent is `dead` (recursively),
    /// along with their edges.
    fn prune_children_of(&mut self, dead: NodeId) {
        let children: Vec<NodeId> = self
            .nodes
            .iter()
            .flatten()
            .filter(|n| n.is_blockable() && n.parent == Some(dead))
            .map(|n| n.id)
            .collect();
        for c in children {
            let node = self.nodes[c.0 as usize].take().expect("collected child");
            if self.trailing {
                self.trail.push(TrailEntry::NodeRemoved(c, Box::new(node)));
            }
            let touching: Vec<(NodeId, NodeId)> = self
                .edges
                .keys()
                .filter(|&&(f, t)| f == c || t == c)
                .copied()
                .collect();
            for k in touching {
                let labels = self.edges.remove(&k).expect("collected key");
                if self.trailing {
                    self.trail.push(TrailEntry::EdgeRemoved(k, labels));
                }
            }
            let pairs: Vec<(NodeId, NodeId)> = self
                .distinct
                .keys()
                .filter(|&&(a, b)| a == c || b == c)
                .copied()
                .collect();
            for p in pairs {
                let deps = self.distinct.remove(&p).expect("collected pair");
                if self.trailing {
                    self.trail.push(TrailEntry::DistinctRemoved(p, deps));
                }
            }
            self.prune_children_of(c);
        }
    }

    /// The tree ancestors of a node (parent first), stopping at a root.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.resolve(id);
        while let Some(p) = self.node(cur).parent {
            if !self.is_live(p) {
                break;
            }
            let p = self.resolve(p);
            out.push(p);
            cur = p;
            if self.node(cur).is_root {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::kb::KnowledgeBase;
    use dl::Axiom;

    fn hierarchy() -> RoleHierarchy {
        KnowledgeBase::new().role_hierarchy()
    }

    fn r(s: &str) -> RoleExpr {
        RoleExpr::named(s)
    }

    #[test]
    fn edges_canonicalize_inverse_direction() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        g.add_edge(a, b, &r("p").inverse());
        // Stored as b --p--> a, so a is a p⁻-neighbour of b? No: b is the
        // p-source. a's p⁻-neighbours = {b}? Check both views:
        let h = hierarchy();
        assert_eq!(g.neighbours(b, &r("p"), &h), vec![a]);
        assert_eq!(g.neighbours(a, &r("p").inverse(), &h), vec![b]);
        assert!(g.neighbours(a, &r("p"), &h).is_empty());
    }

    #[test]
    fn neighbours_respect_hierarchy() {
        let kb = KnowledgeBase::from_axioms([Axiom::RoleInclusion(r("p"), r("q"))]);
        let h = kb.role_hierarchy();
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        g.add_edge(a, b, &r("p"));
        assert_eq!(g.neighbours(a, &r("q"), &h), vec![b]);
        assert_eq!(g.neighbours(b, &r("q").inverse(), &h), vec![a]);
        assert!(g.neighbours(a, &r("q").inverse(), &h).is_empty());
    }

    #[test]
    fn merge_unions_labels_and_reroutes_edges() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        let c = g.new_root();
        g.add_edge(b, c, &r("p"));
        g.add_concept(b, Concept::atomic("B"));
        g.add_concept(a, Concept::atomic("A"));
        assert!(g.merge(b, a).is_none());
        assert_eq!(g.resolve(b), a);
        assert!(g.has_concept(a, &Concept::atomic("A")));
        assert!(g.has_concept(a, &Concept::atomic("B")));
        let h = hierarchy();
        assert_eq!(g.neighbours(a, &r("p"), &h), vec![c]);
        assert_eq!(g.live_node_count(), 2);
    }

    #[test]
    fn merge_of_distinct_nodes_clashes() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        assert!(g.set_distinct(a, b).is_none());
        assert!(matches!(g.merge(b, a), Some(Clash::MergedDistinct(..))));
    }

    #[test]
    fn distinctness_transfers_through_merge() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        let c = g.new_root();
        g.set_distinct(b, c);
        assert!(g.merge(b, a).is_none());
        assert!(g.are_distinct(a, c));
        // Now merging c into a must clash.
        assert!(g.merge(c, a).is_some());
    }

    #[test]
    fn merge_prunes_blockable_subtree() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        let t1 = g.new_blockable(b);
        let t2 = g.new_blockable(t1);
        g.add_edge(b, t1, &r("p"));
        g.add_edge(t1, t2, &r("p"));
        assert_eq!(g.live_node_count(), 4);
        g.merge(b, a).unwrap_none_or_panic();
        assert_eq!(g.live_node_count(), 1);
        assert!(!g.is_live(t1));
    }

    // Small helper so the intent reads clearly in tests.
    trait UnwrapNone {
        fn unwrap_none_or_panic(self);
    }
    impl UnwrapNone for Option<Clash> {
        fn unwrap_none_or_panic(self) {
            assert!(self.is_none(), "unexpected clash: {:?}", self);
        }
    }

    #[test]
    fn nominal_registration_follows_merges() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        g.set_nominal_node(IndividualName::new("o"), b);
        g.merge(b, a);
        assert_eq!(g.nominal_node(&IndividualName::new("o")), Some(a));
        assert!(g.node(a).nominals.contains(&IndividualName::new("o")));
    }

    #[test]
    fn ancestors_walk_to_root() {
        let mut g = CompletionGraph::new();
        let root = g.new_root();
        let t1 = g.new_blockable(root);
        let t2 = g.new_blockable(t1);
        assert_eq!(g.ancestors(t2), vec![t1, root]);
        assert!(g.ancestors(root).is_empty());
    }

    #[test]
    fn connecting_label_merges_both_directions() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_blockable(a);
        g.add_edge(a, b, &r("p"));
        g.add_edge(b, a, &r("q")); // i.e. a --q⁻--> b
        let lbl = g.connecting_label(a, b);
        assert!(lbl.contains(&r("p")));
        assert!(lbl.contains(&r("q").inverse()));
    }

    #[test]
    fn undo_restores_simple_mutations_exactly() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        g.add_concept(a, Concept::atomic("A"));
        g.set_trailing(true);
        let mark = g.mark();
        let before = g.clone();
        g.add_concept_d(a, Concept::atomic("B"), DepSet::single(0));
        g.add_edge_d(a, b, &r("p"), DepSet::single(1));
        let t = g.new_blockable_d(a, DepSet::single(2));
        g.add_concept_d(t, Concept::atomic("C"), DepSet::empty());
        g.set_distinct_d(a, b, DepSet::single(0));
        assert_ne!(g, before);
        g.undo_to(mark);
        assert_eq!(g, before);
    }

    #[test]
    fn undo_restores_merge_and_prune_exactly() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        let c = g.new_root();
        let t1 = g.new_blockable(b);
        let t2 = g.new_blockable(t1);
        g.add_edge(b, t1, &r("p"));
        g.add_edge(t1, t2, &r("p"));
        g.add_edge(b, c, &r("q"));
        g.add_concept(b, Concept::atomic("B"));
        g.set_distinct(b, c);
        g.set_nominal_node(IndividualName::new("o"), b);
        g.set_trailing(true);
        let mark = g.mark();
        let before = g.clone();
        assert!(g.merge_d(b, a, DepSet::single(4)).is_none());
        assert_eq!(g.resolve(b), a);
        assert!(!g.is_live(t1) && !g.is_live(t2));
        g.undo_to(mark);
        assert_eq!(g, before);
        assert!(g.is_live(t1) && g.is_live(t2));
        assert_eq!(g.nominal_node(&IndividualName::new("o")), Some(b));
    }

    #[test]
    fn dep_sets_cover_node_creation_transitively() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let t = g.new_blockable_d(a, DepSet::single(3));
        // A fact added to t with deps {5} must also carry t's creation
        // dep {3}: the fact relies on t existing at all.
        g.add_concept_d(t, Concept::atomic("C"), DepSet::single(5));
        let d = g.concept_deps(t, &Concept::atomic("C"));
        assert!(d.contains(3) && d.contains(5));
        // Edges likewise.
        g.add_edge_d(a, t, &r("p"), DepSet::empty());
        assert!(g.edge_deps_between(a, t).contains(3));
    }

    #[test]
    fn merge_widens_transferred_deps() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        g.add_concept_d(b, Concept::atomic("B"), DepSet::single(1));
        assert!(g.merge_d(b, a, DepSet::single(2)).is_none());
        let d = g.concept_deps(a, &Concept::atomic("B"));
        assert!(d.contains(1) && d.contains(2), "{d:?}");
        // Resolving through the merge reports the merge's deps.
        assert!(g.resolve_deps(b).contains(2));
    }

    #[test]
    fn clashes_carry_responsible_deps() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        assert!(g.set_distinct_d(a, b, DepSet::single(1)).is_none());
        let ci = g.merge_d(b, a, DepSet::single(2)).expect("clash");
        assert!(matches!(ci.clash, Clash::MergedDistinct(..)));
        assert!(ci.deps.contains(1) && ci.deps.contains(2));
    }
}
