//! Dependency sets and the undo trail — the machinery behind
//! `SearchStrategy::Trail`.
//!
//! Every fact in a completion graph (a label concept, an edge label, an
//! inequality, a node's existence, a merge redirect) carries a [`DepSet`]:
//! the set of branch-point ids whose chosen alternatives the fact's
//! derivation relied on. The invariant maintained by `graph.rs` and
//! `rules.rs` is:
//!
//! > **Dep-set invariant.** Every derived fact's dep-set is a superset of
//! > the branch choices its derivation used — including, transitively, the
//! > choices that created the nodes it mentions.
//!
//! Over-approximating a dep-set is always sound (the backjumper merely
//! skips fewer branch points); under-approximating would let the search
//! skip an alternative that could have avoided the clash, which is why
//! every uncertain site in `rules.rs` unions *more* rather than less.
//!
//! The trail itself is a flat undo log: each graph mutation appends one
//! `TrailEntry`, and [`crate::graph::CompletionGraph::undo_to`] replays
//! entries in reverse to restore any earlier state exactly (`==` on the
//! graph) — the branching mechanism of the trail search, replacing the
//! snapshot engine's whole-graph clones.

use crate::node::{Node, NodeId};
use dl::axiom::RoleExpr;
use dl::{Concept, IndividualName};
use std::collections::{BTreeMap, BTreeSet};

/// A set of branch-point ids a fact depends on. Branch points are numbered
/// in creation order by the trail search, so the maximum element is the
/// *deepest* responsible choice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepSet(BTreeSet<u32>);

impl DepSet {
    /// The empty dependency set: a fact that holds unconditionally.
    pub fn empty() -> Self {
        DepSet::default()
    }

    /// A singleton dependency on one branch point.
    pub fn single(id: u32) -> Self {
        DepSet(BTreeSet::from([id]))
    }

    /// No dependencies at all? A clash with an empty dep-set refutes the
    /// whole KB: no alternative anywhere can avoid it.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of branch points depended on.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Does the set mention this branch point?
    pub fn contains(&self, id: u32) -> bool {
        self.0.contains(&id)
    }

    /// Add one branch point.
    pub fn insert(&mut self, id: u32) {
        self.0.insert(id);
    }

    /// Drop one branch point (used when folding an exhausted branch
    /// point's failure deps into its parent's).
    pub fn remove(&mut self, id: u32) {
        self.0.remove(&id);
    }

    /// Union another dep-set into this one.
    pub fn union_with(&mut self, other: &DepSet) {
        if !other.0.is_empty() {
            self.0.extend(other.0.iter().copied());
        }
    }

    /// The deepest branch point depended on.
    pub fn max_id(&self) -> Option<u32> {
        self.0.iter().next_back().copied()
    }

    /// Iterate the branch-point ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().copied()
    }
}

/// One undoable completion-graph mutation. Entries record exactly the
/// information needed to reverse themselves; `undo_to` pops them in
/// reverse order, so compound operations (merges, pruning) decompose into
/// sequences of these primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TrailEntry {
    /// A concept entered a node label (undo: remove concept + its deps).
    ConceptAdded(NodeId, Concept),
    /// A role label was added to an edge (undo: remove the label; drop the
    /// edge entry when its label map empties).
    EdgeLabelAdded((NodeId, NodeId), RoleExpr),
    /// A whole edge entry was removed, e.g. rerouted by a merge (undo:
    /// reinsert the saved label map).
    EdgeRemoved((NodeId, NodeId), BTreeMap<RoleExpr, DepSet>),
    /// An inequality was recorded (undo: remove the pair).
    DistinctAdded((NodeId, NodeId)),
    /// An inequality was removed, e.g. transferred by a merge (undo:
    /// reinsert with its saved deps).
    DistinctRemoved((NodeId, NodeId), DepSet),
    /// A node was allocated (undo: pop it — ids are allocated in order, so
    /// the entry is always the vector's last slot at undo time).
    NodeCreated(NodeId),
    /// A node was removed — merged away or pruned (undo: restore it).
    NodeRemoved(NodeId, Box<Node>),
    /// `nominal_nodes[o]` was (re)bound; carries the previous binding.
    NominalMapped(IndividualName, Option<NodeId>),
    /// An individual name was added to a node's nominal set.
    NominalTagged(NodeId, IndividualName),
    /// A merge redirect `y ↦ x` was installed (undo: remove it).
    MergedInto(NodeId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depset_union_and_max() {
        let mut d = DepSet::single(3);
        d.union_with(&DepSet::single(7));
        d.union_with(&DepSet::empty());
        assert!(d.contains(3) && d.contains(7) && !d.contains(5));
        assert_eq!(d.max_id(), Some(7));
        assert_eq!(d.len(), 2);
        d.remove(7);
        assert_eq!(d.max_id(), Some(3));
        assert!(DepSet::empty().max_id().is_none());
    }

    #[test]
    fn empty_depset_is_unconditional() {
        assert!(DepSet::empty().is_empty());
        assert!(!DepSet::single(0).is_empty());
    }
}
