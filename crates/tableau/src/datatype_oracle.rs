//! The concrete-domain oracle: decides whether the datatype constraints a
//! node's label imposes are jointly satisfiable.
//!
//! Datatype reasoning in SHOIN(D) is local to a node — data roles have no
//! inverses and data values no successors — so instead of materializing
//! data successors in the completion graph, the oracle solves each node's
//! constraint system directly:
//!
//! * every `∃U.D` needs a `U`-successor value in `D`;
//! * every `U(a,v)` ABox assertion is encoded upstream as `∃U.{v}`;
//! * every `≥n.U` needs `n` pairwise-distinct `U`-successor values;
//! * every `∀W.D'` constrains successors of every `U ⊑* W`;
//! * every `≤n.W` caps the number of distinct values across all `U ⊑* W`.
//!
//! The search assigns values to required successors from candidate pools
//! produced by [`DataRange::witnesses`], allowing successors to share a
//! value (sharing is what makes `≤` satisfiable); it is exhaustive over a
//! candidate universe large enough to be complete for the built-in
//! datatypes (see `dl::datatype`).

use dl::datatype::DataRange;
use dl::name::DataRoleName;
use dl::{Concept, DataValue};
use std::collections::{BTreeMap, BTreeSet};

/// One required data successor: the role edge it hangs off and the
/// conjunction of ranges its value must satisfy.
#[derive(Debug, Clone)]
struct Requirement {
    role: DataRoleName,
    ranges: Vec<DataRange>,
    /// Successors from one `≥n.U` group must be pairwise distinct;
    /// `group` links them. `None` for `∃U.D` successors.
    group: Option<usize>,
}

/// An at-most cap: at most `n` distinct values across the given roles.
#[derive(Debug, Clone)]
struct Cap {
    roles: BTreeSet<DataRoleName>,
    n: u32,
}

/// Decide satisfiability of the data part of one node label.
///
/// `data_hierarchy` maps each data role to its super-roles (reflexive,
/// transitively closed); roles missing from the map have no declared
/// super-roles.
pub fn data_satisfiable(
    label: &BTreeSet<Concept>,
    data_hierarchy: &BTreeMap<DataRoleName, BTreeSet<DataRoleName>>,
) -> bool {
    let supers = |u: &DataRoleName| -> BTreeSet<DataRoleName> {
        data_hierarchy
            .get(u)
            .cloned()
            .unwrap_or_else(|| BTreeSet::from([u.clone()]))
    };

    // Collect universal constraints per "applies-to" role: ∀W.D applies to
    // any successor whose edge role U has W ∈ supers(U).
    let alls: Vec<(&DataRoleName, &DataRange)> = label
        .iter()
        .filter_map(|c| match c {
            Concept::DataAll(w, d) => Some((w, d)),
            _ => None,
        })
        .collect();
    let ranges_for = |u: &DataRoleName, base: Option<&DataRange>| -> Vec<DataRange> {
        let sup = supers(u);
        let mut v: Vec<DataRange> = base.into_iter().cloned().collect();
        for (w, d) in &alls {
            if sup.contains(w) {
                v.push((*d).clone());
            }
        }
        v
    };

    let mut requirements: Vec<Requirement> = Vec::new();
    let mut caps: Vec<Cap> = Vec::new();
    let mut group_counter = 0usize;
    for c in label {
        match c {
            Concept::DataSome(u, d) => requirements.push(Requirement {
                role: u.clone(),
                ranges: ranges_for(u, Some(d)),
                group: None,
            }),
            Concept::DataAtLeast(n, u) => {
                let g = group_counter;
                group_counter += 1;
                for _ in 0..*n {
                    requirements.push(Requirement {
                        role: u.clone(),
                        ranges: ranges_for(u, None),
                        group: Some(g),
                    });
                }
            }
            Concept::DataAtMost(n, w) => {
                // Cap applies to successors via any U with W ∈ supers(U).
                // We collect the affected roles lazily below; record W.
                caps.push(Cap {
                    roles: BTreeSet::from([w.clone()]),
                    n: *n,
                });
            }
            _ => {}
        }
    }
    // Expand each cap's role set to all roles U whose supers include the
    // capped role.
    let mentioned_roles: BTreeSet<DataRoleName> =
        requirements.iter().map(|r| r.role.clone()).collect();
    for cap in &mut caps {
        let w = cap.roles.iter().next().cloned().expect("one role");
        let mut affected = BTreeSet::new();
        for u in &mentioned_roles {
            if supers(u).contains(&w) {
                affected.insert(u.clone());
            }
        }
        cap.roles = affected;
    }

    if requirements.is_empty() {
        // Only caps and ∀-constraints: trivially satisfiable with zero
        // successors (caps are ≥ 0 by construction).
        return true;
    }

    // Candidate pools are drawn from a *node-wide* universe so that two
    // requirements with overlapping ranges can share a value (sharing is
    // what satisfies `≤` caps); per-requirement witness generation would
    // pick different representatives from the overlap.
    let k = requirements.len();
    let all_ranges: Vec<DataRange> = requirements
        .iter()
        .flat_map(|r| r.ranges.iter().cloned())
        .collect();
    let universe = DataRange::candidate_universe(&all_ranges, k);
    let pools: Vec<Vec<DataValue>> = requirements
        .iter()
        .map(|r| {
            universe
                .iter()
                .filter(|v| r.ranges.iter().all(|rng| rng.contains(v)))
                .cloned()
                .collect()
        })
        .collect();
    if pools.iter().any(|p| p.is_empty()) {
        return false;
    }

    // Backtracking assignment.
    fn ok_so_far(assigned: &[(usize, DataValue)], reqs: &[Requirement], caps: &[Cap]) -> bool {
        // Group distinctness.
        for (i, (ri, vi)) in assigned.iter().enumerate() {
            for (rj, vj) in assigned.iter().skip(i + 1) {
                let (a, b) = (&reqs[*ri], &reqs[*rj]);
                if a.group.is_some() && a.group == b.group && a.role == b.role && vi == vj {
                    return false;
                }
            }
        }
        // Caps: distinct values over affected roles.
        for cap in caps {
            let distinct: BTreeSet<&DataValue> = assigned
                .iter()
                .filter(|(ri, _)| cap.roles.contains(&reqs[*ri].role))
                .map(|(_, v)| v)
                .collect();
            if distinct.len() > cap.n as usize {
                return false;
            }
        }
        true
    }

    fn assign(
        idx: usize,
        assigned: &mut Vec<(usize, DataValue)>,
        reqs: &[Requirement],
        pools: &[Vec<DataValue>],
        caps: &[Cap],
    ) -> bool {
        if idx == reqs.len() {
            return true;
        }
        for v in &pools[idx] {
            assigned.push((idx, v.clone()));
            if ok_so_far(assigned, reqs, caps) && assign(idx + 1, assigned, reqs, pools, caps) {
                return true;
            }
            assigned.pop();
        }
        false
    }

    let mut assigned = Vec::new();
    assign(0, &mut assigned, &requirements, &pools, &caps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::datatype::BuiltinDatatype;

    fn u(s: &str) -> DataRoleName {
        DataRoleName::new(s)
    }
    fn int_range(min: Option<i64>, max: Option<i64>) -> DataRange {
        DataRange::IntRange { min, max }
    }
    fn no_hierarchy() -> BTreeMap<DataRoleName, BTreeSet<DataRoleName>> {
        BTreeMap::new()
    }

    fn sat(label: &[Concept]) -> bool {
        data_satisfiable(&label.iter().cloned().collect(), &no_hierarchy())
    }

    #[test]
    fn empty_label_is_satisfiable() {
        assert!(sat(&[]));
    }

    #[test]
    fn simple_exists_is_satisfiable() {
        assert!(sat(&[Concept::DataSome(
            u("age"),
            int_range(Some(0), None)
        )]));
    }

    #[test]
    fn exists_vs_forall_conflict() {
        assert!(!sat(&[
            Concept::DataSome(u("age"), int_range(Some(10), None)),
            Concept::DataAll(u("age"), int_range(None, Some(5))),
        ]));
        assert!(sat(&[
            Concept::DataSome(u("age"), int_range(Some(3), None)),
            Concept::DataAll(u("age"), int_range(None, Some(5))),
        ]));
    }

    #[test]
    fn at_least_needs_enough_distinct_values() {
        // ≥3 successors but ∀ restricts to a 2-element range: unsat.
        assert!(!sat(&[
            Concept::DataAtLeast(3, u("score")),
            Concept::DataAll(u("score"), int_range(Some(1), Some(2))),
        ]));
        assert!(sat(&[
            Concept::DataAtLeast(3, u("score")),
            Concept::DataAll(u("score"), int_range(Some(1), Some(3))),
        ]));
    }

    #[test]
    fn at_most_allows_sharing() {
        // Two ∃ with overlapping ranges can share one value under ≤1.
        assert!(sat(&[
            Concept::DataSome(u("v"), int_range(Some(0), Some(10))),
            Concept::DataSome(u("v"), int_range(Some(5), Some(15))),
            Concept::DataAtMost(1, u("v")),
        ]));
        // Disjoint ranges cannot share: unsat under ≤1.
        assert!(!sat(&[
            Concept::DataSome(u("v"), int_range(Some(0), Some(4))),
            Concept::DataSome(u("v"), int_range(Some(5), Some(9))),
            Concept::DataAtMost(1, u("v")),
        ]));
    }

    #[test]
    fn at_least_conflicts_with_at_most() {
        assert!(!sat(&[
            Concept::DataAtLeast(3, u("v")),
            Concept::DataAtMost(2, u("v")),
        ]));
        assert!(sat(&[
            Concept::DataAtLeast(2, u("v")),
            Concept::DataAtMost(2, u("v")),
        ]));
    }

    #[test]
    fn caps_respect_role_hierarchy() {
        // u ⊑ w; ≤1.w caps u-successors too.
        let mut h = BTreeMap::new();
        h.insert(u("u"), BTreeSet::from([u("u"), u("w")]));
        let label: BTreeSet<Concept> = [
            Concept::DataSome(u("u"), int_range(Some(0), Some(0))),
            Concept::DataSome(u("u"), int_range(Some(1), Some(1))),
            Concept::DataAtMost(1, u("w")),
        ]
        .into_iter()
        .collect();
        assert!(!data_satisfiable(&label, &h));
        // Without the hierarchy the cap on w does not touch u.
        assert!(sat(&[
            Concept::DataSome(u("u"), int_range(Some(0), Some(0))),
            Concept::DataSome(u("u"), int_range(Some(1), Some(1))),
            Concept::DataAtMost(1, u("w")),
        ]));
    }

    #[test]
    fn forall_respects_role_hierarchy() {
        // u ⊑ w; ∀w.D constrains ∃u successors.
        let mut h = BTreeMap::new();
        h.insert(u("u"), BTreeSet::from([u("u"), u("w")]));
        let label: BTreeSet<Concept> = [
            Concept::DataSome(u("u"), int_range(Some(10), None)),
            Concept::DataAll(u("w"), int_range(None, Some(5))),
        ]
        .into_iter()
        .collect();
        assert!(!data_satisfiable(&label, &h));
    }

    #[test]
    fn boolean_exhaustion() {
        // ≥3 boolean successors: impossible.
        assert!(!sat(&[
            Concept::DataAtLeast(3, u("flag")),
            Concept::DataAll(u("flag"), DataRange::Datatype(BuiltinDatatype::Boolean)),
        ]));
    }

    #[test]
    fn singleton_assertion_encoding() {
        // U(a, 4) encoded as ∃U.{4}; with ∀U.[0..3] it must clash.
        assert!(!sat(&[
            Concept::DataSome(u("v"), DataRange::one_of([DataValue::Integer(4)])),
            Concept::DataAll(u("v"), int_range(Some(0), Some(3))),
        ]));
    }
}
