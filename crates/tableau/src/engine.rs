//! The shared, immutable query engine behind [`crate::Reasoner`].
//!
//! [`QueryEngine`] owns the preprocessed [`Context`] and the initialized
//! base [`CompletionGraph`]; every reasoning service takes `&self` and
//! works on a clone of that graph, so any number of queries can run
//! concurrently (e.g. fanned out over `std::thread::scope` workers by the
//! batch drivers in the `shoin4` crate). Interior mutability is limited
//! to three caches:
//!
//! * **merged statistics** — each query runs a private [`Search`] and
//!   folds its counters into a mutex-guarded total, instead of mutating a
//!   shared accumulator mid-search;
//! * **the base model** — the first query that needs KB consistency runs
//!   the tableau once on the unaugmented base graph and keeps a cheap
//!   projection of the completed graph (atomic labels + individual
//!   placement). Consistency is read off that cache ("inconsistent KB
//!   entails everything" short-circuits *every* service, not just
//!   [`QueryEngine::entails`]), and the projection doubles as a sound
//!   entailment filter (see below);
//! * **a fresh-individual counter** for the entailment reductions that
//!   need anonymous witnesses.
//!
//! ## Model-based pruning
//!
//! A classical FaCT++/Pellet-style observation: one concrete model
//! refutes many entailments at once. If the cached base model interprets
//! individual `a` outside atomic concept `A`, then `KB ⊭ a : A` — no
//! search needed; only candidate entailments the model fails to refute
//! fall through to the full tableau. Soundness is one-directional (a
//! refutation is definitive, absence of a refutation proves nothing), so
//! answers never change — the property tests in `tests/batch_parity.rs`
//! check exactly this agreement.
//!
//! Two exactness caveats, both handled conservatively:
//!
//! * Named individuals always sit on *root* nodes, which survive the
//!   unraveling of a blocked graph with their labels intact — so
//!   instance-refutation is sound even when blocking fired.
//! * Anonymous nodes inside blocked subtrees may not denote real
//!   elements, so subsumption/satisfiability witnesses are only read off
//!   graphs with `blocked_nodes == 0`.

use crate::blocking::is_directly_blocked;
use crate::config::{Config, ReasonerError};
use crate::graph::CompletionGraph;
use crate::node::NodeId;
use crate::rules::{Context, Search};
use crate::stats::Stats;
use dl::axiom::{Axiom, RoleExpr};
use dl::datatype::DataRange;
use dl::kb::KnowledgeBase;
use dl::name::{ConceptName, IndividualName};
use dl::nnf::nnf;
use dl::Concept;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// A cheap projection of one completed, clash-free completion graph of
/// the base KB: which atomic concepts label which node, and where each
/// individual landed. Used as a sound entailment filter (see the module
/// docs for the soundness argument).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaseModel {
    labels: BTreeMap<NodeId, BTreeSet<ConceptName>>,
    individuals: BTreeMap<IndividualName, NodeId>,
    /// `true` iff no node was blocked — only then do anonymous nodes
    /// denote real elements of the represented model.
    exact: bool,
}

impl BaseModel {
    fn project(g: &CompletionGraph, strategy: crate::config::BlockingStrategy) -> BaseModel {
        let mut labels = BTreeMap::new();
        let mut individuals = BTreeMap::new();
        let mut blocked = 0usize;
        for x in g.live_nodes() {
            let node = g.node(x);
            let atoms: BTreeSet<ConceptName> = node
                .label
                .iter()
                .filter_map(|c| match c {
                    Concept::Atomic(a) => Some(a.clone()),
                    _ => None,
                })
                .collect();
            labels.insert(x, atoms);
            for o in &node.nominals {
                individuals.insert(o.clone(), x);
            }
            if node.is_blockable() && is_directly_blocked(g, x, strategy) {
                blocked += 1;
            }
        }
        BaseModel {
            labels,
            individuals,
            exact: blocked == 0,
        }
    }

    /// Does this model refute `KB ⊨ a : A`? (The model places `a`
    /// outside `A`, so the entailment certainly fails.) `false` means
    /// "no verdict", not "entailed".
    pub fn refutes_instance(&self, a: &IndividualName, atomic: &ConceptName) -> bool {
        match self.individuals.get(a) {
            Some(n) => !self.labels[n].contains(atomic),
            None => false,
        }
    }

    /// Does this model refute `KB ⊨ A ⊑ B`? (Some element is in `A` but
    /// not `B`.) Conservative: only answered on exact (unblocked) models.
    pub fn refutes_subsumption(&self, sub: &ConceptName, sup: &ConceptName) -> bool {
        self.exact
            && self
                .labels
                .values()
                .any(|l| l.contains(sub) && !l.contains(sup))
    }

    /// Does this model witness satisfiability of atomic `A` w.r.t. the
    /// KB? Conservative: only answered on exact models.
    pub fn witnesses_satisfiability(&self, atomic: &ConceptName) -> bool {
        self.exact && self.labels.values().any(|l| l.contains(atomic))
    }
}

/// The base-model cache: `None` = not yet computed; `Some(None)` = the KB
/// is inconsistent (no model); `Some(Some(m))` = consistent with model
/// projection `m`.
type BaseCache = Option<Option<Arc<BaseModel>>>;

/// An immutable SHOIN(D) query context over a fixed knowledge base.
///
/// Construction preprocesses the KB once (absorption, internalization,
/// ABox loading); every reasoning service then takes `&self` and works on
/// a clone of the initialized completion graph, so queries do not
/// interfere and may run on concurrent threads.
pub struct QueryEngine {
    ctx: Context,
    base_graph: CompletionGraph,
    /// A clash already during ABox loading (merge of asserted-distinct
    /// individuals) — the KB is inconsistent regardless of the search.
    setup_clash: bool,
    base: Mutex<BaseCache>,
    stats: Mutex<Stats>,
    query_counter: AtomicU32,
}

impl QueryEngine {
    /// Preprocess `kb` with the default configuration.
    pub fn new(kb: &KnowledgeBase) -> Self {
        Self::with_config(kb, Config::default())
    }

    /// Preprocess `kb` with an explicit configuration.
    pub fn with_config(kb: &KnowledgeBase, config: Config) -> Self {
        let mut globals = Vec::new();
        let mut unfoldings: BTreeMap<ConceptName, Vec<Concept>> = BTreeMap::new();
        for ax in kb.tbox() {
            if let Axiom::ConceptInclusion(c, d) = ax {
                if config.absorption {
                    match c {
                        // A ⊑ D: unfold A lazily.
                        Concept::Atomic(a) => {
                            unfoldings.entry(a.clone()).or_default().push(nnf(d));
                            continue;
                        }
                        // A ⊓ C ⊑ D (e.g. disjointness A ⊓ B ⊑ ⊥):
                        // absorb into A → ¬C ⊔ D, keeping the constraint
                        // local to nodes actually labelled A.
                        Concept::And(l, r) => {
                            if let Concept::Atomic(a) = &**l {
                                unfoldings
                                    .entry(a.clone())
                                    .or_default()
                                    .push(nnf(&(**r).clone().not().or(d.clone())));
                                continue;
                            }
                            if let Concept::Atomic(a) = &**r {
                                unfoldings
                                    .entry(a.clone())
                                    .or_default()
                                    .push(nnf(&(**l).clone().not().or(d.clone())));
                                continue;
                            }
                        }
                        _ => {}
                    }
                }
                globals.push(nnf(&c.clone().not().or(d.clone())));
            }
        }
        let ctx = Context {
            hierarchy: kb.role_hierarchy(),
            data_hierarchy: kb.data_role_hierarchy(),
            globals,
            unfoldings,
            config,
        };

        // Load the ABox into the base completion graph. Individuals from
        // the signature are pre-created in deterministic order; any ABox
        // individual the signature missed is created on first mention
        // (`ensure_node`) instead of panicking.
        let mut g = CompletionGraph::new();
        let mut setup_clash = false;
        let sig = kb.signature();
        for o in &sig.individuals {
            Self::ensure_node(&mut g, o);
        }
        for ax in kb.abox() {
            match ax {
                Axiom::ConceptAssertion(a, c) => {
                    let n = Self::ensure_node(&mut g, a);
                    g.add_concept(n, nnf(c));
                }
                Axiom::RoleAssertion(r, a, b) => {
                    let (na, nb) = (Self::ensure_node(&mut g, a), Self::ensure_node(&mut g, b));
                    g.add_edge(na, nb, &RoleExpr::named(r.clone()));
                }
                Axiom::DataAssertion(u, a, v) => {
                    let n = Self::ensure_node(&mut g, a);
                    g.add_concept(
                        n,
                        Concept::DataSome(u.clone(), DataRange::one_of([v.clone()])),
                    );
                }
                Axiom::SameIndividual(a, b) => {
                    let (na, nb) = (Self::ensure_node(&mut g, a), Self::ensure_node(&mut g, b));
                    if g.merge(na, nb).is_some() {
                        setup_clash = true;
                    }
                }
                Axiom::DifferentIndividuals(a, b) => {
                    let (na, nb) = (Self::ensure_node(&mut g, a), Self::ensure_node(&mut g, b));
                    if g.set_distinct(na, nb).is_some() {
                        setup_clash = true;
                    }
                }
                _ => {}
            }
        }
        // A pure-TBox KB still requires a non-empty domain.
        if sig.individuals.is_empty() {
            g.new_root();
        }

        QueryEngine {
            ctx,
            base_graph: g,
            setup_clash,
            base: Mutex::new(None),
            stats: Mutex::new(Stats::default()),
            query_counter: AtomicU32::new(0),
        }
    }

    /// Statistics merged across all queries so far (on all threads).
    pub fn stats(&self) -> Stats {
        *self.stats.lock().expect("stats lock")
    }

    /// Active configuration.
    pub fn config(&self) -> &Config {
        &self.ctx.config
    }

    fn absorb_stats(&self, s: &Stats) {
        self.stats.lock().expect("stats lock").absorb(s);
    }

    /// Merge externally collected counters (e.g. the module-scoping
    /// layer's `scoped_queries` / `module_axioms` /
    /// `module_extraction_ns`, or a scoped sub-engine's whole `Stats`)
    /// into this engine's totals, so one `stats()` call reports the
    /// entire pipeline.
    pub fn merge_stats(&self, s: &Stats) {
        self.absorb_stats(s);
    }

    fn ensure_node(g: &mut CompletionGraph, o: &IndividualName) -> NodeId {
        match g.nominal_node(o) {
            Some(n) => n,
            None => {
                let n = g.new_root();
                g.set_nominal_node(o.clone(), n);
                g.add_concept(n, Concept::one_of([o.clone()]));
                n
            }
        }
    }

    fn fresh_individual(&self) -> IndividualName {
        let i = self.query_counter.fetch_add(1, Ordering::Relaxed);
        IndividualName::new(format!("__q{i}"))
    }

    /// Run one satisfiability search on an augmented graph. Short-circuits
    /// when the base KB is already *known* inconsistent: every augmented
    /// graph is then unsatisfiable too (queries only ever add constraints).
    fn run(&self, g: CompletionGraph) -> Result<bool, ReasonerError> {
        if self.setup_clash {
            return Ok(false);
        }
        if let Some(cache) = &*self.base.lock().expect("base lock") {
            if cache.is_none() {
                return Ok(false);
            }
        }
        let mut search = Search::new(&self.ctx);
        let result = search.satisfiable(g);
        self.absorb_stats(&search.stats);
        result
    }

    /// The cached base-model projection: computed by running the tableau
    /// to completion on the unaugmented base graph, once, on first need.
    /// `Ok(None)` means the KB is inconsistent. Resource-limit errors are
    /// *not* cached — a later call under a fresh budget retries.
    fn base_model(&self) -> Result<Option<Arc<BaseModel>>, ReasonerError> {
        if self.setup_clash {
            return Ok(None);
        }
        let mut guard = self.base.lock().expect("base lock");
        if let Some(cached) = &*guard {
            return Ok(cached.clone());
        }
        let mut search = Search::new(&self.ctx);
        let done = search.complete(self.base_graph.clone());
        self.absorb_stats(&search.stats);
        let computed = done?.map(|g| Arc::new(BaseModel::project(&g, self.ctx.config.blocking)));
        *guard = Some(computed.clone());
        Ok(computed)
    }

    /// The base-model projection if the KB is consistent (computing it on
    /// first call), for callers that want to reuse the entailment filter
    /// directly.
    pub fn base_model_for_pruning(&self) -> Result<Option<Arc<BaseModel>>, ReasonerError> {
        if !self.ctx.config.model_pruning {
            return Ok(None);
        }
        self.base_model()
    }

    /// Is the knowledge base satisfiable? Computed once and cached; every
    /// other service consults the same cache.
    pub fn is_consistent(&self) -> Result<bool, ReasonerError> {
        Ok(self.base_model()?.is_some())
    }

    /// Find a model of the KB, if one exists: run the tableau to
    /// completion and extract the final structure. See
    /// [`crate::model::ExtractedModel::blocked_nodes`] for the finiteness
    /// caveat.
    pub fn find_model(&self) -> Result<Option<crate::model::ExtractedModel>, ReasonerError> {
        if self.setup_clash {
            return Ok(None);
        }
        let mut search = Search::new(&self.ctx);
        let done = search.complete(self.base_graph.clone());
        self.absorb_stats(&search.stats);
        Ok(done?.map(|g| crate::model::extract(&g, &self.ctx.hierarchy, self.ctx.config.blocking)))
    }

    /// Is `c` satisfiable w.r.t. the KB (some model has a `c`-instance)?
    pub fn is_concept_satisfiable(&self, c: &Concept) -> Result<bool, ReasonerError> {
        let Some(model) = self.base_model()? else {
            // An inconsistent KB has no models at all.
            return Ok(false);
        };
        if self.ctx.config.model_pruning {
            if let Concept::Atomic(a) = c {
                if model.witnesses_satisfiability(a) {
                    return Ok(true);
                }
            }
        }
        let mut g = self.base_graph.clone();
        let n = g.new_root();
        g.add_concept(n, nnf(c));
        self.run(g)
    }

    /// Does the KB entail `sub ⊑ sup`? (`sub ⊓ ¬sup` unsatisfiable.)
    pub fn is_subsumed_by(&self, sub: &Concept, sup: &Concept) -> Result<bool, ReasonerError> {
        let Some(model) = self.base_model()? else {
            return Ok(true); // inconsistent KB entails everything
        };
        if self.ctx.config.model_pruning {
            if let (Concept::Atomic(a), Concept::Atomic(b)) = (sub, sup) {
                if model.refutes_subsumption(a, b) {
                    return Ok(false);
                }
            }
        }
        let test = sub.clone().and(sup.clone().not());
        Ok(!self.is_concept_satisfiable(&test)?)
    }

    /// Does the KB entail `a : c`? (`KB ∪ {a:¬c}` inconsistent.)
    pub fn is_instance_of(&self, a: &IndividualName, c: &Concept) -> Result<bool, ReasonerError> {
        let Some(model) = self.base_model()? else {
            return Ok(true); // inconsistent KB entails everything
        };
        if self.ctx.config.model_pruning {
            if let Concept::Atomic(name) = c {
                if model.refutes_instance(a, name) {
                    return Ok(false);
                }
            }
        }
        let mut g = self.base_graph.clone();
        let n = Self::ensure_node(&mut g, a);
        g.add_concept(n, nnf(&c.clone().not()));
        Ok(!self.run(g)?)
    }

    /// Does the KB entail the given axiom? Supports every axiom form via
    /// the standard reductions to KB (un)satisfiability.
    pub fn entails(&self, axiom: &Axiom) -> Result<bool, ReasonerError> {
        // An inconsistent KB entails everything.
        if !self.is_consistent()? {
            return Ok(true);
        }
        match axiom {
            Axiom::ConceptInclusion(c, d) => self.is_subsumed_by(c, d),
            Axiom::ConceptAssertion(a, c) => self.is_instance_of(a, c),
            Axiom::RoleAssertion(r, a, b) => {
                // KB ⊨ R(a,b) iff KB ∪ {a : ∀R.¬{b}} is inconsistent.
                let mut g = self.base_graph.clone();
                let na = Self::ensure_node(&mut g, a);
                Self::ensure_node(&mut g, b);
                g.add_concept(
                    na,
                    Concept::all(
                        RoleExpr::named(r.clone()),
                        Concept::one_of([b.clone()]).not(),
                    ),
                );
                Ok(!self.run(g)?)
            }
            Axiom::DataAssertion(u, a, v) => {
                let mut g = self.base_graph.clone();
                let na = Self::ensure_node(&mut g, a);
                g.add_concept(
                    na,
                    Concept::DataAll(u.clone(), DataRange::one_of([v.clone()]).complement()),
                );
                Ok(!self.run(g)?)
            }
            Axiom::SameIndividual(a, b) => {
                let mut g = self.base_graph.clone();
                let na = Self::ensure_node(&mut g, a);
                let nb = Self::ensure_node(&mut g, b);
                if g.set_distinct(na, nb).is_some() {
                    return Ok(true);
                }
                Ok(!self.run(g)?)
            }
            Axiom::DifferentIndividuals(a, b) => {
                let mut g = self.base_graph.clone();
                let na = Self::ensure_node(&mut g, a);
                let nb = Self::ensure_node(&mut g, b);
                if g.merge(na, nb).is_some() {
                    return Ok(true);
                }
                Ok(!self.run(g)?)
            }
            Axiom::RoleInclusion(r, s) => {
                // KB ⊨ R ⊑ S iff KB ∪ {R(a,b), a : ∀S.¬{b}} is
                // inconsistent for fresh a, b.
                let (a, b) = (self.fresh_individual(), self.fresh_individual());
                let mut g = self.base_graph.clone();
                let na = Self::ensure_node(&mut g, &a);
                let nb = Self::ensure_node(&mut g, &b);
                g.add_edge(na, nb, r);
                g.add_concept(
                    na,
                    Concept::all(s.clone(), Concept::one_of([b.clone()]).not()),
                );
                Ok(!self.run(g)?)
            }
            Axiom::Transitive(r) => {
                // KB ⊨ Trans(R) iff KB ∪ {R(a,b), R(b,c), a : ∀R.¬{c}} is
                // inconsistent for fresh a, b, c.
                let role = RoleExpr::named(r.clone());
                let (a, b, c) = (
                    self.fresh_individual(),
                    self.fresh_individual(),
                    self.fresh_individual(),
                );
                let mut g = self.base_graph.clone();
                let na = Self::ensure_node(&mut g, &a);
                let nb = Self::ensure_node(&mut g, &b);
                let nc = Self::ensure_node(&mut g, &c);
                g.add_edge(na, nb, &role);
                g.add_edge(nb, nc, &role);
                g.add_concept(na, Concept::all(role, Concept::one_of([c.clone()]).not()));
                Ok(!self.run(g)?)
            }
            Axiom::DataRoleInclusion(u, v) => {
                // KB ⊨ U ⊑ V iff KB ∪ {U(a, w), a : ∀V.¬{w}} is
                // inconsistent for fresh a and a fresh value w.
                let a = self.fresh_individual();
                let w = dl::DataValue::Str(format!(
                    "__qv{}",
                    self.query_counter.load(Ordering::Relaxed)
                ));
                let mut g = self.base_graph.clone();
                let na = Self::ensure_node(&mut g, &a);
                g.add_concept(
                    na,
                    Concept::DataSome(u.clone(), DataRange::one_of([w.clone()])),
                );
                g.add_concept(
                    na,
                    Concept::DataAll(v.clone(), DataRange::one_of([w]).complement()),
                );
                Ok(!self.run(g)?)
            }
        }
    }

    /// Compute, for every named concept in `sig_concepts`, the set of
    /// named concepts subsuming it (including itself and implicitly `⊤`).
    /// Brute-force n² classification with unsatisfiable-concept handling.
    pub fn classify(
        &self,
        sig_concepts: &BTreeSet<ConceptName>,
    ) -> Result<BTreeMap<ConceptName, BTreeSet<ConceptName>>, ReasonerError> {
        let names: Vec<ConceptName> = sig_concepts.iter().cloned().collect();
        let mut out: BTreeMap<ConceptName, BTreeSet<ConceptName>> = BTreeMap::new();
        for a in &names {
            let ca = Concept::Atomic(a.clone());
            let mut supers = BTreeSet::new();
            for b in &names {
                let cb = Concept::Atomic(b.clone());
                if self.is_subsumed_by(&ca, &cb)? {
                    supers.insert(b.clone());
                }
            }
            out.insert(a.clone(), supers);
        }
        Ok(out)
    }
}

// The whole point of the engine: it must be shareable across scoped
// worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use dl::parser::parse_kb;

    fn engine(src: &str) -> QueryEngine {
        QueryEngine::new(&parse_kb(src).unwrap())
    }

    #[test]
    fn shared_queries_from_scoped_threads() {
        let e = engine(
            "Surgeon SubClassOf Doctor
             Doctor SubClassOf Person
             s : Surgeon
             n : Nurse",
        );
        let inds = ["s", "n"];
        let concepts = ["Surgeon", "Doctor", "Person", "Nurse"];
        let parallel: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = inds
                .iter()
                .map(|i| {
                    let e = &e;
                    scope.spawn(move || {
                        concepts
                            .iter()
                            .map(|c| {
                                e.is_instance_of(&IndividualName::new(*i), &Concept::atomic(*c))
                                    .unwrap()
                            })
                            .collect::<Vec<bool>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker"))
                .collect()
        });
        assert_eq!(
            parallel,
            vec![true, true, true, false, false, false, false, true]
        );
    }

    #[test]
    fn consistency_cache_is_shared_with_direct_queries() {
        // On an inconsistent KB the refutation runs once; every direct
        // service short-circuits off the shared cache afterwards.
        let e = engine("a : A and not A");
        assert!(!e.is_consistent().unwrap());
        let after_refutation = e.stats();
        assert!(e
            .is_instance_of(&IndividualName::new("zzz"), &Concept::atomic("Q"))
            .unwrap());
        assert!(e
            .is_subsumed_by(&Concept::atomic("Q"), &Concept::atomic("R"))
            .unwrap());
        assert!(!e.is_concept_satisfiable(&Concept::atomic("Q")).unwrap());
        // No further search happened: the counters did not move.
        assert_eq!(e.stats(), after_refutation);
    }

    #[test]
    fn model_pruning_answers_non_entailments_without_search() {
        let e = engine(
            "Surgeon SubClassOf Doctor
             s : Surgeon
             n : Nurse",
        );
        // Warm the base model.
        assert!(e.is_consistent().unwrap());
        let warm = e.stats();
        // `n : Doctor` is refuted by the base model — no tableau run.
        assert!(!e
            .is_instance_of(&IndividualName::new("n"), &Concept::atomic("Doctor"))
            .unwrap());
        assert_eq!(e.stats(), warm);
        // A real entailment still goes to the tableau and agrees.
        assert!(e
            .is_instance_of(&IndividualName::new("s"), &Concept::atomic("Doctor"))
            .unwrap());
        assert!(e.stats().rule_applications >= warm.rule_applications);
    }

    #[test]
    fn model_pruning_agrees_with_plain_search() {
        let src = "Surgeon SubClassOf Doctor
                   Doctor SubClassOf Person
                   Person SubClassOf hasParent some Person
                   s : Surgeon
                   n : Nurse
                   p : Person";
        let kb = parse_kb(src).unwrap();
        let pruned = QueryEngine::new(&kb);
        let plain = QueryEngine::with_config(
            &kb,
            Config {
                model_pruning: false,
                ..Config::default()
            },
        );
        for i in ["s", "n", "p", "ghost"] {
            for c in ["Surgeon", "Doctor", "Person", "Nurse"] {
                let ind = IndividualName::new(i);
                let con = Concept::atomic(c);
                assert_eq!(
                    pruned.is_instance_of(&ind, &con).unwrap(),
                    plain.is_instance_of(&ind, &con).unwrap(),
                    "disagreement on {i}:{c}"
                );
            }
        }
        for a in ["Surgeon", "Doctor", "Person", "Nurse"] {
            for b in ["Surgeon", "Doctor", "Person", "Nurse"] {
                assert_eq!(
                    pruned
                        .is_subsumed_by(&Concept::atomic(a), &Concept::atomic(b))
                        .unwrap(),
                    plain
                        .is_subsumed_by(&Concept::atomic(a), &Concept::atomic(b))
                        .unwrap(),
                    "disagreement on {a} ⊑ {b}"
                );
            }
        }
    }

    #[test]
    fn abox_individuals_outside_the_signature_do_not_panic() {
        // `ensure_node` makes ABox loading total even if an individual
        // escaped the signature pre-pass (defensive: the signature is
        // supposed to cover every ABox subject).
        let kb = KnowledgeBase::from_axioms([
            Axiom::ConceptAssertion(
                IndividualName::new("a"),
                Concept::one_of([IndividualName::new("b")]),
            ),
            Axiom::RoleAssertion(
                dl::RoleName::new("r"),
                IndividualName::new("a"),
                IndividualName::new("b"),
            ),
        ]);
        let e = QueryEngine::new(&kb);
        assert!(e.is_consistent().unwrap());
    }

    #[test]
    fn stats_merge_across_threads() {
        let e = engine("A SubClassOf B\nx : A");
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let e = &e;
                scope.spawn(move || {
                    e.is_instance_of(&IndividualName::new("x"), &Concept::atomic("B"))
                        .unwrap();
                });
            }
        });
        assert!(e.stats().rule_applications > 0);
    }
}
