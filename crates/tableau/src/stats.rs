//! Search statistics, exposed for the benchmark harness and for debugging
//! pathological inputs.

use crate::clash::{Clash, KIND_COUNT};

/// Counters accumulated over one reasoning call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Nodes allocated across all branches.
    pub nodes_created: u64,
    /// Rule applications across all branches.
    pub rule_applications: u64,
    /// Nondeterministic branch points explored.
    pub branches: u64,
    /// Branches closed by a clash.
    pub clashes: u64,
    /// Deepest completion graph (live nodes) seen.
    pub peak_graph_size: u64,
    /// Whole-graph clones performed by the snapshot search (one per tried
    /// alternative). Zero on the trail path — that is the point.
    pub graph_clones: u64,
    /// Branch points skipped wholesale by dependency-directed backjumping
    /// (their remaining alternatives were provably irrelevant).
    pub backjumps: u64,
    /// Longest undo trail seen (trail search only).
    pub trail_len_peak: u64,
    /// Deepest open-branch-point stack seen.
    pub branch_depth_peak: u64,
    /// Clashes by kind, indexed by [`Clash::kind_index`] and labelled by
    /// [`crate::clash::KIND_LABELS`].
    pub clashes_by_kind: [u64; KIND_COUNT],
    /// Queries answered through an extracted module instead of the full
    /// KB (module scoping; counted by the four-valued layer).
    pub scoped_queries: u64,
    /// Total axioms across all extracted modules (so
    /// `module_axioms / scoped_queries` is the mean module size).
    pub module_axioms: u64,
    /// Wall-clock nanoseconds spent extracting modules — the overhead
    /// side of the module-scoping trade.
    pub module_extraction_ns: u64,
    /// Queries answered by the Horn saturation fast path instead of the
    /// tableau (counted by the four-valued layer).
    pub horn_queries: u64,
    /// Horn clauses (rules plus base facts) compiled across all
    /// Horn-classified modules — each module is compiled once.
    pub horn_clauses: u64,
    /// Semi-naive saturation rounds executed by the Horn engine
    /// (memoized closures add nothing on reuse).
    pub saturation_rounds: u64,
    /// Horn-routable queries whose module failed Horn classification
    /// and fell back to the tableau.
    pub horn_fallbacks: u64,
    /// Instance/entailment queries answered straight from the
    /// entailment cache (counted by the four-valued layer).
    pub entailment_cache_hits: u64,
    /// Instance/entailment queries that missed the entailment cache and
    /// had to be computed.
    pub entailment_cache_misses: u64,
    /// Module-scoped queries that reused an already-built per-module
    /// `QueryEngine`.
    pub engine_cache_hits: u64,
    /// Module-scoped queries that had to build a fresh per-module
    /// `QueryEngine`.
    pub engine_cache_misses: u64,
    /// Horn-routed queries that reused an already-compiled (or
    /// already-rejected) module program.
    pub horn_cache_hits: u64,
    /// Horn-routed queries that had to classify and compile their
    /// module program.
    pub horn_cache_misses: u64,
    /// Session mutations applied (`add_axiom` + `retract_axiom`).
    pub mutations: u64,
    /// Cached per-module engines/programs dropped by delta-driven
    /// invalidation (incremental sessions only).
    pub invalidated_modules: u64,
    /// Entailment-cache entries dropped because their answering module
    /// was invalidated.
    pub invalidated_entailments: u64,
    /// Told-index rows (memoized membership closures / subsumer sets /
    /// seed lists) dropped by incremental maintenance.
    pub invalidated_told_rows: u64,
    /// Searches aborted by an external cancellation token
    /// ([`crate::Config::cancel`] or [`crate::interrupt`]).
    pub cancelled: u64,
    /// Per-module engines/Horn programs adopted from a cross-tenant
    /// shared cache instead of being built locally (serving layer).
    pub shared_module_hits: u64,
    /// Per-module engines/Horn programs this session built and
    /// published to a cross-tenant shared cache.
    pub shared_module_misses: u64,
    /// Query verdicts answered from the cross-tenant shared row cache
    /// (content-addressed by the module's structural key).
    pub shared_row_hits: u64,
    /// Query verdicts computed locally and published to the shared row
    /// cache.
    pub shared_row_misses: u64,
}

impl Stats {
    /// Count one clash, both in the total and in its per-kind bucket.
    pub fn record_clash(&mut self, clash: &Clash) {
        self.clashes += 1;
        self.clashes_by_kind[clash.kind_index()] += 1;
    }

    /// Fold another run's counters into this one.
    pub fn absorb(&mut self, other: &Stats) {
        self.nodes_created += other.nodes_created;
        self.rule_applications += other.rule_applications;
        self.branches += other.branches;
        self.clashes += other.clashes;
        self.peak_graph_size = self.peak_graph_size.max(other.peak_graph_size);
        self.graph_clones += other.graph_clones;
        self.backjumps += other.backjumps;
        self.trail_len_peak = self.trail_len_peak.max(other.trail_len_peak);
        self.branch_depth_peak = self.branch_depth_peak.max(other.branch_depth_peak);
        self.scoped_queries += other.scoped_queries;
        self.module_axioms += other.module_axioms;
        self.module_extraction_ns += other.module_extraction_ns;
        self.horn_queries += other.horn_queries;
        self.horn_clauses += other.horn_clauses;
        self.saturation_rounds += other.saturation_rounds;
        self.horn_fallbacks += other.horn_fallbacks;
        self.entailment_cache_hits += other.entailment_cache_hits;
        self.entailment_cache_misses += other.entailment_cache_misses;
        self.engine_cache_hits += other.engine_cache_hits;
        self.engine_cache_misses += other.engine_cache_misses;
        self.horn_cache_hits += other.horn_cache_hits;
        self.horn_cache_misses += other.horn_cache_misses;
        self.mutations += other.mutations;
        self.invalidated_modules += other.invalidated_modules;
        self.invalidated_entailments += other.invalidated_entailments;
        self.invalidated_told_rows += other.invalidated_told_rows;
        self.cancelled += other.cancelled;
        self.shared_module_hits += other.shared_module_hits;
        self.shared_module_misses += other.shared_module_misses;
        self.shared_row_hits += other.shared_row_hits;
        self.shared_row_misses += other.shared_row_misses;
        for (mine, theirs) in self
            .clashes_by_kind
            .iter_mut()
            .zip(other.clashes_by_kind.iter())
        {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = Stats {
            nodes_created: 1,
            rule_applications: 2,
            branches: 3,
            clashes: 4,
            peak_graph_size: 5,
            graph_clones: 6,
            backjumps: 7,
            trail_len_peak: 8,
            branch_depth_peak: 2,
            ..Stats::default()
        };
        let b = Stats {
            nodes_created: 10,
            rule_applications: 10,
            branches: 10,
            clashes: 10,
            peak_graph_size: 2,
            graph_clones: 10,
            backjumps: 10,
            trail_len_peak: 3,
            branch_depth_peak: 9,
            scoped_queries: 2,
            module_axioms: 30,
            module_extraction_ns: 400,
            horn_queries: 5,
            horn_clauses: 40,
            saturation_rounds: 6,
            horn_fallbacks: 1,
            entailment_cache_hits: 11,
            entailment_cache_misses: 12,
            engine_cache_hits: 13,
            engine_cache_misses: 14,
            horn_cache_hits: 15,
            horn_cache_misses: 16,
            mutations: 17,
            invalidated_modules: 18,
            invalidated_entailments: 19,
            invalidated_told_rows: 20,
            cancelled: 21,
            shared_module_hits: 22,
            shared_module_misses: 23,
            shared_row_hits: 24,
            shared_row_misses: 25,
            ..Stats::default()
        };
        a.absorb(&b);
        assert_eq!(a.nodes_created, 11);
        assert_eq!(a.scoped_queries, 2);
        assert_eq!(a.module_axioms, 30);
        assert_eq!(a.module_extraction_ns, 400);
        assert_eq!(a.horn_queries, 5);
        assert_eq!(a.horn_clauses, 40);
        assert_eq!(a.saturation_rounds, 6);
        assert_eq!(a.horn_fallbacks, 1);
        assert_eq!(a.entailment_cache_hits, 11);
        assert_eq!(a.entailment_cache_misses, 12);
        assert_eq!(a.engine_cache_hits, 13);
        assert_eq!(a.engine_cache_misses, 14);
        assert_eq!(a.horn_cache_hits, 15);
        assert_eq!(a.horn_cache_misses, 16);
        assert_eq!(a.mutations, 17);
        assert_eq!(a.invalidated_modules, 18);
        assert_eq!(a.invalidated_entailments, 19);
        assert_eq!(a.invalidated_told_rows, 20);
        assert_eq!(a.cancelled, 21);
        assert_eq!(a.shared_module_hits, 22);
        assert_eq!(a.shared_module_misses, 23);
        assert_eq!(a.shared_row_hits, 24);
        assert_eq!(a.shared_row_misses, 25);
        assert_eq!(a.peak_graph_size, 5);
        assert_eq!(a.graph_clones, 16);
        assert_eq!(a.backjumps, 17);
        assert_eq!(a.trail_len_peak, 8);
        assert_eq!(a.branch_depth_peak, 9);
    }

    #[test]
    fn record_clash_buckets_by_kind() {
        let mut s = Stats::default();
        s.record_clash(&Clash::Bottom(NodeId(0)));
        s.record_clash(&Clash::DatatypeUnsatisfiable(NodeId(1)));
        s.record_clash(&Clash::DatatypeUnsatisfiable(NodeId(2)));
        assert_eq!(s.clashes, 3);
        assert_eq!(s.clashes_by_kind[Clash::Bottom(NodeId(0)).kind_index()], 1);
        assert_eq!(
            s.clashes_by_kind[Clash::DatatypeUnsatisfiable(NodeId(0)).kind_index()],
            2
        );
        // Per-kind counters survive absorption.
        let mut t = Stats::default();
        t.absorb(&s);
        assert_eq!(t.clashes_by_kind, s.clashes_by_kind);
    }
}
