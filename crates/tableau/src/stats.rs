//! Search statistics, exposed for the benchmark harness and for debugging
//! pathological inputs.

/// Counters accumulated over one reasoning call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Nodes allocated across all branches.
    pub nodes_created: u64,
    /// Rule applications across all branches.
    pub rule_applications: u64,
    /// Nondeterministic branch points explored.
    pub branches: u64,
    /// Branches closed by a clash.
    pub clashes: u64,
    /// Deepest completion graph (live nodes) seen.
    pub peak_graph_size: u64,
}

impl Stats {
    /// Fold another run's counters into this one.
    pub fn absorb(&mut self, other: &Stats) {
        self.nodes_created += other.nodes_created;
        self.rule_applications += other.rule_applications;
        self.branches += other.branches;
        self.clashes += other.clashes;
        self.peak_graph_size = self.peak_graph_size.max(other.peak_graph_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = Stats {
            nodes_created: 1,
            rule_applications: 2,
            branches: 3,
            clashes: 4,
            peak_graph_size: 5,
        };
        let b = Stats {
            nodes_created: 10,
            rule_applications: 10,
            branches: 10,
            clashes: 10,
            peak_graph_size: 2,
        };
        a.absorb(&b);
        assert_eq!(a.nodes_created, 11);
        assert_eq!(a.peak_graph_size, 5);
    }
}
