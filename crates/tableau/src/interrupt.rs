//! Thread-local per-request cancellation tokens.
//!
//! [`Config::cancel`](crate::Config::cancel) covers the common case of
//! one token per engine, but a serving layer shares long-lived engines
//! (and their baked-in configs) across many requests — a per-request
//! token cannot travel through a cached `QueryEngine`. Searches always
//! run synchronously on the thread that asked, so the request worker
//! instead [`install`]s its token here before touching the reasoner;
//! `check_limits` polls the installed token at the same sites as the
//! deadline and the config flag, and the returned [`InterruptGuard`]
//! uninstalls on drop (panic-safe, nesting-safe).
//!
//! Scope: strictly the installing thread. Work fanned out to helper
//! threads (e.g. `Reasoner4::query_batch` workers) does not inherit the
//! token — a serving layer must run one request on one worker thread,
//! which is exactly what `shoin4::serve` does.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

thread_local! {
    /// Stack of installed tokens; a raise on *any* of them interrupts.
    static TOKENS: RefCell<Vec<Arc<AtomicBool>>> = const { RefCell::new(Vec::new()) };
}

/// Install `token` for the current thread until the guard drops.
#[must_use = "dropping the guard uninstalls the token"]
pub fn install(token: Arc<AtomicBool>) -> InterruptGuard {
    TOKENS.with(|t| t.borrow_mut().push(token));
    InterruptGuard { _priv: () }
}

/// True when any token installed on this thread has been raised.
pub fn interrupted() -> bool {
    TOKENS.with(|t| t.borrow().iter().any(|flag| flag.load(Ordering::Relaxed)))
}

/// Uninstalls the matching [`install`]ed token on drop.
pub struct InterruptGuard {
    _priv: (),
}

impl Drop for InterruptGuard {
    fn drop(&mut self) {
        TOKENS.with(|t| {
            t.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_raise_and_uninstall() {
        assert!(!interrupted());
        let token = Arc::new(AtomicBool::new(false));
        let guard = install(Arc::clone(&token));
        assert!(!interrupted());
        token.store(true, Ordering::Relaxed);
        assert!(interrupted());
        drop(guard);
        assert!(!interrupted());
    }

    #[test]
    fn nested_tokens_any_raise_interrupts() {
        let outer = Arc::new(AtomicBool::new(false));
        let inner = Arc::new(AtomicBool::new(false));
        let _outer_guard = install(Arc::clone(&outer));
        {
            let _inner_guard = install(Arc::clone(&inner));
            outer.store(true, Ordering::Relaxed);
            assert!(interrupted(), "outer raise visible under nesting");
        }
        assert!(interrupted(), "outer token survives inner guard drop");
    }

    #[test]
    fn tokens_are_thread_local() {
        let token = Arc::new(AtomicBool::new(true));
        let _guard = install(Arc::clone(&token));
        assert!(interrupted());
        let other = std::thread::spawn(interrupted).join().expect("no panic");
        assert!(!other, "other threads do not see this thread's token");
    }
}
