//! The public reasoner API: preprocessing (NNF, absorption,
//! internalization, ABox loading) and the standard reasoning services, all
//! reduced to knowledge-base satisfiability.

use crate::config::{Config, ReasonerError};
use crate::graph::CompletionGraph;
use crate::rules::{Context, Search};
use crate::stats::Stats;
use dl::axiom::{Axiom, RoleExpr};
use dl::datatype::DataRange;
use dl::kb::KnowledgeBase;
use dl::name::{ConceptName, IndividualName};
use dl::nnf::nnf;
use dl::Concept;
use std::collections::{BTreeMap, BTreeSet};

/// A SHOIN(D) reasoner over a fixed knowledge base.
///
/// Construction preprocesses the KB once; every query then works on a
/// clone of the initialized completion graph, so queries do not interfere.
pub struct Reasoner {
    ctx: Context,
    base_graph: CompletionGraph,
    /// A clash already during ABox loading (merge of asserted-distinct
    /// individuals) — the KB is inconsistent regardless of the search.
    setup_clash: bool,
    consistency_cache: Option<bool>,
    stats: Stats,
    query_counter: u32,
}

impl Reasoner {
    /// Preprocess `kb` with the default configuration.
    pub fn new(kb: &KnowledgeBase) -> Self {
        Self::with_config(kb, Config::default())
    }

    /// Preprocess `kb` with an explicit configuration.
    pub fn with_config(kb: &KnowledgeBase, config: Config) -> Self {
        let mut globals = Vec::new();
        let mut unfoldings: BTreeMap<ConceptName, Vec<Concept>> = BTreeMap::new();
        for ax in kb.tbox() {
            if let Axiom::ConceptInclusion(c, d) = ax {
                if config.absorption {
                    match c {
                        // A ⊑ D: unfold A lazily.
                        Concept::Atomic(a) => {
                            unfoldings.entry(a.clone()).or_default().push(nnf(d));
                            continue;
                        }
                        // A ⊓ C ⊑ D (e.g. disjointness A ⊓ B ⊑ ⊥):
                        // absorb into A → ¬C ⊔ D, keeping the constraint
                        // local to nodes actually labelled A.
                        Concept::And(l, r) => {
                            if let Concept::Atomic(a) = &**l {
                                unfoldings
                                    .entry(a.clone())
                                    .or_default()
                                    .push(nnf(&(**r).clone().not().or(d.clone())));
                                continue;
                            }
                            if let Concept::Atomic(a) = &**r {
                                unfoldings
                                    .entry(a.clone())
                                    .or_default()
                                    .push(nnf(&(**l).clone().not().or(d.clone())));
                                continue;
                            }
                        }
                        _ => {}
                    }
                }
                globals.push(nnf(&c.clone().not().or(d.clone())));
            }
        }
        let ctx = Context {
            hierarchy: kb.role_hierarchy(),
            data_hierarchy: kb.data_role_hierarchy(),
            globals,
            unfoldings,
            config,
        };

        // Load the ABox into the base completion graph.
        let mut g = CompletionGraph::new();
        let mut setup_clash = false;
        let sig = kb.signature();
        for o in &sig.individuals {
            let n = g.new_root();
            g.set_nominal_node(o.clone(), n);
            g.add_concept(n, Concept::one_of([o.clone()]));
        }
        for ax in kb.abox() {
            match ax {
                Axiom::ConceptAssertion(a, c) => {
                    let n = g.nominal_node(a).expect("signature individual");
                    g.add_concept(n, nnf(c));
                }
                Axiom::RoleAssertion(r, a, b) => {
                    let (na, nb) = (
                        g.nominal_node(a).expect("signature individual"),
                        g.nominal_node(b).expect("signature individual"),
                    );
                    g.add_edge(na, nb, &RoleExpr::named(r.clone()));
                }
                Axiom::DataAssertion(u, a, v) => {
                    let n = g.nominal_node(a).expect("signature individual");
                    g.add_concept(
                        n,
                        Concept::DataSome(u.clone(), DataRange::one_of([v.clone()])),
                    );
                }
                Axiom::SameIndividual(a, b) => {
                    let (na, nb) = (
                        g.nominal_node(a).expect("signature individual"),
                        g.nominal_node(b).expect("signature individual"),
                    );
                    if g.merge(na, nb).is_some() {
                        setup_clash = true;
                    }
                }
                Axiom::DifferentIndividuals(a, b) => {
                    let (na, nb) = (
                        g.nominal_node(a).expect("signature individual"),
                        g.nominal_node(b).expect("signature individual"),
                    );
                    if g.set_distinct(na, nb).is_some() {
                        setup_clash = true;
                    }
                }
                _ => {}
            }
        }
        // A pure-TBox KB still requires a non-empty domain.
        if sig.individuals.is_empty() {
            g.new_root();
        }

        Reasoner {
            ctx,
            base_graph: g,
            setup_clash,
            consistency_cache: None,
            stats: Stats::default(),
            query_counter: 0,
        }
    }

    /// Accumulated search statistics across all queries.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Active configuration.
    pub fn config(&self) -> &Config {
        &self.ctx.config
    }

    fn run(&mut self, g: CompletionGraph) -> Result<bool, ReasonerError> {
        if self.setup_clash {
            return Ok(false);
        }
        let mut search = Search::new(&self.ctx);
        let result = search.satisfiable(g);
        self.stats.absorb(&search.stats);
        result
    }

    /// Find a model of the KB, if one exists: run the tableau to
    /// completion and extract the final structure. See
    /// [`crate::model::ExtractedModel::blocked_nodes`] for the finiteness
    /// caveat.
    pub fn find_model(&mut self) -> Result<Option<crate::model::ExtractedModel>, ReasonerError> {
        if self.setup_clash {
            return Ok(None);
        }
        let g = self.base_graph.clone();
        let mut search = Search::new(&self.ctx);
        let done = search.complete(g);
        self.stats.absorb(&search.stats);
        Ok(done?.map(|g| crate::model::extract(&g, &self.ctx.hierarchy, self.ctx.config.blocking)))
    }

    /// Is the knowledge base satisfiable?
    pub fn is_consistent(&mut self) -> Result<bool, ReasonerError> {
        if let Some(cached) = self.consistency_cache {
            return Ok(cached);
        }
        let g = self.base_graph.clone();
        let result = self.run(g)?;
        self.consistency_cache = Some(result);
        Ok(result)
    }

    /// Is `c` satisfiable w.r.t. the KB (some model has a `c`-instance)?
    pub fn is_concept_satisfiable(&mut self, c: &Concept) -> Result<bool, ReasonerError> {
        let mut g = self.base_graph.clone();
        let n = g.new_root();
        g.add_concept(n, nnf(c));
        self.run(g)
    }

    /// Does the KB entail `sub ⊑ sup`? (`sub ⊓ ¬sup` unsatisfiable.)
    pub fn is_subsumed_by(&mut self, sub: &Concept, sup: &Concept) -> Result<bool, ReasonerError> {
        let test = sub.clone().and(sup.clone().not());
        Ok(!self.is_concept_satisfiable(&test)?)
    }

    /// Does the KB entail `a : c`? (`KB ∪ {a:¬c}` inconsistent.)
    pub fn is_instance_of(
        &mut self,
        a: &IndividualName,
        c: &Concept,
    ) -> Result<bool, ReasonerError> {
        let mut g = self.base_graph.clone();
        let n = match g.nominal_node(a) {
            Some(n) => n,
            None => {
                let n = g.new_root();
                g.set_nominal_node(a.clone(), n);
                g.add_concept(n, Concept::one_of([a.clone()]));
                n
            }
        };
        g.add_concept(n, nnf(&c.clone().not()));
        Ok(!self.run(g)?)
    }

    fn fresh_individual(&mut self) -> IndividualName {
        let name = IndividualName::new(format!("__q{}", self.query_counter));
        self.query_counter += 1;
        name
    }

    fn ensure_node(g: &mut CompletionGraph, o: &IndividualName) -> crate::node::NodeId {
        match g.nominal_node(o) {
            Some(n) => n,
            None => {
                let n = g.new_root();
                g.set_nominal_node(o.clone(), n);
                g.add_concept(n, Concept::one_of([o.clone()]));
                n
            }
        }
    }

    /// Does the KB entail the given axiom? Supports every axiom form via
    /// the standard reductions to KB (un)satisfiability.
    pub fn entails(&mut self, axiom: &Axiom) -> Result<bool, ReasonerError> {
        // An inconsistent KB entails everything.
        if !self.is_consistent()? {
            return Ok(true);
        }
        match axiom {
            Axiom::ConceptInclusion(c, d) => self.is_subsumed_by(c, d),
            Axiom::ConceptAssertion(a, c) => self.is_instance_of(a, c),
            Axiom::RoleAssertion(r, a, b) => {
                // KB ⊨ R(a,b) iff KB ∪ {a : ∀R.¬{b}} is inconsistent.
                let mut g = self.base_graph.clone();
                let na = Self::ensure_node(&mut g, a);
                Self::ensure_node(&mut g, b);
                g.add_concept(
                    na,
                    Concept::all(
                        RoleExpr::named(r.clone()),
                        Concept::one_of([b.clone()]).not(),
                    ),
                );
                Ok(!self.run(g)?)
            }
            Axiom::DataAssertion(u, a, v) => {
                let mut g = self.base_graph.clone();
                let na = Self::ensure_node(&mut g, a);
                g.add_concept(
                    na,
                    Concept::DataAll(u.clone(), DataRange::one_of([v.clone()]).complement()),
                );
                Ok(!self.run(g)?)
            }
            Axiom::SameIndividual(a, b) => {
                let mut g = self.base_graph.clone();
                let na = Self::ensure_node(&mut g, a);
                let nb = Self::ensure_node(&mut g, b);
                if g.set_distinct(na, nb).is_some() {
                    return Ok(true);
                }
                Ok(!self.run(g)?)
            }
            Axiom::DifferentIndividuals(a, b) => {
                let mut g = self.base_graph.clone();
                let na = Self::ensure_node(&mut g, a);
                let nb = Self::ensure_node(&mut g, b);
                if g.merge(na, nb).is_some() {
                    return Ok(true);
                }
                Ok(!self.run(g)?)
            }
            Axiom::RoleInclusion(r, s) => {
                // KB ⊨ R ⊑ S iff KB ∪ {R(a,b), a : ∀S.¬{b}} is
                // inconsistent for fresh a, b.
                let (a, b) = (self.fresh_individual(), self.fresh_individual());
                let mut g = self.base_graph.clone();
                let na = Self::ensure_node(&mut g, &a);
                let nb = Self::ensure_node(&mut g, &b);
                g.add_edge(na, nb, r);
                g.add_concept(
                    na,
                    Concept::all(s.clone(), Concept::one_of([b.clone()]).not()),
                );
                Ok(!self.run(g)?)
            }
            Axiom::Transitive(r) => {
                // KB ⊨ Trans(R) iff KB ∪ {R(a,b), R(b,c), a : ∀R.¬{c}} is
                // inconsistent for fresh a, b, c.
                let role = RoleExpr::named(r.clone());
                let (a, b, c) = (
                    self.fresh_individual(),
                    self.fresh_individual(),
                    self.fresh_individual(),
                );
                let mut g = self.base_graph.clone();
                let na = Self::ensure_node(&mut g, &a);
                let nb = Self::ensure_node(&mut g, &b);
                let nc = Self::ensure_node(&mut g, &c);
                g.add_edge(na, nb, &role);
                g.add_edge(nb, nc, &role);
                g.add_concept(na, Concept::all(role, Concept::one_of([c.clone()]).not()));
                Ok(!self.run(g)?)
            }
            Axiom::DataRoleInclusion(u, v) => {
                // KB ⊨ U ⊑ V iff KB ∪ {U(a, w), a : ∀V.¬{w}} is
                // inconsistent for fresh a and a fresh value w.
                let a = self.fresh_individual();
                let w = dl::DataValue::Str(format!("__qv{}", self.query_counter));
                let mut g = self.base_graph.clone();
                let na = Self::ensure_node(&mut g, &a);
                g.add_concept(
                    na,
                    Concept::DataSome(u.clone(), DataRange::one_of([w.clone()])),
                );
                g.add_concept(
                    na,
                    Concept::DataAll(v.clone(), DataRange::one_of([w]).complement()),
                );
                Ok(!self.run(g)?)
            }
        }
    }

    /// Compute, for every named concept in `sig_concepts`, the set of
    /// named concepts subsuming it (including itself and implicitly `⊤`).
    /// Brute-force n² classification with unsatisfiable-concept handling.
    pub fn classify(
        &mut self,
        sig_concepts: &BTreeSet<ConceptName>,
    ) -> Result<BTreeMap<ConceptName, BTreeSet<ConceptName>>, ReasonerError> {
        let names: Vec<ConceptName> = sig_concepts.iter().cloned().collect();
        let mut out: BTreeMap<ConceptName, BTreeSet<ConceptName>> = BTreeMap::new();
        for a in &names {
            let ca = Concept::Atomic(a.clone());
            let mut supers = BTreeSet::new();
            for b in &names {
                let cb = Concept::Atomic(b.clone());
                if self.is_subsumed_by(&ca, &cb)? {
                    supers.insert(b.clone());
                }
            }
            out.insert(a.clone(), supers);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::parser::parse_kb;

    fn reasoner(src: &str) -> Reasoner {
        Reasoner::new(&parse_kb(src).unwrap())
    }

    #[test]
    fn empty_kb_is_consistent() {
        let mut r = reasoner("");
        assert!(r.is_consistent().unwrap());
    }

    #[test]
    fn simple_clash() {
        let mut r = reasoner("a : A and not A");
        assert!(!r.is_consistent().unwrap());
    }

    #[test]
    fn tweety_kb_is_inconsistent() {
        let mut r = reasoner(
            "Bird and (hasWing some Wing) SubClassOf Fly
             Penguin SubClassOf Bird
             Penguin SubClassOf hasWing some Wing
             Penguin SubClassOf not Fly
             tweety : Bird
             tweety : Penguin
             w : Wing
             hasWing(tweety, w)",
        );
        assert!(!r.is_consistent().unwrap());
    }

    #[test]
    fn subsumption_via_tbox() {
        let mut r = reasoner(
            "Surgeon SubClassOf Doctor
             Doctor SubClassOf Person",
        );
        assert!(r
            .is_subsumed_by(&Concept::atomic("Surgeon"), &Concept::atomic("Person"))
            .unwrap());
        assert!(!r
            .is_subsumed_by(&Concept::atomic("Person"), &Concept::atomic("Surgeon"))
            .unwrap());
    }

    #[test]
    fn instance_checking_through_exists() {
        let mut r = reasoner(
            "hasPatient some Patient SubClassOf Doctor
             Patient(x, y) # dummy comment form not used
             mary : Patient
             hasPatient(bill, mary)",
        );
        assert!(r
            .is_instance_of(&IndividualName::new("bill"), &Concept::atomic("Doctor"))
            .unwrap());
        assert!(!r
            .is_instance_of(&IndividualName::new("mary"), &Concept::atomic("Doctor"))
            .unwrap());
    }

    #[test]
    fn existential_tbox_cycle_terminates_by_blocking() {
        // Person ⊑ ∃hasParent.Person — infinite model, blocking must kick in.
        let mut r = reasoner(
            "Person SubClassOf hasParent some Person
             p : Person",
        );
        assert!(r.is_consistent().unwrap());
    }

    #[test]
    fn inverse_roles_propagate() {
        // ∀hasChild⁻.Person at the child means every parent is a Person...
        // direct check: hasChild(a, b), b : ∀(inverse hasChild).A ⟹ a : A.
        let mut r = reasoner(
            "hasChild(a, b)
             b : inverse hasChild only A",
        );
        assert!(r
            .is_instance_of(&IndividualName::new("a"), &Concept::atomic("A"))
            .unwrap());
    }

    #[test]
    fn transitivity_propagates_forall() {
        let mut r = reasoner(
            "Transitive(anc)
             anc(a, b)
             anc(b, c)
             a : anc only X",
        );
        assert!(r
            .is_instance_of(&IndividualName::new("c"), &Concept::atomic("X"))
            .unwrap());
    }

    #[test]
    fn role_hierarchy_in_queries() {
        let mut r = reasoner(
            "hasSon SubRoleOf hasChild
             hasSon(a, b)
             a : hasChild only Human",
        );
        assert!(r
            .is_instance_of(&IndividualName::new("b"), &Concept::atomic("Human"))
            .unwrap());
        assert!(r
            .entails(&Axiom::RoleInclusion(
                RoleExpr::named("hasSon"),
                RoleExpr::named("hasChild"),
            ))
            .unwrap());
        assert!(!r
            .entails(&Axiom::RoleInclusion(
                RoleExpr::named("hasChild"),
                RoleExpr::named("hasSon"),
            ))
            .unwrap());
    }

    #[test]
    fn number_restrictions_merge_and_clash() {
        // a has two children asserted distinct but ≤1 child: inconsistent.
        let mut r = reasoner(
            "hasChild(a, b)
             hasChild(a, c)
             b != c
             a : hasChild max 1",
        );
        assert!(!r.is_consistent().unwrap());
        // Without distinctness the children merge: consistent.
        let mut r = reasoner(
            "hasChild(a, b)
             hasChild(a, c)
             a : hasChild max 1",
        );
        assert!(r.is_consistent().unwrap());
        // And the merge makes b = c entailed.
        let mut r = reasoner(
            "hasChild(a, b)
             hasChild(a, c)
             a : hasChild max 1",
        );
        assert!(r
            .entails(&Axiom::SameIndividual(
                IndividualName::new("b"),
                IndividualName::new("c"),
            ))
            .unwrap());
    }

    #[test]
    fn at_least_generates() {
        let mut r = reasoner("a : hasChild min 3 and hasChild max 2");
        assert!(!r.is_consistent().unwrap());
        let mut r = reasoner("a : hasChild min 2 and hasChild max 2");
        assert!(r.is_consistent().unwrap());
    }

    #[test]
    fn nominals_merge() {
        let mut r = reasoner(
            "a : {b}
             a : A",
        );
        assert!(r.is_consistent().unwrap());
        assert!(r
            .is_instance_of(&IndividualName::new("b"), &Concept::atomic("A"))
            .unwrap());
        // But a : {b} with a ≠ b clashes.
        let mut r = reasoner(
            "a : {b}
             a != b",
        );
        assert!(!r.is_consistent().unwrap());
    }

    #[test]
    fn multi_element_nominal_branches() {
        let mut r = reasoner(
            "x : {a, b}
             a : A
             b : B
             x : not A",
        );
        // x must be b.
        assert!(r.is_consistent().unwrap());
        assert!(r
            .entails(&Axiom::SameIndividual(
                IndividualName::new("x"),
                IndividualName::new("b"),
            ))
            .unwrap());
    }

    #[test]
    fn same_and_different_individuals() {
        let mut r = reasoner(
            "a = b
             b = c
             a : A",
        );
        assert!(r
            .is_instance_of(&IndividualName::new("c"), &Concept::atomic("A"))
            .unwrap());
        let mut r = reasoner(
            "a = b
             a != b",
        );
        assert!(!r.is_consistent().unwrap());
    }

    #[test]
    fn datatype_reasoning_end_to_end() {
        let mut r = reasoner(
            "DataRole: hasAge
             Minor EquivalentTo hasAge some integer[0..17]
             hasAge(kid, 12)
             kid : hasAge max 1",
        );
        assert!(r.is_consistent().unwrap());
        assert!(r
            .is_instance_of(&IndividualName::new("kid"), &Concept::atomic("Minor"))
            .unwrap());
        // Age both 12 and (via Minor-membership assertion of an adult
        // range) impossible:
        let mut r = reasoner(
            "DataRole: hasAge
             hasAge(kid, 12)
             kid : hasAge max 1
             kid : hasAge some integer[18..]",
        );
        assert!(!r.is_consistent().unwrap());
    }

    #[test]
    fn entails_role_and_data_assertions() {
        let mut r = reasoner("r(a, b)\nage(a, 4)");
        assert!(r
            .entails(&Axiom::RoleAssertion(
                dl::RoleName::new("r"),
                IndividualName::new("a"),
                IndividualName::new("b"),
            ))
            .unwrap());
        assert!(!r
            .entails(&Axiom::RoleAssertion(
                dl::RoleName::new("r"),
                IndividualName::new("b"),
                IndividualName::new("a"),
            ))
            .unwrap());
        assert!(r
            .entails(&Axiom::DataAssertion(
                dl::DataRoleName::new("age"),
                IndividualName::new("a"),
                dl::DataValue::Integer(4),
            ))
            .unwrap());
        assert!(!r
            .entails(&Axiom::DataAssertion(
                dl::DataRoleName::new("age"),
                IndividualName::new("a"),
                dl::DataValue::Integer(5),
            ))
            .unwrap());
    }

    #[test]
    fn entails_transitivity_only_when_declared() {
        let mut r = reasoner("Transitive(anc)");
        assert!(r
            .entails(&Axiom::Transitive(dl::RoleName::new("anc")))
            .unwrap());
        assert!(!r
            .entails(&Axiom::Transitive(dl::RoleName::new("other")))
            .unwrap());
    }

    #[test]
    fn inconsistent_kb_entails_everything() {
        let mut r = reasoner("a : A and not A");
        assert!(r
            .is_instance_of(&IndividualName::new("zzz"), &Concept::atomic("Q"))
            .unwrap_or(true));
        assert!(r
            .entails(&Axiom::ConceptAssertion(
                IndividualName::new("unrelated"),
                Concept::atomic("Patient"),
            ))
            .unwrap());
    }

    #[test]
    fn classification_orders_hierarchy() {
        let mut r = reasoner(
            "Surgeon SubClassOf Doctor
             Doctor SubClassOf Person
             Nurse SubClassOf Person",
        );
        let sig: BTreeSet<ConceptName> = ["Surgeon", "Doctor", "Person", "Nurse"]
            .iter()
            .map(ConceptName::new)
            .collect();
        let taxonomy = r.classify(&sig).unwrap();
        assert!(taxonomy[&ConceptName::new("Surgeon")].contains(&ConceptName::new("Person")));
        assert!(taxonomy[&ConceptName::new("Surgeon")].contains(&ConceptName::new("Surgeon")));
        assert!(!taxonomy[&ConceptName::new("Nurse")].contains(&ConceptName::new("Doctor")));
    }

    #[test]
    fn concept_satisfiability_with_global_tbox() {
        let mut r = reasoner("A SubClassOf not A");
        // A ⊑ ¬A makes A unsatisfiable but the KB consistent.
        assert!(r.is_consistent().unwrap());
        assert!(!r.is_concept_satisfiable(&Concept::atomic("A")).unwrap());
        assert!(r.is_concept_satisfiable(&Concept::atomic("B")).unwrap());
    }

    #[test]
    fn absorption_off_gives_same_answers() {
        let src = "Surgeon SubClassOf Doctor
                   Doctor SubClassOf Person
                   s : Surgeon";
        let kb = parse_kb(src).unwrap();
        let mut with = Reasoner::with_config(&kb, Config::default());
        let mut without = Reasoner::with_config(
            &kb,
            Config {
                absorption: false,
                ..Config::default()
            },
        );
        for (a, c) in [("s", "Person"), ("s", "Doctor"), ("s", "Nurse")] {
            assert_eq!(
                with.is_instance_of(&IndividualName::new(a), &Concept::atomic(c))
                    .unwrap(),
                without
                    .is_instance_of(&IndividualName::new(a), &Concept::atomic(c))
                    .unwrap(),
                "disagreement on {a}:{c}"
            );
        }
    }

    #[test]
    fn semantic_branching_gives_same_answers() {
        let src = "a : (A or B) and (A or not B) and (not A or B) and not B";
        let kb = parse_kb(src).unwrap();
        let mut plain = Reasoner::with_config(&kb, Config::default());
        let mut semantic = Reasoner::with_config(
            &kb,
            Config {
                semantic_branching: true,
                ..Config::default()
            },
        );
        assert_eq!(
            plain.is_consistent().unwrap(),
            semantic.is_consistent().unwrap()
        );
    }

    #[test]
    fn empty_nominal_is_bottom() {
        let kb = KnowledgeBase::from_axioms([Axiom::ConceptAssertion(
            IndividualName::new("a"),
            Concept::one_of([]),
        )]);
        let mut r = Reasoner::new(&kb);
        assert!(!r.is_consistent().unwrap());
    }

    #[test]
    fn negated_nominal_distinctness() {
        // a : ¬{b} is exactly a ≠ b.
        let mut r = reasoner("a : not {b}");
        assert!(r.is_consistent().unwrap());
        assert!(r
            .entails(&Axiom::DifferentIndividuals(
                IndividualName::new("a"),
                IndividualName::new("b"),
            ))
            .unwrap());
        let mut r = reasoner("a : not {b}\na = b");
        assert!(!r.is_consistent().unwrap());
    }

    #[test]
    fn find_model_none_on_inconsistent_kb() {
        let mut r = reasoner("x : A and not A");
        assert!(r.find_model().unwrap().is_none());
    }

    #[test]
    fn find_model_extracts_individuals() {
        let mut r = reasoner("r(a, b)\na : A");
        let m = r.find_model().unwrap().expect("satisfiable");
        assert_eq!(m.blocked_nodes, 0);
        assert!(m.individual(&IndividualName::new("a")).is_some());
        assert!(m.concept_nonempty(&ConceptName::new("A")));
    }

    #[test]
    fn resource_limits_surface_as_errors() {
        let kb = parse_kb(
            "Person SubClassOf hasParent some Person
             p : Person",
        )
        .unwrap();
        let mut r = Reasoner::with_config(
            &kb,
            Config {
                max_nodes: 2,
                ..Config::default()
            },
        );
        assert!(matches!(
            r.is_consistent(),
            Err(ReasonerError::NodeLimit(2))
        ));
    }
}
