//! The public reasoner API — a thin `&mut` facade over the shared
//! [`QueryEngine`].
//!
//! Historically `Reasoner` owned the preprocessed context *and* all the
//! mutable query state (stats accumulator, consistency cache, fresh-name
//! counter), which forced `&mut self` on every service and made batch
//! surveys strictly sequential. All of that state now lives behind
//! interior mutability in [`QueryEngine`]; this wrapper keeps the
//! original `&mut` signatures for source compatibility and exposes the
//! engine itself via [`Reasoner::engine`] for callers that want to share
//! one context across threads.

use crate::config::{Config, ReasonerError};
use crate::engine::QueryEngine;
use crate::stats::Stats;
use dl::axiom::Axiom;
use dl::kb::KnowledgeBase;
use dl::name::{ConceptName, IndividualName};
use dl::Concept;
use std::collections::{BTreeMap, BTreeSet};

/// A SHOIN(D) reasoner over a fixed knowledge base.
///
/// Construction preprocesses the KB once; every query then works on a
/// clone of the initialized completion graph, so queries do not interfere.
pub struct Reasoner {
    engine: QueryEngine,
}

impl Reasoner {
    /// Preprocess `kb` with the default configuration.
    pub fn new(kb: &KnowledgeBase) -> Self {
        Self::with_config(kb, Config::default())
    }

    /// Preprocess `kb` with an explicit configuration.
    pub fn with_config(kb: &KnowledgeBase, config: Config) -> Self {
        Reasoner {
            engine: QueryEngine::with_config(kb, config),
        }
    }

    /// The shared query engine: every service below is a thin delegation
    /// to it. Borrow this to run queries from several threads at once.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// Consume the wrapper, keeping the engine (e.g. to move it into an
    /// `Arc`).
    pub fn into_engine(self) -> QueryEngine {
        self.engine
    }

    /// Accumulated search statistics across all queries.
    pub fn stats(&self) -> Stats {
        self.engine.stats()
    }

    /// Active configuration.
    pub fn config(&self) -> &Config {
        self.engine.config()
    }

    /// Find a model of the KB, if one exists: run the tableau to
    /// completion and extract the final structure. See
    /// [`crate::model::ExtractedModel::blocked_nodes`] for the finiteness
    /// caveat.
    pub fn find_model(&mut self) -> Result<Option<crate::model::ExtractedModel>, ReasonerError> {
        self.engine.find_model()
    }

    /// Is the knowledge base satisfiable?
    pub fn is_consistent(&mut self) -> Result<bool, ReasonerError> {
        self.engine.is_consistent()
    }

    /// Is `c` satisfiable w.r.t. the KB (some model has a `c`-instance)?
    pub fn is_concept_satisfiable(&mut self, c: &Concept) -> Result<bool, ReasonerError> {
        self.engine.is_concept_satisfiable(c)
    }

    /// Does the KB entail `sub ⊑ sup`? (`sub ⊓ ¬sup` unsatisfiable.)
    pub fn is_subsumed_by(&mut self, sub: &Concept, sup: &Concept) -> Result<bool, ReasonerError> {
        self.engine.is_subsumed_by(sub, sup)
    }

    /// Does the KB entail `a : c`? (`KB ∪ {a:¬c}` inconsistent.)
    pub fn is_instance_of(
        &mut self,
        a: &IndividualName,
        c: &Concept,
    ) -> Result<bool, ReasonerError> {
        self.engine.is_instance_of(a, c)
    }

    /// Does the KB entail the given axiom? Supports every axiom form via
    /// the standard reductions to KB (un)satisfiability.
    pub fn entails(&mut self, axiom: &Axiom) -> Result<bool, ReasonerError> {
        self.engine.entails(axiom)
    }

    /// Compute, for every named concept in `sig_concepts`, the set of
    /// named concepts subsuming it (including itself and implicitly `⊤`).
    /// Brute-force n² classification with unsatisfiable-concept handling.
    pub fn classify(
        &mut self,
        sig_concepts: &BTreeSet<ConceptName>,
    ) -> Result<BTreeMap<ConceptName, BTreeSet<ConceptName>>, ReasonerError> {
        self.engine.classify(sig_concepts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::axiom::RoleExpr;
    use dl::parser::parse_kb;

    fn reasoner(src: &str) -> Reasoner {
        Reasoner::new(&parse_kb(src).unwrap())
    }

    #[test]
    fn empty_kb_is_consistent() {
        let mut r = reasoner("");
        assert!(r.is_consistent().unwrap());
    }

    #[test]
    fn simple_clash() {
        let mut r = reasoner("a : A and not A");
        assert!(!r.is_consistent().unwrap());
    }

    #[test]
    fn tweety_kb_is_inconsistent() {
        let mut r = reasoner(
            "Bird and (hasWing some Wing) SubClassOf Fly
             Penguin SubClassOf Bird
             Penguin SubClassOf hasWing some Wing
             Penguin SubClassOf not Fly
             tweety : Bird
             tweety : Penguin
             w : Wing
             hasWing(tweety, w)",
        );
        assert!(!r.is_consistent().unwrap());
    }

    #[test]
    fn subsumption_via_tbox() {
        let mut r = reasoner(
            "Surgeon SubClassOf Doctor
             Doctor SubClassOf Person",
        );
        assert!(r
            .is_subsumed_by(&Concept::atomic("Surgeon"), &Concept::atomic("Person"))
            .unwrap());
        assert!(!r
            .is_subsumed_by(&Concept::atomic("Person"), &Concept::atomic("Surgeon"))
            .unwrap());
    }

    #[test]
    fn instance_checking_through_exists() {
        let mut r = reasoner(
            "hasPatient some Patient SubClassOf Doctor
             Patient(x, y) # dummy comment form not used
             mary : Patient
             hasPatient(bill, mary)",
        );
        assert!(r
            .is_instance_of(&IndividualName::new("bill"), &Concept::atomic("Doctor"))
            .unwrap());
        assert!(!r
            .is_instance_of(&IndividualName::new("mary"), &Concept::atomic("Doctor"))
            .unwrap());
    }

    #[test]
    fn existential_tbox_cycle_terminates_by_blocking() {
        // Person ⊑ ∃hasParent.Person — infinite model, blocking must kick in.
        let mut r = reasoner(
            "Person SubClassOf hasParent some Person
             p : Person",
        );
        assert!(r.is_consistent().unwrap());
    }

    #[test]
    fn inverse_roles_propagate() {
        // ∀hasChild⁻.Person at the child means every parent is a Person...
        // direct check: hasChild(a, b), b : ∀(inverse hasChild).A ⟹ a : A.
        let mut r = reasoner(
            "hasChild(a, b)
             b : inverse hasChild only A",
        );
        assert!(r
            .is_instance_of(&IndividualName::new("a"), &Concept::atomic("A"))
            .unwrap());
    }

    #[test]
    fn transitivity_propagates_forall() {
        let mut r = reasoner(
            "Transitive(anc)
             anc(a, b)
             anc(b, c)
             a : anc only X",
        );
        assert!(r
            .is_instance_of(&IndividualName::new("c"), &Concept::atomic("X"))
            .unwrap());
    }

    #[test]
    fn role_hierarchy_in_queries() {
        let mut r = reasoner(
            "hasSon SubRoleOf hasChild
             hasSon(a, b)
             a : hasChild only Human",
        );
        assert!(r
            .is_instance_of(&IndividualName::new("b"), &Concept::atomic("Human"))
            .unwrap());
        assert!(r
            .entails(&Axiom::RoleInclusion(
                RoleExpr::named("hasSon"),
                RoleExpr::named("hasChild"),
            ))
            .unwrap());
        assert!(!r
            .entails(&Axiom::RoleInclusion(
                RoleExpr::named("hasChild"),
                RoleExpr::named("hasSon"),
            ))
            .unwrap());
    }

    #[test]
    fn number_restrictions_merge_and_clash() {
        // a has two children asserted distinct but ≤1 child: inconsistent.
        let mut r = reasoner(
            "hasChild(a, b)
             hasChild(a, c)
             b != c
             a : hasChild max 1",
        );
        assert!(!r.is_consistent().unwrap());
        // Without distinctness the children merge: consistent.
        let mut r = reasoner(
            "hasChild(a, b)
             hasChild(a, c)
             a : hasChild max 1",
        );
        assert!(r.is_consistent().unwrap());
        // And the merge makes b = c entailed.
        let mut r = reasoner(
            "hasChild(a, b)
             hasChild(a, c)
             a : hasChild max 1",
        );
        assert!(r
            .entails(&Axiom::SameIndividual(
                IndividualName::new("b"),
                IndividualName::new("c"),
            ))
            .unwrap());
    }

    #[test]
    fn at_least_generates() {
        let mut r = reasoner("a : hasChild min 3 and hasChild max 2");
        assert!(!r.is_consistent().unwrap());
        let mut r = reasoner("a : hasChild min 2 and hasChild max 2");
        assert!(r.is_consistent().unwrap());
    }

    #[test]
    fn nominals_merge() {
        let mut r = reasoner(
            "a : {b}
             a : A",
        );
        assert!(r.is_consistent().unwrap());
        assert!(r
            .is_instance_of(&IndividualName::new("b"), &Concept::atomic("A"))
            .unwrap());
        // But a : {b} with a ≠ b clashes.
        let mut r = reasoner(
            "a : {b}
             a != b",
        );
        assert!(!r.is_consistent().unwrap());
    }

    #[test]
    fn multi_element_nominal_branches() {
        let mut r = reasoner(
            "x : {a, b}
             a : A
             b : B
             x : not A",
        );
        // x must be b.
        assert!(r.is_consistent().unwrap());
        assert!(r
            .entails(&Axiom::SameIndividual(
                IndividualName::new("x"),
                IndividualName::new("b"),
            ))
            .unwrap());
    }

    #[test]
    fn same_and_different_individuals() {
        let mut r = reasoner(
            "a = b
             b = c
             a : A",
        );
        assert!(r
            .is_instance_of(&IndividualName::new("c"), &Concept::atomic("A"))
            .unwrap());
        let mut r = reasoner(
            "a = b
             a != b",
        );
        assert!(!r.is_consistent().unwrap());
    }

    #[test]
    fn datatype_reasoning_end_to_end() {
        let mut r = reasoner(
            "DataRole: hasAge
             Minor EquivalentTo hasAge some integer[0..17]
             hasAge(kid, 12)
             kid : hasAge max 1",
        );
        assert!(r.is_consistent().unwrap());
        assert!(r
            .is_instance_of(&IndividualName::new("kid"), &Concept::atomic("Minor"))
            .unwrap());
        // Age both 12 and (via Minor-membership assertion of an adult
        // range) impossible:
        let mut r = reasoner(
            "DataRole: hasAge
             hasAge(kid, 12)
             kid : hasAge max 1
             kid : hasAge some integer[18..]",
        );
        assert!(!r.is_consistent().unwrap());
    }

    #[test]
    fn entails_role_and_data_assertions() {
        let mut r = reasoner("r(a, b)\nage(a, 4)");
        assert!(r
            .entails(&Axiom::RoleAssertion(
                dl::RoleName::new("r"),
                IndividualName::new("a"),
                IndividualName::new("b"),
            ))
            .unwrap());
        assert!(!r
            .entails(&Axiom::RoleAssertion(
                dl::RoleName::new("r"),
                IndividualName::new("b"),
                IndividualName::new("a"),
            ))
            .unwrap());
        assert!(r
            .entails(&Axiom::DataAssertion(
                dl::DataRoleName::new("age"),
                IndividualName::new("a"),
                dl::DataValue::Integer(4),
            ))
            .unwrap());
        assert!(!r
            .entails(&Axiom::DataAssertion(
                dl::DataRoleName::new("age"),
                IndividualName::new("a"),
                dl::DataValue::Integer(5),
            ))
            .unwrap());
    }

    #[test]
    fn entails_transitivity_only_when_declared() {
        let mut r = reasoner("Transitive(anc)");
        assert!(r
            .entails(&Axiom::Transitive(dl::RoleName::new("anc")))
            .unwrap());
        assert!(!r
            .entails(&Axiom::Transitive(dl::RoleName::new("other")))
            .unwrap());
    }

    #[test]
    fn inconsistent_kb_entails_everything() {
        let mut r = reasoner("a : A and not A");
        assert!(r
            .is_instance_of(&IndividualName::new("zzz"), &Concept::atomic("Q"))
            .unwrap_or(true));
        assert!(r
            .entails(&Axiom::ConceptAssertion(
                IndividualName::new("unrelated"),
                Concept::atomic("Patient"),
            ))
            .unwrap());
    }

    #[test]
    fn classification_orders_hierarchy() {
        let mut r = reasoner(
            "Surgeon SubClassOf Doctor
             Doctor SubClassOf Person
             Nurse SubClassOf Person",
        );
        let sig: BTreeSet<ConceptName> = ["Surgeon", "Doctor", "Person", "Nurse"]
            .iter()
            .map(ConceptName::new)
            .collect();
        let taxonomy = r.classify(&sig).unwrap();
        assert!(taxonomy[&ConceptName::new("Surgeon")].contains(&ConceptName::new("Person")));
        assert!(taxonomy[&ConceptName::new("Surgeon")].contains(&ConceptName::new("Surgeon")));
        assert!(!taxonomy[&ConceptName::new("Nurse")].contains(&ConceptName::new("Doctor")));
    }

    #[test]
    fn concept_satisfiability_with_global_tbox() {
        let mut r = reasoner("A SubClassOf not A");
        // A ⊑ ¬A makes A unsatisfiable but the KB consistent.
        assert!(r.is_consistent().unwrap());
        assert!(!r.is_concept_satisfiable(&Concept::atomic("A")).unwrap());
        assert!(r.is_concept_satisfiable(&Concept::atomic("B")).unwrap());
    }

    #[test]
    fn absorption_off_gives_same_answers() {
        let src = "Surgeon SubClassOf Doctor
                   Doctor SubClassOf Person
                   s : Surgeon";
        let kb = parse_kb(src).unwrap();
        let mut with = Reasoner::with_config(&kb, Config::default());
        let mut without = Reasoner::with_config(
            &kb,
            Config {
                absorption: false,
                ..Config::default()
            },
        );
        for (a, c) in [("s", "Person"), ("s", "Doctor"), ("s", "Nurse")] {
            assert_eq!(
                with.is_instance_of(&IndividualName::new(a), &Concept::atomic(c))
                    .unwrap(),
                without
                    .is_instance_of(&IndividualName::new(a), &Concept::atomic(c))
                    .unwrap(),
                "disagreement on {a}:{c}"
            );
        }
    }

    #[test]
    fn semantic_branching_gives_same_answers() {
        let src = "a : (A or B) and (A or not B) and (not A or B) and not B";
        let kb = parse_kb(src).unwrap();
        let mut plain = Reasoner::with_config(&kb, Config::default());
        let mut semantic = Reasoner::with_config(
            &kb,
            Config {
                semantic_branching: true,
                ..Config::default()
            },
        );
        assert_eq!(
            plain.is_consistent().unwrap(),
            semantic.is_consistent().unwrap()
        );
    }

    #[test]
    fn empty_nominal_is_bottom() {
        let kb = KnowledgeBase::from_axioms([Axiom::ConceptAssertion(
            IndividualName::new("a"),
            Concept::one_of([]),
        )]);
        let mut r = Reasoner::new(&kb);
        assert!(!r.is_consistent().unwrap());
    }

    #[test]
    fn negated_nominal_distinctness() {
        // a : ¬{b} is exactly a ≠ b.
        let mut r = reasoner("a : not {b}");
        assert!(r.is_consistent().unwrap());
        assert!(r
            .entails(&Axiom::DifferentIndividuals(
                IndividualName::new("a"),
                IndividualName::new("b"),
            ))
            .unwrap());
        let mut r = reasoner("a : not {b}\na = b");
        assert!(!r.is_consistent().unwrap());
    }

    #[test]
    fn find_model_none_on_inconsistent_kb() {
        let mut r = reasoner("x : A and not A");
        assert!(r.find_model().unwrap().is_none());
    }

    #[test]
    fn find_model_extracts_individuals() {
        let mut r = reasoner("r(a, b)\na : A");
        let m = r.find_model().unwrap().expect("satisfiable");
        assert_eq!(m.blocked_nodes, 0);
        assert!(m.individual(&IndividualName::new("a")).is_some());
        assert!(m.concept_nonempty(&ConceptName::new("A")));
    }

    #[test]
    fn resource_limits_surface_as_errors() {
        let kb = parse_kb(
            "Person SubClassOf hasParent some Person
             p : Person",
        )
        .unwrap();
        let mut r = Reasoner::with_config(
            &kb,
            Config {
                max_nodes: 2,
                ..Config::default()
            },
        );
        assert!(matches!(
            r.is_consistent(),
            Err(ReasonerError::NodeLimit(2))
        ));
    }

    #[test]
    fn resource_limit_errors_are_not_cached() {
        // A failed consistency check must not poison the cache: retrying
        // under the same engine still surfaces the error (rather than a
        // stale verdict), and a fresh engine with a real budget answers.
        let kb = parse_kb(
            "Person SubClassOf hasParent some Person
             p : Person",
        )
        .unwrap();
        let mut r = Reasoner::with_config(
            &kb,
            Config {
                max_nodes: 2,
                ..Config::default()
            },
        );
        assert!(r.is_consistent().is_err());
        assert!(r.is_consistent().is_err());
    }

    #[test]
    fn pre_raised_config_token_cancels_before_searching() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let kb = parse_kb(
            "Person SubClassOf hasParent some Person
             p : Person",
        )
        .unwrap();
        let flag = Arc::new(AtomicBool::new(false));
        flag.store(true, Ordering::Relaxed);
        let mut r = Reasoner::with_config(
            &kb,
            Config {
                cancel: Some(flag),
                ..Config::default()
            },
        );
        assert!(matches!(r.is_consistent(), Err(ReasonerError::Cancelled)));
        assert!(
            r.stats().cancelled >= 1,
            "cancellation must be counted even though the search errored"
        );
        // Like the resource limits, cancellation is not an answer and
        // must never be cached as one.
        assert!(matches!(r.is_consistent(), Err(ReasonerError::Cancelled)));
    }

    #[test]
    fn thread_local_token_cancels_a_running_search() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        // An unbounded ∃-chain with level-distinct concepts defeats
        // pairwise blocking long enough that only an external signal (or
        // a limit) stops the search. Give the search no other way out
        // within the test's patience and raise the token from a second
        // thread.
        let mut src = String::new();
        for i in 0..64 {
            src.push_str(&format!("L{i} SubClassOf r some L{}\n", i + 1));
            src.push_str(&format!("L{i} SubClassOf s some L{}\n", i + 1));
        }
        src.push_str("h : L0\n");
        let kb = parse_kb(&src).unwrap();
        let token = Arc::new(AtomicBool::new(false));
        let raiser = {
            let token = Arc::clone(&token);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                token.store(true, Ordering::Relaxed);
            })
        };
        let _guard = crate::interrupt::install(Arc::clone(&token));
        let started = std::time::Instant::now();
        let mut r = Reasoner::with_config(
            &kb,
            Config {
                max_nodes: usize::MAX,
                max_rule_applications: u64::MAX,
                time_budget: Some(std::time::Duration::from_secs(30)),
                ..Config::default()
            },
        );
        let verdict = r.is_consistent();
        raiser.join().expect("raiser thread");
        assert!(matches!(verdict, Err(ReasonerError::Cancelled)));
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "cancellation must preempt the 30s budget"
        );
    }
}
