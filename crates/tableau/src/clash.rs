//! Clash detection — the conditions under which a completion graph is
//! contradictory.

use crate::node::NodeId;
use crate::trail::DepSet;
use dl::{Concept, ConceptName, IndividualName};
use std::fmt;

/// Number of clash kinds (the per-kind counter array length in `Stats`).
pub const KIND_COUNT: usize = 6;

/// Human-readable labels for the per-kind clash counters, indexed by
/// [`Clash::kind_index`].
pub const KIND_LABELS: [&str; KIND_COUNT] = [
    "bottom",
    "complementary",
    "cardinality",
    "nominal",
    "merged-distinct",
    "datatype",
];

/// Why a branch of the tableau closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Clash {
    /// `⊥` appeared in a node label.
    Bottom(NodeId),
    /// `A` and `¬A` both in one label.
    Complementary(NodeId, ConceptName),
    /// `≤ n.R` violated by more than `n` pairwise-distinct neighbours.
    CardinalityExceeded(NodeId, Concept),
    /// A node was asserted both to be and not to be a nominal `{o}`.
    NominalContradiction(NodeId, IndividualName),
    /// Two nodes required to be distinct were merged.
    MergedDistinct(NodeId, NodeId),
    /// A node's concrete-domain constraints are jointly unsatisfiable.
    DatatypeUnsatisfiable(NodeId),
}

impl Clash {
    /// Position of this clash's kind in the per-kind counters
    /// (`Stats::clashes_by_kind`, labelled by [`KIND_LABELS`]).
    pub fn kind_index(&self) -> usize {
        match self {
            Clash::Bottom(..) => 0,
            Clash::Complementary(..) => 1,
            Clash::CardinalityExceeded(..) => 2,
            Clash::NominalContradiction(..) => 3,
            Clash::MergedDistinct(..) => 4,
            Clash::DatatypeUnsatisfiable(..) => 5,
        }
    }
}

/// A clash together with the branch choices responsible for it — the
/// union of the dep-sets of the clashing facts. The trail search
/// backjumps straight to the deepest branch point in `deps`; an empty
/// `deps` refutes the whole KB (no choice anywhere can avoid the clash).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClashInfo {
    /// Why the branch closed.
    pub clash: Clash,
    /// The responsible branch-point ids.
    pub deps: DepSet,
}

impl ClashInfo {
    /// Package a clash with its responsible dep-set.
    pub fn new(clash: Clash, deps: DepSet) -> Self {
        ClashInfo { clash, deps }
    }
}

impl fmt::Display for Clash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clash::Bottom(n) => write!(f, "node {n}: ⊥ in label"),
            Clash::Complementary(n, a) => write!(f, "node {n}: both {a} and ¬{a}"),
            Clash::CardinalityExceeded(n, c) => {
                write!(f, "node {n}: at-most restriction {c} violated")
            }
            Clash::NominalContradiction(n, o) => {
                write!(f, "node {n}: both {{{o}}} and ¬{{{o}}}")
            }
            Clash::MergedDistinct(a, b) => {
                write!(f, "nodes {a} and {b}: merged but asserted distinct")
            }
            Clash::DatatypeUnsatisfiable(n) => {
                write!(f, "node {n}: datatype constraints unsatisfiable")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_are_dense_and_labelled() {
        let kinds = [
            Clash::Bottom(NodeId(0)),
            Clash::Complementary(NodeId(0), ConceptName::new("A")),
            Clash::CardinalityExceeded(NodeId(0), Concept::atomic("A")),
            Clash::NominalContradiction(NodeId(0), IndividualName::new("o")),
            Clash::MergedDistinct(NodeId(0), NodeId(1)),
            Clash::DatatypeUnsatisfiable(NodeId(0)),
        ];
        let mut seen = [false; KIND_COUNT];
        for k in &kinds {
            seen[k.kind_index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "every kind maps into the array");
        assert_eq!(KIND_LABELS.len(), KIND_COUNT);
    }

    #[test]
    fn display_mentions_the_node() {
        let c = Clash::Bottom(NodeId(3));
        assert!(c.to_string().contains("node n3"));
        let c = Clash::Complementary(NodeId(1), ConceptName::new("A"));
        assert!(c.to_string().contains('A'));
    }
}
