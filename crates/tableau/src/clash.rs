//! Clash detection — the conditions under which a completion graph is
//! contradictory.

use crate::node::NodeId;
use dl::{Concept, ConceptName, IndividualName};
use std::fmt;

/// Why a branch of the tableau closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Clash {
    /// `⊥` appeared in a node label.
    Bottom(NodeId),
    /// `A` and `¬A` both in one label.
    Complementary(NodeId, ConceptName),
    /// `≤ n.R` violated by more than `n` pairwise-distinct neighbours.
    CardinalityExceeded(NodeId, Concept),
    /// A node was asserted both to be and not to be a nominal `{o}`.
    NominalContradiction(NodeId, IndividualName),
    /// Two nodes required to be distinct were merged.
    MergedDistinct(NodeId, NodeId),
    /// A node's concrete-domain constraints are jointly unsatisfiable.
    DatatypeUnsatisfiable(NodeId),
}

impl fmt::Display for Clash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clash::Bottom(n) => write!(f, "node {n}: ⊥ in label"),
            Clash::Complementary(n, a) => write!(f, "node {n}: both {a} and ¬{a}"),
            Clash::CardinalityExceeded(n, c) => {
                write!(f, "node {n}: at-most restriction {c} violated")
            }
            Clash::NominalContradiction(n, o) => {
                write!(f, "node {n}: both {{{o}}} and ¬{{{o}}}")
            }
            Clash::MergedDistinct(a, b) => {
                write!(f, "nodes {a} and {b}: merged but asserted distinct")
            }
            Clash::DatatypeUnsatisfiable(n) => {
                write!(f, "node {n}: datatype constraints unsatisfiable")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_node() {
        let c = Clash::Bottom(NodeId(3));
        assert!(c.to_string().contains("node n3"));
        let c = Clash::Complementary(NodeId(1), ConceptName::new("A"));
        assert!(c.to_string().contains('A'));
    }
}
