//! Blocking — the termination device of the tableau.
//!
//! A blockable node `x` is *directly blocked* by an ancestor `y` when the
//! pair condition of the chosen strategy holds; `x` is *blocked* when it or
//! any ancestor is directly blocked. Generating rules (`∃`, `≥`) never fire
//! on blocked nodes, which bounds tree depth by the number of distinct
//! label configurations.
//!
//! *Pairwise* blocking (the default) compares both the nodes and their
//! predecessors plus the connecting edge labels — required for soundness
//! with inverse roles and number restrictions (SHOIN). *Subset* and
//! *equality* blocking are cheaper historical strategies kept as ablation
//! knobs; they are complete only for weaker logics.

use crate::config::BlockingStrategy;
use crate::graph::CompletionGraph;
use crate::node::NodeId;

/// Is `x` blocked (directly or through an ancestor)?
pub fn is_blocked(g: &CompletionGraph, x: NodeId, strategy: BlockingStrategy) -> bool {
    let x = g.resolve(x);
    if g.node(x).is_root {
        return false;
    }
    // Indirect blocking: any ancestor directly blocked blocks the subtree.
    let mut chain = vec![x];
    chain.extend(g.ancestors(x));
    chain
        .iter()
        .any(|&n| !g.node(n).is_root && is_directly_blocked(g, n, strategy))
}

/// Is `x` directly blocked by some ancestor?
pub fn is_directly_blocked(g: &CompletionGraph, x: NodeId, strategy: BlockingStrategy) -> bool {
    blocker(g, x, strategy).is_some()
}

/// The ancestor directly blocking `x`, if any.
pub fn blocker(g: &CompletionGraph, x: NodeId, strategy: BlockingStrategy) -> Option<NodeId> {
    let x = g.resolve(x);
    let x_node = g.node(x);
    if x_node.is_root {
        return None;
    }
    let x_parent = x_node.parent.map(|p| g.resolve(p))?;
    if !g.is_live(x_parent) {
        return None;
    }
    let ancestors = g.ancestors(x);
    for &y in &ancestors {
        let y_node = g.node(y);
        if y_node.is_root {
            continue;
        }
        let matches = match strategy {
            BlockingStrategy::Equality => y_node.label == x_node.label,
            BlockingStrategy::Subset => x_node.label.is_subset(&y_node.label),
            BlockingStrategy::Pairwise => {
                let Some(y_parent) = y_node.parent.map(|p| g.resolve(p)) else {
                    continue;
                };
                if !g.is_live(y_parent) {
                    continue;
                }
                y_node.label == x_node.label
                    && g.node(x_parent).label == g.node(y_parent).label
                    && g.connecting_label(x_parent, x) == g.connecting_label(y_parent, y)
            }
        };
        if matches {
            return Some(y);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::axiom::RoleExpr;
    use dl::Concept;

    fn a(s: &str) -> Concept {
        Concept::atomic(s)
    }
    fn r(s: &str) -> RoleExpr {
        RoleExpr::named(s)
    }

    /// root → t1 → t2 → t3 chain with labels set per test.
    fn chain(g: &mut CompletionGraph) -> (NodeId, NodeId, NodeId, NodeId) {
        let root = g.new_root();
        let t1 = g.new_blockable(root);
        let t2 = g.new_blockable(t1);
        let t3 = g.new_blockable(t2);
        g.add_edge(root, t1, &r("p"));
        g.add_edge(t1, t2, &r("p"));
        g.add_edge(t2, t3, &r("p"));
        (root, t1, t2, t3)
    }

    #[test]
    fn pairwise_blocks_repeating_pairs() {
        let mut g = CompletionGraph::new();
        let (_root, t1, t2, t3) = chain(&mut g);
        // Labels: t1 = t3 = {A}; t2's parent t1 and t3's parent t2 must
        // also match, so give t2 = {A} too → then t2 blocked by t1 only if
        // parents match: parent(t2)=t1 {A}, parent(t1)=root {} — differ.
        for n in [t1, t2, t3] {
            g.add_concept(n, a("A"));
        }
        // t3: (t3,t2) vs candidate (t2,t1): labels all {A}, edges all {p}.
        assert!(is_directly_blocked(&g, t3, BlockingStrategy::Pairwise));
        // t2: candidate (t1, root): root's label {} ≠ t1's label {A}.
        assert!(!is_directly_blocked(&g, t2, BlockingStrategy::Pairwise));
        assert!(!is_blocked(&g, t2, BlockingStrategy::Pairwise));
        assert!(is_blocked(&g, t3, BlockingStrategy::Pairwise));
    }

    #[test]
    fn indirect_blocking_covers_descendants() {
        let mut g = CompletionGraph::new();
        let (_root, t1, t2, t3) = chain(&mut g);
        let t4 = g.new_blockable(t3);
        g.add_edge(t3, t4, &r("p"));
        for n in [t1, t2, t3] {
            g.add_concept(n, a("A"));
        }
        g.add_concept(t4, a("B")); // different label, but below a blocked node
        assert!(is_blocked(&g, t4, BlockingStrategy::Pairwise));
        assert!(!is_directly_blocked(&g, t4, BlockingStrategy::Pairwise));
    }

    #[test]
    fn edge_labels_matter_for_pairwise() {
        let mut g = CompletionGraph::new();
        let root = g.new_root();
        let t1 = g.new_blockable(root);
        let t2 = g.new_blockable(t1);
        let t3 = g.new_blockable(t2);
        g.add_edge(root, t1, &r("p"));
        g.add_edge(t1, t2, &r("p"));
        g.add_edge(t2, t3, &r("q")); // different connecting role
        for n in [t1, t2, t3] {
            g.add_concept(n, a("A"));
        }
        assert!(!is_directly_blocked(&g, t3, BlockingStrategy::Pairwise));
        // Equality blocking ignores edges and blocks immediately.
        assert!(is_directly_blocked(&g, t3, BlockingStrategy::Equality));
    }

    #[test]
    fn subset_blocking_is_weaker() {
        let mut g = CompletionGraph::new();
        let root = g.new_root();
        let t1 = g.new_blockable(root);
        let t2 = g.new_blockable(t1);
        g.add_edge(root, t1, &r("p"));
        g.add_edge(t1, t2, &r("p"));
        g.add_concept(t1, a("A"));
        g.add_concept(t1, a("B"));
        g.add_concept(t2, a("A"));
        // L(t2) ⊂ L(t1): subset blocks, equality does not.
        assert!(is_directly_blocked(&g, t2, BlockingStrategy::Subset));
        assert!(!is_directly_blocked(&g, t2, BlockingStrategy::Equality));
    }

    #[test]
    fn roots_are_never_blocked() {
        let mut g = CompletionGraph::new();
        let root = g.new_root();
        assert!(!is_blocked(&g, root, BlockingStrategy::Pairwise));
        assert!(!is_blocked(&g, root, BlockingStrategy::Equality));
    }
}
