//! The tableau expansion engine: deterministic saturation, clash
//! detection, nondeterministic branching (`⊔`, `o`, `≤`-merge, `NN`) and
//! the generating rules (`∃`, `≥`).
//!
//! Two search strategies share one rule engine ([`crate::config::SearchStrategy`]):
//!
//! * **Snapshot** — branching clones the completion graph per tried
//!   alternative and backtracks chronologically. Kept as the
//!   differential-testing oracle.
//! * **Trail** (default) — every graph mutation is recorded on an undo
//!   trail and tagged with a [`DepSet`] of branch-point ids; a clash
//!   reports the union of its facts' dep-sets, and the search *backjumps*
//!   past branch points the clash does not depend on, undoing the trail
//!   in O(changes) instead of cloning. See `docs/perf.md` for the
//!   dep-set invariant and the soundness argument.
//!
//! The rule priorities follow the SHOIQ calculus: nominal merging first,
//! then `NN`, then the boolean/merge choices, with generating rules last
//! and only on unblocked nodes.

use crate::blocking::is_blocked;
use crate::clash::{Clash, ClashInfo};
use crate::config::{Config, ReasonerError, SearchStrategy};
use crate::datatype_oracle::data_satisfiable;
use crate::graph::CompletionGraph;
use crate::node::NodeId;
use crate::stats::Stats;
use crate::trail::DepSet;
use dl::axiom::RoleExpr;
use dl::kb::RoleHierarchy;
use dl::name::{ConceptName, DataRoleName, IndividualName};
use dl::nnf::nnf;
use dl::Concept;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Preprocessed, immutable reasoning context shared by all branches.
#[derive(Debug, Clone)]
pub struct Context {
    /// Role hierarchy closed under inverses, plus transitivity info.
    pub hierarchy: RoleHierarchy,
    /// Data-role hierarchy closure.
    pub data_hierarchy: BTreeMap<DataRoleName, BTreeSet<DataRoleName>>,
    /// Internalized TBox constraints `NNF(¬C ⊔ D)` that every node must
    /// satisfy (axioms not captured by absorption).
    pub globals: Vec<Concept>,
    /// Absorbed axioms: `A ⊑ D` with atomic `A`, applied lazily when `A`
    /// enters a label.
    pub unfoldings: BTreeMap<ConceptName, Vec<Concept>>,
    /// Search configuration.
    pub config: Config,
}

/// One alternative of a nondeterministic rule.
enum Alternative {
    /// Add concepts to a node (`⊔`-rule branches).
    Add(NodeId, Vec<Concept>),
    /// Merge the first node into the second (`o`/`≤` rules).
    Merge(NodeId, NodeId),
    /// An `NN`-rule guess: enforce `≤ m.R` at `x` with `m` fresh,
    /// pairwise-distinct nominal `R`-neighbours.
    NewNominals { x: NodeId, role: RoleExpr, m: u32 },
}

/// One open branch point of the trail search.
struct BranchPoint {
    /// This branch point's id — the element facts derived under it carry
    /// in their dep-sets.
    id: u32,
    /// Trail mark taken *after* the choice was located (choice location
    /// may materialize nominal nodes, which belong to the pre-branch
    /// state): undoing to here restores the graph as it was before any
    /// alternative was applied.
    mark: usize,
    /// `nn_counter` at branch time, restored on every undo so fresh
    /// `__nnK` nominal names are deterministic across alternatives (and
    /// identical to the snapshot engine's on the success path).
    nn_mark: u32,
    /// Alternatives not yet tried.
    alts: std::vec::IntoIter<Alternative>,
    /// Dep-set of the facts that made this choice *exist* (the `⊔`-fact,
    /// the `≤`-fact plus its edges, …). Folded into the failure deps when
    /// the branch point exhausts.
    premise_deps: DepSet,
    /// Union of the clash deps of every failed alternative so far, minus
    /// this point's own id.
    failure_deps: DepSet,
}

/// The DFS search engine.
pub struct Search<'a> {
    ctx: &'a Context,
    /// Counters for the whole call (all branches).
    pub stats: Stats,
    nn_counter: u32,
    /// Wall-clock deadline derived from [`Config::time_budget`].
    deadline: Option<Instant>,
}

impl<'a> Search<'a> {
    /// A fresh search over the given context.
    pub fn new(ctx: &'a Context) -> Self {
        Search {
            ctx,
            stats: Stats::default(),
            nn_counter: 0,
            deadline: ctx.config.time_budget.map(|d| Instant::now() + d),
        }
    }

    /// Decide satisfiability of the (initialized) completion graph.
    pub fn satisfiable(&mut self, g: CompletionGraph) -> Result<bool, ReasonerError> {
        Ok(self.complete(g)?.is_some())
    }

    /// Run the search to completion; on success return the complete,
    /// clash-free completion graph (for model extraction). Dispatches on
    /// [`Config::search`]; both engines are depth-first over an explicit
    /// stack of open branch points, so deeply nested `⊔`/`≤`/`o` choices
    /// cannot overflow the call stack.
    pub fn complete(
        &mut self,
        g: CompletionGraph,
    ) -> Result<Option<CompletionGraph>, ReasonerError> {
        match self.ctx.config.search {
            SearchStrategy::Snapshot => self.complete_snapshot(g),
            SearchStrategy::Trail => self.complete_trail(g),
        }
    }

    /// Snapshot search: each open branch point holds the pre-branch graph
    /// and its untried alternatives; trying an alternative clones the
    /// base graph. Chronological backtracking.
    fn complete_snapshot(
        &mut self,
        g: CompletionGraph,
    ) -> Result<Option<CompletionGraph>, ReasonerError> {
        let mut open: Vec<(CompletionGraph, std::vec::IntoIter<Alternative>, u32)> = Vec::new();
        let mut current = Some(g);
        loop {
            // A graph to work on: the current one, or the next untried
            // alternative of the deepest open branch point (backtracking).
            let mut g = match current.take() {
                Some(g) => g,
                None => {
                    let Some((base, mut alts, nn_mark)) = open.pop() else {
                        return Ok(None); // search space exhausted
                    };
                    let Some(alt) = alts.next() else {
                        continue; // branch point exhausted; backtrack further
                    };
                    // Trying an alternative is an application of the
                    // branching rule: count it, so the rule-application
                    // limit bounds the whole search even when most
                    // alternatives clash immediately.
                    self.stats.rule_applications += 1;
                    self.check_limits(&base)?;
                    self.nn_counter = nn_mark;
                    let mut g2 = base.clone();
                    self.stats.graph_clones += 1;
                    open.push((base, alts, nn_mark));
                    if let Some(ci) = self.apply_alternative(&mut g2, alt, DepSet::empty()) {
                        self.stats.record_clash(&ci.clash);
                        continue;
                    }
                    g2
                }
            };
            self.check_limits(&g)?;
            self.stats.branch_depth_peak = self.stats.branch_depth_peak.max(open.len() as u64 + 1);
            if let Some(ci) = self.saturate(&mut g)? {
                self.stats.record_clash(&ci.clash);
                continue;
            }
            if let Some(ci) = self.data_clash(&g) {
                self.stats.record_clash(&ci.clash);
                continue;
            }
            if let Some((alts, _premise)) = self.find_choice(&mut g) {
                self.stats.branches += 1;
                open.push((g, alts.into_iter(), self.nn_counter));
                continue;
            }
            if !self.apply_generating(&mut g)? {
                return Ok(Some(g));
            }
            current = Some(g);
        }
    }

    /// Trail search with dependency-directed backjumping: one graph,
    /// mutated in place; branch points remember a trail mark, and a clash
    /// backjumps to the deepest branch point in its dep-set, undoing the
    /// trail on the way.
    fn complete_trail(
        &mut self,
        mut g: CompletionGraph,
    ) -> Result<Option<CompletionGraph>, ReasonerError> {
        g.set_trailing(true);
        let mut open: Vec<BranchPoint> = Vec::new();
        let mut next_id: u32 = 0;
        // A clash whose responsible branch point is still to be found.
        let mut pending: Option<DepSet> = None;
        loop {
            if let Some(deps) = pending.take() {
                if !self.backjump(&mut g, &mut open, deps)? {
                    return Ok(None); // no responsible choice left: unsatisfiable
                }
            }
            self.check_limits(&g)?;
            if let Some(ci) = self.saturate(&mut g)? {
                self.stats.record_clash(&ci.clash);
                pending = Some(ci.deps);
                continue;
            }
            if let Some(ci) = self.data_clash(&g) {
                self.stats.record_clash(&ci.clash);
                pending = Some(ci.deps);
                continue;
            }
            if let Some((alts, premise)) = self.find_choice(&mut g) {
                self.stats.branches += 1;
                let id = next_id;
                next_id += 1;
                let mut alts = alts.into_iter();
                // The mark is taken *after* find_choice: any nominal nodes
                // it materialized belong to the pre-branch state shared by
                // all alternatives.
                let first = alts.next().expect("a choice has at least one alternative");
                open.push(BranchPoint {
                    id,
                    mark: g.mark(),
                    nn_mark: self.nn_counter,
                    alts,
                    premise_deps: premise,
                    failure_deps: DepSet::empty(),
                });
                self.stats.branch_depth_peak = self.stats.branch_depth_peak.max(open.len() as u64);
                if let Some(ci) = self.apply_alternative(&mut g, first, DepSet::single(id)) {
                    self.stats.record_clash(&ci.clash);
                    pending = Some(ci.deps);
                }
                continue;
            }
            if !self.apply_generating(&mut g)? {
                g.clear_trail();
                return Ok(Some(g));
            }
        }
    }

    /// Resolve a clash with dep-set `deps`: undo back to the deepest
    /// *responsible* branch point and apply its next alternative. Branch
    /// points not in `deps` are popped wholesale (the backjump — none of
    /// their remaining alternatives can avoid a clash that does not
    /// depend on them); exhausted responsible branch points fold their
    /// accumulated failure deps into the clash and propagation continues
    /// upward. Returns `false` when the whole stack exhausts — with the
    /// dep-set invariant, that refutes the KB.
    fn backjump(
        &mut self,
        g: &mut CompletionGraph,
        open: &mut Vec<BranchPoint>,
        mut deps: DepSet,
    ) -> Result<bool, ReasonerError> {
        self.stats.trail_len_peak = self.stats.trail_len_peak.max(g.trail_len() as u64);
        loop {
            let Some(bp) = open.last_mut() else {
                return Ok(false);
            };
            if !deps.contains(bp.id) {
                // Dependency-directed skip: every fact of the clash is
                // derivable whatever this branch point chooses, so all
                // its remaining alternatives rederive the same clash.
                let bp = open.pop().expect("just peeked");
                g.undo_to(bp.mark);
                self.nn_counter = bp.nn_mark;
                self.stats.backjumps += 1;
                continue;
            }
            // This choice is implicated: remember why it failed, restore
            // the pre-branch state, and try the next alternative.
            let mut failure = deps.clone();
            failure.remove(bp.id);
            bp.failure_deps.union_with(&failure);
            g.undo_to(bp.mark);
            self.nn_counter = bp.nn_mark;
            match bp.alts.next() {
                Some(alt) => {
                    let id = bp.id;
                    self.check_limits(g)?;
                    match self.apply_alternative(g, alt, DepSet::single(id)) {
                        Some(ci) => {
                            self.stats.record_clash(&ci.clash);
                            deps = ci.deps;
                            continue;
                        }
                        None => return Ok(true),
                    }
                }
                None => {
                    // Exhausted: every alternative failed. The union of
                    // the premise deps and all alternatives' failure deps
                    // (minus this point's own id) is a clash one level up.
                    let bp = open.pop().expect("just peeked");
                    deps = bp.failure_deps;
                    deps.union_with(&bp.premise_deps);
                    deps.remove(bp.id);
                    continue;
                }
            }
        }
    }

    fn check_limits(&mut self, g: &CompletionGraph) -> Result<(), ReasonerError> {
        self.stats.peak_graph_size = self.stats.peak_graph_size.max(g.live_node_count() as u64);
        if g.allocated_nodes() > self.ctx.config.max_nodes {
            return Err(ReasonerError::NodeLimit(self.ctx.config.max_nodes));
        }
        if self.stats.rule_applications > self.ctx.config.max_rule_applications {
            return Err(ReasonerError::RuleLimit(
                self.ctx.config.max_rule_applications,
            ));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                let budget = self.ctx.config.time_budget.unwrap_or_default();
                return Err(ReasonerError::TimeBudget(budget));
            }
        }
        let config_cancel = self
            .ctx
            .config
            .cancel
            .as_ref()
            .is_some_and(|flag| flag.load(std::sync::atomic::Ordering::Relaxed));
        if config_cancel || crate::interrupt::interrupted() {
            self.stats.cancelled += 1;
            return Err(ReasonerError::Cancelled);
        }
        Ok(())
    }

    /// Ensure every individual mentioned in a nominal has a root node.
    /// (The reasoner pre-creates nodes for signature individuals; `NN`
    /// nominals are created with their nodes; this covers stragglers from
    /// concept-level nominals introduced mid-search.) `deps` are the
    /// branch choices of the fact that mentioned the individual — the
    /// node's existence is conditional on them.
    fn ensure_nominal_node(
        &mut self,
        g: &mut CompletionGraph,
        o: &IndividualName,
        deps: DepSet,
    ) -> NodeId {
        if let Some(n) = g.nominal_node(o) {
            return n;
        }
        let n = g.new_root_d(deps.clone());
        self.stats.nodes_created += 1;
        g.set_nominal_node(o.clone(), n);
        g.add_concept_d(n, Concept::one_of([o.clone()]), deps);
        n
    }

    /// Apply deterministic rules to a fixpoint. Returns a clash (with the
    /// responsible dep-set) if one arises.
    fn saturate(&mut self, g: &mut CompletionGraph) -> Result<Option<ClashInfo>, ReasonerError> {
        loop {
            self.check_limits(g)?;
            let mut changed = false;
            let nodes: Vec<NodeId> = g.live_nodes().collect();
            for x in nodes {
                if !g.is_live(x) {
                    continue; // merged away during this pass
                }
                let x = g.resolve(x);
                // Global TBox constraints: unconditional facts.
                for c in &self.ctx.globals {
                    if g.add_concept(x, c.clone()) {
                        changed = true;
                        self.stats.rule_applications += 1;
                    }
                }
                let label: Vec<Concept> = g.node(x).label.iter().cloned().collect();
                for c in &label {
                    match c {
                        Concept::Atomic(a) => {
                            if let Some(unf) = self.ctx.unfoldings.get(a) {
                                let deps = g.concept_deps(x, c);
                                for d in unf {
                                    if g.add_concept_d(x, d.clone(), deps.clone()) {
                                        changed = true;
                                        self.stats.rule_applications += 1;
                                    }
                                }
                            }
                        }
                        // Boolean constraint propagation: a disjunction
                        // with one disjunct already refuted in this label
                        // is deterministic. Without this, unsatisfiable
                        // inputs drown in irrelevant ⊔ choice points
                        // (chronological backtracking re-explores them
                        // exponentially). The derived disjunct depends on
                        // the disjunction *and* on the refuting facts.
                        Concept::Or(l, r) => {
                            let has_l = g.has_concept(x, l);
                            let has_r = g.has_concept(x, r);
                            if !has_l && !has_r {
                                let mut ldeps = DepSet::empty();
                                let mut rdeps = DepSet::empty();
                                let l_false = definitely_false_d(g, x, l, &mut ldeps);
                                let r_false = definitely_false_d(g, x, r, &mut rdeps);
                                if l_false {
                                    let mut deps = g.concept_deps(x, c);
                                    deps.union_with(&ldeps);
                                    if g.add_concept_d(x, (**r).clone(), deps) {
                                        changed = true;
                                        self.stats.rule_applications += 1;
                                    }
                                }
                                if r_false {
                                    let mut deps = g.concept_deps(x, c);
                                    deps.union_with(&rdeps);
                                    if g.add_concept_d(x, (**l).clone(), deps) {
                                        changed = true;
                                        self.stats.rule_applications += 1;
                                    }
                                }
                            }
                        }
                        Concept::And(l, r) => {
                            let deps = g.concept_deps(x, c);
                            if g.add_concept_d(x, (**l).clone(), deps.clone()) {
                                changed = true;
                                self.stats.rule_applications += 1;
                            }
                            if g.add_concept_d(x, (**r).clone(), deps) {
                                changed = true;
                                self.stats.rule_applications += 1;
                            }
                        }
                        Concept::All(role, filler) => {
                            let base = g.concept_deps(x, c);
                            for y in g.neighbours(x, role, &self.ctx.hierarchy) {
                                let mut deps = base.clone();
                                deps.union_with(&g.edge_deps_between(x, y));
                                if g.add_concept_d(y, (**filler).clone(), deps) {
                                    changed = true;
                                    self.stats.rule_applications += 1;
                                }
                            }
                            // ∀₊: push through transitive subroles.
                            for s in self.ctx.hierarchy.transitive_subroles(role) {
                                let push = Concept::all(s.clone(), (**filler).clone());
                                for y in g.neighbours(x, &s, &self.ctx.hierarchy) {
                                    let mut deps = base.clone();
                                    deps.union_with(&g.edge_deps_between(x, y));
                                    if g.add_concept_d(y, push.clone(), deps) {
                                        changed = true;
                                        self.stats.rule_applications += 1;
                                    }
                                }
                            }
                        }
                        Concept::OneOf(os) if os.len() == 1 => {
                            let o = os.iter().next().expect("singleton").clone();
                            let deps = g.concept_deps(x, c);
                            let target = self.ensure_nominal_node(g, &o, deps.clone());
                            let x_now = g.resolve(x);
                            if x_now != target {
                                self.stats.rule_applications += 1;
                                // Prefer merging the blockable node into
                                // the root.
                                if let Some(ci) = g.merge_d(x_now, target, deps) {
                                    return Ok(Some(ci));
                                }
                                changed = true;
                            }
                        }
                        Concept::OneOf(os) if os.is_empty() => {
                            return Ok(Some(ClashInfo::new(
                                Clash::Bottom(x),
                                g.concept_deps(x, c),
                            )));
                        }
                        Concept::Not(inner) => {
                            if let Concept::OneOf(os) = &**inner {
                                let deps = g.concept_deps(x, c);
                                for o in os {
                                    let target = self.ensure_nominal_node(g, o, deps.clone());
                                    let x_now = g.resolve(x);
                                    if let Some(ci) = g.set_distinct_d(x_now, target, deps.clone())
                                    {
                                        return Ok(Some(ci));
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                    if !g.is_live(x) {
                        break; // x merged away; restart outer pass
                    }
                }
            }
            if let Some(ci) = self.find_clash(g) {
                return Ok(Some(ci));
            }
            if !changed {
                return Ok(None);
            }
        }
    }

    /// Scan for a clash in the current graph, reporting the union of the
    /// clashing facts' dep-sets.
    fn find_clash(&self, g: &CompletionGraph) -> Option<ClashInfo> {
        for x in g.live_nodes() {
            let node = g.node(x);
            for c in &node.label {
                match c {
                    Concept::Bottom => {
                        return Some(ClashInfo::new(Clash::Bottom(x), g.concept_deps(x, c)));
                    }
                    Concept::Not(inner) => {
                        if let Concept::Atomic(a) = &**inner {
                            let pos = Concept::Atomic(a.clone());
                            if node.label.contains(&pos) {
                                let mut deps = g.concept_deps(x, c);
                                deps.union_with(&g.concept_deps(x, &pos));
                                return Some(ClashInfo::new(
                                    Clash::Complementary(x, a.clone()),
                                    deps,
                                ));
                            }
                        }
                    }
                    Concept::AtMost(n, role) => {
                        let ys = g.neighbours(x, role, &self.ctx.hierarchy);
                        if ys.len() > *n as usize
                            && has_n_pairwise_distinct(g, &ys, *n as usize + 1)
                        {
                            // Over-approximate: the ≤-fact, every edge to
                            // a counted neighbour, and every inequality
                            // among them (a subset would do; a superset
                            // is sound and cheaper than minimizing).
                            let mut deps = g.concept_deps(x, c);
                            for (i, &yi) in ys.iter().enumerate() {
                                deps.union_with(&g.edge_deps_between(x, yi));
                                for &yj in ys.iter().skip(i + 1) {
                                    deps.union_with(&g.distinct_deps(yi, yj));
                                }
                            }
                            return Some(ClashInfo::new(
                                Clash::CardinalityExceeded(x, c.clone()),
                                deps,
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// Does any node have unsatisfiable datatype constraints? The
    /// responsible dep-set is the union over the node's data concepts.
    fn data_clash(&self, g: &CompletionGraph) -> Option<ClashInfo> {
        for x in g.live_nodes() {
            let node = g.node(x);
            let data: Vec<&Concept> = node
                .label
                .iter()
                .filter(|c| {
                    matches!(
                        c,
                        Concept::DataSome(..)
                            | Concept::DataAll(..)
                            | Concept::DataAtLeast(..)
                            | Concept::DataAtMost(..)
                    )
                })
                .collect();
            if data.is_empty() {
                continue;
            }
            if !data_satisfiable(&node.label, &self.ctx.data_hierarchy) {
                let mut deps = node.creation.clone();
                for c in data {
                    deps.union_with(&g.concept_deps(x, c));
                }
                return Some(ClashInfo::new(Clash::DatatypeUnsatisfiable(x), deps));
            }
        }
        None
    }

    /// Locate the highest-priority nondeterministic rule, returning its
    /// alternatives and the dep-set of the facts that *triggered* the
    /// choice (the premise deps, folded into the failure when every
    /// alternative clashes). Takes `&mut CompletionGraph` because
    /// multi-element nominal choices may need to materialize root nodes
    /// for individuals first mentioned inside a query concept.
    fn find_choice(&mut self, g: &mut CompletionGraph) -> Option<(Vec<Alternative>, DepSet)> {
        // Priority 1: multi-element nominal disjunction.
        let nominal_choice: Option<(NodeId, Concept, Vec<IndividualName>)> =
            g.live_nodes().find_map(|x| {
                g.node(x).label.iter().find_map(|c| match c {
                    Concept::OneOf(os)
                        if os.len() > 1 && !os.iter().any(|o| g.nominal_node(o) == Some(x)) =>
                    {
                        Some((x, c.clone(), os.iter().cloned().collect()))
                    }
                    _ => None,
                })
            });
        if let Some((x, c, os)) = nominal_choice {
            let premise = g.concept_deps(x, &c);
            let alts = os
                .iter()
                .map(|o| {
                    let target = self.ensure_nominal_node(g, o, premise.clone());
                    Alternative::Merge(x, target)
                })
                .collect();
            return Some((alts, premise));
        }
        // Priority 2: NN-rule.
        if let Some(found) = self.find_nn(g) {
            return Some(found);
        }
        // Priority 3: disjunction. Disjunctions with a refuted disjunct
        // were already resolved deterministically by BCP in `saturate`.
        for x in g.live_nodes() {
            for c in &g.node(x).label {
                if let Concept::Or(l, r) = c {
                    let lc = (**l).clone();
                    let rc = (**r).clone();
                    if !g.has_concept(x, &lc)
                        && !g.has_concept(x, &rc)
                        && !definitely_false(g, x, &lc)
                        && !definitely_false(g, x, &rc)
                    {
                        let mut alts = vec![Alternative::Add(x, vec![lc.clone()])];
                        if self.ctx.config.semantic_branching {
                            alts.push(Alternative::Add(x, vec![rc, nnf(&lc.not())]));
                        } else {
                            alts.push(Alternative::Add(x, vec![rc]));
                        }
                        return Some((alts, g.concept_deps(x, c)));
                    }
                }
            }
        }
        // Priority 4: ≤-merge.
        for x in g.live_nodes() {
            for c in &g.node(x).label {
                if let Concept::AtMost(n, role) = c {
                    let ys = g.neighbours(x, role, &self.ctx.hierarchy);
                    if ys.len() > *n as usize {
                        let mut alts = Vec::new();
                        for (i, &yi) in ys.iter().enumerate() {
                            for &yj in ys.iter().skip(i + 1) {
                                if !g.are_distinct(yi, yj) {
                                    let (src, dst) = merge_direction(g, x, yi, yj);
                                    alts.push(Alternative::Merge(src, dst));
                                }
                            }
                        }
                        if !alts.is_empty() {
                            let mut premise = g.concept_deps(x, c);
                            for &y in &ys {
                                premise.union_with(&g.edge_deps_between(x, y));
                            }
                            return Some((alts, premise));
                        }
                        // All pairwise distinct: the clash scan will catch
                        // it; no choice here.
                    }
                }
            }
        }
        None
    }

    /// NN-rule scan: `≤n.R ∈ L(x)`, `x` a root with a blockable
    /// `R`-neighbour `y` such that `x` is a successor of `y`, and no
    /// already-guessed `≤m.R` with `m` distinct nominal neighbours.
    fn find_nn(&self, g: &CompletionGraph) -> Option<(Vec<Alternative>, DepSet)> {
        for x in g.live_nodes() {
            let node = g.node(x);
            if !node.is_root {
                continue;
            }
            for c in &node.label {
                let Concept::AtMost(n, role) = c else {
                    continue;
                };
                if *n == 0 {
                    continue;
                }
                let ys = g.neighbours(x, role, &self.ctx.hierarchy);
                // A blockable neighbour whose tree does not hang off x:
                // i.e. x is y's successor (the edge was created from y's
                // side or rerouted). Detect: y blockable and y is not a
                // child of x.
                let troublesome = ys.iter().any(|&y| {
                    let yn = g.node(y);
                    yn.is_blockable() && yn.parent.map(|p| g.resolve(p)) != Some(x)
                });
                if !troublesome {
                    continue;
                }
                // Guard: an already-satisfied guess?
                let satisfied = (1..=*n).any(|m| {
                    node.label.contains(&Concept::at_most(m, role.clone())) && {
                        let nominal_ys: Vec<NodeId> =
                            ys.iter().copied().filter(|&y| g.node(y).is_root).collect();
                        nominal_ys.len() >= m as usize
                            && has_n_pairwise_distinct(g, &nominal_ys, m as usize)
                    }
                });
                if satisfied {
                    continue;
                }
                let mut premise = g.concept_deps(x, c);
                for &y in &ys {
                    premise.union_with(&g.edge_deps_between(x, y));
                }
                return Some((
                    (1..=*n)
                        .map(|m| Alternative::NewNominals {
                            x,
                            role: role.clone(),
                            m,
                        })
                        .collect(),
                    premise,
                ));
            }
        }
        None
    }

    /// Apply one alternative of a branching rule. `dep` is the dep-set
    /// facts added by this alternative carry — `{branch id}` in the trail
    /// search, empty in the snapshot search (which never reads deps).
    fn apply_alternative(
        &mut self,
        g: &mut CompletionGraph,
        alt: Alternative,
        dep: DepSet,
    ) -> Option<ClashInfo> {
        self.stats.rule_applications += 1;
        match alt {
            Alternative::Add(x, cs) => {
                for c in cs {
                    g.add_concept_d(x, c, dep.clone());
                }
                None
            }
            Alternative::Merge(src, dst) => {
                debug_assert_ne!(dst, NodeId(u32::MAX), "unresolved nominal target");
                g.merge_d(src, dst, dep)
            }
            Alternative::NewNominals { x, role, m } => {
                g.add_concept_d(x, Concept::at_most(m, role.clone()), dep.clone());
                let mut created = Vec::with_capacity(m as usize);
                for _ in 0..m {
                    let fresh = IndividualName::new(format!("__nn{}", self.nn_counter));
                    self.nn_counter += 1;
                    let z = g.new_root_d(dep.clone());
                    self.stats.nodes_created += 1;
                    g.set_nominal_node(fresh.clone(), z);
                    g.add_concept_d(z, Concept::one_of([fresh]), dep.clone());
                    g.add_edge_d(x, z, &role, dep.clone());
                    created.push(z);
                }
                for (i, &zi) in created.iter().enumerate() {
                    for &zj in created.iter().skip(i + 1) {
                        if let Some(ci) = g.set_distinct_d(zi, zj, dep.clone()) {
                            return Some(ci);
                        }
                    }
                }
                None
            }
        }
    }

    /// Apply one generating rule (`∃` or `≥`) to some unblocked node.
    /// Returns whether anything was generated. Generated structure
    /// inherits the generating fact's dep-set.
    fn apply_generating(&mut self, g: &mut CompletionGraph) -> Result<bool, ReasonerError> {
        let nodes: Vec<NodeId> = g.live_nodes().collect();
        for x in nodes {
            if !g.is_live(x) {
                continue;
            }
            if is_blocked(g, x, self.ctx.config.blocking) {
                continue;
            }
            let label: Vec<Concept> = g.node(x).label.iter().cloned().collect();
            for c in label {
                match &c {
                    Concept::Some(role, filler) => {
                        let has_witness = g
                            .neighbours(x, role, &self.ctx.hierarchy)
                            .into_iter()
                            .any(|y| g.has_concept(y, filler));
                        if !has_witness {
                            self.stats.rule_applications += 1;
                            let deps = g.concept_deps(x, &c);
                            let y = g.new_blockable_d(x, deps.clone());
                            self.stats.nodes_created += 1;
                            g.add_edge_d(x, y, role, deps.clone());
                            g.add_concept_d(y, (**filler).clone(), deps);
                            return Ok(true);
                        }
                    }
                    Concept::AtLeast(n, role) => {
                        if *n == 0 {
                            continue;
                        }
                        let ys = g.neighbours(x, role, &self.ctx.hierarchy);
                        if !has_n_pairwise_distinct(g, &ys, *n as usize) {
                            self.stats.rule_applications += 1;
                            let deps = g.concept_deps(x, &c);
                            let mut created = Vec::with_capacity(*n as usize);
                            for _ in 0..*n {
                                let y = g.new_blockable_d(x, deps.clone());
                                self.stats.nodes_created += 1;
                                g.add_edge_d(x, y, role, deps.clone());
                                created.push(y);
                            }
                            for (i, &yi) in created.iter().enumerate() {
                                for &yj in created.iter().skip(i + 1) {
                                    // Fresh nodes are never pre-distinct.
                                    let _ = g.set_distinct_d(yi, yj, deps.clone());
                                }
                            }
                            return Ok(true);
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(false)
    }
}

/// Is the concept *syntactically refuted* at the node — `⊥`, a literal
/// whose complement is present, or a conjunction with a refuted conjunct?
/// Used by BCP; sound because adding the concept would clash immediately.
fn definitely_false(g: &CompletionGraph, x: NodeId, c: &Concept) -> bool {
    definitely_false_d(g, x, c, &mut DepSet::empty())
}

/// Dep-reporting variant: when the concept is refuted, `deps` additionally
/// receives the dep-sets of the refuting facts (needed by BCP so the
/// derived disjunct's deps cover the refutation it relied on).
fn definitely_false_d(g: &CompletionGraph, x: NodeId, c: &Concept, deps: &mut DepSet) -> bool {
    match c {
        Concept::Bottom => true,
        Concept::Atomic(a) => {
            let neg = Concept::Atomic(a.clone()).not();
            if g.has_concept(x, &neg) {
                deps.union_with(&g.concept_deps(x, &neg));
                true
            } else {
                false
            }
        }
        Concept::Not(inner) => match &**inner {
            Concept::Atomic(_) if g.has_concept(x, inner) => {
                deps.union_with(&g.concept_deps(x, inner));
                true
            }
            Concept::Top => true,
            _ => false,
        },
        Concept::And(l, r) => {
            let mut side = DepSet::empty();
            if definitely_false_d(g, x, l, &mut side) {
                deps.union_with(&side);
                return true;
            }
            let mut side = DepSet::empty();
            if definitely_false_d(g, x, r, &mut side) {
                deps.union_with(&side);
                return true;
            }
            false
        }
        _ => false,
    }
}

/// Merge-direction preference for the `≤`-rule: never merge a root into a
/// blockable node; prefer keeping `x`'s predecessor; otherwise keep the
/// older node.
fn merge_direction(g: &CompletionGraph, x: NodeId, a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    let (an, bn) = (g.node(a), g.node(b));
    match (an.is_root, bn.is_root) {
        (true, false) => (b, a),
        (false, true) => (a, b),
        _ => {
            // Prefer the one that is x's tree parent as the target.
            let x_parent = g.node(x).parent.map(|p| g.resolve(p));
            if x_parent == Some(a) {
                (b, a)
            } else if x_parent == Some(b) {
                (a, b)
            } else if a < b {
                (b, a)
            } else {
                (a, b)
            }
        }
    }
}

/// Is there a subset of `n` pairwise-distinct (w.r.t. the `≠` relation)
/// nodes among `ys`? Small backtracking search — `n` is a cardinality from
/// the ontology and tiny in practice.
fn has_n_pairwise_distinct(g: &CompletionGraph, ys: &[NodeId], n: usize) -> bool {
    if n == 0 {
        return true;
    }
    if ys.len() < n {
        return false;
    }
    fn go(g: &CompletionGraph, ys: &[NodeId], chosen: &mut Vec<NodeId>, n: usize) -> bool {
        if chosen.len() == n {
            return true;
        }
        for (i, &y) in ys.iter().enumerate() {
            if chosen.iter().all(|&c| g.are_distinct(c, y)) {
                chosen.push(y);
                if go(g, &ys[i + 1..], chosen, n) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }
    go(g, ys, &mut Vec::new(), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_distinct_subset_search() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        let c = g.new_root();
        g.set_distinct(a, b);
        g.set_distinct(b, c);
        // a,c not distinct: max pairwise-distinct subset is 2.
        assert!(has_n_pairwise_distinct(&g, &[a, b, c], 2));
        assert!(!has_n_pairwise_distinct(&g, &[a, b, c], 3));
        g.set_distinct(a, c);
        assert!(has_n_pairwise_distinct(&g, &[a, b, c], 3));
    }

    #[test]
    fn merge_direction_prefers_roots() {
        let mut g = CompletionGraph::new();
        let root = g.new_root();
        let x = g.new_blockable(root);
        let t = g.new_blockable(x);
        assert_eq!(merge_direction(&g, x, root, t), (t, root));
        assert_eq!(merge_direction(&g, x, t, root), (t, root));
        // Both blockable: parent of x (root is not blockable here, use
        // two tree nodes).
        let t2 = g.new_blockable(x);
        let (src, dst) = merge_direction(&g, t, x, t2);
        // x is t's parent → keep x.
        assert_eq!((src, dst), (t2, x));
    }

    #[test]
    fn definitely_false_reports_refuting_deps() {
        let mut g = CompletionGraph::new();
        let x = g.new_root();
        g.add_concept_d(x, Concept::atomic("A").not(), DepSet::single(2));
        let mut deps = DepSet::empty();
        assert!(definitely_false_d(&g, x, &Concept::atomic("A"), &mut deps));
        assert!(deps.contains(2));
        // Conjunction: only the refuted side's deps are reported.
        let mut deps = DepSet::empty();
        let c = Concept::atomic("B").and(Concept::atomic("A"));
        assert!(definitely_false_d(&g, x, &c, &mut deps));
        assert!(deps.contains(2) && deps.len() == 1);
    }
}
