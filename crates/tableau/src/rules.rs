//! The tableau expansion engine: deterministic saturation, clash
//! detection, nondeterministic branching (`⊔`, `o`, `≤`-merge, `NN`) and
//! the generating rules (`∃`, `≥`).
//!
//! Branching clones the completion graph — graphs stay small for our
//! workloads and cloning avoids an entire class of undo-trail bugs. The
//! rule priorities follow the SHOIQ calculus: nominal merging first, then
//! `NN`, then the boolean/merge choices, with generating rules last and
//! only on unblocked nodes.

use crate::blocking::is_blocked;
use crate::clash::Clash;
use crate::config::{Config, ReasonerError};
use crate::datatype_oracle::data_satisfiable;
use crate::graph::CompletionGraph;
use crate::node::NodeId;
use crate::stats::Stats;
use dl::axiom::RoleExpr;
use dl::kb::RoleHierarchy;
use dl::name::{ConceptName, DataRoleName, IndividualName};
use dl::nnf::nnf;
use dl::Concept;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Preprocessed, immutable reasoning context shared by all branches.
#[derive(Debug, Clone)]
pub struct Context {
    /// Role hierarchy closed under inverses, plus transitivity info.
    pub hierarchy: RoleHierarchy,
    /// Data-role hierarchy closure.
    pub data_hierarchy: BTreeMap<DataRoleName, BTreeSet<DataRoleName>>,
    /// Internalized TBox constraints `NNF(¬C ⊔ D)` that every node must
    /// satisfy (axioms not captured by absorption).
    pub globals: Vec<Concept>,
    /// Absorbed axioms: `A ⊑ D` with atomic `A`, applied lazily when `A`
    /// enters a label.
    pub unfoldings: BTreeMap<ConceptName, Vec<Concept>>,
    /// Search configuration.
    pub config: Config,
}

/// One alternative of a nondeterministic rule.
enum Alternative {
    /// Add concepts to a node (`⊔`-rule branches).
    Add(NodeId, Vec<Concept>),
    /// Merge the first node into the second (`o`/`≤` rules).
    Merge(NodeId, NodeId),
    /// An `NN`-rule guess: enforce `≤ m.R` at `x` with `m` fresh,
    /// pairwise-distinct nominal `R`-neighbours.
    NewNominals { x: NodeId, role: RoleExpr, m: u32 },
}

/// The DFS search engine.
pub struct Search<'a> {
    ctx: &'a Context,
    /// Counters for the whole call (all branches).
    pub stats: Stats,
    nn_counter: u32,
    /// Wall-clock deadline derived from [`Config::time_budget`].
    deadline: Option<Instant>,
}

impl<'a> Search<'a> {
    /// A fresh search over the given context.
    pub fn new(ctx: &'a Context) -> Self {
        Search {
            ctx,
            stats: Stats::default(),
            nn_counter: 0,
            deadline: ctx.config.time_budget.map(|d| Instant::now() + d),
        }
    }

    /// Decide satisfiability of the (initialized) completion graph.
    pub fn satisfiable(&mut self, g: CompletionGraph) -> Result<bool, ReasonerError> {
        Ok(self.complete(g)?.is_some())
    }

    /// Run the search to completion; on success return the complete,
    /// clash-free completion graph (for model extraction).
    ///
    /// The non-deterministic search is depth-first over an *explicit*
    /// stack of open branch points (each holding the pre-branch graph and
    /// its untried alternatives), so deeply nested `⊔`/`≤`/`o` choices
    /// cannot overflow the call stack.
    pub fn complete(
        &mut self,
        g: CompletionGraph,
    ) -> Result<Option<CompletionGraph>, ReasonerError> {
        let mut open: Vec<(CompletionGraph, std::vec::IntoIter<Alternative>)> = Vec::new();
        let mut current = Some(g);
        loop {
            // A graph to work on: the current one, or the next untried
            // alternative of the deepest open branch point (backtracking).
            let mut g = match current.take() {
                Some(g) => g,
                None => {
                    let Some((base, mut alts)) = open.pop() else {
                        return Ok(None); // search space exhausted
                    };
                    let Some(alt) = alts.next() else {
                        continue; // branch point exhausted; backtrack further
                    };
                    // Trying an alternative is an application of the
                    // branching rule: count it, so the rule-application
                    // limit bounds the whole search even when most
                    // alternatives clash immediately.
                    self.stats.rule_applications += 1;
                    self.check_limits(&base)?;
                    let mut g2 = base.clone();
                    open.push((base, alts));
                    if self.apply_alternative(&mut g2, alt).is_some() {
                        self.stats.clashes += 1;
                        continue;
                    }
                    g2
                }
            };
            self.check_limits(&g)?;
            if self.saturate(&mut g)?.is_some() {
                self.stats.clashes += 1;
                continue;
            }
            if let Some(clash_node) = self.data_clash(&g) {
                let _ = Clash::DatatypeUnsatisfiable(clash_node);
                self.stats.clashes += 1;
                continue;
            }
            if let Some(alts) = self.find_choice(&mut g) {
                self.stats.branches += 1;
                open.push((g, alts.into_iter()));
                continue;
            }
            if !self.apply_generating(&mut g)? {
                return Ok(Some(g));
            }
            current = Some(g);
        }
    }

    fn check_limits(&mut self, g: &CompletionGraph) -> Result<(), ReasonerError> {
        self.stats.peak_graph_size = self.stats.peak_graph_size.max(g.live_node_count() as u64);
        if g.allocated_nodes() > self.ctx.config.max_nodes {
            return Err(ReasonerError::NodeLimit(self.ctx.config.max_nodes));
        }
        if self.stats.rule_applications > self.ctx.config.max_rule_applications {
            return Err(ReasonerError::RuleLimit(
                self.ctx.config.max_rule_applications,
            ));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                let budget = self.ctx.config.time_budget.unwrap_or_default();
                return Err(ReasonerError::TimeBudget(budget));
            }
        }
        Ok(())
    }

    /// Ensure every individual mentioned in a nominal has a root node.
    /// (The reasoner pre-creates nodes for signature individuals; `NN`
    /// nominals are created with their nodes; this covers stragglers from
    /// concept-level nominals introduced mid-search.)
    fn ensure_nominal_node(&mut self, g: &mut CompletionGraph, o: &IndividualName) -> NodeId {
        if let Some(n) = g.nominal_node(o) {
            return n;
        }
        let n = g.new_root();
        self.stats.nodes_created += 1;
        g.set_nominal_node(o.clone(), n);
        g.add_concept(n, Concept::one_of([o.clone()]));
        n
    }

    /// Apply deterministic rules to a fixpoint. Returns a clash if one
    /// arises.
    fn saturate(&mut self, g: &mut CompletionGraph) -> Result<Option<Clash>, ReasonerError> {
        loop {
            self.check_limits(g)?;
            let mut changed = false;
            let nodes: Vec<NodeId> = g.live_nodes().collect();
            for x in nodes {
                if !g.is_live(x) {
                    continue; // merged away during this pass
                }
                let x = g.resolve(x);
                // Global TBox constraints.
                for c in &self.ctx.globals {
                    if g.add_concept(x, c.clone()) {
                        changed = true;
                        self.stats.rule_applications += 1;
                    }
                }
                let label: Vec<Concept> = g.node(x).label.iter().cloned().collect();
                for c in &label {
                    match c {
                        Concept::Atomic(a) => {
                            if let Some(unf) = self.ctx.unfoldings.get(a) {
                                for d in unf {
                                    if g.add_concept(x, d.clone()) {
                                        changed = true;
                                        self.stats.rule_applications += 1;
                                    }
                                }
                            }
                        }
                        // Boolean constraint propagation: a disjunction
                        // with one disjunct already refuted in this label
                        // is deterministic. Without this, unsatisfiable
                        // inputs drown in irrelevant ⊔ choice points
                        // (chronological backtracking re-explores them
                        // exponentially).
                        Concept::Or(l, r) => {
                            let has_l = g.has_concept(x, l);
                            let has_r = g.has_concept(x, r);
                            if !has_l && !has_r {
                                let l_false = definitely_false(g, x, l);
                                let r_false = definitely_false(g, x, r);
                                if l_false && g.add_concept(x, (**r).clone()) {
                                    changed = true;
                                    self.stats.rule_applications += 1;
                                }
                                if r_false && g.add_concept(x, (**l).clone()) {
                                    changed = true;
                                    self.stats.rule_applications += 1;
                                }
                            }
                        }
                        Concept::And(l, r) => {
                            if g.add_concept(x, (**l).clone()) {
                                changed = true;
                                self.stats.rule_applications += 1;
                            }
                            if g.add_concept(x, (**r).clone()) {
                                changed = true;
                                self.stats.rule_applications += 1;
                            }
                        }
                        Concept::All(role, filler) => {
                            for y in g.neighbours(x, role, &self.ctx.hierarchy) {
                                if g.add_concept(y, (**filler).clone()) {
                                    changed = true;
                                    self.stats.rule_applications += 1;
                                }
                            }
                            // ∀₊: push through transitive subroles.
                            for s in self.ctx.hierarchy.transitive_subroles(role) {
                                let push = Concept::all(s.clone(), (**filler).clone());
                                for y in g.neighbours(x, &s, &self.ctx.hierarchy) {
                                    if g.add_concept(y, push.clone()) {
                                        changed = true;
                                        self.stats.rule_applications += 1;
                                    }
                                }
                            }
                        }
                        Concept::OneOf(os) if os.len() == 1 => {
                            let o = os.iter().next().expect("singleton").clone();
                            let target = self.ensure_nominal_node(g, &o);
                            let x_now = g.resolve(x);
                            if x_now != target {
                                self.stats.rule_applications += 1;
                                // Prefer merging the blockable node into
                                // the root.
                                if let Some(clash) = g.merge(x_now, target) {
                                    return Ok(Some(clash));
                                }
                                changed = true;
                            }
                        }
                        Concept::OneOf(os) if os.is_empty() => {
                            return Ok(Some(Clash::Bottom(x)));
                        }
                        Concept::Not(inner) => {
                            if let Concept::OneOf(os) = &**inner {
                                for o in os {
                                    let target = self.ensure_nominal_node(g, o);
                                    let x_now = g.resolve(x);
                                    if let Some(clash) = g.set_distinct(x_now, target) {
                                        return Ok(Some(clash));
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                    if !g.is_live(x) {
                        break; // x merged away; restart outer pass
                    }
                }
            }
            if let Some(clash) = self.find_clash(g) {
                return Ok(Some(clash));
            }
            if !changed {
                return Ok(None);
            }
        }
    }

    /// Scan for a clash in the current graph.
    fn find_clash(&self, g: &CompletionGraph) -> Option<Clash> {
        for x in g.live_nodes() {
            let node = g.node(x);
            for c in &node.label {
                match c {
                    Concept::Bottom => return Some(Clash::Bottom(x)),
                    Concept::Not(inner) => {
                        if let Concept::Atomic(a) = &**inner {
                            if node.label.contains(&Concept::Atomic(a.clone())) {
                                return Some(Clash::Complementary(x, a.clone()));
                            }
                        }
                    }
                    Concept::AtMost(n, role) => {
                        let ys = g.neighbours(x, role, &self.ctx.hierarchy);
                        if ys.len() > *n as usize
                            && has_n_pairwise_distinct(g, &ys, *n as usize + 1)
                        {
                            return Some(Clash::CardinalityExceeded(x, c.clone()));
                        }
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// Does any node have unsatisfiable datatype constraints?
    fn data_clash(&self, g: &CompletionGraph) -> Option<NodeId> {
        g.live_nodes().find(|&x| {
            let node = g.node(x);
            let has_data = node.label.iter().any(|c| {
                matches!(
                    c,
                    Concept::DataSome(..)
                        | Concept::DataAll(..)
                        | Concept::DataAtLeast(..)
                        | Concept::DataAtMost(..)
                )
            });
            has_data && !data_satisfiable(&node.label, &self.ctx.data_hierarchy)
        })
    }

    /// Locate the highest-priority nondeterministic rule, returning its
    /// alternatives. Takes `&mut CompletionGraph` because multi-element
    /// nominal choices may need to materialize root nodes for
    /// individuals first mentioned inside a query concept.
    fn find_choice(&mut self, g: &mut CompletionGraph) -> Option<Vec<Alternative>> {
        // Priority 1: multi-element nominal disjunction.
        let nominal_choice: Option<(NodeId, Vec<IndividualName>)> = g.live_nodes().find_map(|x| {
            g.node(x).label.iter().find_map(|c| match c {
                Concept::OneOf(os)
                    if os.len() > 1 && !os.iter().any(|o| g.nominal_node(o) == Some(x)) =>
                {
                    Some((x, os.iter().cloned().collect()))
                }
                _ => None,
            })
        });
        if let Some((x, os)) = nominal_choice {
            return Some(
                os.iter()
                    .map(|o| {
                        let target = self.ensure_nominal_node(g, o);
                        Alternative::Merge(x, target)
                    })
                    .collect(),
            );
        }
        // Priority 2: NN-rule.
        if let Some(alts) = self.find_nn(g) {
            return Some(alts);
        }
        // Priority 3: disjunction. Disjunctions with a refuted disjunct
        // were already resolved deterministically by BCP in `saturate`.
        for x in g.live_nodes() {
            for c in &g.node(x).label {
                if let Concept::Or(l, r) = c {
                    let lc = (**l).clone();
                    let rc = (**r).clone();
                    if !g.has_concept(x, &lc)
                        && !g.has_concept(x, &rc)
                        && !definitely_false(g, x, &lc)
                        && !definitely_false(g, x, &rc)
                    {
                        let mut alts = vec![Alternative::Add(x, vec![lc.clone()])];
                        if self.ctx.config.semantic_branching {
                            alts.push(Alternative::Add(x, vec![rc, nnf(&lc.not())]));
                        } else {
                            alts.push(Alternative::Add(x, vec![rc]));
                        }
                        return Some(alts);
                    }
                }
            }
        }
        // Priority 4: ≤-merge.
        for x in g.live_nodes() {
            for c in &g.node(x).label {
                if let Concept::AtMost(n, role) = c {
                    let ys = g.neighbours(x, role, &self.ctx.hierarchy);
                    if ys.len() > *n as usize {
                        let mut alts = Vec::new();
                        for (i, &yi) in ys.iter().enumerate() {
                            for &yj in ys.iter().skip(i + 1) {
                                if !g.are_distinct(yi, yj) {
                                    let (src, dst) = merge_direction(g, x, yi, yj);
                                    alts.push(Alternative::Merge(src, dst));
                                }
                            }
                        }
                        if !alts.is_empty() {
                            return Some(alts);
                        }
                        // All pairwise distinct: the clash scan will catch
                        // it; no choice here.
                    }
                }
            }
        }
        None
    }

    /// NN-rule scan: `≤n.R ∈ L(x)`, `x` a root with a blockable
    /// `R`-neighbour `y` such that `x` is a successor of `y`, and no
    /// already-guessed `≤m.R` with `m` distinct nominal neighbours.
    fn find_nn(&self, g: &CompletionGraph) -> Option<Vec<Alternative>> {
        for x in g.live_nodes() {
            let node = g.node(x);
            if !node.is_root {
                continue;
            }
            for c in &node.label {
                let Concept::AtMost(n, role) = c else {
                    continue;
                };
                if *n == 0 {
                    continue;
                }
                let ys = g.neighbours(x, role, &self.ctx.hierarchy);
                // A blockable neighbour whose tree does not hang off x:
                // i.e. x is y's successor (the edge was created from y's
                // side or rerouted). Detect: y blockable and y is not a
                // child of x.
                let troublesome = ys.iter().any(|&y| {
                    let yn = g.node(y);
                    yn.is_blockable() && yn.parent.map(|p| g.resolve(p)) != Some(x)
                });
                if !troublesome {
                    continue;
                }
                // Guard: an already-satisfied guess?
                let satisfied = (1..=*n).any(|m| {
                    node.label.contains(&Concept::at_most(m, role.clone())) && {
                        let nominal_ys: Vec<NodeId> =
                            ys.iter().copied().filter(|&y| g.node(y).is_root).collect();
                        nominal_ys.len() >= m as usize
                            && has_n_pairwise_distinct(g, &nominal_ys, m as usize)
                    }
                });
                if satisfied {
                    continue;
                }
                return Some(
                    (1..=*n)
                        .map(|m| Alternative::NewNominals {
                            x,
                            role: role.clone(),
                            m,
                        })
                        .collect(),
                );
            }
        }
        None
    }

    fn apply_alternative(&mut self, g: &mut CompletionGraph, alt: Alternative) -> Option<Clash> {
        self.stats.rule_applications += 1;
        match alt {
            Alternative::Add(x, cs) => {
                for c in cs {
                    g.add_concept(x, c);
                }
                None
            }
            Alternative::Merge(src, dst) => {
                debug_assert_ne!(dst, NodeId(u32::MAX), "unresolved nominal target");
                g.merge(src, dst)
            }
            Alternative::NewNominals { x, role, m } => {
                g.add_concept(x, Concept::at_most(m, role.clone()));
                let mut created = Vec::with_capacity(m as usize);
                for _ in 0..m {
                    let fresh = IndividualName::new(format!("__nn{}", self.nn_counter));
                    self.nn_counter += 1;
                    let z = g.new_root();
                    self.stats.nodes_created += 1;
                    g.set_nominal_node(fresh.clone(), z);
                    g.add_concept(z, Concept::one_of([fresh]));
                    g.add_edge(x, z, &role);
                    created.push(z);
                }
                for (i, &zi) in created.iter().enumerate() {
                    for &zj in created.iter().skip(i + 1) {
                        if let Some(clash) = g.set_distinct(zi, zj) {
                            return Some(clash);
                        }
                    }
                }
                None
            }
        }
    }

    /// Apply one generating rule (`∃` or `≥`) to some unblocked node.
    /// Returns whether anything was generated.
    fn apply_generating(&mut self, g: &mut CompletionGraph) -> Result<bool, ReasonerError> {
        let nodes: Vec<NodeId> = g.live_nodes().collect();
        for x in nodes {
            if !g.is_live(x) {
                continue;
            }
            if is_blocked(g, x, self.ctx.config.blocking) {
                continue;
            }
            let label: Vec<Concept> = g.node(x).label.iter().cloned().collect();
            for c in label {
                match &c {
                    Concept::Some(role, filler) => {
                        let has_witness = g
                            .neighbours(x, role, &self.ctx.hierarchy)
                            .into_iter()
                            .any(|y| g.has_concept(y, filler));
                        if !has_witness {
                            self.stats.rule_applications += 1;
                            let y = g.new_blockable(x);
                            self.stats.nodes_created += 1;
                            g.add_edge(x, y, role);
                            g.add_concept(y, (**filler).clone());
                            return Ok(true);
                        }
                    }
                    Concept::AtLeast(n, role) => {
                        if *n == 0 {
                            continue;
                        }
                        let ys = g.neighbours(x, role, &self.ctx.hierarchy);
                        if !has_n_pairwise_distinct(g, &ys, *n as usize) {
                            self.stats.rule_applications += 1;
                            let mut created = Vec::with_capacity(*n as usize);
                            for _ in 0..*n {
                                let y = g.new_blockable(x);
                                self.stats.nodes_created += 1;
                                g.add_edge(x, y, role);
                                created.push(y);
                            }
                            for (i, &yi) in created.iter().enumerate() {
                                for &yj in created.iter().skip(i + 1) {
                                    // Fresh nodes are never pre-distinct.
                                    let _ = g.set_distinct(yi, yj);
                                }
                            }
                            return Ok(true);
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(false)
    }
}

/// Is the concept *syntactically refuted* at the node — `⊥`, a literal
/// whose complement is present, or a conjunction with a refuted conjunct?
/// Used by BCP; sound because adding the concept would clash immediately.
fn definitely_false(g: &CompletionGraph, x: NodeId, c: &Concept) -> bool {
    match c {
        Concept::Bottom => true,
        Concept::Atomic(a) => g.has_concept(x, &Concept::Atomic(a.clone()).not()),
        Concept::Not(inner) => match &**inner {
            Concept::Atomic(_) => g.has_concept(x, inner),
            Concept::Top => true,
            _ => false,
        },
        Concept::And(l, r) => definitely_false(g, x, l) || definitely_false(g, x, r),
        _ => false,
    }
}

/// Merge-direction preference for the `≤`-rule: never merge a root into a
/// blockable node; prefer keeping `x`'s predecessor; otherwise keep the
/// older node.
fn merge_direction(g: &CompletionGraph, x: NodeId, a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    let (an, bn) = (g.node(a), g.node(b));
    match (an.is_root, bn.is_root) {
        (true, false) => (b, a),
        (false, true) => (a, b),
        _ => {
            // Prefer the one that is x's tree parent as the target.
            let x_parent = g.node(x).parent.map(|p| g.resolve(p));
            if x_parent == Some(a) {
                (b, a)
            } else if x_parent == Some(b) {
                (a, b)
            } else if a < b {
                (b, a)
            } else {
                (a, b)
            }
        }
    }
}

/// Is there a subset of `n` pairwise-distinct (w.r.t. the `≠` relation)
/// nodes among `ys`? Small backtracking search — `n` is a cardinality from
/// the ontology and tiny in practice.
fn has_n_pairwise_distinct(g: &CompletionGraph, ys: &[NodeId], n: usize) -> bool {
    if n == 0 {
        return true;
    }
    if ys.len() < n {
        return false;
    }
    fn go(g: &CompletionGraph, ys: &[NodeId], chosen: &mut Vec<NodeId>, n: usize) -> bool {
        if chosen.len() == n {
            return true;
        }
        for (i, &y) in ys.iter().enumerate() {
            if chosen.iter().all(|&c| g.are_distinct(c, y)) {
                chosen.push(y);
                if go(g, &ys[i + 1..], chosen, n) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }
    go(g, ys, &mut Vec::new(), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_distinct_subset_search() {
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        let c = g.new_root();
        g.set_distinct(a, b);
        g.set_distinct(b, c);
        // a,c not distinct: max pairwise-distinct subset is 2.
        assert!(has_n_pairwise_distinct(&g, &[a, b, c], 2));
        assert!(!has_n_pairwise_distinct(&g, &[a, b, c], 3));
        g.set_distinct(a, c);
        assert!(has_n_pairwise_distinct(&g, &[a, b, c], 3));
    }

    #[test]
    fn merge_direction_prefers_roots() {
        let mut g = CompletionGraph::new();
        let root = g.new_root();
        let x = g.new_blockable(root);
        let t = g.new_blockable(x);
        assert_eq!(merge_direction(&g, x, root, t), (t, root));
        assert_eq!(merge_direction(&g, x, t, root), (t, root));
        // Both blockable: parent of x (root is not blockable here, use
        // two tree nodes).
        let t2 = g.new_blockable(x);
        let (src, dst) = merge_direction(&g, t, x, t2);
        // x is t's parent → keep x.
        assert_eq!((src, dst), (t2, x));
    }
}
