//! Reasoner configuration and resource-limit errors.

use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Blocking strategies (an ablation axis — see DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingStrategy {
    /// Pairwise (dynamic double) blocking — sound and complete for SHOIN
    /// with inverse roles. The default.
    Pairwise,
    /// Subset blocking — cheaper but incomplete in the presence of inverse
    /// roles / number restrictions; exposed only for the ablation bench.
    Subset,
    /// Equality blocking — label equality on the node alone; complete for
    /// SHN without inverses, used by the ablation bench.
    Equality,
}

/// How the nondeterministic search backtracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Clone the whole completion graph per tried alternative and
    /// backtrack chronologically. Simple and battle-tested; kept as the
    /// differential-testing oracle for the trail engine.
    Snapshot,
    /// Record every graph mutation on an undo trail, tag facts with
    /// dependency sets of branch-point ids, and on a clash backjump
    /// straight past branch points that are provably irrelevant,
    /// undoing in O(changes) instead of cloning. The default.
    Trail,
}

/// Tunable parameters of the tableau search.
#[derive(Debug, Clone)]
pub struct Config {
    /// Hard cap on completion-graph nodes before giving up.
    pub max_nodes: usize,
    /// Hard cap on rule applications (across branches) before giving up.
    pub max_rule_applications: u64,
    /// Blocking strategy (ablation knob; keep `Pairwise` for correctness).
    pub blocking: BlockingStrategy,
    /// Semantic branching: on the `⊔`-rule's second branch, also assert
    /// the NNF complement of the first disjunct, so the two branches
    /// explore disjoint parts of the search space (ablation knob; the
    /// measurement justifying the `true` default is EXPERIMENTS.md §X5).
    pub semantic_branching: bool,
    /// Backtracking mechanism: trail + dependency-directed backjumping
    /// (default) or whole-graph snapshots (the differential oracle).
    pub search: SearchStrategy,
    /// Absorption / lazy unfolding of `A ⊑ C` axioms with atomic left-hand
    /// sides (ablation knob; `true` is the optimized default).
    pub absorption: bool,
    /// Model-based entailment pruning: cache one completed model of the
    /// base KB and use it to refute candidate entailments without search
    /// (sound — see `engine` module docs; `true` is the optimized
    /// default, `false` forces every query through the tableau).
    pub model_pruning: bool,
    /// Signature-based module scoping: before each query, extract the
    /// syntactic module of the query signature (`shoin4::dataflow`) and
    /// run the tableau on that subset only. Off by default — it is a
    /// four-valued-level optimization, honored by `shoin4::Reasoner4`
    /// (the classical engine itself never reads it); verdict parity
    /// with the unscoped engine is property-tested in
    /// `tests/module_parity.rs`.
    pub module_scoping: bool,
    /// Consequence-driven Horn fast path: route atomic-goal queries
    /// whose extracted module has a Horn classical image through a
    /// datalog-style saturation engine (`shoin4::horn`) instead of the
    /// tableau. On by default — verdicts are bit-identical (the parity
    /// contract is `tests/horn_parity.rs`); like `module_scoping` it is
    /// a four-valued-level switch the classical engine never reads.
    /// `--no-horn` / setting this `false` forces every query through
    /// the tableau for A/B runs.
    pub horn_path: bool,
    /// Wall-clock budget for one search. `None` means unbounded. The
    /// node/rule caps bound *space* and *counted work*, but a diverging
    /// nominal search (NN-rule with inverse roles) grows slowly enough
    /// that those caps are ineffective in practice; the time budget is
    /// the backstop that guarantees every call returns.
    pub time_budget: Option<Duration>,
    /// External cancellation token, polled at every [`check_limits`]
    /// site alongside the deadline. Setting the flag makes every search
    /// running under this config return [`ReasonerError::Cancelled`]
    /// promptly — this is how a serving layer revokes a request without
    /// waiting out the full time budget. Callers that share one engine
    /// across requests install a *per-request* token with
    /// [`crate::interrupt::install`] instead, which is checked at the
    /// same sites.
    ///
    /// [`check_limits`]: crate::rules
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_nodes: 100_000,
            max_rule_applications: 5_000_000,
            blocking: BlockingStrategy::Pairwise,
            semantic_branching: true,
            search: SearchStrategy::Trail,
            absorption: true,
            model_pruning: true,
            module_scoping: false,
            horn_path: true,
            time_budget: Some(Duration::from_secs(30)),
            cancel: None,
        }
    }
}

/// Failure modes of the reasoner that are *not* answers: the search was cut
/// short, so neither "satisfiable" nor "unsatisfiable" may be concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReasonerError {
    /// The node cap was exceeded.
    NodeLimit(usize),
    /// The rule-application cap was exceeded.
    RuleLimit(u64),
    /// The wall-clock budget was exhausted.
    TimeBudget(Duration),
    /// An external cancellation token ([`Config::cancel`] or a
    /// thread-local [`crate::interrupt`] token) was raised mid-search.
    Cancelled,
}

impl fmt::Display for ReasonerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReasonerError::NodeLimit(n) => {
                write!(f, "tableau exceeded the node limit of {n}")
            }
            ReasonerError::RuleLimit(n) => {
                write!(f, "tableau exceeded the rule-application limit of {n}")
            }
            ReasonerError::TimeBudget(d) => {
                write!(f, "tableau exceeded its time budget of {d:?}")
            }
            ReasonerError::Cancelled => {
                write!(f, "tableau search cancelled by an external token")
            }
        }
    }
}

impl std::error::Error for ReasonerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_safe() {
        let c = Config::default();
        assert_eq!(c.blocking, BlockingStrategy::Pairwise);
        assert!(c.absorption);
        // Both search optimizations are on by default; the snapshot
        // engine and non-semantic branching remain as ablation knobs
        // (measured in EXPERIMENTS.md §X5 / BENCH_backjump.json).
        assert!(c.semantic_branching);
        assert_eq!(c.search, SearchStrategy::Trail);
        // Module scoping is opt-in: the default pipeline stays
        // byte-identical to the unscoped engine.
        assert!(!c.module_scoping);
        // The Horn fast path is on by default — it is verdict-exact
        // (parity contract in `tests/horn_parity.rs`) and falls back to
        // the tableau on any non-Horn module.
        assert!(c.horn_path);
        assert!(c.max_nodes > 0);
    }

    #[test]
    fn errors_display() {
        assert!(ReasonerError::NodeLimit(5)
            .to_string()
            .contains("node limit"));
        assert!(ReasonerError::RuleLimit(7)
            .to_string()
            .contains("rule-application limit"));
        assert!(ReasonerError::TimeBudget(Duration::from_secs(1))
            .to_string()
            .contains("time budget"));
        assert!(ReasonerError::Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn cancel_token_is_shared_not_cloned() {
        let flag = Arc::new(AtomicBool::new(false));
        let config = Config {
            cancel: Some(Arc::clone(&flag)),
            ..Config::default()
        };
        let copy = config.clone();
        flag.store(true, std::sync::atomic::Ordering::Relaxed);
        // Cloning the config clones the Arc, not the flag: both views
        // observe the raise.
        for c in [&config, &copy] {
            assert!(c
                .cancel
                .as_ref()
                .expect("token present")
                .load(std::sync::atomic::Ordering::Relaxed));
        }
    }
}
