//! Model extraction: turn a complete, clash-free completion graph into an
//! explicit finite structure.
//!
//! When the tableau stops with no clash and no blocking was needed, the
//! graph *is* a model (after closing role extensions under the role
//! hierarchy and transitivity). When blocking fired, the graph is a
//! finite *representation* of a possibly-infinite model — the extracted
//! structure then records `blocked_nodes > 0` and is not guaranteed to
//! satisfy the KB as a finite structure; callers (tests, debuggers) must
//! check that flag before treating it as a countermodel/witness.

use crate::blocking::is_directly_blocked;
use crate::config::BlockingStrategy;
use crate::graph::CompletionGraph;
use crate::node::NodeId;
use dl::kb::RoleHierarchy;
use dl::name::{ConceptName, IndividualName, RoleName};
use dl::Concept;
use std::collections::{BTreeMap, BTreeSet};

/// An explicit structure extracted from a completion graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtractedModel {
    /// Domain elements (live node ids).
    pub elements: BTreeSet<NodeId>,
    /// Atomic concept extensions (from node labels).
    pub concepts: BTreeMap<ConceptName, BTreeSet<NodeId>>,
    /// Role extensions, closed under the role hierarchy and declared
    /// transitivity.
    pub roles: BTreeMap<RoleName, BTreeSet<(NodeId, NodeId)>>,
    /// Where each ABox individual landed.
    pub individuals: BTreeMap<IndividualName, NodeId>,
    /// Number of directly blocked nodes in the source graph; `0` means
    /// the structure is a genuine finite model of the expanded KB.
    pub blocked_nodes: usize,
}

impl ExtractedModel {
    /// Is the extension of `A` non-empty?
    pub fn concept_nonempty(&self, a: &ConceptName) -> bool {
        self.concepts.get(a).is_some_and(|s| !s.is_empty())
    }

    /// The element an individual denotes, if present.
    pub fn individual(&self, o: &IndividualName) -> Option<NodeId> {
        self.individuals.get(o).copied()
    }
}

/// Extract the structure from a (complete, clash-free) graph.
pub fn extract(
    g: &CompletionGraph,
    hierarchy: &RoleHierarchy,
    strategy: BlockingStrategy,
) -> ExtractedModel {
    let mut model = ExtractedModel::default();
    for x in g.live_nodes() {
        model.elements.insert(x);
        let node = g.node(x);
        for c in &node.label {
            if let Concept::Atomic(a) = c {
                model.concepts.entry(a.clone()).or_default().insert(x);
            }
        }
        for o in &node.nominals {
            model.individuals.insert(o.clone(), x);
        }
        if node.is_blockable() && is_directly_blocked(g, x, strategy) {
            model.blocked_nodes += 1;
        }
    }
    // Role extensions: each stored edge contributes to every (named)
    // super-role; inverse super-roles contribute the swapped pair.
    for x in g.live_nodes() {
        for role_name in collect_role_names(g) {
            let expr = dl::RoleExpr::named(role_name.clone());
            for y in g.neighbours(x, &expr, hierarchy) {
                model
                    .roles
                    .entry(role_name.clone())
                    .or_default()
                    .insert((x, y));
            }
        }
    }
    // Close transitive roles.
    let names: Vec<RoleName> = model.roles.keys().cloned().collect();
    for r in names {
        if hierarchy.is_transitive(&dl::RoleExpr::named(r.clone())) {
            let ext = model.roles.get_mut(&r).expect("present");
            transitive_close(ext);
        }
    }
    model
}

/// All role names mentioned on edges of the graph, via the neighbour API:
/// we reconstruct from the super-closure of edge labels, which the graph
/// does not expose directly — so collect via a probe over known names.
/// (The graph stores labels privately; we recover names through the
/// hierarchy of every edge endpoint pair by probing its `connecting`
/// labels.)
fn collect_role_names(g: &CompletionGraph) -> BTreeSet<RoleName> {
    let mut names = BTreeSet::new();
    let nodes: Vec<NodeId> = g.live_nodes().collect();
    for &x in &nodes {
        for &y in &nodes {
            for expr in g.connecting_label(x, y) {
                names.insert(expr.name().clone());
            }
        }
    }
    names
}

fn transitive_close(ext: &mut BTreeSet<(NodeId, NodeId)>) {
    loop {
        let mut additions = Vec::new();
        for &(x, y) in ext.iter() {
            for &(y2, z) in ext.iter() {
                if y == y2 && !ext.contains(&(x, z)) {
                    additions.push((x, z));
                }
            }
        }
        if additions.is_empty() {
            break;
        }
        ext.extend(additions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::kb::KnowledgeBase;
    use dl::{Axiom, RoleExpr};

    #[test]
    fn extraction_collects_labels_edges_and_individuals() {
        let kb = KnowledgeBase::from_axioms([
            Axiom::RoleInclusion(RoleExpr::named("p"), RoleExpr::named("q")),
            Axiom::Transitive(RoleName::new("q")),
        ]);
        let h = kb.role_hierarchy();
        let mut g = CompletionGraph::new();
        let a = g.new_root();
        let b = g.new_root();
        let c = g.new_root();
        g.set_nominal_node(IndividualName::new("a"), a);
        g.add_concept(a, Concept::atomic("A"));
        g.add_edge(a, b, &RoleExpr::named("p"));
        g.add_edge(b, c, &RoleExpr::named("q"));
        let m = extract(&g, &h, BlockingStrategy::Pairwise);
        assert_eq!(m.elements.len(), 3);
        assert!(m.concepts[&ConceptName::new("A")].contains(&a));
        assert_eq!(m.individual(&IndividualName::new("a")), Some(a));
        // p ⊑ q, Trans(q): q must contain (a,b),(b,c),(a,c).
        let q = &m.roles[&RoleName::new("q")];
        assert!(q.contains(&(a, b)) && q.contains(&(b, c)) && q.contains(&(a, c)));
        // p itself only has (a,b).
        assert_eq!(m.roles[&RoleName::new("p")].len(), 1);
        assert_eq!(m.blocked_nodes, 0);
    }

    #[test]
    fn blocked_nodes_are_counted() {
        let kb = KnowledgeBase::new();
        let h = kb.role_hierarchy();
        let mut g = CompletionGraph::new();
        let root = g.new_root();
        let t1 = g.new_blockable(root);
        let t2 = g.new_blockable(t1);
        let t3 = g.new_blockable(t2);
        for (f, t) in [(root, t1), (t1, t2), (t2, t3)] {
            g.add_edge(f, t, &RoleExpr::named("r"));
        }
        for n in [t1, t2, t3] {
            g.add_concept(n, Concept::atomic("A"));
        }
        let m = extract(&g, &h, BlockingStrategy::Pairwise);
        assert_eq!(m.blocked_nodes, 1); // t3 directly blocked by t2
    }

    #[test]
    fn transitive_closure_helper() {
        let mut s: BTreeSet<(NodeId, NodeId)> = [
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(2)),
            (NodeId(2), NodeId(3)),
        ]
        .into_iter()
        .collect();
        transitive_close(&mut s);
        assert!(s.contains(&(NodeId(0), NodeId(3))));
        assert_eq!(s.len(), 6);
    }
}
