//! A classical tableau reasoner for SHOIN(D) — the two-valued execution
//! engine that the SHOIN(D)4 reduction of the paper targets.
//!
//! The calculus is the standard completion-graph tableau for
//! `SHOIN(D)`: NNF preprocessing, TBox internalization with optional
//! absorption (lazy unfolding), role hierarchies closed under inverses,
//! transitive-role `∀₊` propagation, unqualified number restrictions with
//! merge branching, nominal merging (`o`-rule) with an `NN`-rule for the
//! nominal/inverse/number interaction, pairwise blocking, and a complete
//! concrete-domain oracle for the built-in datatypes.
//!
//! # Entry points
//!
//! [`Reasoner`] answers the four standard questions, all reduced to KB
//! satisfiability in the usual way:
//!
//! * [`Reasoner::is_consistent`] — KB satisfiability;
//! * [`Reasoner::is_concept_satisfiable`] — `C` satisfiable w.r.t. the KB;
//! * [`Reasoner::is_subsumed_by`] — `KB ⊨ C ⊑ D` iff `C ⊓ ¬D` unsatisfiable;
//! * [`Reasoner::is_instance_of`] — `KB ⊨ a:C` iff `KB ∪ {a:¬C}` inconsistent.
//!
//! ```
//! use dl::parser::parse_kb;
//! use tableau::Reasoner;
//!
//! let kb = parse_kb(
//!     "Penguin SubClassOf Bird
//!      Penguin SubClassOf not Fly
//!      Bird SubClassOf Fly
//!      tweety : Penguin",
//! ).unwrap();
//! let mut r = Reasoner::new(&kb);
//! assert!(!r.is_consistent().unwrap()); // classic contradiction
//! ```

//! For batch workloads, [`engine::QueryEngine`] is the same reasoner with
//! `&self` services and interior-mutability caches — share one engine
//! across `std::thread::scope` workers to fan a survey out.

pub mod blocking;
pub mod clash;
pub mod config;
pub mod datatype_oracle;
pub mod engine;
pub mod graph;
pub mod interrupt;
pub mod model;
pub mod node;
pub mod reasoner;
pub mod rules;
pub mod stats;
pub mod trail;

pub use clash::{Clash, ClashInfo};
pub use config::{Config, ReasonerError, SearchStrategy};
pub use engine::{BaseModel, QueryEngine};
pub use reasoner::Reasoner;
pub use stats::Stats;
pub use trail::DepSet;
