//! Property coverage for the Horn fragment classifier (`shoin4::horn`).
//!
//! The router caches one compiled program per extracted module, so two
//! invariances carry the whole fast path:
//!
//! 1. **Axiom-order invariance.** Horn-or-not is a property of the
//!    *set* of classical images, and module extraction is a least
//!    fixpoint — so permuting the KB's axiom list must change neither
//!    the classification of any query module nor, when the module is
//!    Horn, a single saturation verdict.
//! 2. **Re-extraction stability.** A module's closed signature is a
//!    fixpoint of the extractor: re-extracting with that signature as
//!    the seed must reproduce the same axiom set, classification and
//!    verdicts. Additionally, when the *whole* KB compiles as Horn,
//!    each query-module program must agree with the full-KB program on
//!    its own goals (module extraction loses no Horn consequences).
//!
//! These complement the differential suite in `tests/horn_parity.rs`,
//! which checks the routed reasoner against the tableau; here we pin
//! the classifier and saturation engine directly, below the router.

use dl::name::{ConceptName, IndividualName};
use dl::Concept;
use ontogen::random::{random_kb4, RandomParams};
use proptest::prelude::*;
use shoin4::dataflow::{classical_concept_atoms, ModuleExtractor, SigAtom};
use shoin4::horn::{compile, HornProgram};
use shoin4::KnowledgeBase4;
use std::collections::BTreeSet;

const N_CONCEPTS: usize = 4;
const N_INDIVIDUALS: usize = 3;

fn params(seed: u64) -> RandomParams {
    RandomParams {
        n_concepts: N_CONCEPTS,
        n_roles: 2,
        n_individuals: N_INDIVIDUALS,
        n_tbox: 5,
        n_abox: 6,
        max_depth: 1,
        number_restrictions: false,
        inverse_roles: true,
        seed,
    }
}

/// splitmix64 — a tiny deterministic PRNG so the permutation is derived
/// from the proptest case alone (no extra dependency on `rand`).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn permuted(kb: &KnowledgeBase4, perm_seed: u64) -> KnowledgeBase4 {
    let mut axioms: Vec<_> = kb.axioms().to_vec();
    let mut state = perm_seed ^ 0xD1B5_4A32_D192_ED03;
    // Fisher–Yates over the axiom list.
    for i in (1..axioms.len()).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        axioms.swap(i, j);
    }
    KnowledgeBase4::from_axioms(axioms)
}

/// Every transformed atomic goal the generated signature can mention:
/// `C0+`, `C0-`, … (the Horn engine answers queries about the classical
/// image, where four-valued `A` splits into `A+`/`A-`).
fn goals() -> Vec<ConceptName> {
    (0..N_CONCEPTS)
        .flat_map(|i| {
            [
                ConceptName::new(format!("C{i}+")),
                ConceptName::new(format!("C{i}-")),
            ]
        })
        .collect()
}

fn individuals() -> Vec<IndividualName> {
    (0..N_INDIVIDUALS)
        .map(|i| IndividualName::new(format!("i{i}")))
        .collect()
}

/// The instance-query seed the router builds: classical atoms of the
/// transformed goal concept plus the queried individual.
fn instance_seed(goal: &ConceptName, a: &IndividualName) -> BTreeSet<SigAtom> {
    let mut seed = BTreeSet::new();
    classical_concept_atoms(&Concept::Atomic(goal.clone()), &mut seed);
    seed.insert(SigAtom::Individual(a.clone()));
    seed
}

/// All saturation/subsumption answers of a program over the fixed
/// signature, as one comparable table.
fn verdict_table(p: &HornProgram) -> Vec<bool> {
    let goals = goals();
    let inds = individuals();
    let mut table = Vec::new();
    for g in &goals {
        for a in &inds {
            table.push(p.is_instance(a, g).holds);
        }
        for h in &goals {
            table.push(p.subsumes(g, h).holds);
        }
    }
    table
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Permuting the axiom list changes neither any query module's Horn
    /// classification nor any Horn verdict.
    #[test]
    fn horn_verdicts_survive_axiom_reordering(seed in 0u64..512, perm_seed in 0u64..512) {
        let kb = random_kb4(&params(seed), (0.3, 0.4, 0.3));
        let shuffled = permuted(&kb, perm_seed);
        let ex_a = ModuleExtractor::new(&kb);
        let ex_b = ModuleExtractor::new(&shuffled);
        for goal in goals() {
            for a in individuals() {
                let seed_sig = instance_seed(&goal, &a);
                let m_a = ex_a.extract(&seed_sig);
                let m_b = ex_b.extract(&seed_sig);
                let p_a = compile(m_a.axioms.iter().flat_map(|&i| ex_a.images(i)));
                let p_b = compile(m_b.axioms.iter().flat_map(|&i| ex_b.images(i)));
                prop_assert_eq!(
                    p_a.is_some(),
                    p_b.is_some(),
                    "classification flipped under reordering (goal {goal:?})"
                );
                if let (Some(p_a), Some(p_b)) = (p_a, p_b) {
                    prop_assert_eq!(p_a.clause_count(), p_b.clause_count());
                    prop_assert_eq!(verdict_table(&p_a), verdict_table(&p_b));
                }
            }
        }
    }

    /// Re-extracting with a module's own closed signature is a no-op:
    /// same axiom set, same classification, same verdicts.
    #[test]
    fn horn_verdicts_survive_module_reextraction(seed in 0u64..1024) {
        let kb = random_kb4(&params(seed), (0.3, 0.4, 0.3));
        let ex = ModuleExtractor::new(&kb);
        for goal in goals() {
            for a in individuals() {
                let m = ex.extract(&instance_seed(&goal, &a));
                let m2 = ex.extract(&m.signature);
                prop_assert_eq!(
                    &m.axioms, &m2.axioms,
                    "closed signature is not an extraction fixpoint"
                );
                let p = compile(m.axioms.iter().flat_map(|&i| ex.images(i)));
                let p2 = compile(m2.axioms.iter().flat_map(|&i| ex.images(i)));
                prop_assert_eq!(p.is_some(), p2.is_some());
                if let (Some(p), Some(p2)) = (p, p2) {
                    prop_assert_eq!(verdict_table(&p), verdict_table(&p2));
                }
            }
        }
    }

    /// When the whole KB is Horn, each query module's program agrees
    /// with the full-KB program on that module's own goals — module
    /// extraction drops no Horn consequences.
    #[test]
    fn query_modules_preserve_full_kb_horn_verdicts(seed in 0u64..1024) {
        let kb = random_kb4(&params(seed), (0.3, 0.4, 0.3));
        let ex = ModuleExtractor::new(&kb);
        let all: Vec<_> = (0..kb.len()).flat_map(|i| ex.images(i).to_vec()).collect();
        let Some(full) = compile(all.iter()) else {
            // Non-Horn KBs are covered by the routing/parity suites.
            return Ok(());
        };
        for goal in goals() {
            for a in individuals() {
                let m = ex.extract(&instance_seed(&goal, &a));
                let p = compile(m.axioms.iter().flat_map(|&i| ex.images(i)))
                    .expect("a module of a Horn KB is Horn");
                prop_assert_eq!(
                    p.is_instance(&a, &goal).holds,
                    full.is_instance(&a, &goal).holds,
                    "module verdict diverged from full KB (goal {goal:?}, ind {a:?})"
                );
            }
        }
    }
}
