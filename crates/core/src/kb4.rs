//! SHOIN(D)4 knowledge bases: the axioms of Table 3.
//!
//! Fact axioms are those of SHOIN(D); inclusion axioms carry an
//! [`InclusionKind`]. A classical KB embeds via
//! [`KnowledgeBase4::from_classical`] (classical `⊑` reads as internal
//! inclusion, the paper's correspondence in Example 2).

use crate::inclusion::InclusionKind;
use dl::axiom::{Axiom, RoleExpr};
use dl::datatype::DataValue;
use dl::kb::{KnowledgeBase, Signature};
use dl::name::{DataRoleName, IndividualName, RoleName};
use dl::Concept;
use std::fmt;

/// A SHOIN(D)4 axiom.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axiom4 {
    /// Concept inclusion `C₁ ↦/⊏/→ C₂`.
    ConceptInclusion(InclusionKind, Concept, Concept),
    /// Object role inclusion `R₁ ↦/⊏/→ R₂`.
    RoleInclusion(InclusionKind, RoleExpr, RoleExpr),
    /// Datatype role inclusion `U₁ ↦/⊏/→ U₂`.
    DataRoleInclusion(InclusionKind, DataRoleName, DataRoleName),
    /// Object role transitivity `Trans(R)`.
    Transitive(RoleName),
    /// Individual inclusion `a : C` (asserts membership *information*:
    /// `a ∈ proj⁺(C)`).
    ConceptAssertion(IndividualName, Concept),
    /// Role assertion `R(a, b)` (`(a,b) ∈ proj⁺(R)`).
    RoleAssertion(RoleName, IndividualName, IndividualName),
    /// Negative role assertion `¬R(a, b)` (`(a,b) ∈ proj⁻(R)`) — the
    /// four-valued setting makes negative role information first-class.
    NegativeRoleAssertion(RoleName, IndividualName, IndividualName),
    /// Datatype role assertion `U(a, v)`.
    DataAssertion(DataRoleName, IndividualName, DataValue),
    /// Individual equality `a = b`.
    SameIndividual(IndividualName, IndividualName),
    /// Individual inequality `a ≠ b`.
    DifferentIndividuals(IndividualName, IndividualName),
}

impl Axiom4 {
    /// Is this a terminological axiom?
    pub fn is_tbox(&self) -> bool {
        matches!(
            self,
            Axiom4::ConceptInclusion(..)
                | Axiom4::RoleInclusion(..)
                | Axiom4::DataRoleInclusion(..)
                | Axiom4::Transitive(..)
        )
    }

    /// Is this an assertional axiom?
    pub fn is_abox(&self) -> bool {
        !self.is_tbox()
    }

    /// Structural size (for the polynomial-transformation measurements).
    pub fn size(&self) -> usize {
        match self {
            Axiom4::ConceptInclusion(_, c, d) => 1 + c.size() + d.size(),
            Axiom4::ConceptAssertion(_, c) => 1 + c.size(),
            _ => 1,
        }
    }

    /// Lift a classical axiom, reading `⊑` as the given inclusion kind.
    pub fn from_classical(ax: &Axiom, kind: InclusionKind) -> Axiom4 {
        match ax {
            Axiom::ConceptInclusion(c, d) => Axiom4::ConceptInclusion(kind, c.clone(), d.clone()),
            Axiom::RoleInclusion(r, s) => Axiom4::RoleInclusion(kind, r.clone(), s.clone()),
            Axiom::DataRoleInclusion(u, v) => Axiom4::DataRoleInclusion(kind, u.clone(), v.clone()),
            Axiom::Transitive(r) => Axiom4::Transitive(r.clone()),
            Axiom::ConceptAssertion(a, c) => Axiom4::ConceptAssertion(a.clone(), c.clone()),
            Axiom::RoleAssertion(r, a, b) => Axiom4::RoleAssertion(r.clone(), a.clone(), b.clone()),
            Axiom::DataAssertion(u, a, v) => Axiom4::DataAssertion(u.clone(), a.clone(), v.clone()),
            Axiom::SameIndividual(a, b) => Axiom4::SameIndividual(a.clone(), b.clone()),
            Axiom::DifferentIndividuals(a, b) => Axiom4::DifferentIndividuals(a.clone(), b.clone()),
        }
    }
}

impl fmt::Display for Axiom4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axiom4::ConceptInclusion(k, c, d) => write!(f, "{c} {k} {d}"),
            Axiom4::RoleInclusion(k, r, s) => write!(f, "{r} {k} {s}"),
            Axiom4::DataRoleInclusion(k, u, v) => write!(f, "{u} {k} {v}"),
            Axiom4::Transitive(r) => write!(f, "Trans({r})"),
            Axiom4::ConceptAssertion(a, c) => write!(f, "{a} : {c}"),
            Axiom4::RoleAssertion(r, a, b) => write!(f, "{r}({a}, {b})"),
            Axiom4::NegativeRoleAssertion(r, a, b) => write!(f, "¬{r}({a}, {b})"),
            Axiom4::DataAssertion(u, a, v) => write!(f, "{u}({a}, {v})"),
            Axiom4::SameIndividual(a, b) => write!(f, "{a} = {b}"),
            Axiom4::DifferentIndividuals(a, b) => write!(f, "{a} ≠ {b}"),
        }
    }
}

/// A SHOIN(D)4 knowledge base.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KnowledgeBase4 {
    axioms: Vec<Axiom4>,
}

impl KnowledgeBase4 {
    /// An empty KB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from axioms.
    pub fn from_axioms(axioms: impl IntoIterator<Item = Axiom4>) -> Self {
        KnowledgeBase4 {
            axioms: axioms.into_iter().collect(),
        }
    }

    /// Embed a classical KB, reading every inclusion as `kind`.
    pub fn from_classical(kb: &KnowledgeBase, kind: InclusionKind) -> Self {
        KnowledgeBase4 {
            axioms: kb
                .axioms()
                .iter()
                .map(|ax| Axiom4::from_classical(ax, kind))
                .collect(),
        }
    }

    /// Add one axiom.
    pub fn add(&mut self, axiom: Axiom4) {
        self.axioms.push(axiom);
    }

    /// All axioms in insertion order.
    pub fn axioms(&self) -> &[Axiom4] {
        &self.axioms
    }

    /// Number of axioms.
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// Is the KB empty?
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }

    /// Terminological axioms.
    pub fn tbox(&self) -> impl Iterator<Item = &Axiom4> {
        self.axioms.iter().filter(|a| a.is_tbox())
    }

    /// Assertional axioms.
    pub fn abox(&self) -> impl Iterator<Item = &Axiom4> {
        self.axioms.iter().filter(|a| a.is_abox())
    }

    /// Total structural size.
    pub fn size(&self) -> usize {
        self.axioms.iter().map(Axiom4::size).sum()
    }

    /// The names mentioned, by kind.
    pub fn signature(&self) -> Signature {
        let mut sig = Signature::default();
        for ax in &self.axioms {
            match ax {
                Axiom4::ConceptInclusion(_, c, d) => {
                    sig.extend_from_concept(c);
                    sig.extend_from_concept(d);
                }
                Axiom4::RoleInclusion(_, r, s) => {
                    sig.roles.insert(r.name().clone());
                    sig.roles.insert(s.name().clone());
                }
                Axiom4::DataRoleInclusion(_, u, v) => {
                    sig.data_roles.insert(u.clone());
                    sig.data_roles.insert(v.clone());
                }
                Axiom4::Transitive(r) => {
                    sig.roles.insert(r.clone());
                }
                Axiom4::ConceptAssertion(a, c) => {
                    sig.individuals.insert(a.clone());
                    sig.extend_from_concept(c);
                }
                Axiom4::RoleAssertion(r, a, b) | Axiom4::NegativeRoleAssertion(r, a, b) => {
                    sig.roles.insert(r.clone());
                    sig.individuals.insert(a.clone());
                    sig.individuals.insert(b.clone());
                }
                Axiom4::DataAssertion(u, a, _) => {
                    sig.data_roles.insert(u.clone());
                    sig.individuals.insert(a.clone());
                }
                Axiom4::SameIndividual(a, b) | Axiom4::DifferentIndividuals(a, b) => {
                    sig.individuals.insert(a.clone());
                    sig.individuals.insert(b.clone());
                }
            }
        }
        sig
    }
}

impl FromIterator<Axiom4> for KnowledgeBase4 {
    fn from_iter<I: IntoIterator<Item = Axiom4>>(iter: I) -> Self {
        KnowledgeBase4::from_axioms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::parser::parse_kb;

    #[test]
    fn classical_embedding_maps_subclass_to_internal() {
        let kb = parse_kb("A SubClassOf B\na : A").unwrap();
        let kb4 = KnowledgeBase4::from_classical(&kb, InclusionKind::Internal);
        assert_eq!(kb4.len(), 2);
        assert!(matches!(
            &kb4.axioms()[0],
            Axiom4::ConceptInclusion(InclusionKind::Internal, ..)
        ));
        assert!(matches!(&kb4.axioms()[1], Axiom4::ConceptAssertion(..)));
    }

    #[test]
    fn tbox_abox_partition() {
        let kb4 = KnowledgeBase4::from_axioms([
            Axiom4::ConceptInclusion(
                InclusionKind::Material,
                Concept::atomic("Bird"),
                Concept::atomic("Fly"),
            ),
            Axiom4::Transitive(RoleName::new("anc")),
            Axiom4::ConceptAssertion(IndividualName::new("t"), Concept::atomic("Bird")),
            Axiom4::NegativeRoleAssertion(
                RoleName::new("r"),
                IndividualName::new("a"),
                IndividualName::new("b"),
            ),
        ]);
        assert_eq!(kb4.tbox().count(), 2);
        assert_eq!(kb4.abox().count(), 2);
    }

    #[test]
    fn signature_includes_negative_assertions() {
        let kb4 = KnowledgeBase4::from_axioms([Axiom4::NegativeRoleAssertion(
            RoleName::new("r"),
            IndividualName::new("a"),
            IndividualName::new("b"),
        )]);
        let sig = kb4.signature();
        assert!(sig.roles.contains(&RoleName::new("r")));
        assert_eq!(sig.individuals.len(), 2);
    }

    #[test]
    fn display_uses_paper_symbols() {
        let ax = Axiom4::ConceptInclusion(
            InclusionKind::Material,
            Concept::atomic("Bird"),
            Concept::atomic("Fly"),
        );
        assert_eq!(ax.to_string(), "Bird ↦ Fly");
        let ax = Axiom4::NegativeRoleAssertion(
            RoleName::new("r"),
            IndividualName::new("a"),
            IndividualName::new("b"),
        );
        assert_eq!(ax.to_string(), "¬r(a, b)");
    }

    #[test]
    fn size_counts_concepts() {
        let ax = Axiom4::ConceptInclusion(
            InclusionKind::Strong,
            Concept::atomic("A").and(Concept::atomic("B")),
            Concept::atomic("C"),
        );
        assert_eq!(ax.size(), 5);
    }
}
