//! Concurrency-friendly cache primitives shared by the reasoning layer.
//!
//! Two concerns live here:
//!
//! * [`ShardedMap`] — a hash map split across independently locked
//!   shards with a read-mostly (`RwLock`) path, so parallel batch
//!   queries (`--jobs`) stop serializing on one global cache mutex.
//!   Hit/miss counts are tracked with relaxed atomics and surfaced
//!   through [`tableau::Stats`] by the owning reasoner.
//! * Poison recovery — every cache in this crate is *best-effort*
//!   memoization of deterministic computations, so a worker thread that
//!   panicked mid-insert cannot leave the map logically corrupt (at
//!   worst an entry is missing). [`recover`], [`lock_mutex`] and the
//!   read/write helpers therefore take the guard out of a
//!   [`std::sync::PoisonError`] instead of propagating the poison as a
//!   process-wide panic cascade.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{LockResult, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of independently locked shards. A small power of two: enough
/// to keep a handful of batch workers off each other's locks without
/// bloating the struct.
const SHARDS: usize = 16;

/// Unwrap a lock acquisition, recovering the guard from a poisoned
/// lock. Caches hold best-effort memoized values, so observing the
/// state left by a panicked holder is safe.
pub fn recover<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Lock a mutex, recovering from poison (see [`recover`]).
pub fn lock_mutex<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    recover(mutex.lock())
}

/// Acquire a read guard, recovering from poison (see [`recover`]).
pub fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    recover(lock.read())
}

/// Acquire a write guard, recovering from poison (see [`recover`]).
pub fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    recover(lock.write())
}

/// A sharded `HashMap` with per-shard `RwLock`s and hit/miss counters.
///
/// Lookups take a read lock on one shard, so concurrent readers (the
/// common case for a warm entailment cache under `query_batch`) never
/// contend; writers lock only the shard that owns the key.
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> ShardedMap<K, V> {
    /// An empty map with the default shard count.
    pub fn new() -> Self {
        ShardedMap {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let h = self.hasher.hash_one(key);
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Look up `key`, counting the outcome as a hit or a miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let found = read_lock(self.shard(key)).get(key).cloned();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert or overwrite `key`.
    pub fn insert(&self, key: K, value: V) {
        write_lock(self.shard(&key)).insert(key, value);
    }

    /// Drop every entry for which `keep` returns false; returns the
    /// number of entries removed.
    pub fn retain(&self, mut keep: impl FnMut(&K, &V) -> bool) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut map = write_lock(shard);
            let before = map.len();
            map.retain(|k, v| keep(k, v));
            removed += before - map.len();
        }
        removed
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_lock(s).len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the map since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl<K: Eq + Hash, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_insert_and_counters() {
        let m: ShardedMap<u32, String> = ShardedMap::new();
        assert_eq!(m.get(&1), None);
        m.insert(1, "one".into());
        assert_eq!(m.get(&1).as_deref(), Some("one"));
        assert_eq!(m.hits(), 1);
        assert_eq!(m.misses(), 1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn retain_reports_removed_count() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        let removed = m.retain(|k, _| k % 2 == 0);
        assert_eq!(removed, 50);
        assert_eq!(m.len(), 50);
        assert_eq!(m.get(&2), Some(4));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn concurrent_readers_and_writers_agree() {
        let m: Arc<ShardedMap<u32, u32>> = Arc::new(ShardedMap::new());
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for i in 0..256u32 {
                        m.insert(t * 1000 + i, i);
                    }
                });
            }
        });
        assert_eq!(m.len(), 4 * 256);
        for t in 0..4u32 {
            assert_eq!(m.get(&(t * 1000 + 7)), Some(7));
        }
    }

    #[test]
    fn poisoned_mutex_recovers_instead_of_panicking() {
        let mutex = Arc::new(Mutex::new(41));
        let clone = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(mutex.is_poisoned());
        let mut guard = lock_mutex(&mutex);
        *guard += 1;
        assert_eq!(*guard, 42);
    }

    #[test]
    fn stress_mixed_readers_writers_and_retain() {
        // N writers and N readers hammer one map while a maintenance
        // thread runs retain() sweeps; the test asserts the final state
        // exactly and completes (no deadlock) under the per-shard locks.
        const THREADS: u32 = 4;
        const OPS: u32 = 2_000;
        let m: Arc<ShardedMap<u32, u32>> = Arc::new(ShardedMap::new());
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let writer = Arc::clone(&m);
                scope.spawn(move || {
                    for i in 0..OPS {
                        writer.insert(t * OPS + i, i);
                        if i % 7 == 0 {
                            // Re-read own writes under concurrent retain.
                            let _ = writer.get(&(t * OPS + i));
                        }
                    }
                });
                let reader = Arc::clone(&m);
                scope.spawn(move || {
                    for i in 0..OPS {
                        let _ = reader.get(&(t * OPS + i));
                        if i % 64 == 0 {
                            let _ = reader.len();
                        }
                    }
                });
            }
            let m = Arc::clone(&m);
            scope.spawn(move || {
                for _ in 0..16 {
                    // Drop odd values; writers re-insert concurrently.
                    m.retain(|_, v| v % 2 == 0);
                }
            });
        });
        // Quiesced: one final sweep leaves exactly the even values.
        m.retain(|_, v| v % 2 == 0);
        assert_eq!(m.len(), (THREADS * OPS) as usize / 2);
        for t in 0..THREADS {
            assert_eq!(m.get(&(t * OPS + 8)), Some(8));
            assert_eq!(m.get(&(t * OPS + 9)), None);
        }
    }

    /// Scripted-interleaving check for the per-shard locking. The CI
    /// miri job runs every test whose name contains `interleave`, so
    /// the round count scales down under the interpreter; natively the
    /// rounds sweep enough schedules that a torn read, a lost insert or
    /// a retain racing a writer would violate the per-round invariant.
    #[test]
    fn interleaved_insert_get_retain_rounds_hold_their_invariant() {
        const ROUNDS: u32 = if cfg!(miri) { 8 } else { 300 };
        let m: Arc<ShardedMap<u32, u32>> = Arc::new(ShardedMap::new());
        for round in 0..ROUNDS {
            // Each round uses a fresh key; both writers race to insert
            // the SAME value, the reader may observe the key before or
            // after, and the sweeper evicts every older round's key.
            let key = round;
            let value = round * 2;
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    let w = Arc::clone(&m);
                    scope.spawn(move || w.insert(key, value));
                }
                let r = Arc::clone(&m);
                scope.spawn(move || {
                    // Either the key is not yet visible or it already
                    // holds this round's value — never a stale one.
                    if let Some(v) = r.get(&key) {
                        assert_eq!(v, value, "round {round} read a torn/stale value");
                    }
                });
                let sweeper = Arc::clone(&m);
                scope.spawn(move || {
                    sweeper.retain(|&k, _| k == key);
                });
            });
            // All four critical sections joined: whatever the order,
            // the round's insert must have survived or been the only
            // eviction candidate the sweeper could NOT take.
            assert_eq!(m.get(&key), Some(value), "round {round} lost its insert");
        }
    }

    #[test]
    fn stress_concurrent_session_readers_and_writers() {
        // The serving layer's contract: a `RwLock<Session>` (one
        // registry tenant) stays consistent and deadlock-free under
        // concurrent query readers and mutation writers. Writers append
        // island-local assertions; readers run the full query pipeline
        // (told index, module caches, entailment cache) the whole time.
        use crate::incremental::Session;
        use crate::parser4::parse_kb4;
        use dl::name::IndividualName;
        use dl::Concept;
        use std::sync::RwLock;

        const WRITERS: usize = 4;
        const READERS: usize = 4;
        const OPS: usize = 40;
        let kb = parse_kb4(
            "A SubClassOf B
             B SubClassOf C
             x : A
             x : not C",
        )
        .expect("parse");
        let session = Arc::new(RwLock::new(Session::new(&kb, tableau::Config::default())));
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let session = Arc::clone(&session);
                scope.spawn(move || {
                    for i in 0..OPS {
                        let ax =
                            parse_kb4(&format!("w{w}n{i} : A")).expect("parse").axioms()[0].clone();
                        write_lock(&session).add_axiom(ax).expect("in-memory add");
                    }
                });
            }
            for r in 0..READERS {
                let session = Arc::clone(&session);
                scope.spawn(move || {
                    let a = IndividualName::new("x");
                    let compound = Concept::atomic("A").and(Concept::atomic("C"));
                    for i in 0..OPS {
                        let guard = read_lock(&session);
                        let v = guard.query(&a, &Concept::atomic("C")).expect("limits");
                        assert_eq!(v, fourval::TruthValue::Both, "reader {r} op {i}");
                        let v = guard.query(&a, &compound).expect("limits");
                        assert_eq!(v, fourval::TruthValue::Both, "reader {r} op {i}");
                    }
                });
            }
        });
        let final_session = read_lock(&session);
        assert_eq!(final_session.len(), 4 + WRITERS * OPS);
        let last = IndividualName::new(format!("w{}n{}", WRITERS - 1, OPS - 1));
        assert_eq!(
            final_session
                .query(&last, &Concept::atomic("C"))
                .expect("limits"),
            fourval::TruthValue::True,
            "writer-added member must reach C through the chain"
        );
        assert!(final_session.stats().mutations >= (WRITERS * OPS) as u64);
    }

    #[test]
    fn poisoned_shard_recovers() {
        let m: Arc<ShardedMap<u32, u32>> = Arc::new(ShardedMap::new());
        m.insert(5, 50);
        // Poison every shard so the one owning key 5 is certainly hit.
        let clone = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guards: Vec<_> = clone.shards.iter().map(|s| s.write().unwrap()).collect();
            panic!("poison all shards");
        })
        .join();
        assert_eq!(m.get(&5), Some(50));
        m.insert(6, 60);
        assert_eq!(m.get(&6), Some(60));
    }
}
