//! Paraconsistent reasoning services for SHOIN(D)4, executed by the
//! classical tableau on the induced KB `K̄` (Theorem 6 / Corollary 7).
//!
//! The query vocabulary deliberately mirrors the paper's phrasing:
//! "is there any information indicating …?" A four-valued KB answers a
//! membership question with one of the four truth values:
//!
//! * `t` — positive information only;
//! * `f` — negative information only;
//! * `⊤` — both (the KB is contradictory *about this particular fact*);
//! * `⊥` — no information either way.

use crate::inclusion::InclusionKind;
use crate::kb4::{Axiom4, KnowledgeBase4};
use crate::transform::{self, Transformer};
use dl::axiom::{Axiom, RoleExpr};
use dl::kb::KnowledgeBase;
use dl::name::{IndividualName, RoleName};
use dl::Concept;
use fourval::TruthValue;
use tableau::{Config, Reasoner, ReasonerError, Stats};

/// A reasoner over a SHOIN(D)4 knowledge base.
///
/// Construction transforms the KB once (Definitions 5–7) and hands the
/// classical induced KB to the [`tableau::Reasoner`].
pub struct Reasoner4 {
    induced: KnowledgeBase,
    classical: Reasoner,
}

impl Reasoner4 {
    /// Build with the default tableau configuration.
    pub fn new(kb4: &KnowledgeBase4) -> Self {
        Self::with_config(kb4, Config::default())
    }

    /// Build with an explicit tableau configuration.
    pub fn with_config(kb4: &KnowledgeBase4, config: Config) -> Self {
        let induced = transform::transform_kb(kb4);
        let classical = Reasoner::with_config(&induced, config);
        Reasoner4 { induced, classical }
    }

    /// The classical induced KB `K̄` (useful for inspection and for
    /// feeding other OWL DL reasoners).
    pub fn induced_kb(&self) -> &KnowledgeBase {
        &self.induced
    }

    /// Accumulated tableau statistics.
    pub fn stats(&self) -> Stats {
        self.classical.stats()
    }

    /// Is the four-valued KB satisfiable? (Theorem 6: iff `K̄` is.)
    ///
    /// Unlike the classical case this is rarely `false`: only constructs
    /// with classical behaviour (nominals, number restrictions, `⊥`,
    /// distinctness) can make a SHOIN(D)4 KB unsatisfiable.
    pub fn is_satisfiable(&mut self) -> Result<bool, ReasonerError> {
        self.classical.is_consistent()
    }

    /// Is there information supporting `a : C`? (`K̄ ⊨ ā : C̄`.)
    pub fn has_positive_info(
        &mut self,
        a: &IndividualName,
        c: &Concept,
    ) -> Result<bool, ReasonerError> {
        let tc = transform::transform_concept(c);
        self.classical.is_instance_of(a, &tc)
    }

    /// Is there information *against* `a : C`? (`K̄ ⊨ ā : ¬C̄`, i.e. the
    /// transformed negation.)
    pub fn has_negative_info(
        &mut self,
        a: &IndividualName,
        c: &Concept,
    ) -> Result<bool, ReasonerError> {
        let tc = transform::transform_neg_concept(c);
        self.classical.is_instance_of(a, &tc)
    }

    /// The four-valued answer to "what does the KB know about `a : C`?",
    /// combining the two entailment queries.
    pub fn query(&mut self, a: &IndividualName, c: &Concept) -> Result<TruthValue, ReasonerError> {
        Ok(TruthValue::from_bits(
            self.has_positive_info(a, c)?,
            self.has_negative_info(a, c)?,
        ))
    }

    /// Is there information supporting `R(a, b)`? (`K̄ ⊨ R⁺(a,b)`.)
    pub fn has_positive_role_info(
        &mut self,
        r: &RoleName,
        a: &IndividualName,
        b: &IndividualName,
    ) -> Result<bool, ReasonerError> {
        self.classical.entails(&Axiom::RoleAssertion(
            r.with_suffix(transform::POS_SUFFIX),
            a.clone(),
            b.clone(),
        ))
    }

    /// Is there information against `R(a, b)`?
    /// (`K̄ ⊨ a : ∀R⁼.¬{b}`, i.e. `(a,b) ∉ R⁼ = proj⁻(R)`.)
    pub fn has_negative_role_info(
        &mut self,
        r: &RoleName,
        a: &IndividualName,
        b: &IndividualName,
    ) -> Result<bool, ReasonerError> {
        self.classical.entails(&Axiom::ConceptAssertion(
            a.clone(),
            Concept::all(
                RoleExpr::named(r.with_suffix(transform::EQ_SUFFIX)),
                Concept::one_of([b.clone()]).not(),
            ),
        ))
    }

    /// The four-valued answer about a role membership.
    pub fn query_role(
        &mut self,
        r: &RoleName,
        a: &IndividualName,
        b: &IndividualName,
    ) -> Result<TruthValue, ReasonerError> {
        Ok(TruthValue::from_bits(
            self.has_positive_role_info(r, a, b)?,
            self.has_negative_role_info(r, a, b)?,
        ))
    }

    /// Does the KB four-valued-entail the axiom? Inclusion axioms go
    /// through Corollary 7; everything else reduces to entailment over
    /// `K̄`.
    pub fn entails(&mut self, ax: &Axiom4) -> Result<bool, ReasonerError> {
        let mut tr = Transformer::memoized();
        match ax {
            Axiom4::ConceptInclusion(kind, c, d) => {
                let cbar = tr.concept(c);
                let neg_cbar = tr.neg_concept(c);
                let dbar = tr.concept(d);
                let neg_dbar = tr.neg_concept(d);
                match kind {
                    // C ↦ D iff ¬(¬C̄) ⊓ ¬D̄ unsatisfiable in K̄.
                    InclusionKind::Material => {
                        let test = neg_cbar.not().and(dbar.not());
                        Ok(!self.classical.is_concept_satisfiable(&test)?)
                    }
                    // C ⊏ D iff C̄ ⊓ ¬D̄ unsatisfiable.
                    InclusionKind::Internal => {
                        let test = cbar.and(dbar.not());
                        Ok(!self.classical.is_concept_satisfiable(&test)?)
                    }
                    // C → D iff additionally ¬D̄ ⊓ ¬(¬C̄) unsatisfiable —
                    // i.e. ¬D̄ ⊑ ¬C̄ also holds.
                    InclusionKind::Strong => {
                        let fwd = cbar.and(dbar.not());
                        let bwd = neg_dbar.and(neg_cbar.not());
                        Ok(!self.classical.is_concept_satisfiable(&fwd)?
                            && !self.classical.is_concept_satisfiable(&bwd)?)
                    }
                }
            }
            other => {
                // Every transformed image must be classically entailed.
                for classical_ax in tr.axiom(other) {
                    if !self.classical.entails(&classical_ax)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_kb4;

    fn r4(src: &str) -> Reasoner4 {
        Reasoner4::new(&parse_kb4(src).unwrap())
    }

    fn ind(s: &str) -> IndividualName {
        IndividualName::new(s)
    }

    #[test]
    fn example1_paraconsistent_instance_query() {
        let mut r = r4("hasPatient some Patient SubClassOf Doctor
             john : Doctor
             john : not Doctor
             mary : Patient
             hasPatient(bill, mary)");
        assert!(r.is_satisfiable().unwrap());
        let doctor = Concept::atomic("Doctor");
        // Positive info that bill is a doctor, no negative info.
        assert_eq!(r.query(&ind("bill"), &doctor).unwrap(), TruthValue::True);
        // John is the contradiction.
        assert_eq!(r.query(&ind("john"), &doctor).unwrap(), TruthValue::Both);
        // Mary: nothing either way.
        assert_eq!(r.query(&ind("mary"), &doctor).unwrap(), TruthValue::Neither);
    }

    #[test]
    fn example2_access_control() {
        let mut r = r4("SurgicalTeam SubClassOf not ReadPatientRecordTeam
             UrgencyTeam SubClassOf ReadPatientRecordTeam
             john : SurgicalTeam
             john : UrgencyTeam");
        assert!(r.is_satisfiable().unwrap());
        let read = Concept::atomic("ReadPatientRecordTeam");
        assert_eq!(r.query(&ind("john"), &read).unwrap(), TruthValue::Both);
        // Irrelevant facts stay unknown — no explosion.
        assert_eq!(
            r.query(&ind("john"), &Concept::atomic("Patient")).unwrap(),
            TruthValue::Neither
        );
    }

    #[test]
    fn example3_and_5_penguin() {
        let mut r = r4("Bird and (hasWing some Wing) MaterialSubClassOf Fly
             Penguin SubClassOf Bird
             Penguin SubClassOf hasWing some Wing
             Penguin SubClassOf not Fly
             tweety : Bird
             tweety : Penguin
             w : Wing
             hasWing(tweety, w)");
        assert!(r.is_satisfiable().unwrap());
        let fly = Concept::atomic("Fly");
        // Example 5: Fly⁻(tweety) holds, Fly⁺(tweety) does not.
        assert!(r.has_negative_info(&ind("tweety"), &fly).unwrap());
        assert!(!r.has_positive_info(&ind("tweety"), &fly).unwrap());
        assert_eq!(r.query(&ind("tweety"), &fly).unwrap(), TruthValue::False);
    }

    #[test]
    fn example4_adoption() {
        let mut r = r4("hasChild min 1 SubClassOf Parent
             Parent MaterialSubClassOf Married
             hasChild(smith, kate)
             smith : not Married");
        assert!(r.is_satisfiable().unwrap());
        // Negative info about marriage survives.
        assert!(r
            .has_negative_info(&ind("smith"), &Concept::atomic("Married"))
            .unwrap());
        // Positive info that smith is a parent.
        assert!(r
            .has_positive_info(&ind("smith"), &Concept::atomic("Parent"))
            .unwrap());
    }

    #[test]
    fn internal_inclusion_does_not_contrapose() {
        // Bird ⊏ Fly plus ¬Fly(x) must NOT give ¬Bird(x).
        let mut r = r4("Bird SubClassOf Fly
             x : not Fly");
        assert!(!r
            .has_negative_info(&ind("x"), &Concept::atomic("Bird"))
            .unwrap());
        assert_eq!(
            r.query(&ind("x"), &Concept::atomic("Bird")).unwrap(),
            TruthValue::Neither
        );
    }

    #[test]
    fn strong_inclusion_contraposes() {
        let mut r = r4("Bird StrongSubClassOf Fly
             x : not Fly");
        assert!(r
            .has_negative_info(&ind("x"), &Concept::atomic("Bird"))
            .unwrap());
        assert_eq!(
            r.query(&ind("x"), &Concept::atomic("Bird")).unwrap(),
            TruthValue::False
        );
    }

    #[test]
    fn material_inclusion_admits_exceptions() {
        // Bird ↦ Fly with a contradicted bird: tweety escapes the rule.
        let mut r = r4("Bird MaterialSubClassOf Fly
             tweety : Bird
             tweety : not Bird");
        assert!(!r
            .has_positive_info(&ind("tweety"), &Concept::atomic("Fly"))
            .unwrap());
        // An uncontradicted bird does fly.
        let mut r = r4("Bird MaterialSubClassOf Fly
             robin : Bird");
        // Material: everything not provably ¬Bird is Fly — robin is not
        // provably ¬Bird... note ↦ quantifies over Δ∖proj⁻(Bird), and in
        // some models robin ∈ proj⁻(Bird), so positive info is NOT
        // entailed for the material reading alone. The paper's Example 3
        // pairs ↦ with explicit positive premises; what IS entailed is
        // the global reading:
        assert!(r
            .entails(&Axiom4::ConceptInclusion(
                InclusionKind::Material,
                Concept::atomic("Bird"),
                Concept::atomic("Fly"),
            ))
            .unwrap());
    }

    #[test]
    fn corollary7_inclusion_entailment() {
        let mut r = r4("A SubClassOf B
             B SubClassOf C");
        // Internal inclusions compose.
        assert!(r
            .entails(&Axiom4::ConceptInclusion(
                InclusionKind::Internal,
                Concept::atomic("A"),
                Concept::atomic("C"),
            ))
            .unwrap());
        assert!(!r
            .entails(&Axiom4::ConceptInclusion(
                InclusionKind::Internal,
                Concept::atomic("C"),
                Concept::atomic("A"),
            ))
            .unwrap());
        // Strong is NOT entailed by internal premises (no contraposition
        // information).
        assert!(!r
            .entails(&Axiom4::ConceptInclusion(
                InclusionKind::Strong,
                Concept::atomic("A"),
                Concept::atomic("C"),
            ))
            .unwrap());
    }

    #[test]
    fn strong_premises_entail_strong_conclusions() {
        let mut r = r4("A StrongSubClassOf B
             B StrongSubClassOf C");
        assert!(r
            .entails(&Axiom4::ConceptInclusion(
                InclusionKind::Strong,
                Concept::atomic("A"),
                Concept::atomic("C"),
            ))
            .unwrap());
        // Strong implies internal.
        assert!(r
            .entails(&Axiom4::ConceptInclusion(
                InclusionKind::Internal,
                Concept::atomic("A"),
                Concept::atomic("C"),
            ))
            .unwrap());
    }

    #[test]
    fn role_queries_four_valued() {
        let mut r = r4("r(a, b)
             not r(c, d)");
        let role = RoleName::new("r");
        assert_eq!(
            r.query_role(&role, &ind("a"), &ind("b")).unwrap(),
            TruthValue::True
        );
        assert_eq!(
            r.query_role(&role, &ind("c"), &ind("d")).unwrap(),
            TruthValue::False
        );
        assert_eq!(
            r.query_role(&role, &ind("a"), &ind("d")).unwrap(),
            TruthValue::Neither
        );
        // Contradictory role information.
        let mut r = r4("r(a, b)
             not r(a, b)");
        assert!(r.is_satisfiable().unwrap());
        assert_eq!(
            r.query_role(&RoleName::new("r"), &ind("a"), &ind("b"))
                .unwrap(),
            TruthValue::Both
        );
    }

    #[test]
    fn classical_contradiction_keeps_other_inferences() {
        // The headline robustness claim, end to end through the tableau.
        let mut r = r4("A SubClassOf B
             x : A
             x : not A
             y : A");
        assert!(r.is_satisfiable().unwrap());
        assert_eq!(
            r.query(&ind("y"), &Concept::atomic("B")).unwrap(),
            TruthValue::True
        );
        assert_eq!(
            r.query(&ind("x"), &Concept::atomic("A")).unwrap(),
            TruthValue::Both
        );
        // x : B still follows (internal inclusion fires on proj⁺).
        assert!(r
            .has_positive_info(&ind("x"), &Concept::atomic("B"))
            .unwrap());
    }

    #[test]
    fn role_inclusion_entailment_via_transformation() {
        let mut r = r4("r SubRoleOf s");
        assert!(r
            .entails(&Axiom4::RoleInclusion(
                InclusionKind::Internal,
                RoleExpr::named("r"),
                RoleExpr::named("s"),
            ))
            .unwrap());
        assert!(!r
            .entails(&Axiom4::RoleInclusion(
                InclusionKind::Internal,
                RoleExpr::named("s"),
                RoleExpr::named("r"),
            ))
            .unwrap());
    }

    #[test]
    fn unsatisfiable_four_valued_kb_exists() {
        // Nominal machinery keeps its classical bite: a : {b}, a ≠ b.
        let mut r = r4("a : {b}
             a != b");
        assert!(!r.is_satisfiable().unwrap());
    }

    #[test]
    fn induced_kb_is_inspectable() {
        let r = r4("A SubClassOf B");
        let printed = dl::printer::print_kb(r.induced_kb());
        assert!(printed.contains("A+ SubClassOf B+"));
    }
}
