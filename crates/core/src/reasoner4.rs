//! Paraconsistent reasoning services for SHOIN(D)4, executed by the
//! classical tableau on the induced KB `K̄` (Theorem 6 / Corollary 7).
//!
//! The query vocabulary deliberately mirrors the paper's phrasing:
//! "is there any information indicating …?" A four-valued KB answers a
//! membership question with one of the four truth values:
//!
//! * `t` — positive information only;
//! * `f` — negative information only;
//! * `⊤` — both (the KB is contradictory *about this particular fact*);
//! * `⊥` — no information either way.
//!
//! # The batch query pipeline
//!
//! Every service takes `&self`: the tableau work runs on a shared
//! [`tableau::QueryEngine`] and the reasoner-level state is three caches
//! behind mutexes, so a [`Reasoner4`] can be borrowed by any number of
//! `std::thread::scope` workers at once ([`Reasoner4::query_batch`] does
//! exactly that). A membership query passes through, in order:
//!
//! 1. **memoized transformation** — `C ↦ C̄` (Definitions 5–7) is
//!    computed once per distinct concept, not once per query;
//! 2. **told fast path** (optional) — a syntactically-certain verdict
//!    from the [`crate::told::ToldIndex`] answers `true` without any
//!    search; soundness is argued in that module's docs;
//! 3. **entailment cache** — exact results keyed by
//!    `(individual, transformed concept)`;
//! 4. **the tableau** — via the engine, which itself applies
//!    model-based pruning and the shared consistency cache.

use crate::cache::{lock_mutex, ShardedMap};
use crate::dataflow::{self, ModuleExtractor, SigAtom};
use crate::horn::{self, HornProgram};
use crate::inclusion::InclusionKind;
use crate::kb4::{Axiom4, KnowledgeBase4};
use crate::told::ToldIndex;
use crate::transform::{self, Transformer};
use dl::axiom::{Axiom, RoleExpr};
use dl::kb::KnowledgeBase;
use dl::name::{ConceptName, IndividualName, RoleName};
use dl::Concept;
use fourval::TruthValue;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tableau::{Config, QueryEngine, ReasonerError, Stats};

/// Knobs for the batch query pipeline (orthogonal to the tableau
/// [`Config`]).
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Worker threads for [`Reasoner4::query_batch`] and the batch
    /// drivers in [`crate::analysis`]. `0` means "ask the OS"
    /// (`std::thread::available_parallelism`).
    pub jobs: usize,
    /// Consult the told-information index before searching.
    pub told_fast_path: bool,
    /// Cache exact entailment results per `(individual, concept)`.
    pub entailment_cache: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            jobs: 0,
            told_fast_path: true,
            entailment_cache: true,
        }
    }
}

impl QueryOptions {
    /// A configuration with every optimization off and one worker —
    /// the reference baseline the property tests and benches compare
    /// against.
    pub fn baseline() -> Self {
        QueryOptions {
            jobs: 1,
            told_fast_path: false,
            entailment_cache: false,
        }
    }

    /// The effective worker count (resolving `jobs = 0`).
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

/// A reasoner over a SHOIN(D)4 knowledge base.
///
/// Construction transforms the KB once (Definitions 5–7) and hands the
/// classical induced KB to a shared [`tableau::QueryEngine`]. The `&mut`
/// receivers of the historical API are kept as `&self` — existing callers
/// holding a mutable reasoner keep working, and new callers can fan
/// queries out across threads.
pub struct Reasoner4 {
    induced: KnowledgeBase,
    engine: QueryEngine,
    opts: QueryOptions,
    /// Memoized Definition 5–7 transformation (π and ¬π tables).
    transformer: Mutex<Transformer>,
    /// Exact entailment results: `(a, C̄) → K̄ ⊨ a : C̄`. Sharded so
    /// `--jobs` batch workers don't serialize on one cache lock.
    instance_cache: ShardedMap<(IndividualName, Concept), bool>,
    told: Option<ToldIndex>,
    /// Module-scoped execution (`Config::module_scoping`): per-query
    /// seed → `⊤`-locality module → a small engine over just that
    /// module. `None` when scoping is off (the default).
    scoping: Option<Scoping>,
    /// Consequence-driven Horn fast path (`Config::horn_path`): atomic
    /// goals whose module compiles to a Horn program are answered by
    /// saturation, everything else falls through to scoping / the full
    /// tableau. `None` when the fast path is off.
    horn: Option<HornRouter>,
}

/// State for module-scoped query execution: the extractor (built once
/// per KB) plus a cache of engines keyed by the extracted module, so
/// queries that land in the same region share one preprocessed engine.
struct Scoping {
    extractor: Arc<ModuleExtractor>,
    engines: Mutex<HashMap<BTreeSet<usize>, Arc<QueryEngine>>>,
    config: Config,
}

impl Scoping {
    /// Extract the module for `seed` and return the engine over it,
    /// recording the extraction counters into `main` (the full-KB
    /// engine merges all module-scoping stats, so `Reasoner4::stats`
    /// reports the whole pipeline from one place).
    fn engine_for_seed(&self, main: &QueryEngine, seed: &BTreeSet<SigAtom>) -> Arc<QueryEngine> {
        let t0 = Instant::now();
        let module = self.extractor.extract(seed);
        main.merge_stats(&Stats {
            scoped_queries: 1,
            module_axioms: module.axioms.len() as u64,
            module_extraction_ns: t0.elapsed().as_nanos() as u64,
            ..Stats::default()
        });
        let mut engines = lock_mutex(&self.engines);
        if let Some(e) = engines.get(&module.axioms) {
            main.merge_stats(&Stats {
                engine_cache_hits: 1,
                ..Stats::default()
            });
            return Arc::clone(e);
        }
        main.merge_stats(&Stats {
            engine_cache_misses: 1,
            ..Stats::default()
        });
        let kb = self.extractor.induced_module_kb(&module);
        let engine = Arc::new(QueryEngine::with_config(&kb, self.config.clone()));
        engines.insert(module.axioms.clone(), Arc::clone(&engine));
        engine
    }
}

/// State for the Horn fast path: the (shared) module extractor plus a
/// cache of compiled programs keyed by the extracted module, with `None`
/// recording "this module is not Horn" so classification runs once per
/// module, not once per query.
struct HornRouter {
    extractor: Arc<ModuleExtractor>,
    programs: Mutex<HashMap<BTreeSet<usize>, Option<Arc<HornProgram>>>>,
}

impl HornRouter {
    /// Extract the module for `seed` and return its compiled Horn
    /// program, or `None` (recording one fallback) when the module's
    /// classical image leaves the Horn fragment. Compilation counters
    /// merge into `main` exactly once per distinct module.
    fn program_for_seed(
        &self,
        main: &QueryEngine,
        seed: &BTreeSet<SigAtom>,
    ) -> Option<Arc<HornProgram>> {
        let module = self.extractor.extract(seed);
        let mut programs = lock_mutex(&self.programs);
        let hit = match programs.get(&module.axioms) {
            Some(entry) => {
                main.merge_stats(&Stats {
                    horn_cache_hits: 1,
                    ..Stats::default()
                });
                entry.clone()
            }
            None => {
                let images = module.axioms.iter().flat_map(|&i| self.extractor.images(i));
                let program = horn::compile(images).map(Arc::new);
                main.merge_stats(&Stats {
                    horn_cache_misses: 1,
                    horn_clauses: program.as_ref().map_or(0, |p| p.clause_count()),
                    ..Stats::default()
                });
                programs.insert(module.axioms.clone(), program.clone());
                program
            }
        };
        drop(programs);
        if hit.is_none() {
            main.merge_stats(&Stats {
                horn_fallbacks: 1,
                ..Stats::default()
            });
        }
        hit
    }

    /// Record one answered Horn query (plus any fresh saturation work).
    fn record_answer(main: &QueryEngine, rounds: u64) {
        main.merge_stats(&Stats {
            horn_queries: 1,
            saturation_rounds: rounds,
            ..Stats::default()
        });
    }
}

/// Does this classical test concept have the shape `P ⊓ ¬Q` for atomic
/// `P`, `Q` — the (un)satisfiability probe [`Reasoner4::entails`] builds
/// for atomic internal/strong inclusions? Those are exactly the
/// subsumption questions the Horn engine can answer.
pub(crate) fn subsumption_probe(test: &Concept) -> Option<(&ConceptName, &ConceptName)> {
    let Concept::And(lhs, rhs) = test else {
        return None;
    };
    let (Concept::Atomic(sub), Concept::Not(negated)) = (&**lhs, &**rhs) else {
        return None;
    };
    let Concept::Atomic(sup) = &**negated else {
        return None;
    };
    Some((sub, sup))
}

impl Reasoner4 {
    /// Build with the default tableau configuration.
    pub fn new(kb4: &KnowledgeBase4) -> Self {
        Self::with_config(kb4, Config::default())
    }

    /// Build with an explicit tableau configuration.
    pub fn with_config(kb4: &KnowledgeBase4, config: Config) -> Self {
        Self::with_options(kb4, config, QueryOptions::default())
    }

    /// Build with explicit tableau *and* pipeline configuration.
    pub fn with_options(kb4: &KnowledgeBase4, config: Config, opts: QueryOptions) -> Self {
        let induced = transform::transform_kb(kb4);
        let engine = QueryEngine::with_config(&induced, config.clone());
        let told = opts.told_fast_path.then(|| ToldIndex::build(kb4));
        // Scoping and the Horn router both work per extracted module;
        // they share one extractor (dependency graph + classical images).
        let extractor = (config.module_scoping || config.horn_path)
            .then(|| Arc::new(ModuleExtractor::new(kb4)));
        let scoping = config.module_scoping.then(|| Scoping {
            extractor: Arc::clone(extractor.as_ref().expect("extractor built")),
            engines: Mutex::new(HashMap::new()),
            config: Config {
                // Scoped sub-engines answer plain classical queries.
                module_scoping: false,
                ..config.clone()
            },
        });
        let horn = config.horn_path.then(|| HornRouter {
            extractor: extractor.expect("extractor built"),
            programs: Mutex::new(HashMap::new()),
        });
        Reasoner4 {
            induced,
            engine,
            opts,
            transformer: Mutex::new(Transformer::memoized()),
            instance_cache: ShardedMap::new(),
            told,
            scoping,
            horn,
        }
    }

    /// The classical induced KB `K̄` (useful for inspection and for
    /// feeding other OWL DL reasoners).
    pub fn induced_kb(&self) -> &KnowledgeBase {
        &self.induced
    }

    /// The shared classical engine executing the reductions.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// Active pipeline options.
    pub fn options(&self) -> &QueryOptions {
        &self.opts
    }

    /// Accumulated tableau statistics. Under module scoping this folds
    /// in every scoped sub-engine's counters plus the module-extraction
    /// counters (`scoped_queries`, `module_axioms`,
    /// `module_extraction_ns`), which the main engine merged at query
    /// time.
    pub fn stats(&self) -> Stats {
        let mut s = self.engine.stats();
        if let Some(sc) = &self.scoping {
            for e in lock_mutex(&sc.engines).values() {
                s.absorb(&e.stats());
            }
        }
        s.entailment_cache_hits += self.instance_cache.hits();
        s.entailment_cache_misses += self.instance_cache.misses();
        s
    }

    /// The told-index verdict for `(a, c)`, if the fast path is enabled:
    /// `(certain positive, certain negative)`. Exposed so tests can check
    /// every told claim against the tableau.
    pub fn told_verdict(&self, a: &IndividualName, c: &ConceptName) -> Option<(bool, bool)> {
        self.told.as_ref().map(|t| t.verdict(a, c))
    }

    /// Memoized `π(C)` (positive transformation).
    fn transformed(&self, c: &Concept) -> Concept {
        lock_mutex(&self.transformer).concept(c)
    }

    /// Memoized `π(¬C)` (negative transformation).
    fn transformed_neg(&self, c: &Concept) -> Concept {
        lock_mutex(&self.transformer).neg_concept(c)
    }

    /// Instance check `K̄ ⊨ a : tc`, routed through the module of the
    /// query signature when scoping is on. Sound because `sig(a : tc)`
    /// is contained in the extraction seed, so the module preserves the
    /// verdict both ways (see `crate::dataflow` docs).
    fn engine_instance(&self, a: &IndividualName, tc: &Concept) -> Result<bool, ReasonerError> {
        // Horn fast path: an atomic (split) goal over a Horn module is
        // answered by saturation — no tableau, no sub-engine. Complex
        // goals and non-Horn modules fall through unchanged.
        if let Some(h) = &self.horn {
            if let Concept::Atomic(goal) = tc {
                let mut seed = BTreeSet::new();
                dataflow::classical_concept_atoms(tc, &mut seed);
                seed.insert(SigAtom::Individual(a.clone()));
                if let Some(program) = h.program_for_seed(&self.engine, &seed) {
                    let answer = program.is_instance(a, goal);
                    HornRouter::record_answer(&self.engine, answer.rounds);
                    return Ok(answer.holds);
                }
            }
        }
        if let Some(sc) = &self.scoping {
            let mut seed = BTreeSet::new();
            dataflow::classical_concept_atoms(tc, &mut seed);
            seed.insert(SigAtom::Individual(a.clone()));
            return sc
                .engine_for_seed(&self.engine, &seed)
                .is_instance_of(a, tc);
        }
        self.engine.is_instance_of(a, tc)
    }

    /// Classical axiom entailment over `K̄`, module-scoped by the
    /// axiom's own signature when scoping is on.
    fn engine_entails(&self, ax: &Axiom) -> Result<bool, ReasonerError> {
        if let Some(sc) = &self.scoping {
            let mut seed = BTreeSet::new();
            dataflow::classical_axiom_atoms(ax, &mut seed);
            return sc.engine_for_seed(&self.engine, &seed).entails(ax);
        }
        self.engine.entails(ax)
    }

    /// Concept satisfiability w.r.t. `K̄`, module-scoped by the test
    /// concept's signature when scoping is on. (Sound in both
    /// directions: a module model expands to a full-KB model preserving
    /// the extension of every seed-signature concept.)
    fn engine_concept_sat(&self, test: &Concept) -> Result<bool, ReasonerError> {
        // Horn fast path for the `P ⊓ ¬Q` probes of atomic inclusion
        // entailment: `P ⊓ ¬Q` is satisfiable w.r.t. a Horn module iff
        // the module does *not* derive `Q` from `{P}`. (Material probes
        // have the shape `¬C⁻' ⊓ ¬Q` and never match — material
        // inclusions stay on the tableau, mirroring the told index.)
        if let Some(h) = &self.horn {
            if let Some((sub, sup)) = subsumption_probe(test) {
                let mut seed = BTreeSet::new();
                dataflow::classical_concept_atoms(test, &mut seed);
                if let Some(program) = h.program_for_seed(&self.engine, &seed) {
                    let answer = program.subsumes(sub, sup);
                    HornRouter::record_answer(&self.engine, answer.rounds);
                    return Ok(!answer.holds);
                }
            }
        }
        if let Some(sc) = &self.scoping {
            let mut seed = BTreeSet::new();
            dataflow::classical_concept_atoms(test, &mut seed);
            return sc
                .engine_for_seed(&self.engine, &seed)
                .is_concept_satisfiable(test);
        }
        self.engine.is_concept_satisfiable(test)
    }

    /// Instance check over `K̄` through the entailment cache.
    fn cached_instance(&self, a: &IndividualName, tc: &Concept) -> Result<bool, ReasonerError> {
        if self.opts.entailment_cache {
            let key = (a.clone(), tc.clone());
            if let Some(hit) = self.instance_cache.get(&key) {
                return Ok(hit);
            }
            let answer = self.engine_instance(a, tc)?;
            self.instance_cache.insert(key, answer);
            Ok(answer)
        } else {
            self.engine_instance(a, tc)
        }
    }

    /// Is the four-valued KB satisfiable? (Theorem 6: iff `K̄` is.)
    ///
    /// Unlike the classical case this is rarely `false`: only constructs
    /// with classical behaviour (nominals, number restrictions, `⊥`,
    /// distinctness) can make a SHOIN(D)4 KB unsatisfiable.
    pub fn is_satisfiable(&self) -> Result<bool, ReasonerError> {
        // A Horn ∅-seed module (the never-⊤-local core) is always
        // satisfiable: the fragment excludes every construct with
        // classical bite (`⊥`, nominals, counting, equality).
        if let Some(h) = &self.horn {
            if let Some(_program) = h.program_for_seed(&self.engine, &BTreeSet::new()) {
                HornRouter::record_answer(&self.engine, 0);
                return Ok(true);
            }
        }
        if let Some(sc) = &self.scoping {
            // The ∅-seeded module is exactly the never-⊤-local core —
            // the only axioms that can make a SHOIN(D)4 KB
            // unsatisfiable (nominals, distinctness, negative role
            // assertions and what they pull in). Both directions of the
            // module property apply with an empty query signature.
            return sc
                .engine_for_seed(&self.engine, &BTreeSet::new())
                .is_consistent();
        }
        self.engine.is_consistent()
    }

    /// Is there information supporting `a : C`? (`K̄ ⊨ ā : C̄`.)
    pub fn has_positive_info(
        &self,
        a: &IndividualName,
        c: &Concept,
    ) -> Result<bool, ReasonerError> {
        if let (Some(told), Concept::Atomic(name)) = (&self.told, c) {
            if told.verdict(a, name).0 {
                return Ok(true);
            }
        }
        let tc = self.transformed(c);
        self.cached_instance(a, &tc)
    }

    /// Is there information *against* `a : C`? (`K̄ ⊨ ā : ¬C̄`, i.e. the
    /// transformed negation.)
    pub fn has_negative_info(
        &self,
        a: &IndividualName,
        c: &Concept,
    ) -> Result<bool, ReasonerError> {
        if let (Some(told), Concept::Atomic(name)) = (&self.told, c) {
            if told.verdict(a, name).1 {
                return Ok(true);
            }
        }
        let tc = self.transformed_neg(c);
        self.cached_instance(a, &tc)
    }

    /// The four-valued answer to "what does the KB know about `a : C`?",
    /// combining the two entailment queries.
    pub fn query(&self, a: &IndividualName, c: &Concept) -> Result<TruthValue, ReasonerError> {
        Ok(TruthValue::from_bits(
            self.has_positive_info(a, c)?,
            self.has_negative_info(a, c)?,
        ))
    }

    /// Answer a batch of membership queries, fanning out across
    /// `options().jobs` scoped worker threads (index-striped). Results
    /// come back in input order and are bit-identical to running
    /// [`Reasoner4::query`] sequentially; on multiple failures the error
    /// of the lowest-indexed query is reported.
    pub fn query_batch(
        &self,
        queries: &[(IndividualName, Concept)],
    ) -> Result<Vec<TruthValue>, ReasonerError> {
        let jobs = self.opts.effective_jobs().min(queries.len().max(1));
        if jobs <= 1 {
            return queries.iter().map(|(a, c)| self.query(a, c)).collect();
        }
        let indexed: Vec<(usize, Result<TruthValue, ReasonerError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..jobs)
                    .map(|w| {
                        scope.spawn(move || {
                            queries
                                .iter()
                                .enumerate()
                                .skip(w)
                                .step_by(jobs)
                                .map(|(i, (a, c))| (i, self.query(a, c)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("query worker panicked"))
                    .collect()
            });
        let mut out = vec![TruthValue::Neither; queries.len()];
        let mut first_err: Option<(usize, ReasonerError)> = None;
        for (i, r) in indexed {
            match r {
                Ok(v) => out[i] = v,
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        match first_err {
            Some((_, e)) => Err(e),
            None => Ok(out),
        }
    }

    /// Is there information supporting `R(a, b)`? (`K̄ ⊨ R⁺(a,b)`.)
    pub fn has_positive_role_info(
        &self,
        r: &RoleName,
        a: &IndividualName,
        b: &IndividualName,
    ) -> Result<bool, ReasonerError> {
        self.engine_entails(&Axiom::RoleAssertion(
            r.with_suffix(transform::POS_SUFFIX),
            a.clone(),
            b.clone(),
        ))
    }

    /// Is there information against `R(a, b)`?
    /// (`K̄ ⊨ a : ∀R⁼.¬{b}`, i.e. `(a,b) ∉ R⁼ = proj⁻(R)`.)
    pub fn has_negative_role_info(
        &self,
        r: &RoleName,
        a: &IndividualName,
        b: &IndividualName,
    ) -> Result<bool, ReasonerError> {
        self.engine_entails(&Axiom::ConceptAssertion(
            a.clone(),
            Concept::all(
                RoleExpr::named(r.with_suffix(transform::EQ_SUFFIX)),
                Concept::one_of([b.clone()]).not(),
            ),
        ))
    }

    /// The four-valued answer about a role membership.
    pub fn query_role(
        &self,
        r: &RoleName,
        a: &IndividualName,
        b: &IndividualName,
    ) -> Result<TruthValue, ReasonerError> {
        Ok(TruthValue::from_bits(
            self.has_positive_role_info(r, a, b)?,
            self.has_negative_role_info(r, a, b)?,
        ))
    }

    /// Does the KB four-valued-entail the axiom? Inclusion axioms go
    /// through Corollary 7; everything else reduces to entailment over
    /// `K̄`.
    pub fn entails(&self, ax: &Axiom4) -> Result<bool, ReasonerError> {
        match ax {
            Axiom4::ConceptInclusion(kind, c, d) => {
                // Told fast path: a non-material atomic chain certifies
                // the *internal* inclusion (`proj⁺` flows along every
                // edge). It does NOT certify the material reading — `↦`
                // quantifies over `Δ∖proj⁻(C)`, a superset of `proj⁺(C)`
                // — nor the strong one (no contraposition evidence).
                if *kind == InclusionKind::Internal {
                    if let (Some(told), Concept::Atomic(a), Concept::Atomic(b)) = (&self.told, c, d)
                    {
                        if told.told_subsumes(a, b) {
                            return Ok(true);
                        }
                    }
                }
                let (cbar, neg_cbar, dbar, neg_dbar) = {
                    let mut tr = lock_mutex(&self.transformer);
                    (
                        tr.concept(c),
                        tr.neg_concept(c),
                        tr.concept(d),
                        tr.neg_concept(d),
                    )
                };
                match kind {
                    // C ↦ D iff ¬(¬C̄) ⊓ ¬D̄ unsatisfiable in K̄.
                    InclusionKind::Material => {
                        let test = neg_cbar.not().and(dbar.not());
                        Ok(!self.engine_concept_sat(&test)?)
                    }
                    // C ⊏ D iff C̄ ⊓ ¬D̄ unsatisfiable.
                    InclusionKind::Internal => {
                        let test = cbar.and(dbar.not());
                        Ok(!self.engine_concept_sat(&test)?)
                    }
                    // C → D iff additionally ¬D̄ ⊓ ¬(¬C̄) unsatisfiable —
                    // i.e. ¬D̄ ⊑ ¬C̄ also holds.
                    InclusionKind::Strong => {
                        let fwd = cbar.and(dbar.not());
                        let bwd = neg_dbar.and(neg_cbar.not());
                        Ok(!self.engine_concept_sat(&fwd)? && !self.engine_concept_sat(&bwd)?)
                    }
                }
            }
            other => {
                let images = lock_mutex(&self.transformer).axiom(other);
                // Every transformed image must be classically entailed.
                for classical_ax in images {
                    if !self.engine_entails(&classical_ax)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }
}

// Batch fan-out borrows the reasoner from scoped threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Reasoner4>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_kb4;

    fn r4(src: &str) -> Reasoner4 {
        Reasoner4::new(&parse_kb4(src).unwrap())
    }

    fn ind(s: &str) -> IndividualName {
        IndividualName::new(s)
    }

    #[test]
    fn example1_paraconsistent_instance_query() {
        let r = r4("hasPatient some Patient SubClassOf Doctor
             john : Doctor
             john : not Doctor
             mary : Patient
             hasPatient(bill, mary)");
        assert!(r.is_satisfiable().unwrap());
        let doctor = Concept::atomic("Doctor");
        // Positive info that bill is a doctor, no negative info.
        assert_eq!(r.query(&ind("bill"), &doctor).unwrap(), TruthValue::True);
        // John is the contradiction.
        assert_eq!(r.query(&ind("john"), &doctor).unwrap(), TruthValue::Both);
        // Mary: nothing either way.
        assert_eq!(r.query(&ind("mary"), &doctor).unwrap(), TruthValue::Neither);
    }

    #[test]
    fn example2_access_control() {
        let r = r4("SurgicalTeam SubClassOf not ReadPatientRecordTeam
             UrgencyTeam SubClassOf ReadPatientRecordTeam
             john : SurgicalTeam
             john : UrgencyTeam");
        assert!(r.is_satisfiable().unwrap());
        let read = Concept::atomic("ReadPatientRecordTeam");
        assert_eq!(r.query(&ind("john"), &read).unwrap(), TruthValue::Both);
        // Irrelevant facts stay unknown — no explosion.
        assert_eq!(
            r.query(&ind("john"), &Concept::atomic("Patient")).unwrap(),
            TruthValue::Neither
        );
    }

    #[test]
    fn example3_and_5_penguin() {
        let r = r4("Bird and (hasWing some Wing) MaterialSubClassOf Fly
             Penguin SubClassOf Bird
             Penguin SubClassOf hasWing some Wing
             Penguin SubClassOf not Fly
             tweety : Bird
             tweety : Penguin
             w : Wing
             hasWing(tweety, w)");
        assert!(r.is_satisfiable().unwrap());
        let fly = Concept::atomic("Fly");
        // Example 5: Fly⁻(tweety) holds, Fly⁺(tweety) does not.
        assert!(r.has_negative_info(&ind("tweety"), &fly).unwrap());
        assert!(!r.has_positive_info(&ind("tweety"), &fly).unwrap());
        assert_eq!(r.query(&ind("tweety"), &fly).unwrap(), TruthValue::False);
    }

    #[test]
    fn example4_adoption() {
        let r = r4("hasChild min 1 SubClassOf Parent
             Parent MaterialSubClassOf Married
             hasChild(smith, kate)
             smith : not Married");
        assert!(r.is_satisfiable().unwrap());
        // Negative info about marriage survives.
        assert!(r
            .has_negative_info(&ind("smith"), &Concept::atomic("Married"))
            .unwrap());
        // Positive info that smith is a parent.
        assert!(r
            .has_positive_info(&ind("smith"), &Concept::atomic("Parent"))
            .unwrap());
    }

    #[test]
    fn internal_inclusion_does_not_contrapose() {
        // Bird ⊏ Fly plus ¬Fly(x) must NOT give ¬Bird(x).
        let r = r4("Bird SubClassOf Fly
             x : not Fly");
        assert!(!r
            .has_negative_info(&ind("x"), &Concept::atomic("Bird"))
            .unwrap());
        assert_eq!(
            r.query(&ind("x"), &Concept::atomic("Bird")).unwrap(),
            TruthValue::Neither
        );
    }

    #[test]
    fn strong_inclusion_contraposes() {
        let r = r4("Bird StrongSubClassOf Fly
             x : not Fly");
        assert!(r
            .has_negative_info(&ind("x"), &Concept::atomic("Bird"))
            .unwrap());
        assert_eq!(
            r.query(&ind("x"), &Concept::atomic("Bird")).unwrap(),
            TruthValue::False
        );
    }

    #[test]
    fn material_inclusion_admits_exceptions() {
        // Bird ↦ Fly with a contradicted bird: tweety escapes the rule.
        let r = r4("Bird MaterialSubClassOf Fly
             tweety : Bird
             tweety : not Bird");
        assert!(!r
            .has_positive_info(&ind("tweety"), &Concept::atomic("Fly"))
            .unwrap());
        // An uncontradicted bird does fly.
        let r = r4("Bird MaterialSubClassOf Fly
             robin : Bird");
        // Material: everything not provably ¬Bird is Fly — robin is not
        // provably ¬Bird... note ↦ quantifies over Δ∖proj⁻(Bird), and in
        // some models robin ∈ proj⁻(Bird), so positive info is NOT
        // entailed for the material reading alone. The paper's Example 3
        // pairs ↦ with explicit positive premises; what IS entailed is
        // the global reading:
        assert!(r
            .entails(&Axiom4::ConceptInclusion(
                InclusionKind::Material,
                Concept::atomic("Bird"),
                Concept::atomic("Fly"),
            ))
            .unwrap());
    }

    #[test]
    fn corollary7_inclusion_entailment() {
        let r = r4("A SubClassOf B
             B SubClassOf C");
        // Internal inclusions compose.
        assert!(r
            .entails(&Axiom4::ConceptInclusion(
                InclusionKind::Internal,
                Concept::atomic("A"),
                Concept::atomic("C"),
            ))
            .unwrap());
        assert!(!r
            .entails(&Axiom4::ConceptInclusion(
                InclusionKind::Internal,
                Concept::atomic("C"),
                Concept::atomic("A"),
            ))
            .unwrap());
        // Strong is NOT entailed by internal premises (no contraposition
        // information).
        assert!(!r
            .entails(&Axiom4::ConceptInclusion(
                InclusionKind::Strong,
                Concept::atomic("A"),
                Concept::atomic("C"),
            ))
            .unwrap());
    }

    #[test]
    fn strong_premises_entail_strong_conclusions() {
        let r = r4("A StrongSubClassOf B
             B StrongSubClassOf C");
        assert!(r
            .entails(&Axiom4::ConceptInclusion(
                InclusionKind::Strong,
                Concept::atomic("A"),
                Concept::atomic("C"),
            ))
            .unwrap());
        // Strong implies internal.
        assert!(r
            .entails(&Axiom4::ConceptInclusion(
                InclusionKind::Internal,
                Concept::atomic("A"),
                Concept::atomic("C"),
            ))
            .unwrap());
    }

    #[test]
    fn role_queries_four_valued() {
        let r = r4("r(a, b)
             not r(c, d)");
        let role = RoleName::new("r");
        assert_eq!(
            r.query_role(&role, &ind("a"), &ind("b")).unwrap(),
            TruthValue::True
        );
        assert_eq!(
            r.query_role(&role, &ind("c"), &ind("d")).unwrap(),
            TruthValue::False
        );
        assert_eq!(
            r.query_role(&role, &ind("a"), &ind("d")).unwrap(),
            TruthValue::Neither
        );
        // Contradictory role information.
        let r = r4("r(a, b)
             not r(a, b)");
        assert!(r.is_satisfiable().unwrap());
        assert_eq!(
            r.query_role(&RoleName::new("r"), &ind("a"), &ind("b"))
                .unwrap(),
            TruthValue::Both
        );
    }

    #[test]
    fn classical_contradiction_keeps_other_inferences() {
        // The headline robustness claim, end to end through the tableau.
        let r = r4("A SubClassOf B
             x : A
             x : not A
             y : A");
        assert!(r.is_satisfiable().unwrap());
        assert_eq!(
            r.query(&ind("y"), &Concept::atomic("B")).unwrap(),
            TruthValue::True
        );
        assert_eq!(
            r.query(&ind("x"), &Concept::atomic("A")).unwrap(),
            TruthValue::Both
        );
        // x : B still follows (internal inclusion fires on proj⁺).
        assert!(r
            .has_positive_info(&ind("x"), &Concept::atomic("B"))
            .unwrap());
    }

    #[test]
    fn role_inclusion_entailment_via_transformation() {
        let r = r4("r SubRoleOf s");
        assert!(r
            .entails(&Axiom4::RoleInclusion(
                InclusionKind::Internal,
                RoleExpr::named("r"),
                RoleExpr::named("s"),
            ))
            .unwrap());
        assert!(!r
            .entails(&Axiom4::RoleInclusion(
                InclusionKind::Internal,
                RoleExpr::named("s"),
                RoleExpr::named("r"),
            ))
            .unwrap());
    }

    #[test]
    fn unsatisfiable_four_valued_kb_exists() {
        // Nominal machinery keeps its classical bite: a : {b}, a ≠ b.
        let r = r4("a : {b}
             a != b");
        assert!(!r.is_satisfiable().unwrap());
    }

    #[test]
    fn induced_kb_is_inspectable() {
        let r = r4("A SubClassOf B");
        let printed = dl::printer::print_kb(r.induced_kb());
        assert!(printed.contains("A+ SubClassOf B+"));
    }

    #[test]
    fn query_batch_matches_sequential_queries() {
        let src = "A SubClassOf B
             A SubClassOf not C
             x : A
             x : not A
             y : A
             z : C";
        let kb = parse_kb4(src).unwrap();
        let parallel = Reasoner4::with_options(
            &kb,
            Config::default(),
            QueryOptions {
                jobs: 4,
                ..QueryOptions::default()
            },
        );
        let baseline = Reasoner4::with_options(&kb, Config::default(), QueryOptions::baseline());
        let mut queries = Vec::new();
        for i in ["x", "y", "z", "ghost"] {
            for c in ["A", "B", "C", "D"] {
                queries.push((ind(i), Concept::atomic(c)));
            }
        }
        let fast = parallel.query_batch(&queries).unwrap();
        let slow = baseline.query_batch(&queries).unwrap();
        assert_eq!(fast, slow);
        // And both agree with one-at-a-time queries.
        for ((a, c), v) in queries.iter().zip(&fast) {
            assert_eq!(
                baseline.query(a, c).unwrap(),
                *v,
                "disagreement on {a:?}:{c:?}"
            );
        }
    }

    #[test]
    fn entailment_cache_answers_repeats_without_search() {
        let r = r4("A SubClassOf B
             y : A");
        let b = Concept::atomic("B");
        // "ghost : B" has no told certificate, so it exercises cache+engine.
        assert!(!r.has_positive_info(&ind("ghost"), &b).unwrap());
        let after_first = r.stats();
        assert_eq!(after_first.entailment_cache_misses, 1);
        assert!(!r.has_positive_info(&ind("ghost"), &b).unwrap());
        let after_second = r.stats();
        // The repeat is a pure cache hit: no new search work of any kind.
        assert_eq!(after_second.entailment_cache_hits, 1);
        assert_eq!(
            Stats {
                entailment_cache_hits: after_first.entailment_cache_hits,
                ..after_second
            },
            after_first,
            "second identical query searched"
        );
    }

    #[test]
    fn told_fast_path_skips_the_tableau() {
        let r = r4("A SubClassOf B
             B SubClassOf C
             y : A");
        // Chain membership is told-certain: no tableau work at all.
        assert!(r
            .has_positive_info(&ind("y"), &Concept::atomic("C"))
            .unwrap());
        assert_eq!(r.stats(), Stats::default());
        // And the claim is honest: a fast-path-free reasoner agrees.
        let bare = Reasoner4::with_options(
            &parse_kb4("A SubClassOf B\nB SubClassOf C\ny : A").unwrap(),
            Config::default(),
            QueryOptions::baseline(),
        );
        assert!(bare
            .has_positive_info(&ind("y"), &Concept::atomic("C"))
            .unwrap());
    }

    #[test]
    fn module_scoping_preserves_verdicts_and_counts_modules() {
        let src = "A SubClassOf B
             x : A
             x : not A
             C SubClassOf D
             y : C
             r(x, y)
             not r(y, x)";
        let kb = parse_kb4(src).unwrap();
        let scoped = Reasoner4::with_options(
            &kb,
            Config {
                module_scoping: true,
                ..Config::default()
            },
            QueryOptions::baseline(),
        );
        let plain = Reasoner4::with_options(&kb, Config::default(), QueryOptions::baseline());
        assert_eq!(
            scoped.is_satisfiable().unwrap(),
            plain.is_satisfiable().unwrap()
        );
        for i in ["x", "y", "ghost"] {
            for c in ["A", "B", "C", "D"] {
                let (i, c) = (ind(i), Concept::atomic(c));
                assert_eq!(
                    scoped.query(&i, &c).unwrap(),
                    plain.query(&i, &c).unwrap(),
                    "verdict differs for {i:?}:{c:?}"
                );
            }
        }
        let role = RoleName::new("r");
        for (a, b) in [("x", "y"), ("y", "x"), ("x", "x")] {
            assert_eq!(
                scoped.query_role(&role, &ind(a), &ind(b)).unwrap(),
                plain.query_role(&role, &ind(a), &ind(b)).unwrap()
            );
        }
        let s = scoped.stats();
        assert!(s.scoped_queries > 0);
        // Modules are genuinely smaller than the KB on average here
        // (two unrelated islands).
        assert!(s.module_axioms < s.scoped_queries * kb.len() as u64);
        // The unscoped pipeline records no module counters.
        assert_eq!(plain.stats().scoped_queries, 0);
        assert_eq!(plain.stats().module_axioms, 0);
    }

    #[test]
    fn module_scoping_inclusion_entailment_parity() {
        let src = "A SubClassOf B
             B SubClassOf C
             E StrongSubClassOf F
             q : E";
        let kb = parse_kb4(src).unwrap();
        let scoped = Reasoner4::with_options(
            &kb,
            Config {
                module_scoping: true,
                ..Config::default()
            },
            QueryOptions::baseline(),
        );
        let plain = Reasoner4::with_options(&kb, Config::default(), QueryOptions::baseline());
        for kind in [
            InclusionKind::Internal,
            InclusionKind::Material,
            InclusionKind::Strong,
        ] {
            for (l, r) in [("A", "C"), ("C", "A"), ("E", "F"), ("F", "E"), ("A", "F")] {
                let ax = Axiom4::ConceptInclusion(kind, Concept::atomic(l), Concept::atomic(r));
                assert_eq!(
                    scoped.entails(&ax).unwrap(),
                    plain.entails(&ax).unwrap(),
                    "entailment differs for {l} {kind:?} {r}"
                );
            }
        }
    }

    #[test]
    fn told_verdicts_are_exposed_and_sound() {
        let r = r4("A SubClassOf B
             A SubClassOf not D
             x : A");
        let (pos, neg) = r.told_verdict(&ind("x"), &ConceptName::new("B")).unwrap();
        assert!(pos && !neg);
        let (pos, neg) = r.told_verdict(&ind("x"), &ConceptName::new("D")).unwrap();
        assert!(!pos && neg);
        // Baseline reasoners have no index.
        let bare = Reasoner4::with_options(
            &parse_kb4("x : A").unwrap(),
            Config::default(),
            QueryOptions::baseline(),
        );
        assert!(bare
            .told_verdict(&ind("x"), &ConceptName::new("A"))
            .is_none());
    }
}
