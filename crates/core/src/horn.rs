//! Consequence-driven Horn fast path: detect when the classical image of
//! an extracted module falls inside a Horn fragment and answer atomic
//! instance/subsumption queries by datalog-style saturation instead of
//! tableau search (ROADMAP item 3; the set-based DL⁴ reasoner line in
//! PAPERS.md is the conceptual ancestor).
//!
//! # The accepted fragment
//!
//! [`compile`] walks the *classical images* (Definition 6) of a module's
//! axioms and either produces a [`HornProgram`] or rejects the module.
//! Accepted:
//!
//! * inclusions whose left side is built from atomic names, `⊤`, `⊓`,
//!   `∃R.C` / `≥1 R` (with inverse roles), and a *top-level* `⊔` (split
//!   into one clause per disjunct), and whose right side is built from
//!   atomic names, `⊤`, `⊓` and `∀R.C`;
//! * role inclusions (including inverses), transitivity;
//! * concept assertions whose concept fits the right-side grammar,
//!   role assertions;
//! * `a ≠ b` for distinct names (recorded but inert: the fragment has no
//!   equality reasoning, so distinctness can never fire).
//!
//! Everything else — `¬` anywhere (so every *material* image, whose left
//! side is `¬(¬C̄)`), `⊥`, nominals, `≥n` for `n ≥ 2`, `≤n`, datatype
//! constructs, `a = b`, and the `∀R⁼.¬{b}` images of negative role
//! assertions — rejects the module, and the router falls back to the
//! tableau. Crucially this mirrors the told-index's soundness line:
//! material inclusions tolerate exceptions and are *never* treated as
//! rules (see `crate::told`).
//!
//! # Why saturation is sound *and complete* here
//!
//! An accepted program has no `⊥`, no equality, no number restrictions
//! and no existential heads, so the set of facts closed under its rules
//! — the least Herbrand model over the named individuals plus one
//! anonymous element — *is* a model of the module, and every model
//! contains it pointwise. Hence for split-atomic goals:
//!
//! * `K̄ ⊨ P(a)` iff `P(a)` is in the least model (the anonymous element
//!   stands in for individuals the module never mentions: only
//!   empty-body rules can reach it, because no role edge ever touches
//!   it);
//! * `K̄ ⊨ P ⊑ Q` iff `Q` is derivable from `{P}` using the unary rules
//!   alone (a fresh test element has no role successors, so edge rules
//!   never fire on it).
//!
//! In particular an accepted module is always classically satisfiable.
//!
//! # Goal-directed evaluation (magic sets)
//!
//! Saturating a whole module to answer one membership question wastes
//! work. [`HornProgram`] instead runs a *predicate-level relevance pass*
//! in the spirit of magic sets: from the goal predicate, walk rule
//! dependencies head → body and keep only the rules (and base facts)
//! that can contribute to the goal. Saturation — semi-naive, delta-driven
//! with per-predicate fact indexes and per-role edge indexes — then runs
//! over that slice only, and the resulting closure is memoized keyed by
//! the relevant-rule set, so goals with the same cone share one fixpoint.

use dl::axiom::Axiom;
use dl::name::{ConceptName, IndividualName, RoleName};
use dl::Concept;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// A compiled rule. Variables are implicit: `Conj` relates one element,
/// `Edge` relates the two ends of a role edge, the role rules relate
/// edges to edges.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Rule {
    /// `head(x) ← body₁(x) ∧ … ∧ bodyₖ(x)`; an empty body means the rule
    /// fires on every domain element (`⊤ ⊑ head`).
    Conj { head: u32, body: Vec<u32> },
    /// For every edge `role(s, d)`: `head` holds at `s` (`head_at_src`)
    /// or at `d`, guarded by `filler` holding at the *other* end.
    /// Encodes both `∃R.F ⊑ aux` bodies and `src ⊑ ∀R.F` heads, with
    /// inverse roles folded into `head_at_src`.
    Edge {
        head: u32,
        role: u32,
        head_at_src: bool,
        filler: Option<u32>,
    },
    /// `head(x, y) ← body(x, y)`, or `head(y, x) ← body(x, y)` when
    /// `swap` (an inverse on exactly one side of the role inclusion).
    RoleIncl { head: u32, body: u32, swap: bool },
    /// `role(x, z) ← role(x, y) ∧ role(y, z)`.
    Trans { role: u32 },
}

/// Outcome of one Horn query: the verdict plus the number of semi-naive
/// rounds actually executed to produce it (0 on a memoized closure).
#[derive(Debug, Clone, Copy)]
pub struct HornAnswer {
    /// The (exact, bit-identical-to-the-tableau) verdict.
    pub holds: bool,
    /// Fresh saturation rounds this query triggered.
    pub rounds: u64,
}

/// Memo key of a goal-relevance cone: the raw words of the relevant
/// predicate and role bitsets.
type ConeKey = (Vec<u64>, Vec<u64>);

/// A compiled Horn program for one module, with memoized goal-directed
/// closures. All query methods take `&self`; the memo tables sit behind
/// mutexes so one program serves the whole batch pipeline.
#[derive(Debug)]
pub struct HornProgram {
    /// Split concept name (`A+`, `B-`, …) → predicate id. Auxiliary
    /// predicates minted during compilation live past `n_named`.
    preds: HashMap<ConceptName, u32>,
    n_preds: u32,
    n_roles: u32,
    inds: HashMap<IndividualName, u32>,
    /// Domain size including the anonymous element (`n_inds` is the
    /// anonymous element's id).
    n_inds: u32,
    rules: Vec<Rule>,
    base_unary: Vec<(u32, u32)>,
    base_edges: Vec<(u32, u32, u32)>,
    /// Rule indexes for the relevance pass (rule producing a predicate /
    /// a role).
    rules_by_head_pred: Vec<Vec<usize>>,
    rules_by_head_role: Vec<Vec<usize>>,
    /// Base-fact indexes for goal-directed loading.
    unary_by_pred: Vec<Vec<u32>>,
    edges_by_role: Vec<Vec<(u32, u32)>>,
    /// Memoized closures keyed by the relevant (pred, role) bitsets.
    closures: Mutex<HashMap<ConeKey, Arc<Closure>>>,
    /// Memoized unary-rule reachability for subsumption goals, keyed by
    /// the start predicate (`None` = a predicate the module never
    /// mentions, whose cone is the `⊤`-closure alone).
    subsumers: Mutex<HashMap<Option<u32>, Arc<HashSet<u32>>>>,
}

/// One saturated (goal-sliced) fact set.
#[derive(Debug)]
struct Closure {
    unary: HashSet<(u32, u32)>,
    rounds: u64,
}

/// Compile the classical images of a module into a Horn program, or
/// return `None` when any image falls outside the fragment — the
/// classifier and the compiler are the same walk.
pub fn compile<'a>(images: impl IntoIterator<Item = &'a Axiom>) -> Option<HornProgram> {
    let mut c = Compiler::default();
    for ax in images {
        c.axiom(ax)?;
    }
    Some(c.finish())
}

/// Per-axiom membership test for the accepted fragment: `true` iff this
/// single classical-image axiom would pass [`compile`]'s walk on its
/// own. Acceptance is axiom-local (the compiler rejects per axiom, never
/// because of an interaction between axioms), so a module's Horn core is
/// exactly the subset of its images accepted here — the stratifier in
/// [`crate::hardness`] relies on that to split core from residue with
/// the *same* classifier the router uses.
pub fn accepts(ax: &Axiom) -> bool {
    let mut c = Compiler::default();
    c.axiom(ax).is_some()
}

#[derive(Default)]
struct Compiler {
    preds: HashMap<ConceptName, u32>,
    n_preds: u32,
    roles: HashMap<RoleName, u32>,
    n_roles: u32,
    inds: HashMap<IndividualName, u32>,
    n_inds: u32,
    rules: Vec<Rule>,
    base_unary: Vec<(u32, u32)>,
    base_edges: Vec<(u32, u32, u32)>,
    /// Auxiliary predicate per complex subconcept, so repeated
    /// subconcepts share their rule set.
    aux: HashMap<Concept, u32>,
    /// Marker predicate per individual with a complex assertion.
    markers: HashMap<IndividualName, u32>,
}

impl Compiler {
    fn pred(&mut self, name: &ConceptName) -> u32 {
        *self.preds.entry(name.clone()).or_insert_with(|| {
            self.n_preds += 1;
            self.n_preds - 1
        })
    }

    fn fresh_pred(&mut self) -> u32 {
        self.n_preds += 1;
        self.n_preds - 1
    }

    fn role(&mut self, name: &RoleName) -> u32 {
        *self.roles.entry(name.clone()).or_insert_with(|| {
            self.n_roles += 1;
            self.n_roles - 1
        })
    }

    fn ind(&mut self, name: &IndividualName) -> u32 {
        *self.inds.entry(name.clone()).or_insert_with(|| {
            self.n_inds += 1;
            self.n_inds - 1
        })
    }

    /// One axiom of the classical image; `None` rejects the module.
    fn axiom(&mut self, ax: &Axiom) -> Option<()> {
        match ax {
            Axiom::ConceptInclusion(lhs, rhs) => {
                for disjunct in flatten_or(lhs) {
                    let src = self.body_pred(disjunct)?;
                    self.emit_head(rhs, src)?;
                }
                Some(())
            }
            Axiom::RoleInclusion(r, s) => {
                let rule = Rule::RoleIncl {
                    head: self.role(s.name()),
                    body: self.role(r.name()),
                    swap: r.is_inverse() != s.is_inverse(),
                };
                self.rules.push(rule);
                Some(())
            }
            Axiom::Transitive(r) => {
                let role = self.role(r);
                self.rules.push(Rule::Trans { role });
                Some(())
            }
            Axiom::ConceptAssertion(a, c) => self.assert_concept(a, c),
            Axiom::RoleAssertion(r, a, b) => {
                let edge = (self.role(r), self.ind(a), self.ind(b));
                self.base_edges.push(edge);
                Some(())
            }
            // Inert without equality reasoning in the fragment — but a
            // reflexive `a ≠ a` is a contradiction, which Horn modules
            // must not contain (they are reported always-satisfiable).
            Axiom::DifferentIndividuals(a, b) if a != b => {
                self.ind(a);
                self.ind(b);
                Some(())
            }
            // Equality, datatypes, and reflexive distinctness leave the
            // fragment.
            _ => None,
        }
    }

    /// An asserted concept: atomic conjunctions become base facts;
    /// `∀`-shaped parts are routed through a per-individual marker
    /// predicate and the head grammar.
    fn assert_concept(&mut self, a: &IndividualName, c: &Concept) -> Option<()> {
        match c {
            Concept::Top => Some(()),
            Concept::Atomic(p) => {
                let fact = (self.pred(p), self.ind(a));
                self.base_unary.push(fact);
                Some(())
            }
            Concept::And(l, r) => {
                self.assert_concept(a, l)?;
                self.assert_concept(a, r)
            }
            Concept::All(..) => {
                let m = match self.markers.get(a) {
                    Some(&m) => m,
                    None => {
                        let m = self.fresh_pred();
                        self.markers.insert(a.clone(), m);
                        let fact = (m, self.ind(a));
                        self.base_unary.push(fact);
                        m
                    }
                };
                self.emit_head(c, Some(m))
            }
            _ => None,
        }
    }

    /// The left side of one clause: a conjunction of unary constraints
    /// on the inclusion variable, collapsed to at most one predicate
    /// (`None` = unconstrained, i.e. `⊤`).
    fn body_pred(&mut self, c: &Concept) -> Option<Option<u32>> {
        if let Some(&p) = self.aux.get(c) {
            return Some(Some(p));
        }
        let conj = self.body_conj(c)?;
        Some(match conj.len() {
            0 => None,
            1 => Some(conj[0]),
            _ => {
                let p = self.fresh_pred();
                self.aux.insert(c.clone(), p);
                self.rules.push(Rule::Conj {
                    head: p,
                    body: conj,
                });
                Some(p)
            }
        })
    }

    fn body_conj(&mut self, c: &Concept) -> Option<Vec<u32>> {
        match c {
            Concept::Top => Some(Vec::new()),
            Concept::Atomic(p) => Some(vec![self.pred(p)]),
            Concept::And(l, r) => {
                let mut out = self.body_conj(l)?;
                out.extend(self.body_conj(r)?);
                Some(out)
            }
            Concept::Some(role, filler) => {
                if let Some(&p) = self.aux.get(c) {
                    return Some(vec![p]);
                }
                let filler = self.body_pred(filler)?;
                let p = self.fresh_pred();
                self.aux.insert(c.clone(), p);
                let rule = Rule::Edge {
                    head: p,
                    role: self.role(role.name()),
                    // `∃R.F` constrains the edge's source; `∃R⁻.F` its
                    // destination.
                    head_at_src: !role.is_inverse(),
                    filler,
                };
                self.rules.push(rule);
                Some(vec![p])
            }
            Concept::AtLeast(0, _) => Some(Vec::new()),
            Concept::AtLeast(1, role) => {
                if let Some(&p) = self.aux.get(c) {
                    return Some(vec![p]);
                }
                let p = self.fresh_pred();
                self.aux.insert(c.clone(), p);
                let rule = Rule::Edge {
                    head: p,
                    role: self.role(role.name()),
                    head_at_src: !role.is_inverse(),
                    filler: None,
                };
                self.rules.push(rule);
                Some(vec![p])
            }
            // `⊔` below the top level, `¬`, `⊥`, nominals, `≥n`/`≤n`,
            // datatypes: genuinely disjunctive / numeric — not Horn.
            _ => None,
        }
    }

    /// The right side of a clause, with `src` the (collapsed) body
    /// predicate (`None` = fires on every element).
    fn emit_head(&mut self, c: &Concept, src: Option<u32>) -> Option<()> {
        match c {
            Concept::Top => Some(()),
            Concept::Atomic(p) => {
                let head = self.pred(p);
                self.rules.push(Rule::Conj {
                    head,
                    body: src.into_iter().collect(),
                });
                Some(())
            }
            Concept::And(l, r) => {
                self.emit_head(l, src)?;
                self.emit_head(r, src)
            }
            Concept::All(role, filler) => {
                if matches!(**filler, Concept::Top) {
                    return Some(());
                }
                let target = self.head_pred(filler)?;
                let rule = Rule::Edge {
                    head: target,
                    role: self.role(role.name()),
                    // `src ⊑ ∀R.F` pushes `F` to the edge's destination
                    // (guarded by `src` at the source); the inverse role
                    // pushes backwards.
                    head_at_src: role.is_inverse(),
                    filler: src,
                };
                self.rules.push(rule);
                Some(())
            }
            // Existential heads would need fresh witnesses (no least
            // Herbrand model); `⊔`, `¬`, `⊥`, nominals and the numeric /
            // datatype constructs are not Horn heads either.
            _ => None,
        }
    }

    /// A single predicate equivalent to the head concept `c` (for `∀`
    /// targets): atomic names directly, anything else via a memoized
    /// auxiliary predicate defined by `aux ⊑ c`.
    fn head_pred(&mut self, c: &Concept) -> Option<u32> {
        match c {
            Concept::Atomic(p) => Some(self.pred(p)),
            _ => {
                if let Some(&p) = self.aux.get(c) {
                    return Some(p);
                }
                let p = self.fresh_pred();
                self.aux.insert(c.clone(), p);
                self.emit_head(c, Some(p))?;
                Some(p)
            }
        }
    }

    fn finish(self) -> HornProgram {
        let mut rules_by_head_pred = vec![Vec::new(); self.n_preds as usize];
        let mut rules_by_head_role = vec![Vec::new(); self.n_roles as usize];
        for (i, rule) in self.rules.iter().enumerate() {
            match rule {
                Rule::Conj { head, .. } | Rule::Edge { head, .. } => {
                    rules_by_head_pred[*head as usize].push(i)
                }
                Rule::RoleIncl { head, .. } => rules_by_head_role[*head as usize].push(i),
                Rule::Trans { role } => rules_by_head_role[*role as usize].push(i),
            }
        }
        let mut unary_by_pred = vec![Vec::new(); self.n_preds as usize];
        for &(p, a) in &self.base_unary {
            unary_by_pred[p as usize].push(a);
        }
        let mut edges_by_role = vec![Vec::new(); self.n_roles as usize];
        for &(r, s, d) in &self.base_edges {
            edges_by_role[r as usize].push((s, d));
        }
        HornProgram {
            preds: self.preds,
            n_preds: self.n_preds,
            n_roles: self.n_roles,
            inds: self.inds,
            n_inds: self.n_inds,
            rules: self.rules,
            base_unary: self.base_unary,
            base_edges: self.base_edges,
            rules_by_head_pred,
            rules_by_head_role,
            unary_by_pred,
            edges_by_role,
            closures: Mutex::new(HashMap::new()),
            subsumers: Mutex::new(HashMap::new()),
        }
    }
}

/// Flatten a (possibly nested) top-level disjunction into its disjuncts.
fn flatten_or(c: &Concept) -> Vec<&Concept> {
    match c {
        Concept::Or(l, r) => {
            let mut out = flatten_or(l);
            out.extend(flatten_or(r));
            out
        }
        _ => vec![c],
    }
}

/// A growable bitset over `u32` ids (the relevance pass's working set).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
struct BitSet(Vec<u64>);

impl BitSet {
    fn with_capacity(n: u32) -> Self {
        BitSet(vec![0; (n as usize).div_ceil(64)])
    }

    fn insert(&mut self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i as usize % 64);
        let fresh = self.0[w] & (1 << b) == 0;
        self.0[w] |= 1 << b;
        fresh
    }

    fn contains(&self, i: u32) -> bool {
        self.0[i as usize / 64] & (1 << (i as usize % 64)) != 0
    }
}

impl HornProgram {
    /// Total clause count (rules plus base facts) — the `horn_clauses`
    /// statistic.
    pub fn clause_count(&self) -> u64 {
        (self.rules.len() + self.base_unary.len() + self.base_edges.len()) as u64
    }

    /// `K̄ ⊨ goal(a)` for a split-atomic goal. Exact: matches the
    /// tableau verdict on the same module bit for bit.
    pub fn is_instance(&self, a: &IndividualName, goal: &ConceptName) -> HornAnswer {
        let Some(&p) = self.preds.get(goal) else {
            // A predicate the module never mentions is empty in the
            // least model.
            return HornAnswer {
                holds: false,
                rounds: 0,
            };
        };
        // Individuals the module never mentions behave like the
        // anonymous element: only empty-body consequences reach them.
        let x = self.inds.get(a).copied().unwrap_or(self.n_inds);
        let (closure, rounds) = self.closure_for_goal(p);
        HornAnswer {
            holds: closure.unary.contains(&(p, x)),
            rounds,
        }
    }

    /// `K̄ ⊨ sub ⊑ sup` for split-atomic sides: `sup` must be derivable
    /// from `{sub}` by the unary (`Conj`) rules alone — a fresh test
    /// element has no role edges, so edge rules can never fire on it.
    pub fn subsumes(&self, sub: &ConceptName, sup: &ConceptName) -> HornAnswer {
        if sub == sup {
            return HornAnswer {
                holds: true,
                rounds: 0,
            };
        }
        let start = self.preds.get(sub).copied();
        let goal = self.preds.get(sup).copied();
        let (reach, rounds) = self.unary_reach(start);
        HornAnswer {
            holds: goal.is_some_and(|g| reach.contains(&g)),
            rounds,
        }
    }

    /// The unary-rule closure of `{start}` (plus every empty-body
    /// consequence), memoized per start predicate.
    fn unary_reach(&self, start: Option<u32>) -> (Arc<HashSet<u32>>, u64) {
        if let Some(hit) = crate::cache::lock_mutex(&self.subsumers).get(&start) {
            return (Arc::clone(hit), 0);
        }
        let mut reach: HashSet<u32> = HashSet::new();
        let mut rounds = 0u64;
        if let Some(p) = start {
            reach.insert(p);
        }
        // Empty-body rules hold at the test element too.
        for rule in &self.rules {
            if let Rule::Conj { head, body } = rule {
                if body.is_empty() {
                    reach.insert(*head);
                }
            }
        }
        // The unary slice is small; a naive round-based fixpoint stays
        // cheap and obviously correct (the delta machinery lives in
        // `saturate`, where it matters).
        loop {
            let mut fresh = false;
            for rule in &self.rules {
                if let Rule::Conj { head, body } = rule {
                    if !reach.contains(head)
                        && !body.is_empty()
                        && body.iter().all(|b| reach.contains(b))
                    {
                        reach.insert(*head);
                        fresh = true;
                    }
                }
            }
            if !fresh {
                break;
            }
            rounds += 1;
        }
        let reach = Arc::new(reach);
        crate::cache::lock_mutex(&self.subsumers).insert(start, Arc::clone(&reach));
        (reach, rounds)
    }

    /// The goal-directed closure answering facts about `goal`: relevance
    /// pass, then memo lookup, then (on a miss) semi-naive saturation of
    /// the relevant slice.
    fn closure_for_goal(&self, goal: u32) -> (Arc<Closure>, u64) {
        let (preds, roles) = self.relevant(goal);
        let key = (preds.0.clone(), roles.0.clone());
        if let Some(hit) = crate::cache::lock_mutex(&self.closures).get(&key) {
            return (Arc::clone(hit), 0);
        }
        let closure = Arc::new(self.saturate(&preds, &roles));
        let rounds = closure.rounds;
        crate::cache::lock_mutex(&self.closures).insert(key, Arc::clone(&closure));
        (closure, rounds)
    }

    /// Magic-sets-style relevance: the predicates and roles backward
    /// reachable from the goal through rule heads. Only rules whose head
    /// is relevant can contribute a goal fact, so saturation loads and
    /// fires nothing else.
    fn relevant(&self, goal: u32) -> (BitSet, BitSet) {
        let mut preds = BitSet::with_capacity(self.n_preds);
        let mut roles = BitSet::with_capacity(self.n_roles);
        let mut pred_work = vec![goal];
        let mut role_work: Vec<u32> = Vec::new();
        preds.insert(goal);
        while !pred_work.is_empty() || !role_work.is_empty() {
            if let Some(p) = pred_work.pop() {
                for &i in &self.rules_by_head_pred[p as usize] {
                    match &self.rules[i] {
                        Rule::Conj { body, .. } => {
                            for &b in body {
                                if preds.insert(b) {
                                    pred_work.push(b);
                                }
                            }
                        }
                        Rule::Edge { role, filler, .. } => {
                            if roles.insert(*role) {
                                role_work.push(*role);
                            }
                            if let Some(f) = filler {
                                if preds.insert(*f) {
                                    pred_work.push(*f);
                                }
                            }
                        }
                        _ => unreachable!("indexed by head pred"),
                    }
                }
                continue;
            }
            if let Some(r) = role_work.pop() {
                for &i in &self.rules_by_head_role[r as usize] {
                    match &self.rules[i] {
                        Rule::RoleIncl { body, .. } => {
                            if roles.insert(*body) {
                                role_work.push(*body);
                            }
                        }
                        Rule::Trans { .. } => {}
                        _ => unreachable!("indexed by head role"),
                    }
                }
            }
        }
        (preds, roles)
    }

    /// Semi-naive saturation of the relevant slice: every derivation in
    /// round `n + 1` consumes at least one fact first derived in round
    /// `n`, found through the per-predicate / per-role-endpoint indexes.
    fn saturate(&self, rel_preds: &BitSet, rel_roles: &BitSet) -> Closure {
        // Secondary rule indexes over the relevant slice: which rules
        // consume a unary fact of predicate `p` / an edge of role `r`.
        let mut conj_by_body: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut edge_by_filler: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut edge_by_role: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut incl_by_body: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut trans_roles: HashSet<u32> = HashSet::new();
        let mut empty_body_heads: Vec<u32> = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            match rule {
                Rule::Conj { head, body } => {
                    if !rel_preds.contains(*head) {
                        continue;
                    }
                    if body.is_empty() {
                        empty_body_heads.push(*head);
                    }
                    for &b in body {
                        conj_by_body.entry(b).or_default().push(i);
                    }
                }
                Rule::Edge {
                    head, role, filler, ..
                } => {
                    if !rel_preds.contains(*head) {
                        continue;
                    }
                    edge_by_role.entry(*role).or_default().push(i);
                    if let Some(f) = filler {
                        edge_by_filler.entry(*f).or_default().push(i);
                    }
                }
                Rule::RoleIncl { head, body, .. } => {
                    if rel_roles.contains(*head) {
                        incl_by_body.entry(*body).or_default().push(i);
                    }
                }
                Rule::Trans { role } => {
                    if rel_roles.contains(*role) {
                        trans_roles.insert(*role);
                    }
                }
            }
        }

        let mut unary: HashSet<(u32, u32)> = HashSet::new();
        let mut edges: HashSet<(u32, u32, u32)> = HashSet::new();
        let mut out_index: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        let mut in_index: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        let mut delta_unary: Vec<(u32, u32)> = Vec::new();
        let mut delta_edges: Vec<(u32, u32, u32)> = Vec::new();

        // Load the base facts of relevant predicates/roles only, through
        // the per-predicate and per-role fact indexes …
        for p in 0..self.n_preds {
            if !rel_preds.contains(p) {
                continue;
            }
            for &a in &self.unary_by_pred[p as usize] {
                if unary.insert((p, a)) {
                    delta_unary.push((p, a));
                }
            }
        }
        for r in 0..self.n_roles {
            if !rel_roles.contains(r) {
                continue;
            }
            for &(s, d) in &self.edges_by_role[r as usize] {
                if edges.insert((r, s, d)) {
                    out_index.entry((r, s)).or_default().push(d);
                    in_index.entry((r, d)).or_default().push(s);
                    delta_edges.push((r, s, d));
                }
            }
        }
        // … and the empty-body consequences, which hold for every
        // element of the domain including the anonymous one.
        for &h in &empty_body_heads {
            for x in 0..=self.n_inds {
                if unary.insert((h, x)) {
                    delta_unary.push((h, x));
                }
            }
        }

        let mut rounds = 0u64;
        while !delta_unary.is_empty() || !delta_edges.is_empty() {
            rounds += 1;
            let mut next_unary: Vec<(u32, u32)> = Vec::new();
            let mut next_edges: Vec<(u32, u32, u32)> = Vec::new();
            {
                // Borrow-friendly derivation sinks: dedupe against the
                // global sets, push fresh facts into the next delta.
                let derive_unary = |fact: (u32, u32),
                                    unary: &mut HashSet<(u32, u32)>,
                                    next: &mut Vec<(u32, u32)>| {
                    if unary.insert(fact) {
                        next.push(fact);
                    }
                };
                for (p, x) in delta_unary.drain(..) {
                    for &i in conj_by_body.get(&p).into_iter().flatten() {
                        let Rule::Conj { head, body } = &self.rules[i] else {
                            unreachable!()
                        };
                        if body.iter().all(|b| unary.contains(&(*b, x))) {
                            derive_unary((*head, x), &mut unary, &mut next_unary);
                        }
                    }
                    // A new filler fact activates edge rules over the
                    // already-known edges adjacent to `x`.
                    for &i in edge_by_filler.get(&p).into_iter().flatten() {
                        let Rule::Edge {
                            head,
                            role,
                            head_at_src,
                            ..
                        } = &self.rules[i]
                        else {
                            unreachable!()
                        };
                        // The filler sits at the non-head end of the
                        // edge, so a filler fact at `x` activates edges
                        // whose *other* end is `x`.
                        if *head_at_src {
                            for &s in in_index.get(&(*role, x)).into_iter().flatten() {
                                derive_unary((*head, s), &mut unary, &mut next_unary);
                            }
                        } else {
                            for &d in out_index.get(&(*role, x)).into_iter().flatten() {
                                derive_unary((*head, d), &mut unary, &mut next_unary);
                            }
                        }
                    }
                }
                for (r, s, d) in delta_edges.drain(..) {
                    for &i in edge_by_role.get(&r).into_iter().flatten() {
                        let Rule::Edge {
                            head,
                            head_at_src,
                            filler,
                            ..
                        } = &self.rules[i]
                        else {
                            unreachable!()
                        };
                        let (hx, ox) = if *head_at_src { (s, d) } else { (d, s) };
                        if filler.is_none_or(|f| unary.contains(&(f, ox))) {
                            derive_unary((*head, hx), &mut unary, &mut next_unary);
                        }
                    }
                    for &i in incl_by_body.get(&r).into_iter().flatten() {
                        let Rule::RoleIncl { head, swap, .. } = &self.rules[i] else {
                            unreachable!()
                        };
                        let (ns, nd) = if *swap { (d, s) } else { (s, d) };
                        if edges.insert((*head, ns, nd)) {
                            out_index.entry((*head, ns)).or_default().push(nd);
                            in_index.entry((*head, nd)).or_default().push(ns);
                            next_edges.push((*head, ns, nd));
                        }
                    }
                    if trans_roles.contains(&r) {
                        let mut joined: Vec<(u32, u32, u32)> = Vec::new();
                        for &e in out_index.get(&(r, d)).into_iter().flatten() {
                            joined.push((r, s, e));
                        }
                        for &w in in_index.get(&(r, s)).into_iter().flatten() {
                            joined.push((r, w, d));
                        }
                        for fact in joined {
                            if edges.insert(fact) {
                                out_index.entry((fact.0, fact.1)).or_default().push(fact.2);
                                in_index.entry((fact.0, fact.2)).or_default().push(fact.1);
                                next_edges.push(fact);
                            }
                        }
                    }
                }
            }
            delta_unary = next_unary;
            delta_edges = next_edges;
        }
        Closure { unary, rounds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::ModuleExtractor;
    use crate::parse_kb4;

    /// Compile the full classical image of a parsed KB4.
    fn program(src: &str) -> Option<HornProgram> {
        let kb = parse_kb4(src).unwrap();
        let ex = ModuleExtractor::new(&kb);
        let images: Vec<_> = (0..kb.len()).flat_map(|i| ex.images(i).to_vec()).collect();
        compile(images.iter())
    }

    fn name(s: &str) -> ConceptName {
        ConceptName::new(s)
    }

    fn ind(s: &str) -> IndividualName {
        IndividualName::new(s)
    }

    #[test]
    fn internal_chains_saturate() {
        let p = program("A SubClassOf B\nB SubClassOf C\nx : A").unwrap();
        assert!(p.is_instance(&ind("x"), &name("A+")).holds);
        assert!(p.is_instance(&ind("x"), &name("C+")).holds);
        assert!(!p.is_instance(&ind("x"), &name("C-")).holds);
        assert!(!p.is_instance(&ind("ghost"), &name("C+")).holds);
        assert!(p.subsumes(&name("A+"), &name("C+")).holds);
        assert!(!p.subsumes(&name("C+"), &name("A+")).holds);
    }

    #[test]
    fn negation_absorbs_to_horn_facts_and_heads() {
        // `A ⊑ ¬B` images to the atomic `A+ ⊑ B-`; `x : ¬A` to `x : A-`.
        let p = program("A SubClassOf not B\nx : A\ny : not A").unwrap();
        assert!(p.is_instance(&ind("x"), &name("B-")).holds);
        assert!(p.is_instance(&ind("y"), &name("A-")).holds);
        assert!(!p.is_instance(&ind("y"), &name("B-")).holds);
    }

    #[test]
    fn strong_inclusions_contrapose_through_the_image() {
        let p = program("A StrongSubClassOf B\nx : not B").unwrap();
        assert!(p.is_instance(&ind("x"), &name("A-")).holds);
        assert!(p.subsumes(&name("B-"), &name("A-")).holds);
    }

    #[test]
    fn existential_bodies_and_universal_heads() {
        let p = program(
            "hasPatient some Patient SubClassOf Doctor
             Doctor SubClassOf treats only Treated
             mary : Patient
             hasPatient(bill, mary)
             treats(bill, kate)",
        )
        .unwrap();
        assert!(p.is_instance(&ind("bill"), &name("Doctor+")).holds);
        assert!(p.is_instance(&ind("kate"), &name("Treated+")).holds);
        assert!(!p.is_instance(&ind("mary"), &name("Doctor+")).holds);
    }

    #[test]
    fn role_hierarchy_and_transitivity_feed_edge_rules() {
        let p = program(
            "r SubRoleOf s
             Transitive(s)
             s some Thing SubClassOf Linked
             s(a, b)
             r(b, c)",
        )
        .unwrap();
        // r(b,c) ⊑ s(b,c); s transitive gives s(a,c); ∃s.⊤ marks a and b.
        assert!(p.is_instance(&ind("a"), &name("Linked+")).holds);
        assert!(p.is_instance(&ind("b"), &name("Linked+")).holds);
        assert!(!p.is_instance(&ind("c"), &name("Linked+")).holds);
    }

    #[test]
    fn min_cardinality_one_is_an_existential() {
        let p = program("hasChild min 1 SubClassOf Parent\nhasChild(smith, kate)").unwrap();
        assert!(p.is_instance(&ind("smith"), &name("Parent+")).holds);
        assert!(!p.is_instance(&ind("kate"), &name("Parent+")).holds);
    }

    #[test]
    fn material_images_are_rejected() {
        // `A ↦ B` images to `¬A⁻ ⊑ B⁺` — a negation in the body.
        assert!(program("A MaterialSubClassOf B\nx : A").is_none());
    }

    #[test]
    fn classical_constructs_are_rejected() {
        assert!(program("a : {b}").is_none(), "nominals");
        assert!(program("a != a").is_none(), "reflexive distinctness");
        assert!(program("a = b").is_none(), "equality");
        assert!(program("not r(a, b)").is_none(), "negative role assertion");
        assert!(
            program("hasChild min 2 SubClassOf Busy").is_none(),
            "counting"
        );
        assert!(
            program("A SubClassOf hasChild max 1").is_none(),
            "at-most head"
        );
        assert!(program("A SubClassOf B or C").is_none(), "disjunctive head");
        assert!(
            program("A SubClassOf r some B").is_none(),
            "existential head"
        );
    }

    #[test]
    fn distinct_individuals_are_inert_but_accepted() {
        let p = program("a != b\nx : A").unwrap();
        assert!(p.is_instance(&ind("x"), &name("A+")).holds);
    }

    #[test]
    fn top_level_disjunctive_bodies_split_into_clauses() {
        let p = program("A or B SubClassOf C\nx : A\ny : B\nz : D").unwrap();
        assert!(p.is_instance(&ind("x"), &name("C+")).holds);
        assert!(p.is_instance(&ind("y"), &name("C+")).holds);
        assert!(!p.is_instance(&ind("z"), &name("C+")).holds);
    }

    #[test]
    fn inverse_roles_orient_edge_rules() {
        let p = program(
            "inverse parentOf some Thing SubClassOf Child
             Person SubClassOf inverse parentOf only ChildOfPerson
             parentOf(ann, bob)
             bob : Person",
        )
        .unwrap();
        // ∃parentOf⁻.⊤ holds at bob (ann is a parent of bob).
        assert!(p.is_instance(&ind("bob"), &name("Child+")).holds);
        assert!(!p.is_instance(&ind("ann"), &name("Child+")).holds);
        // bob : Person, and ∀parentOf⁻ of bob reaches ann along the
        // inverted edge.
        assert!(p.is_instance(&ind("ann"), &name("ChildOfPerson+")).holds);
    }

    #[test]
    fn unknown_individuals_get_only_empty_body_consequences() {
        let p = program("Thing SubClassOf Universal\nA SubClassOf B\nx : A").unwrap();
        assert!(p.is_instance(&ind("ghost"), &name("Universal+")).holds);
        assert!(!p.is_instance(&ind("ghost"), &name("B+")).holds);
        assert!(p.is_instance(&ind("x"), &name("Universal+")).holds);
        // Subsumption sees the ⊤-closure too.
        assert!(p.subsumes(&name("Zzz+"), &name("Universal+")).holds);
    }

    #[test]
    fn memoized_closures_report_zero_fresh_rounds() {
        let p = program("A SubClassOf B\nB SubClassOf C\nx : A").unwrap();
        let first = p.is_instance(&ind("x"), &name("C+"));
        assert!(first.holds && first.rounds > 0);
        let again = p.is_instance(&ind("x"), &name("C+"));
        assert!(again.holds && again.rounds == 0);
        // A different goal with the same relevance cone shares the
        // closure.
        let b = p.is_instance(&ind("x"), &name("B+"));
        assert!(b.holds);
    }

    #[test]
    fn relevance_pass_skips_unrelated_rules() {
        // Two islands: the B-goal cone must not load the D-island facts.
        let p = program(
            "A SubClassOf B
             C SubClassOf D
             x : A
             y : C",
        )
        .unwrap();
        let ans = p.is_instance(&ind("x"), &name("B+"));
        assert!(ans.holds);
        let (preds, _) = p.relevant(p.preds[&name("B+")]);
        assert!(preds.contains(p.preds[&name("A+")]));
        assert!(!preds.contains(p.preds[&name("D+")]));
        assert!(!preds.contains(p.preds[&name("C+")]));
    }

    #[test]
    fn clause_count_includes_rules_and_facts() {
        let p = program("A SubClassOf B\nx : A\nr(x, y)").unwrap();
        assert_eq!(p.clause_count(), 3);
    }
}
