//! The model correspondences of Definitions 8 and 9: from a four-valued
//! interpretation of `K` to a classical interpretation of `K̄` and back.
//!
//! These mappings are what make Lemma 5 and Theorem 6 *checkable*: the
//! test suite enumerates small four-valued models, pushes them through
//! [`classical_induced`], and verifies that satisfaction is preserved in
//! both directions (and dually with [`four_valued_induced`]).
//!
//! Classical interpretations are represented as [`Interp4`] values whose
//! assignments are all classical pairs — the embedding the paper uses
//! (`P ∩ N = ∅`, `P ∪ N = Δ`).

use crate::interp4::{DataRolePair, Elem, Interp4, RolePair};
use crate::kb4::KnowledgeBase4;
use crate::transform::{
    eq_data_role, eq_role, neg_concept_name, plus_data_role, plus_role, pos_concept_name,
};
use dl::axiom::RoleExpr;
use dl::datatype::DataValue;
use dl::kb::Signature;
use fourval::SetPair;
use std::collections::BTreeSet;

fn all_pairs(domain: &BTreeSet<Elem>) -> BTreeSet<(Elem, Elem)> {
    domain
        .iter()
        .flat_map(|&x| domain.iter().map(move |&y| (x, y)))
        .collect()
}

fn all_data_pairs(
    domain: &BTreeSet<Elem>,
    data_domain: &BTreeSet<DataValue>,
) -> BTreeSet<(Elem, DataValue)> {
    domain
        .iter()
        .flat_map(|&x| data_domain.iter().map(move |v| (x, v.clone())))
        .collect()
}

/// Definition 8: the classical induced interpretation `Ī` of a
/// four-valued `I`, over the transformed vocabulary of `K̄`.
///
/// * same domain and individual mapping;
/// * `(A⁺)^Ī = proj⁺(A^I)`, `(A⁻)^Ī = proj⁻(A^I)`;
/// * `(R⁺)^Ī = proj⁺(R^I)`, `(R⁼)^Ī = Δ×Δ ∖ proj⁻(R^I)`;
/// * datatype roles analogously over the active data domain.
///
/// The result is classical: every concept pair is `<P, Δ∖P>` and every
/// role pair `<P, Δ²∖P>`.
pub fn classical_induced(i: &Interp4, kb: &KnowledgeBase4) -> Interp4 {
    let sig: Signature = kb.signature();
    let mut out = clone_domain(i);
    for a in &sig.concepts {
        let pair = i.concept(a);
        let pos_comp: BTreeSet<Elem> = i.domain().difference(&pair.pos).copied().collect();
        let neg_comp: BTreeSet<Elem> = i.domain().difference(&pair.neg).copied().collect();
        out.set_concept(
            pos_concept_name(a),
            SetPair {
                pos: pair.pos.clone(),
                neg: pos_comp,
            },
        );
        out.set_concept(
            neg_concept_name(a),
            SetPair {
                pos: pair.neg.clone(),
                neg: neg_comp,
            },
        );
    }
    let full = all_pairs(i.domain());
    for r in &sig.roles {
        let pair = i.role(r);
        let plus = pair.pos.clone();
        let eq: BTreeSet<(Elem, Elem)> = full.difference(&pair.neg).copied().collect();
        out.set_role(
            plus_role(&RoleExpr::named(r.clone())).name().clone(),
            RolePair {
                neg: full.difference(&plus).copied().collect(),
                pos: plus,
            },
        );
        out.set_role(
            eq_role(&RoleExpr::named(r.clone())).name().clone(),
            RolePair {
                pos: eq.clone(),
                neg: full.difference(&eq).copied().collect(),
            },
        );
    }
    let data_full = all_data_pairs(i.domain(), i.data_domain());
    for u in &sig.data_roles {
        let pair = i.data_role(u);
        let plus = pair.pos.clone();
        let eq: BTreeSet<(Elem, DataValue)> = data_full.difference(&pair.neg).cloned().collect();
        out.set_data_role(
            plus_data_role(u),
            DataRolePair {
                neg: data_full.difference(&plus).cloned().collect(),
                pos: plus,
            },
        );
        out.set_data_role(
            eq_data_role(u),
            DataRolePair {
                pos: eq.clone(),
                neg: data_full.difference(&eq).cloned().collect(),
            },
        );
    }
    for v in i.data_domain() {
        out.add_data_value(v.clone());
    }
    out
}

/// Definition 9: the four-valued induced interpretation of a classical
/// interpretation of `K̄`, back over the original vocabulary.
///
/// * `A^I = <(A⁺)^Ī, (A⁻)^Ī>`;
/// * `R^I = <(R⁺)^Ī, Δ×Δ ∖ (R⁼)^Ī>`;
/// * datatype roles analogously.
pub fn four_valued_induced(classical: &Interp4, kb: &KnowledgeBase4) -> Interp4 {
    let sig = kb.signature();
    let mut out = clone_domain(classical);
    for a in &sig.concepts {
        let p = classical.concept(&pos_concept_name(a)).pos;
        let n = classical.concept(&neg_concept_name(a)).pos;
        out.set_concept(a.clone(), SetPair { pos: p, neg: n });
    }
    let full = all_pairs(classical.domain());
    for r in &sig.roles {
        let plus = classical
            .role(plus_role(&RoleExpr::named(r.clone())).name())
            .pos;
        let eq = classical
            .role(eq_role(&RoleExpr::named(r.clone())).name())
            .pos;
        out.set_role(
            r.clone(),
            RolePair {
                pos: plus,
                neg: full.difference(&eq).copied().collect(),
            },
        );
    }
    let data_full = all_data_pairs(classical.domain(), classical.data_domain());
    for u in &sig.data_roles {
        let plus = classical.data_role(&plus_data_role(u)).pos;
        let eq = classical.data_role(&eq_data_role(u)).pos;
        out.set_data_role(
            u.clone(),
            DataRolePair {
                pos: plus,
                neg: data_full.difference(&eq).cloned().collect(),
            },
        );
    }
    for v in classical.data_domain() {
        out.add_data_value(v.clone());
    }
    out
}

/// Copy domain, data domain and individual mapping into a fresh
/// interpretation.
fn clone_domain(i: &Interp4) -> Interp4 {
    let max = i.domain().iter().copied().max().map_or(0, |m| m + 1);
    let mut out = Interp4::with_domain_size(max);
    // with_domain_size(n) creates {0..n-1}; domains are always built that
    // way in this crate, so the shapes coincide.
    debug_assert_eq!(out.domain(), i.domain(), "non-contiguous domain");
    for v in i.data_domain() {
        out.add_data_value(v.clone());
    }
    for (name, elem) in i.individuals() {
        out.set_individual(name.clone(), elem);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inclusion::InclusionKind;
    use crate::kb4::Axiom4;
    use crate::transform::{transform_concept, transform_neg_concept};
    use dl::name::{IndividualName, RoleName};
    use dl::Concept;

    fn pair(pos: &[Elem], neg: &[Elem]) -> SetPair<Elem> {
        SetPair::new(pos.iter().copied(), neg.iter().copied())
    }

    fn sample_kb() -> KnowledgeBase4 {
        KnowledgeBase4::from_axioms([
            Axiom4::ConceptInclusion(
                InclusionKind::Internal,
                Concept::some(RoleExpr::named("r"), Concept::atomic("B")),
                Concept::atomic("A"),
            ),
            Axiom4::ConceptAssertion(IndividualName::new("x"), Concept::atomic("A")),
        ])
    }

    fn sample_interp() -> Interp4 {
        let mut i = Interp4::with_domain_size(3);
        i.set_individual("x", 0);
        i.set_concept("A", pair(&[0, 1], &[1]));
        i.set_concept("B", pair(&[2], &[0]));
        i.set_role(
            "r",
            RolePair {
                pos: BTreeSet::from([(0, 2), (1, 1)]),
                neg: BTreeSet::from([(2, 2)]),
            },
        );
        i
    }

    #[test]
    fn classical_induced_is_classical() {
        let i = sample_interp();
        let c = classical_induced(&i, &sample_kb());
        assert!(c.is_classical());
    }

    #[test]
    fn round_trip_is_identity_on_signature() {
        let i = sample_interp();
        let kb = sample_kb();
        let back = four_valued_induced(&classical_induced(&i, &kb), &kb);
        for a in kb.signature().concepts {
            assert_eq!(back.concept(&a), i.concept(&a), "concept {a}");
        }
        for r in kb.signature().roles {
            assert_eq!(back.role(&r), i.role(&r), "role {r}");
        }
    }

    #[test]
    fn lemma5_projections_match_for_sample_concepts() {
        // eval_Ī(C̄).pos == eval_I(C).pos and eval_Ī(¬C̄).pos == eval_I(C).neg
        let i = sample_interp();
        let kb = sample_kb();
        let ci = classical_induced(&i, &kb);
        let concepts = [
            Concept::atomic("A"),
            Concept::atomic("A").not(),
            Concept::atomic("A").and(Concept::atomic("B")),
            Concept::atomic("A").or(Concept::atomic("B").not()),
            Concept::some(RoleExpr::named("r"), Concept::atomic("B")),
            Concept::all(RoleExpr::named("r"), Concept::atomic("A")),
            Concept::at_least(1, RoleExpr::named("r")),
            Concept::at_most(1, RoleExpr::named("r")),
            Concept::some(RoleExpr::named("r").inverse(), Concept::atomic("A")),
        ];
        for c in &concepts {
            let four = i.eval(c);
            assert_eq!(
                ci.eval(&transform_concept(c)).pos,
                four.pos,
                "positive projection mismatch for {c}"
            );
            assert_eq!(
                ci.eval(&transform_neg_concept(c)).pos,
                four.neg,
                "negative projection mismatch for {c}"
            );
        }
    }

    #[test]
    fn theorem6_satisfaction_transfers() {
        let i = sample_interp();
        let kb = sample_kb();
        let induced_kb = crate::transform::transform_kb(&kb);
        let ci = classical_induced(&i, &kb);
        let classical_as_4 =
            crate::kb4::KnowledgeBase4::from_classical(&induced_kb, InclusionKind::Internal);
        assert_eq!(
            i.satisfies(&kb),
            ci.satisfies(&classical_as_4),
            "satisfaction must transfer through Definition 8"
        );
    }

    #[test]
    fn role_neg_encoded_as_eq_complement() {
        let i = sample_interp();
        let kb = sample_kb();
        let ci = classical_induced(&i, &kb);
        let eq = ci.role(&RoleName::new("r="));
        // (2,2) ∈ proj⁻(r) ⟹ (2,2) ∉ r⁼.
        assert!(!eq.pos.contains(&(2, 2)));
        assert!(eq.pos.contains(&(0, 0)));
    }
}
