//! Static hardness analysis: fragment stratification and search-cost
//! prediction over the classical images of a module (or a whole KB,
//! module by module).
//!
//! The paper's reduction (Definitions 5–7) makes a query's true cost a
//! function of *static* structure: which fragment the scoped module's
//! classical image lands in, and how much disjunctive or existential
//! branching it can force once the tableau runs. This module turns that
//! observation into a compile-time answer three consumers share —
//! `ontolint` Family E (OL401–OL404), the `shoin4 analyze` subcommand,
//! and the serving layer's cost-aware admission lanes.
//!
//! # Stratification
//!
//! [`analyze_images`] splits a module's classical images into
//!
//! * the **Horn core** — images accepted axiom-by-axiom by the *same*
//!   classifier the router uses ([`crate::horn::accepts`]), i.e. the
//!   axioms a saturator could keep;
//! * the **disjunctive residue** — images the Horn compiler rejects
//!   (`¬` in a body, `⊥`, nominals, counting, datatypes, equality …),
//!   each of which forces the module as a whole onto the tableau; and
//! * the **existential-expansion skeleton** — a graph over concept
//!   names approximating how `∃`-successors chain during expansion,
//!   from which we bound chain depth and detect cycles (the shapes that
//!   make the tableau lean on blocking).
//!
//! This closes ROADMAP item 3's leftover at the analysis level: PR 5's
//! router gives up on a module the moment one non-Horn axiom appears;
//! the stratifier identifies exactly *which* axioms those are.
//!
//! # The cost vector and score
//!
//! Per module, [`CostVector`] records: image/core/residue counts, the
//! branch-point count (polarity-aware: `⊔` positive, `⊓` under `¬`,
//! `≤n`, `≥n (n ≥ 2)` under negation, multi-nominals), the ∃-chain
//! depth bound (`None` = cycle = blocking risk), and the predicted
//! clause count of the Horn core. The scalar [`score`] is
//!
//! ```text
//! score = 4·branch_points + 4·residue + depth_term + ½·log₂(1 + clauses)
//! ```
//!
//! with `depth_term = exists_depth` when bounded and the flat
//! [`UNBOUNDED_DEPTH_PENALTY`] when the skeleton is cyclic. The weights
//! are calibrated, not vibes: the rank-correlation suite
//! (`hardness_calibration.rs`) asserts that ordering modules by this
//! score agrees with ordering them by measured tableau effort
//! (`Stats::branch_depth_peak`, `Stats::rule_applications`) across
//! ontogen corpora spanning Horn, disjunctive and ∃-heavy shapes.
//! Branching dominates because each branch point multiplies the search
//! frontier; residue axioms each disable the saturation short-cut for
//! some goal cone; depth contributes linearly (expansion is linear in
//! chain length until a cycle forces blocking, which is why a cycle
//! jumps to a flat penalty); the clause term is a tie-breaker so bigger
//! Horn modules rank above trivial ones without ever outweighing a
//! single branch point.
//!
//! The skeleton is an *over-approximation* (it treats `¬` and `∀`
//! transparently and ignores which successors actually materialize), so
//! the score is an upper-bound-flavoured heuristic — fine for ranking
//! and lane placement, never consulted for verdicts.
//!
//! Everything here is a pure function of the image *multiset*: scores
//! are invariant under axiom reorder and equal for a module whether it
//! is analyzed in situ or extracted first (the invariance proptests pin
//! both laws).

use crate::dataflow::ModuleExtractor;
use crate::horn;
use crate::kb4::KnowledgeBase4;
use dl::axiom::Axiom;
use dl::Concept;
use std::collections::{BTreeMap, BTreeSet};

/// Flat depth term charged when the ∃-skeleton has a cycle: the static
/// analogue of "this module will exercise blocking", which costs more
/// than any bounded chain we generate in practice.
pub const UNBOUNDED_DEPTH_PENALTY: f64 = 64.0;

/// Default score threshold splitting cheap from heavy: a module with no
/// residue and no cycles stays below it until its Horn core grows past
/// ~65k clauses, while a single branch point plus a couple of residue
/// axioms (the smallest genuinely disjunctive module) lands above.
pub const DEFAULT_HEAVY_THRESHOLD: f64 = 8.0;

/// The per-module static cost vector (see the module docs for the
/// semantics of each component).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostVector {
    /// Classical images analyzed.
    pub images: usize,
    /// Images accepted by the Horn classifier ([`horn::accepts`]).
    pub horn_core: usize,
    /// Images rejected — each forces the tableau for the whole module.
    pub residue: usize,
    /// Polarity-aware disjunction/merging points across all images.
    pub branch_points: u64,
    /// Longest ∃-expansion chain in the skeleton; `None` = cycle
    /// (unbounded expansion, blocking risk).
    pub exists_depth: Option<u32>,
    /// Clause count of the compiled Horn core (rules + base facts).
    pub predicted_clauses: u64,
}

impl CostVector {
    /// Residue images as a fraction of all images (0.0 for an empty
    /// module).
    pub fn residue_fraction(&self) -> f64 {
        if self.images == 0 {
            0.0
        } else {
            self.residue as f64 / self.images as f64
        }
    }
}

/// A stratified module: the cost vector plus its scalar score.
#[derive(Debug, Clone, PartialEq)]
pub struct HardnessReport {
    /// The static cost vector.
    pub cost: CostVector,
    /// `score(&cost)`, precomputed.
    pub score: f64,
}

/// The documented scoring formula (see the module docs for the
/// calibration rationale behind each weight).
pub fn score(cost: &CostVector) -> f64 {
    let depth_term = match cost.exists_depth {
        Some(d) => d as f64,
        None => UNBOUNDED_DEPTH_PENALTY,
    };
    4.0 * cost.branch_points as f64
        + 4.0 * cost.residue as f64
        + depth_term
        + 0.5 * (1.0 + cost.predicted_clauses as f64).log2()
}

/// Analyze one module given as its classical images. Pure in the image
/// multiset: reordering the input never changes the result.
pub fn analyze_images<'a>(images: impl IntoIterator<Item = &'a Axiom>) -> HardnessReport {
    let mut cost = CostVector::default();
    let mut core: Vec<&Axiom> = Vec::new();
    let mut skeleton = Skeleton::default();
    for ax in images {
        cost.images += 1;
        if horn::accepts(ax) {
            cost.horn_core += 1;
            core.push(ax);
        } else {
            cost.residue += 1;
        }
        cost.branch_points += axiom_branch_points(ax);
        skeleton.add_axiom(ax);
    }
    // Acceptance is axiom-local, so compiling the accepted subset always
    // succeeds; the count is order-invariant because auxiliary
    // predicates are memoized per concept, not per occurrence.
    cost.predicted_clauses = horn::compile(core.iter().copied())
        .map(|p| p.clause_count())
        .unwrap_or(0);
    cost.exists_depth = skeleton.depth_bound();
    let score = score(&cost);
    HardnessReport { cost, score }
}

/// One module of a KB-level analysis: which KB axioms it covers, which
/// of them contribute residue images, and the stratified report.
#[derive(Debug, Clone)]
pub struct ModuleHardness {
    /// KB axiom indices in this module (one dependency component),
    /// sorted.
    pub axioms: Vec<usize>,
    /// The subset of `axioms` with at least one rejected image — the
    /// axioms whose retraction would hand the module back to the Horn
    /// path, sorted.
    pub residue_axioms: Vec<usize>,
    /// The stratified cost report over the module's images.
    pub report: HardnessReport,
}

/// The whole-KB analysis: one [`ModuleHardness`] per signature-dataflow
/// component, in component order (which is itself deterministic in the
/// KB).
#[derive(Debug, Clone)]
pub struct KbHardness {
    /// Per-module reports.
    pub modules: Vec<ModuleHardness>,
}

impl KbHardness {
    /// The hardest module's score (0.0 for an empty KB).
    pub fn max_score(&self) -> f64 {
        self.modules
            .iter()
            .map(|m| m.report.score)
            .fold(0.0, f64::max)
    }

    /// Modules at or above `threshold`.
    pub fn heavy_modules(&self, threshold: f64) -> usize {
        self.modules
            .iter()
            .filter(|m| m.report.score >= threshold)
            .count()
    }
}

/// Analyze every module of a KB: decompose along the signature
/// dependency graph (the same components `shoin4 modules` reports),
/// then stratify each component's image set.
pub fn analyze_kb(kb: &KnowledgeBase4) -> KbHardness {
    let extractor = ModuleExtractor::new(kb);
    let components = extractor.graph().components();
    let modules = components
        .iter()
        .map(|component| {
            let mut axioms: Vec<usize> = component.clone();
            axioms.sort_unstable();
            let report = analyze_images(axioms.iter().flat_map(|&i| extractor.images(i).iter()));
            let residue_axioms = axioms
                .iter()
                .copied()
                .filter(|&i| extractor.images(i).iter().any(|im| !horn::accepts(im)))
                .collect();
            ModuleHardness {
                axioms,
                residue_axioms,
                report,
            }
        })
        .collect();
    KbHardness { modules }
}

/// Branch points contributed by one image axiom. An inclusion's left
/// side is internalized under negation (`L ⊑ R` ≈ `¬L ⊔ R`), so it is
/// walked with flipped polarity.
fn axiom_branch_points(ax: &Axiom) -> u64 {
    match ax {
        Axiom::ConceptInclusion(l, r) => {
            concept_branch_points(l, true) + concept_branch_points(r, false)
        }
        Axiom::ConceptAssertion(_, c) => concept_branch_points(c, false),
        // Role-level and individual-level axioms never open branches by
        // themselves (equality merging is handled where it is asserted,
        // not counted as search branching).
        _ => 0,
    }
}

/// Polarity-aware branch counting: a constructor counts when, under the
/// given negation parity, its tableau rule is disjunctive (`⊔`), a
/// choice point (`≤n` merging), or a nominal merge.
fn concept_branch_points(c: &Concept, negated: bool) -> u64 {
    match c {
        Concept::Or(l, r) => {
            u64::from(!negated)
                + concept_branch_points(l, negated)
                + concept_branch_points(r, negated)
        }
        Concept::And(l, r) => {
            u64::from(negated)
                + concept_branch_points(l, negated)
                + concept_branch_points(r, negated)
        }
        Concept::Not(inner) => concept_branch_points(inner, !negated),
        // ∃ flips to ∀ under negation and vice versa; either way the
        // filler keeps the parity (¬∃R.C = ∀R.¬C pushes ¬ inward).
        Concept::Some(_, f) | Concept::All(_, f) => concept_branch_points(f, negated),
        // ≤n chooses which successors to merge; ¬(≥n) = ≤(n−1) does so
        // when n ≥ 2. Positive ≥n just creates successors: no choice.
        Concept::AtMost(..) => u64::from(!negated),
        Concept::AtLeast(n, _) => u64::from(negated && *n >= 2),
        // A multi-nominal is a disjunction over its members.
        Concept::OneOf(os) => u64::from(os.len() >= 2),
        Concept::Top
        | Concept::Bottom
        | Concept::Atomic(_)
        | Concept::DataSome(..)
        | Concept::DataAll(..)
        | Concept::DataAtLeast(..)
        | Concept::DataAtMost(..) => 0,
    }
}

/// A node of the ∃-expansion skeleton: an atomic concept name, or an
/// anonymous node standing for a filler with no atoms at its own level
/// (keyed by the concept itself so the skeleton stays order-invariant).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum SkelNode {
    Atom(dl::name::ConceptName),
    Anon(Concept),
}

/// The ∃-expansion skeleton: directed edges "a node labelled X can
/// force a successor labelled Y". Built conservatively — `¬` and `∀`
/// fillers are walked transparently, so every chain the tableau could
/// build is covered (plus some it can't).
#[derive(Debug, Default)]
struct Skeleton {
    edges: BTreeMap<SkelNode, BTreeSet<SkelNode>>,
}

impl Skeleton {
    fn add_axiom(&mut self, ax: &Axiom) {
        match ax {
            Axiom::ConceptInclusion(l, r) => {
                let srcs = level_nodes(l);
                self.walk(&srcs, l);
                self.walk(&srcs, r);
            }
            Axiom::ConceptAssertion(_, c) => {
                let srcs = level_nodes(c);
                self.walk(&srcs, c);
            }
            _ => {}
        }
    }

    /// Walk a concept in successor-generating position: each `∃R.F`
    /// adds edges from every source label to `F`'s own-level labels,
    /// then recurses with those labels as the new sources, so nested
    /// existentials chain.
    fn walk(&mut self, srcs: &BTreeSet<SkelNode>, c: &Concept) {
        match c {
            Concept::And(l, r) | Concept::Or(l, r) => {
                self.walk(srcs, l);
                self.walk(srcs, r);
            }
            Concept::Not(inner) => self.walk(srcs, inner),
            Concept::Some(_, filler) => {
                let dsts = level_nodes(filler);
                for s in srcs {
                    for d in &dsts {
                        self.edges.entry(s.clone()).or_default().insert(d.clone());
                    }
                }
                self.walk(&dsts, filler);
            }
            // ∀R.F never creates the successor, but it labels whatever
            // successor some other axiom creates — so its filler chains
            // from the same sources (the conservative choice that makes
            // `A ⊑ ∃r.⊤ ⊓ ∀r.A` come out cyclic, which it is).
            Concept::All(_, filler) => {
                let dsts = level_nodes(filler);
                for s in srcs {
                    for d in &dsts {
                        self.edges.entry(s.clone()).or_default().insert(d.clone());
                    }
                }
                self.walk(&dsts, filler);
            }
            // Unqualified ≥n creates unlabelled successors: the chain
            // ends there (range axioms that relabel them are walked on
            // their own and merge through the shared anon nodes).
            _ => {}
        }
    }

    /// Longest path in the skeleton (edge count), or `None` when a
    /// cycle makes expansion depth unbounded.
    fn depth_bound(&self) -> Option<u32> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            InProgress,
            Done(u32),
        }
        fn dfs(
            node: &SkelNode,
            edges: &BTreeMap<SkelNode, BTreeSet<SkelNode>>,
            state: &mut BTreeMap<SkelNode, Color>,
        ) -> Option<u32> {
            match state.get(node) {
                Some(Color::InProgress) => return None, // cycle
                Some(Color::Done(d)) => return Some(*d),
                None => {}
            }
            state.insert(node.clone(), Color::InProgress);
            let mut best = 0u32;
            if let Some(succs) = edges.get(node) {
                for succ in succs {
                    let d = dfs(succ, edges, state)?;
                    best = best.max(d + 1);
                }
            }
            state.insert(node.clone(), Color::Done(best));
            Some(best)
        }
        let mut state = BTreeMap::new();
        let mut best = 0u32;
        for node in self.edges.keys() {
            best = best.max(dfs(node, &self.edges, &mut state)?);
        }
        Some(best)
    }
}

/// The labels a concept contributes *at its own level*: atomic names
/// reachable without crossing a role restriction. A concept with none
/// (e.g. `∃r.⊤` itself, or bare `⊤`) is represented by an anonymous
/// node keyed by its structure, so chains through unnamed intermediates
/// still connect.
fn level_nodes(c: &Concept) -> BTreeSet<SkelNode> {
    let mut out = BTreeSet::new();
    collect_level_atoms(c, &mut out);
    if out.is_empty() {
        out.insert(SkelNode::Anon(c.clone()));
    }
    out
}

fn collect_level_atoms(c: &Concept, out: &mut BTreeSet<SkelNode>) {
    match c {
        Concept::Atomic(name) => {
            out.insert(SkelNode::Atom(name.clone()));
        }
        Concept::And(l, r) | Concept::Or(l, r) => {
            collect_level_atoms(l, out);
            collect_level_atoms(r, out);
        }
        Concept::Not(inner) => collect_level_atoms(inner, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser4::parse_kb4;

    fn kb(src: &str) -> KnowledgeBase4 {
        parse_kb4(src).expect("parse")
    }

    /// The full classical image list of a KB, for image-level analysis.
    fn images(kb: &KnowledgeBase4) -> Vec<Axiom> {
        let ex = ModuleExtractor::new(kb);
        (0..kb.len()).flat_map(|i| ex.images(i).to_vec()).collect()
    }

    #[test]
    fn horn_chain_is_all_core_and_cheap() {
        let kb = kb("A SubClassOf B\nB SubClassOf C\nx : A");
        let imgs = images(&kb);
        let r = analyze_images(imgs.iter());
        assert_eq!(r.cost.residue, 0);
        assert_eq!(r.cost.horn_core, r.cost.images);
        assert_eq!(r.cost.branch_points, 0);
        assert_eq!(r.cost.exists_depth, Some(0));
        assert!(r.cost.predicted_clauses > 0);
        assert!(r.score < DEFAULT_HEAVY_THRESHOLD, "score {}", r.score);
    }

    #[test]
    fn disjunction_raises_branch_points_and_score() {
        let kb = kb("A SubClassOf B or C\nx : A");
        let r = analyze_images(images(&kb).iter());
        assert!(r.cost.residue > 0, "disjunctive heads leave the fragment");
        assert!(r.cost.branch_points >= 1, "{:?}", r.cost);
        assert!(r.score >= DEFAULT_HEAVY_THRESHOLD, "score {}", r.score);
    }

    #[test]
    fn material_inclusions_are_residue() {
        // Material images carry `¬` in the body: rejected by the Horn
        // classifier, so they are residue with a negated-⊓ branch point.
        let kb = kb("A MaterialSubClassOf B\nx : A");
        let r = analyze_images(images(&kb).iter());
        assert!(r.cost.residue > 0);
        assert!(r.cost.horn_core > 0, "the assertion's images stay core");
    }

    #[test]
    fn exists_chains_measure_depth() {
        let kb = kb("A SubClassOf r some B\nB SubClassOf s some C\nx : A");
        let r = analyze_images(images(&kb).iter());
        // A → B → C: two chained expansions (per polarity the skeleton
        // merges on the shared split names, keeping the bound at 2).
        assert_eq!(r.cost.exists_depth, Some(2), "{:?}", r.cost);
    }

    #[test]
    fn exists_cycles_are_flagged_unbounded() {
        let cyclic = kb("A SubClassOf r some A\nx : A");
        let r = analyze_images(images(&cyclic).iter());
        assert_eq!(r.cost.exists_depth, None);
        assert!(r.score >= UNBOUNDED_DEPTH_PENALTY);
        // The ∀-filler variant of the loop is cyclic too.
        let kb2 = kb("A SubClassOf r some Thing\nA SubClassOf r only A\nx : A");
        let r2 = analyze_images(images(&kb2).iter());
        assert_eq!(r2.cost.exists_depth, None, "{:?}", r2.cost);
    }

    #[test]
    fn score_is_order_invariant() {
        let kb1 = kb("A SubClassOf B or C\nB SubClassOf r some D\nx : A\ny : B");
        let imgs = images(&kb1);
        let forward = analyze_images(imgs.iter());
        let backward = analyze_images(imgs.iter().rev());
        assert_eq!(forward, backward);
    }

    #[test]
    fn analyze_kb_splits_components_and_names_residue() {
        let h = analyze_kb(&kb(
            "A SubClassOf B\nx : A\nP SubClassOf Q or R\nz : P\nz : not Q",
        ));
        assert_eq!(h.modules.len(), 2, "{:?}", h.modules);
        let horn = h.modules.iter().find(|m| m.axioms.contains(&0)).unwrap();
        assert!(horn.residue_axioms.is_empty());
        let disj = h.modules.iter().find(|m| m.axioms.contains(&2)).unwrap();
        assert_eq!(disj.residue_axioms, vec![2], "only the ⊔ axiom");
        assert!(disj.report.score > horn.report.score);
        assert_eq!(h.heavy_modules(DEFAULT_HEAVY_THRESHOLD), 1);
        assert!(h.max_score() >= DEFAULT_HEAVY_THRESHOLD);
    }

    #[test]
    fn empty_kb_is_trivially_cheap() {
        let h = analyze_kb(&KnowledgeBase4::new());
        assert!(h.modules.is_empty());
        assert_eq!(h.max_score(), 0.0);
        let r = analyze_images(std::iter::empty());
        assert_eq!(
            r.cost,
            CostVector {
                exists_depth: Some(0),
                ..CostVector::default()
            }
        );
        assert_eq!(r.cost.residue_fraction(), 0.0);
        assert_eq!(r.score, 0.0);
    }

    #[test]
    fn hostile_kb_scores_heavy() {
        let r = analyze_images(images(&crate::serve::hostile_kb(4)).iter());
        assert!(r.cost.residue > 0, "≤3 counting axioms are residue");
        assert!(r.cost.branch_points > 0);
        assert!(
            r.score >= DEFAULT_HEAVY_THRESHOLD,
            "hostile module must land heavy: {} {:?}",
            r.score,
            r.cost
        );
    }

    #[test]
    fn in_situ_equals_extracted_module_analysis() {
        // Analyzing a component's images inside the big KB equals
        // analyzing the same module alone: the image multiset is the
        // only input.
        let big = kb("A SubClassOf B\nx : A\nP SubClassOf Q or R\nz : P");
        let h = analyze_kb(&big);
        for m in &h.modules {
            let alone =
                KnowledgeBase4::from_axioms(m.axioms.iter().map(|&i| big.axioms()[i].clone()));
            let ex = ModuleExtractor::new(&alone);
            let imgs: Vec<Axiom> = (0..alone.len())
                .flat_map(|i| ex.images(i).to_vec())
                .collect();
            assert_eq!(analyze_images(imgs.iter()), m.report);
        }
    }
}
