//! The SHOIN(D)4 → SHOIN(D) transformation (Definitions 5–7) — the
//! paper's central device. Every four-valued name is split in two:
//!
//! * an atomic concept `A` becomes `A⁺` (spelled `A+`) carrying the
//!   positive information and `A⁻` (`A-`) carrying the negative;
//! * a role `R` becomes `R⁺` (`R+`, the positive pairs) and `R⁼` (`R=`,
//!   the *complement of the negative* pairs);
//! * datatype roles split the same way.
//!
//! [`transform_concept`] computes `C̄` and [`transform_neg_concept`]
//! computes `¬C̄` — mutually recursive exactly as the 19 cases of
//! Definition 5. [`Transformer::axiom`] and [`transform_kb`] implement
//! Definitions 6–7, producing the *classical induced KB* `K̄` on which any
//! classical SHOIN(D) reasoner executes the paraconsistent semantics.
//!
//! The transformation is linear in the input (each AST node is visited
//! once per polarity); [`Transformer`] adds optional subterm memoization —
//! the ablation knob measured by `bench_ablation_transform_memo`.
//!
//! ## Notes on fidelity
//!
//! * Definition 6's strong role inclusion prints `R₁⁻ ⊑ R₂⁻`; the
//!   semantics `proj⁻(R₂) ⊆ proj⁻(R₁)` under the `R⁼`-encoding (complement
//!   of `proj⁻`) is `R₁⁼ ⊑ R₂⁼`, which is what we emit.
//! * Negative role assertions `¬R(a,b)` (ABox-level negative information,
//!   first-class in the four-valued setting) transform to
//!   `a : ∀R⁼.¬{b}` — "the pair (a,b) is not in `R⁼`", i.e. it is in
//!   `proj⁻(R)`.
//! * Definition 5 omits `¬{o…}` and the negated datatype restrictions; we
//!   extend it in the only semantics-preserving way (nominals are
//!   classical; datatype fillers complement, mirroring cases 14–17).

use crate::inclusion::InclusionKind;
use crate::kb4::{Axiom4, KnowledgeBase4};
use dl::axiom::{Axiom, RoleExpr};
use dl::kb::KnowledgeBase;
use dl::name::{ConceptName, DataRoleName};
use dl::Concept;
use std::collections::HashMap;

/// Suffix minting the positive companion of a name.
pub const POS_SUFFIX: &str = "+";
/// Suffix minting the negative companion of an atomic concept.
pub const NEG_SUFFIX: &str = "-";
/// Suffix minting the `R⁼` companion of a role.
pub const EQ_SUFFIX: &str = "=";

/// `A⁺` for an atomic concept name.
pub fn pos_concept_name(a: &ConceptName) -> ConceptName {
    a.with_suffix(POS_SUFFIX)
}

/// `A⁻` for an atomic concept name.
pub fn neg_concept_name(a: &ConceptName) -> ConceptName {
    a.with_suffix(NEG_SUFFIX)
}

/// `R⁺` as a role expression; inversion carries over (`(R⁻)⁺ = (R⁺)⁻`,
/// Definition 5 case 19).
pub fn plus_role(r: &RoleExpr) -> RoleExpr {
    let named = RoleExpr::named(r.name().with_suffix(POS_SUFFIX));
    if r.is_inverse() {
        named.inverse()
    } else {
        named
    }
}

/// `R⁼` as a role expression; inversion carries over.
pub fn eq_role(r: &RoleExpr) -> RoleExpr {
    let named = RoleExpr::named(r.name().with_suffix(EQ_SUFFIX));
    if r.is_inverse() {
        named.inverse()
    } else {
        named
    }
}

/// `U⁺` for a datatype role.
pub fn plus_data_role(u: &DataRoleName) -> DataRoleName {
    u.with_suffix(POS_SUFFIX)
}

/// `U⁼` for a datatype role.
pub fn eq_data_role(u: &DataRoleName) -> DataRoleName {
    u.with_suffix(EQ_SUFFIX)
}

/// A transformer with optional structure-sharing memoization.
#[derive(Debug, Default)]
pub struct Transformer {
    memo_pos: Option<HashMap<Concept, Concept>>,
    memo_neg: Option<HashMap<Concept, Concept>>,
}

impl Transformer {
    /// A plain (unmemoized) transformer — faithful to the naive recursion
    /// of Definition 5.
    pub fn new() -> Self {
        Self::default()
    }

    /// A transformer that caches subterm transformations. Worth it when
    /// the same complex concept occurs in many axioms.
    pub fn memoized() -> Self {
        Transformer {
            memo_pos: Some(HashMap::new()),
            memo_neg: Some(HashMap::new()),
        }
    }

    /// `C̄` — the concept transformation (Definition 5).
    pub fn concept(&mut self, c: &Concept) -> Concept {
        if let Some(memo) = &self.memo_pos {
            if let Some(hit) = memo.get(c) {
                return hit.clone();
            }
        }
        let out = match c {
            Concept::Top => Concept::Top,
            Concept::Bottom => Concept::Bottom,
            Concept::Atomic(a) => Concept::Atomic(pos_concept_name(a)),
            Concept::Not(inner) => self.neg_concept(inner),
            Concept::And(l, r) => self.concept(l).and(self.concept(r)),
            Concept::Or(l, r) => self.concept(l).or(self.concept(r)),
            Concept::OneOf(os) => Concept::OneOf(os.clone()),
            Concept::Some(role, f) => Concept::some(plus_role(role), self.concept(f)),
            Concept::All(role, f) => Concept::all(plus_role(role), self.concept(f)),
            Concept::AtLeast(n, role) => Concept::at_least(*n, plus_role(role)),
            Concept::AtMost(n, role) => Concept::at_most(*n, eq_role(role)),
            Concept::DataSome(u, d) => Concept::DataSome(plus_data_role(u), d.clone()),
            Concept::DataAll(u, d) => Concept::DataAll(plus_data_role(u), d.clone()),
            Concept::DataAtLeast(n, u) => Concept::DataAtLeast(*n, plus_data_role(u)),
            Concept::DataAtMost(n, u) => Concept::DataAtMost(*n, eq_data_role(u)),
        };
        if let Some(memo) = &mut self.memo_pos {
            memo.insert(c.clone(), out.clone());
        }
        out
    }

    /// `¬C̄` — the transformation of the negation (Definition 5, cases 2
    /// and 11–17 plus the documented extensions).
    pub fn neg_concept(&mut self, c: &Concept) -> Concept {
        if let Some(memo) = &self.memo_neg {
            if let Some(hit) = memo.get(c) {
                return hit.clone();
            }
        }
        let out = match c {
            Concept::Top => Concept::Bottom,
            Concept::Bottom => Concept::Top,
            Concept::Atomic(a) => Concept::Atomic(neg_concept_name(a)),
            // ¬¬D.
            Concept::Not(inner) => self.concept(inner),
            Concept::And(l, r) => self.neg_concept(l).or(self.neg_concept(r)),
            Concept::Or(l, r) => self.neg_concept(l).and(self.neg_concept(r)),
            // Nominals are classical: ¬{o…} stays a negated nominal.
            Concept::OneOf(os) => Concept::OneOf(os.clone()).not(),
            Concept::Some(role, f) => Concept::all(plus_role(role), self.neg_concept(f)),
            Concept::All(role, f) => Concept::some(plus_role(role), self.neg_concept(f)),
            Concept::AtLeast(n, role) => {
                if *n == 0 {
                    // ≥0.R is ⊤; its negation transforms to ⊥.
                    Concept::Bottom
                } else {
                    Concept::at_most(n - 1, eq_role(role))
                }
            }
            Concept::AtMost(n, role) => Concept::at_least(n + 1, plus_role(role)),
            Concept::DataSome(u, d) => Concept::DataAll(plus_data_role(u), d.complement()),
            Concept::DataAll(u, d) => Concept::DataSome(plus_data_role(u), d.complement()),
            Concept::DataAtLeast(n, u) => {
                if *n == 0 {
                    Concept::Bottom
                } else {
                    Concept::DataAtMost(n - 1, eq_data_role(u))
                }
            }
            Concept::DataAtMost(n, u) => Concept::DataAtLeast(n + 1, plus_data_role(u)),
        };
        if let Some(memo) = &mut self.memo_neg {
            memo.insert(c.clone(), out.clone());
        }
        out
    }

    /// Transform one axiom into its classical image(s) (Definition 6).
    pub fn axiom(&mut self, ax: &Axiom4) -> Vec<Axiom> {
        match ax {
            Axiom4::ConceptInclusion(kind, c, d) => match kind {
                InclusionKind::Material => vec![Axiom::ConceptInclusion(
                    self.neg_concept(c).not(),
                    self.concept(d),
                )],
                InclusionKind::Internal => {
                    vec![Axiom::ConceptInclusion(self.concept(c), self.concept(d))]
                }
                InclusionKind::Strong => vec![
                    Axiom::ConceptInclusion(self.concept(c), self.concept(d)),
                    Axiom::ConceptInclusion(self.neg_concept(d), self.neg_concept(c)),
                ],
            },
            Axiom4::RoleInclusion(kind, r, s) => match kind {
                InclusionKind::Material => {
                    vec![Axiom::RoleInclusion(eq_role(r), plus_role(s))]
                }
                InclusionKind::Internal => {
                    vec![Axiom::RoleInclusion(plus_role(r), plus_role(s))]
                }
                InclusionKind::Strong => vec![
                    Axiom::RoleInclusion(plus_role(r), plus_role(s)),
                    Axiom::RoleInclusion(eq_role(r), eq_role(s)),
                ],
            },
            Axiom4::DataRoleInclusion(kind, u, v) => match kind {
                InclusionKind::Material => {
                    vec![Axiom::DataRoleInclusion(eq_data_role(u), plus_data_role(v))]
                }
                InclusionKind::Internal => {
                    vec![Axiom::DataRoleInclusion(
                        plus_data_role(u),
                        plus_data_role(v),
                    )]
                }
                InclusionKind::Strong => vec![
                    Axiom::DataRoleInclusion(plus_data_role(u), plus_data_role(v)),
                    Axiom::DataRoleInclusion(eq_data_role(u), eq_data_role(v)),
                ],
            },
            Axiom4::Transitive(r) => {
                vec![Axiom::Transitive(r.with_suffix(POS_SUFFIX))]
            }
            Axiom4::ConceptAssertion(a, c) => {
                vec![Axiom::ConceptAssertion(a.clone(), self.concept(c))]
            }
            Axiom4::RoleAssertion(r, a, b) => vec![Axiom::RoleAssertion(
                r.with_suffix(POS_SUFFIX),
                a.clone(),
                b.clone(),
            )],
            Axiom4::NegativeRoleAssertion(r, a, b) => {
                // (a,b) ∈ proj⁻(R) ⟺ (a,b) ∉ R⁼ ⟺ a : ∀R⁼.¬{b}.
                vec![Axiom::ConceptAssertion(
                    a.clone(),
                    Concept::all(
                        RoleExpr::named(r.with_suffix(EQ_SUFFIX)),
                        Concept::one_of([b.clone()]).not(),
                    ),
                )]
            }
            Axiom4::DataAssertion(u, a, v) => vec![Axiom::DataAssertion(
                plus_data_role(u),
                a.clone(),
                v.clone(),
            )],
            Axiom4::SameIndividual(a, b) => {
                vec![Axiom::SameIndividual(a.clone(), b.clone())]
            }
            Axiom4::DifferentIndividuals(a, b) => {
                vec![Axiom::DifferentIndividuals(a.clone(), b.clone())]
            }
        }
    }

    /// The classical induced KB `K̄` (Definition 7).
    pub fn kb(&mut self, kb4: &KnowledgeBase4) -> KnowledgeBase {
        debug_assert!(
            invariants::signature_is_unsplit(kb4),
            "input KB already uses split names (`…+`, `…-`, `…=`); \
             the minted A+/A- companions would collide with them"
        );
        KnowledgeBase::from_axioms(kb4.axioms().iter().flat_map(|ax| self.axiom(ax)))
    }
}

/// Invariant checks behind `debug_assert!` — cheap structural facts that
/// hold by construction and catch transformation bugs early under
/// fuzz/proptest runs (compiled out of release builds at the call sites).
mod invariants {
    use super::*;

    /// Every name in a transformed concept is a split companion: atomic
    /// concepts end in `+`/`-`, object and datatype roles in `+`/`=`.
    /// This is exactly the `A⁺/A⁻` signature-disjointness property —
    /// split names cannot alias unsplit input names (see
    /// [`signature_is_unsplit`]), and the `+`/`-` images are pairwise
    /// distinct.
    pub fn split_image(c: &Concept) -> bool {
        let suffixed = |s: &str, a: &str, b: &str| s.ends_with(a) || s.ends_with(b);
        let mut ok = true;
        c.for_each_subconcept(&mut |sub| match sub {
            Concept::Atomic(a) => {
                ok &= suffixed(a.as_str(), POS_SUFFIX, NEG_SUFFIX);
            }
            Concept::Some(r, _)
            | Concept::All(r, _)
            | Concept::AtLeast(_, r)
            | Concept::AtMost(_, r) => {
                ok &= suffixed(r.name().as_str(), POS_SUFFIX, EQ_SUFFIX);
            }
            Concept::DataSome(u, _)
            | Concept::DataAll(u, _)
            | Concept::DataAtLeast(_, u)
            | Concept::DataAtMost(_, u) => {
                ok &= suffixed(u.as_str(), POS_SUFFIX, EQ_SUFFIX);
            }
            _ => {}
        });
        ok
    }

    /// Precondition of [`Transformer::kb`]: the four-valued input must not
    /// already use names carrying the split suffixes — a pre-existing `A+`
    /// would be indistinguishable from the positive companion minted for
    /// `A`, silently conflating two unrelated four-valued names.
    pub fn signature_is_unsplit(kb4: &KnowledgeBase4) -> bool {
        let sig = kb4.signature();
        sig.concepts
            .iter()
            .all(|a| !a.as_str().ends_with(POS_SUFFIX) && !a.as_str().ends_with(NEG_SUFFIX))
            && sig
                .roles
                .iter()
                .all(|r| !r.as_str().ends_with(POS_SUFFIX) && !r.as_str().ends_with(EQ_SUFFIX))
            && sig
                .data_roles
                .iter()
                .all(|u| !u.as_str().ends_with(POS_SUFFIX) && !u.as_str().ends_with(EQ_SUFFIX))
    }
}

/// `C̄` with a fresh unmemoized transformer.
pub fn transform_concept(c: &Concept) -> Concept {
    let out = Transformer::new().concept(c);
    debug_assert!(
        invariants::split_image(&out),
        "transformed image of `{c}` leaks an unsplit name: `{out}`"
    );
    debug_assert!(out.size() <= 2 * c.size(), "transformation not linear");
    debug_assert!(
        !dl::nnf::is_nnf(c) || dl::nnf::is_nnf(&out),
        "transformation must preserve NNF: `{c}` → `{out}`"
    );
    out
}

/// `¬C̄` with a fresh unmemoized transformer.
pub fn transform_neg_concept(c: &Concept) -> Concept {
    let out = Transformer::new().neg_concept(c);
    debug_assert!(
        invariants::split_image(&out),
        "transformed image of `¬({c})` leaks an unsplit name: `{out}`"
    );
    debug_assert!(out.size() <= 2 * c.size(), "transformation not linear");
    out
}

/// The classical induced KB with a fresh memoized transformer.
pub fn transform_kb(kb4: &KnowledgeBase4) -> KnowledgeBase {
    Transformer::memoized().kb(kb4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::parser::parse_concept;

    fn t(src: &str) -> Concept {
        transform_concept(&parse_concept(src).unwrap())
    }
    fn tn(src: &str) -> Concept {
        transform_neg_concept(&parse_concept(src).unwrap())
    }

    #[test]
    fn atomic_concepts_split() {
        assert_eq!(t("A"), parse_concept("A+").unwrap());
        assert_eq!(tn("A"), parse_concept("A-").unwrap());
        assert_eq!(t("not A"), parse_concept("A-").unwrap());
        assert_eq!(tn("not A"), parse_concept("A+").unwrap());
    }

    #[test]
    fn double_negation_case_11() {
        assert_eq!(t("not not A"), parse_concept("A+").unwrap());
        assert_eq!(tn("not not A"), parse_concept("A-").unwrap());
    }

    #[test]
    fn boolean_cases_5_6_12_13() {
        assert_eq!(t("A and B"), parse_concept("A+ and B+").unwrap());
        assert_eq!(t("A or B"), parse_concept("A+ or B+").unwrap());
        assert_eq!(tn("A and B"), parse_concept("A- or B-").unwrap());
        assert_eq!(tn("A or B"), parse_concept("A- and B-").unwrap());
    }

    #[test]
    fn restriction_cases_7_8_14_15() {
        assert_eq!(t("r some A"), parse_concept("r+ some A+").unwrap());
        assert_eq!(t("r only A"), parse_concept("r+ only A+").unwrap());
        assert_eq!(tn("r some A"), parse_concept("r+ only A-").unwrap());
        assert_eq!(tn("r only A"), parse_concept("r+ some A-").unwrap());
    }

    #[test]
    fn number_cases_9_10_16_17() {
        assert_eq!(t("r min 3"), parse_concept("r+ min 3").unwrap());
        assert_eq!(t("r max 3"), parse_concept("r= max 3").unwrap());
        assert_eq!(tn("r min 3"), parse_concept("r= max 2").unwrap());
        assert_eq!(tn("r max 3"), parse_concept("r+ min 4").unwrap());
        assert_eq!(tn("r min 0"), Concept::Bottom);
    }

    #[test]
    fn inverse_roles_case_19() {
        let c = Concept::some(RoleExpr::named("r").inverse(), Concept::atomic("A"));
        let tc = transform_concept(&c);
        assert_eq!(
            tc,
            Concept::some(RoleExpr::named("r+").inverse(), Concept::atomic("A+"))
        );
        let c = Concept::at_most(1, RoleExpr::named("r").inverse());
        assert_eq!(
            transform_concept(&c),
            Concept::at_most(1, RoleExpr::named("r=").inverse())
        );
    }

    #[test]
    fn nominals_case_18() {
        assert_eq!(t("{a, b}"), parse_concept("{a, b}").unwrap());
        assert_eq!(tn("{a}"), parse_concept("not {a}").unwrap());
    }

    #[test]
    fn top_bottom_cases_3_4() {
        assert_eq!(t("Thing"), Concept::Top);
        assert_eq!(tn("Thing"), Concept::Bottom);
        assert_eq!(t("Nothing"), Concept::Bottom);
        assert_eq!(tn("Nothing"), Concept::Top);
    }

    #[test]
    fn datatype_transformations() {
        assert_eq!(
            t("age some integer[0..5]"),
            parse_concept("age+ some integer[0..5]").unwrap()
        );
        let n = tn("age some integer[0..5]");
        match n {
            Concept::DataAll(u, d) => {
                assert_eq!(u.as_str(), "age+");
                assert!(matches!(d, dl::datatype::DataRange::Not(_)));
            }
            other => panic!("expected DataAll, got {other}"),
        }
    }

    #[test]
    fn axiom_transformations_def_6() {
        use dl::Concept as C;
        let mut tr = Transformer::new();
        let (a, b) = (C::atomic("A"), C::atomic("B"));
        // Material: ¬(¬A)⁻ ⊑ B⁺, i.e. ¬A⁻ ⊑ B⁺.
        let m = tr.axiom(&Axiom4::ConceptInclusion(
            InclusionKind::Material,
            a.clone(),
            b.clone(),
        ));
        assert_eq!(
            m,
            vec![Axiom::ConceptInclusion(
                C::atomic("A-").not(),
                C::atomic("B+")
            )]
        );
        // Internal: A⁺ ⊑ B⁺.
        let i = tr.axiom(&Axiom4::ConceptInclusion(
            InclusionKind::Internal,
            a.clone(),
            b.clone(),
        ));
        assert_eq!(
            i,
            vec![Axiom::ConceptInclusion(C::atomic("A+"), C::atomic("B+"))]
        );
        // Strong: A⁺ ⊑ B⁺ and B⁻ ⊑ A⁻.
        let s = tr.axiom(&Axiom4::ConceptInclusion(InclusionKind::Strong, a, b));
        assert_eq!(
            s,
            vec![
                Axiom::ConceptInclusion(C::atomic("A+"), C::atomic("B+")),
                Axiom::ConceptInclusion(C::atomic("B-"), C::atomic("A-")),
            ]
        );
    }

    #[test]
    fn role_axiom_transformations() {
        let mut tr = Transformer::new();
        let (r, s) = (RoleExpr::named("r"), RoleExpr::named("s"));
        assert_eq!(
            tr.axiom(&Axiom4::RoleInclusion(
                InclusionKind::Material,
                r.clone(),
                s.clone()
            )),
            vec![Axiom::RoleInclusion(
                RoleExpr::named("r="),
                RoleExpr::named("s+")
            )]
        );
        assert_eq!(
            tr.axiom(&Axiom4::RoleInclusion(InclusionKind::Strong, r, s)),
            vec![
                Axiom::RoleInclusion(RoleExpr::named("r+"), RoleExpr::named("s+")),
                Axiom::RoleInclusion(RoleExpr::named("r="), RoleExpr::named("s=")),
            ]
        );
        assert_eq!(
            tr.axiom(&Axiom4::Transitive(dl::RoleName::new("anc"))),
            vec![Axiom::Transitive(dl::RoleName::new("anc+"))]
        );
    }

    #[test]
    fn abox_transformations() {
        let mut tr = Transformer::new();
        let a = dl::IndividualName::new("a");
        let b = dl::IndividualName::new("b");
        assert_eq!(
            tr.axiom(&Axiom4::RoleAssertion(
                dl::RoleName::new("r"),
                a.clone(),
                b.clone()
            )),
            vec![Axiom::RoleAssertion(
                dl::RoleName::new("r+"),
                a.clone(),
                b.clone()
            )]
        );
        let neg = tr.axiom(&Axiom4::NegativeRoleAssertion(
            dl::RoleName::new("r"),
            a.clone(),
            b.clone(),
        ));
        assert_eq!(
            neg,
            vec![Axiom::ConceptAssertion(
                a,
                Concept::all(RoleExpr::named("r="), Concept::one_of([b]).not())
            )]
        );
    }

    #[test]
    fn transformation_is_linear_in_size() {
        // |C̄| ≤ 2·|C| for a deeply nested concept (claim C1 in DESIGN.md).
        let mut src = String::from("A");
        for i in 0..30 {
            src = format!("not (r{i} some ({src} and B{i}))");
        }
        let c = parse_concept(&src).unwrap();
        let tc = transform_concept(&c);
        assert!(tc.size() <= 2 * c.size());
    }

    #[test]
    fn memoized_equals_unmemoized() {
        let cases = [
            "not (A and (r some (B or not C)))",
            "r min 2 and (r max 4 or not (s only {a}))",
            "not not (A or not A)",
        ];
        for src in cases {
            let c = parse_concept(src).unwrap();
            assert_eq!(
                Transformer::new().concept(&c),
                Transformer::memoized().concept(&c)
            );
            assert_eq!(
                Transformer::new().neg_concept(&c),
                Transformer::memoized().neg_concept(&c)
            );
        }
    }

    #[test]
    fn registry_every_concept_variant_transforms() {
        // Exhaustiveness over dl's constructor registry: both polarities
        // of Definition 5 handle every constructor, produce a pure split
        // image, and stay within the 2× size bound. A new `Concept`
        // variant reaches this test automatically (via
        // `Concept::variant`'s wildcard-free match).
        for v in dl::ConceptVariant::ALL {
            let s = v.sample();
            assert_eq!(s.variant(), v, "sample must use its own constructor");
            let pos = transform_concept(&s);
            let neg = transform_neg_concept(&s);
            assert!(
                super::invariants::split_image(&pos),
                "{v:?}: `{s}` → `{pos}` leaks an unsplit name"
            );
            assert!(
                super::invariants::split_image(&neg),
                "{v:?}: `¬({s})` → `{neg}` leaks an unsplit name"
            );
            assert!(pos.size() <= 2 * s.size(), "{v:?}: positive blow-up");
            assert!(neg.size() <= 2 * s.size(), "{v:?}: negative blow-up");
        }
    }

    #[test]
    fn example_5_transformed_tbox() {
        // The paper's Example 5: transformation of the penguin TBox4.
        let mut tr = Transformer::new();
        let bird_wing = parse_concept("Bird and (hasWing some Wing)").unwrap();
        let fly = Concept::atomic("Fly");
        let material = tr.axiom(&Axiom4::ConceptInclusion(
            InclusionKind::Material,
            bird_wing,
            fly.clone(),
        ));
        // ¬(Bird⁻ ⊔ ∀hasWing⁺.Wing⁻) ⊑ Fly⁺
        let expected_lhs = Concept::atomic("Bird-")
            .or(Concept::all(
                RoleExpr::named("hasWing+"),
                Concept::atomic("Wing-"),
            ))
            .not();
        assert_eq!(
            material,
            vec![Axiom::ConceptInclusion(
                expected_lhs,
                Concept::atomic("Fly+")
            )]
        );
        let internal = tr.axiom(&Axiom4::ConceptInclusion(
            InclusionKind::Internal,
            Concept::atomic("Penguin"),
            fly.not(),
        ));
        assert_eq!(
            internal,
            vec![Axiom::ConceptInclusion(
                Concept::atomic("Penguin+"),
                Concept::atomic("Fly-")
            )]
        );
    }
}
