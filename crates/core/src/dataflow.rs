//! Signature dataflow over a SHOIN(D)4 KB: polarity-aware signature
//! atoms, the axiom dependency graph, and syntactic **module
//! extraction** — the static pass that bounds what a query can depend
//! on, so the tableau never has to touch the rest of the KB.
//!
//! # Signature atoms
//!
//! A four-valued name does not occur in an axiom as a monolith: the
//! Definitions 5–7 reduction splits every atomic concept `A` into `A⁺`
//! (positive information) and `A⁻` (negative information), and every
//! role `R` into `R⁺` and `R⁼`. Which half an axiom touches depends on
//! the *polarity* of the occurrence and on the *kind* of inclusion
//! (§3.1): an internal `C ⊏ D` mentions only the `⁺`-halves of `C` and
//! `D`; a material `C ↦ D` mentions the `⁻`-half of `C` (its image is
//! `¬(¬C̄) ⊑ D̄`, which quantifies over everything not provably `¬C`);
//! a strong `C → D` mentions all four halves (it contraposes). The
//! [`SigAtom`] of an occurrence is exactly the split half it reaches in
//! the classical image, so the dependency analysis distinguishes the
//! three inclusion kinds for free — by construction, not by special
//! cases.
//!
//! # Module extraction and its soundness
//!
//! [`ModuleExtractor::extract`] computes, for a seed signature `Σ₀`, a
//! subset `M` of the axioms such that **no four-valued verdict over
//! `Σ₀` changes when the rest of the KB is dropped**. The argument is
//! `⊤`-locality over the induced classical KB `K̄`:
//!
//! An axiom is *`⊤`-local* w.r.t. a signature `Σ` if it is satisfied by
//! every interpretation that maps each out-of-`Σ` concept half to the
//! full domain `Δ`, each out-of-`Σ` role half to `Δ × Δ`, and each
//! out-of-`Σ` individual to one arbitrary fixed element — regardless of
//! how the in-`Σ` symbols are interpreted. The extractor grows `M` to a
//! fixpoint: whenever an axiom fails the locality test against the
//! current `Σ`, it joins `M` and its atoms join `Σ`. At the fixpoint
//! every omitted axiom is `⊤`-local w.r.t. the final `Σ ⊇ Σ₀ ∪ sig(M)`.
//!
//! * `M ⊨ φ ⟹ K ⊨ φ` because `M ⊆ K` (entailment is monotone).
//! * `K ⊨ φ ⟹ M ⊨ φ` for any `φ` over `Σ₀`: a model `I` of `M̄`
//!   expands to `I'` by interpreting every out-of-`Σ` symbol as above;
//!   `I'` still satisfies `M̄` (which only uses `Σ`-symbols), satisfies
//!   every omitted axiom (that is what `⊤`-locality says), and agrees
//!   with `I` on `φ` (which only uses `Σ₀`-symbols) — so a
//!   counter-model for `φ` under `M` is one under `K`.
//!
//! The locality test itself is the usual sound structural
//! approximation: per-concept `top`/`bot` predicates that only claim
//! "definitely full"/"definitely empty" when it holds under *every*
//! interpretation of the in-`Σ` symbols. Nominals are never `top` nor
//! `bot` (their extension is a fixed finite set), `≠`-declarations are
//! never local (the fixed-element mapping could merge their sides), and
//! datatype restrictions are treated conservatively. Each admission
//! records the `Σ`-atoms that forced it ([`Admission::via`]) — the
//! per-edge soundness witness: drop any of those atoms from `Σ` and the
//! locality failure it certifies disappears.
//!
//! Because every `∉ Σ` test in the locality predicates is
//! anti-monotone in `Σ`, the extracted module is **monotone in the
//! seed**: `Σ₀ ⊆ Σ₀' ⟹ M(Σ₀) ⊆ M(Σ₀')` (property-tested in
//! `tests/module_parity.rs`).

use crate::inclusion::InclusionKind;
use crate::kb4::{Axiom4, KnowledgeBase4};
use crate::transform::{self, Transformer};
use dl::axiom::{Axiom, RoleExpr};
use dl::kb::KnowledgeBase;
use dl::name::{ConceptName, DataRoleName, IndividualName, RoleName};
use dl::Concept;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// One split half of the four-valued signature — the unit of the
/// dataflow analysis. Atoms are *polarity-aware*: `x : ¬A` touches
/// [`SigAtom::ConceptNeg`]`(A)` but not the positive half, so an axiom
/// about `¬A` and an axiom about `A` are only coupled when some third
/// axiom (a strong or material inclusion) bridges the two halves.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SigAtom {
    /// `A⁺` — positive information about the atomic concept `A`.
    ConceptPos(ConceptName),
    /// `A⁻` — negative information about `A`.
    ConceptNeg(ConceptName),
    /// `R⁺` — the asserted pairs of the role `R`.
    RolePos(RoleName),
    /// `R⁼` — the complement of `R`'s negative extension.
    RoleEq(RoleName),
    /// `U⁺` for a datatype role.
    DataRolePos(DataRoleName),
    /// `U⁼` for a datatype role.
    DataRoleEq(DataRoleName),
    /// A named individual (in an assertion or a nominal).
    Individual(IndividualName),
}

impl fmt::Display for SigAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigAtom::ConceptPos(a) => write!(f, "{a}+"),
            SigAtom::ConceptNeg(a) => write!(f, "{a}-"),
            SigAtom::RolePos(r) => write!(f, "{r}+"),
            SigAtom::RoleEq(r) => write!(f, "{r}="),
            SigAtom::DataRolePos(u) => write!(f, "{u}+"),
            SigAtom::DataRoleEq(u) => write!(f, "{u}="),
            SigAtom::Individual(a) => write!(f, "{a}"),
        }
    }
}

/// Map a classical (split-image) concept name back to its atom. Names
/// produced by [`crate::transform`] always carry a suffix; a bare name
/// (possible only for hand-built classical input, which the transform's
/// unsplit-signature precondition excludes) is read as its own positive
/// half.
fn concept_atom(name: &ConceptName) -> SigAtom {
    let s = name.as_str();
    if let Some(base) = s.strip_suffix(transform::POS_SUFFIX) {
        SigAtom::ConceptPos(ConceptName::new(base))
    } else if let Some(base) = s.strip_suffix(transform::NEG_SUFFIX) {
        SigAtom::ConceptNeg(ConceptName::new(base))
    } else {
        SigAtom::ConceptPos(name.clone())
    }
}

fn role_atom(name: &RoleName) -> SigAtom {
    let s = name.as_str();
    if let Some(base) = s.strip_suffix(transform::POS_SUFFIX) {
        SigAtom::RolePos(RoleName::new(base))
    } else if let Some(base) = s.strip_suffix(transform::EQ_SUFFIX) {
        SigAtom::RoleEq(RoleName::new(base))
    } else {
        SigAtom::RolePos(name.clone())
    }
}

fn data_role_atom(name: &DataRoleName) -> SigAtom {
    let s = name.as_str();
    if let Some(base) = s.strip_suffix(transform::POS_SUFFIX) {
        SigAtom::DataRolePos(DataRoleName::new(base))
    } else if let Some(base) = s.strip_suffix(transform::EQ_SUFFIX) {
        SigAtom::DataRoleEq(DataRoleName::new(base))
    } else {
        SigAtom::DataRolePos(name.clone())
    }
}

/// Collect the atoms of a classical (split-image) concept.
pub fn classical_concept_atoms(c: &Concept, out: &mut BTreeSet<SigAtom>) {
    c.for_each_subconcept(&mut |sub| match sub {
        Concept::Atomic(a) => {
            out.insert(concept_atom(a));
        }
        Concept::Some(r, _)
        | Concept::All(r, _)
        | Concept::AtLeast(_, r)
        | Concept::AtMost(_, r) => {
            out.insert(role_atom(r.name()));
        }
        Concept::DataSome(u, _)
        | Concept::DataAll(u, _)
        | Concept::DataAtLeast(_, u)
        | Concept::DataAtMost(_, u) => {
            out.insert(data_role_atom(u));
        }
        Concept::OneOf(os) => {
            for o in os {
                out.insert(SigAtom::Individual(o.clone()));
            }
        }
        _ => {}
    });
}

/// Collect the atoms of a classical axiom.
pub fn classical_axiom_atoms(ax: &Axiom, out: &mut BTreeSet<SigAtom>) {
    match ax {
        Axiom::ConceptInclusion(c, d) => {
            classical_concept_atoms(c, out);
            classical_concept_atoms(d, out);
        }
        Axiom::RoleInclusion(r, s) => {
            out.insert(role_atom(r.name()));
            out.insert(role_atom(s.name()));
        }
        Axiom::Transitive(r) => {
            out.insert(role_atom(r));
        }
        Axiom::DataRoleInclusion(u, v) => {
            out.insert(data_role_atom(u));
            out.insert(data_role_atom(v));
        }
        Axiom::ConceptAssertion(a, c) => {
            out.insert(SigAtom::Individual(a.clone()));
            classical_concept_atoms(c, out);
        }
        Axiom::RoleAssertion(r, a, b) => {
            out.insert(role_atom(r));
            out.insert(SigAtom::Individual(a.clone()));
            out.insert(SigAtom::Individual(b.clone()));
        }
        Axiom::DataAssertion(u, a, _) => {
            out.insert(data_role_atom(u));
            out.insert(SigAtom::Individual(a.clone()));
        }
        Axiom::SameIndividual(a, b) | Axiom::DifferentIndividuals(a, b) => {
            out.insert(SigAtom::Individual(a.clone()));
            out.insert(SigAtom::Individual(b.clone()));
        }
    }
}

/// The atoms a four-valued query concept can depend on: both
/// transformation polarities (`π(C)` and `π(¬C)` — a four-valued query
/// always asks both).
pub fn concept_seed(c: &Concept) -> BTreeSet<SigAtom> {
    let mut tr = Transformer::new();
    let mut out = BTreeSet::new();
    classical_concept_atoms(&tr.concept(c), &mut out);
    classical_concept_atoms(&tr.neg_concept(c), &mut out);
    out
}

/// How an axiom couples its atoms — the edge label of the dependency
/// graph. Inclusions keep their §3.1 kind (they propagate differently:
/// internal couples `⁺`-halves only, material reaches through the
/// `⁻`-half of its left side, strong couples all four).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxiomKind {
    /// An inclusion axiom of the given kind.
    Inclusion(InclusionKind),
    /// Any fact axiom (assertions, equality, transitivity).
    Fact,
}

/// The signature-dependency graph: per-axiom atom sets plus the reverse
/// index. Two axioms are *adjacent* when they share an atom — the
/// syntactic condition for one to influence the other's consequences.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// `atoms[i]` — the atoms of axiom `i` (over its classical images).
    pub atoms: Vec<BTreeSet<SigAtom>>,
    /// Reverse index: atom → indices of the axioms mentioning it.
    pub by_atom: BTreeMap<SigAtom, Vec<usize>>,
    /// Edge label per axiom.
    pub kinds: Vec<AxiomKind>,
}

impl DepGraph {
    /// Build the graph for a four-valued KB.
    pub fn build(kb: &KnowledgeBase4) -> Self {
        let mut tr = Transformer::memoized();
        let mut atoms = Vec::with_capacity(kb.len());
        let mut by_atom: BTreeMap<SigAtom, Vec<usize>> = BTreeMap::new();
        let mut kinds = Vec::with_capacity(kb.len());
        for (i, ax) in kb.axioms().iter().enumerate() {
            let mut set = BTreeSet::new();
            for image in tr.axiom(ax) {
                classical_axiom_atoms(&image, &mut set);
            }
            for atom in &set {
                by_atom.entry(atom.clone()).or_default().push(i);
            }
            atoms.push(set);
            kinds.push(match ax {
                Axiom4::ConceptInclusion(k, ..)
                | Axiom4::RoleInclusion(k, ..)
                | Axiom4::DataRoleInclusion(k, ..) => AxiomKind::Inclusion(*k),
                _ => AxiomKind::Fact,
            });
        }
        DepGraph {
            atoms,
            by_atom,
            kinds,
        }
    }

    /// Number of axioms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Append a slot with the given atoms and kind; returns its index.
    fn push_slot(&mut self, set: BTreeSet<SigAtom>, kind: AxiomKind) -> usize {
        let i = self.atoms.len();
        for atom in &set {
            self.by_atom.entry(atom.clone()).or_default().push(i);
        }
        self.atoms.push(set);
        self.kinds.push(kind);
        i
    }

    /// Tombstone slot `i`: clear its atoms and unlink it from the
    /// reverse index. The slot keeps its index so module keys built
    /// from slot-id sets stay meaningful across retractions.
    fn clear_slot(&mut self, i: usize) {
        let atoms = std::mem::take(&mut self.atoms[i]);
        for atom in &atoms {
            if let Some(users) = self.by_atom.get_mut(atom) {
                users.retain(|&j| j != i);
                if users.is_empty() {
                    self.by_atom.remove(atom);
                }
            }
        }
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Connected components of the atom-sharing relation, each sorted,
    /// largest first (ties broken by smallest member). Axioms in
    /// different components cannot influence each other's verdicts
    /// through any chain of shared names.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([start]);
            seen[start] = true;
            while let Some(i) = queue.pop_front() {
                comp.push(i);
                for atom in &self.atoms[i] {
                    for &j in &self.by_atom[atom] {
                        if !seen[j] {
                            seen[j] = true;
                            queue.push_back(j);
                        }
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
        out
    }
}

/// Why a module member was admitted: the extraction round and the
/// `Σ`-atoms its locality failure depended on — the recorded soundness
/// witness for the dependency edge (empty `via` means the axiom is
/// non-local against *any* signature, e.g. `≠`-declarations and
/// nominal assertions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Admission {
    /// The admitted axiom (index into `kb.axioms()`).
    pub axiom: usize,
    /// Fixpoint round (0 = forced by the seed alone).
    pub round: usize,
    /// The axiom's atoms that were already in `Σ` at admission.
    pub via: Vec<SigAtom>,
}

/// An extracted module: the axiom subset whose omission cannot change
/// any four-valued verdict over the seed signature.
#[derive(Debug, Clone)]
pub struct Module {
    /// Member axiom indices (into `kb.axioms()`).
    pub axioms: BTreeSet<usize>,
    /// The closed signature `Σ ⊇ seed ∪ sig(M)`.
    pub signature: BTreeSet<SigAtom>,
    /// Fixpoint rounds until closure.
    pub rounds: usize,
    /// Per-member admission records, in admission order.
    pub admissions: Vec<Admission>,
}

/// Reusable module-extraction state for one KB: the dependency graph
/// plus the classical images (computed once, shared by every query).
#[derive(Debug)]
pub struct ModuleExtractor {
    graph: DepGraph,
    images: Vec<Vec<Axiom>>,
}

impl ModuleExtractor {
    /// Preprocess a KB for module extraction.
    pub fn new(kb: &KnowledgeBase4) -> Self {
        let mut tr = Transformer::memoized();
        let images: Vec<Vec<Axiom>> = kb.axioms().iter().map(|ax| tr.axiom(ax)).collect();
        ModuleExtractor {
            graph: DepGraph::build(kb),
            images,
        }
    }

    /// The underlying dependency graph.
    pub fn graph(&self) -> &DepGraph {
        &self.graph
    }

    /// The classical images of axiom `i` (Definition 6).
    pub fn images(&self, i: usize) -> &[Axiom] {
        &self.images[i]
    }

    /// The classical induced KB of a module — what a scoped tableau
    /// engine loads.
    pub fn induced_module_kb(&self, module: &Module) -> KnowledgeBase {
        KnowledgeBase::from_axioms(
            module
                .axioms
                .iter()
                .flat_map(|&i| self.images[i].iter().cloned()),
        )
    }

    /// Extract the module for a seed signature (the `⊤`-locality
    /// fixpoint described in the module docs). Deterministic: the result
    /// is the least fixpoint, independent of worklist order.
    pub fn extract(&self, seed: &BTreeSet<SigAtom>) -> Module {
        let n = self.graph.len();
        let mut sigma = seed.clone();
        let mut in_module = vec![false; n];
        let mut admissions = Vec::new();
        let mut rounds = 0usize;
        // Round 0 checks everything; later rounds only re-check axioms
        // that gained a Σ-atom (locality depends only on Σ ∩ atoms(i)).
        let mut pending: BTreeSet<usize> = (0..n).collect();
        while !pending.is_empty() {
            let mut fresh_atoms: BTreeSet<SigAtom> = BTreeSet::new();
            for i in std::mem::take(&mut pending) {
                if in_module[i] {
                    continue;
                }
                let local = self.images[i].iter().all(|ax| axiom_local(ax, &sigma));
                if local {
                    continue;
                }
                in_module[i] = true;
                admissions.push(Admission {
                    axiom: i,
                    round: rounds,
                    via: self.graph.atoms[i]
                        .iter()
                        .filter(|a| sigma.contains(a))
                        .cloned()
                        .collect(),
                });
                for atom in &self.graph.atoms[i] {
                    if sigma.insert(atom.clone()) {
                        fresh_atoms.insert(atom.clone());
                    }
                }
            }
            for atom in &fresh_atoms {
                if let Some(users) = self.graph.by_atom.get(atom) {
                    pending.extend(users.iter().copied().filter(|&j| !in_module[j]));
                }
            }
            rounds += 1;
        }
        Module {
            axioms: admissions.iter().map(|a| a.axiom).collect(),
            signature: sigma,
            rounds,
            admissions,
        }
    }

    /// The seed for a four-valued instance query `a : C`: both
    /// transformation polarities of `C` plus the individual.
    pub fn instance_seed(&self, a: &IndividualName, c: &Concept) -> BTreeSet<SigAtom> {
        let mut seed = concept_seed(c);
        seed.insert(SigAtom::Individual(a.clone()));
        seed
    }

    /// Append a new axiom as a fresh slot, returning its index —
    /// incremental maintenance for [`crate::incremental::Session`].
    /// The new slot participates in every later [`Self::extract`] call
    /// exactly as if the extractor had been built from the extended KB.
    pub fn push_axiom(&mut self, ax: &Axiom4) -> usize {
        let mut tr = Transformer::memoized();
        let images = tr.axiom(ax);
        let mut set = BTreeSet::new();
        for image in &images {
            classical_axiom_atoms(image, &mut set);
        }
        let kind = match ax {
            Axiom4::ConceptInclusion(k, ..)
            | Axiom4::RoleInclusion(k, ..)
            | Axiom4::DataRoleInclusion(k, ..) => AxiomKind::Inclusion(*k),
            _ => AxiomKind::Fact,
        };
        let i = self.graph.push_slot(set, kind);
        debug_assert_eq!(i, self.images.len());
        self.images.push(images);
        i
    }

    /// Tombstone slot `i`: its images and atoms become empty, so it is
    /// vacuously `⊤`-local w.r.t. every signature and can never again
    /// be admitted into a module. Indices of the surviving slots do not
    /// shift, which keeps cached module keys (slot-id sets) valid.
    pub fn remove_axiom(&mut self, i: usize) {
        self.images[i].clear();
        self.graph.clear_slot(i);
    }

    /// Does slot `i` still hold a live axiom?
    pub fn is_live(&self, i: usize) -> bool {
        !self.images[i].is_empty()
    }
}

/// Every atom the KB's own (unsplit) signature can seed: both halves of
/// every concept, role and datatype role, plus every individual. By
/// module monotonicity, the module of *any* query over the KB's
/// signature is contained in the module of this seed — an axiom outside
/// it is dead for every such query.
pub fn full_signature_seed(kb: &KnowledgeBase4) -> BTreeSet<SigAtom> {
    let sig = kb.signature();
    let mut out = BTreeSet::new();
    for a in &sig.concepts {
        out.insert(SigAtom::ConceptPos(a.clone()));
        out.insert(SigAtom::ConceptNeg(a.clone()));
    }
    for r in &sig.roles {
        out.insert(SigAtom::RolePos(r.clone()));
        out.insert(SigAtom::RoleEq(r.clone()));
    }
    for u in &sig.data_roles {
        out.insert(SigAtom::DataRolePos(u.clone()));
        out.insert(SigAtom::DataRoleEq(u.clone()));
    }
    for i in &sig.individuals {
        out.insert(SigAtom::Individual(i.clone()));
    }
    out
}

/// Is the concept's extension guaranteed to be the full domain under
/// the `⊤`-locality interpretation (out-of-`Σ` symbols full), for every
/// interpretation of the in-`Σ` symbols?
fn concept_top(c: &Concept, sigma: &BTreeSet<SigAtom>) -> bool {
    match c {
        Concept::Top => true,
        Concept::Bottom => false,
        Concept::Atomic(a) => !sigma.contains(&concept_atom(a)),
        Concept::Not(inner) => concept_bot(inner, sigma),
        Concept::And(l, r) => concept_top(l, sigma) && concept_top(r, sigma),
        Concept::Or(l, r) => concept_top(l, sigma) || concept_top(r, sigma),
        // A nominal's extension is a fixed finite set — never all of Δ.
        Concept::OneOf(_) => false,
        // R full and C full ⟹ every x reaches itself through R into C.
        Concept::Some(r, f) => role_out(r, sigma) && concept_top(f, sigma),
        Concept::All(_, f) => concept_top(f, sigma),
        Concept::AtLeast(n, r) => *n == 0 || (*n == 1 && role_out(r, sigma)),
        // A full role gives |Δ| successors, which no finite bound caps.
        Concept::AtMost(..) => false,
        // Datatype ranges are handled conservatively: never top/bot.
        Concept::DataSome(..)
        | Concept::DataAll(..)
        | Concept::DataAtLeast(..)
        | Concept::DataAtMost(..) => false,
    }
}

/// Is the concept's extension guaranteed empty under the `⊤`-locality
/// interpretation?
fn concept_bot(c: &Concept, sigma: &BTreeSet<SigAtom>) -> bool {
    match c {
        Concept::Bottom => true,
        Concept::Not(inner) => concept_top(inner, sigma),
        Concept::And(l, r) => concept_bot(l, sigma) || concept_bot(r, sigma),
        Concept::Or(l, r) => concept_bot(l, sigma) && concept_bot(r, sigma),
        Concept::Some(_, f) => concept_bot(f, sigma),
        // R full forces a successor outside the (empty) filler.
        Concept::All(r, f) => role_out(r, sigma) && concept_bot(f, sigma),
        _ => false,
    }
}

fn role_out(r: &RoleExpr, sigma: &BTreeSet<SigAtom>) -> bool {
    !sigma.contains(&role_atom(r.name()))
}

/// Is the classical axiom `⊤`-local w.r.t. `Σ`? (Satisfied under the
/// out-of-`Σ`-is-full interpretation whatever the in-`Σ` symbols mean.)
pub fn axiom_local(ax: &Axiom, sigma: &BTreeSet<SigAtom>) -> bool {
    match ax {
        Axiom::ConceptInclusion(c, d) => concept_bot(c, sigma) || concept_top(d, sigma),
        // R ⊑ S holds when S is full.
        Axiom::RoleInclusion(_, s) => role_out(s, sigma),
        // The full relation is transitive.
        Axiom::Transitive(r) => !sigma.contains(&role_atom(r)),
        Axiom::DataRoleInclusion(_, v) => !sigma.contains(&data_role_atom(v)),
        Axiom::ConceptAssertion(_, c) => concept_top(c, sigma),
        Axiom::RoleAssertion(r, ..) => !sigma.contains(&role_atom(r)),
        Axiom::DataAssertion(u, ..) => !sigma.contains(&data_role_atom(u)),
        // Both out of Σ ⟹ both map to the same fixed element.
        Axiom::SameIndividual(a, b) => {
            a == b
                || (!sigma.contains(&SigAtom::Individual(a.clone()))
                    && !sigma.contains(&SigAtom::Individual(b.clone())))
        }
        // The fixed-element mapping could merge the two sides, so a
        // distinctness declaration is never droppable.
        Axiom::DifferentIndividuals(..) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_kb4;

    fn kb(src: &str) -> KnowledgeBase4 {
        parse_kb4(src).unwrap()
    }

    fn seed_of(names: &[&str]) -> BTreeSet<SigAtom> {
        let mut out = BTreeSet::new();
        for n in names {
            out.extend(concept_seed(&Concept::atomic(*n)));
        }
        out
    }

    #[test]
    fn atoms_are_polarity_aware() {
        let kb = kb("A SubClassOf B
             C MaterialSubClassOf D
             E StrongSubClassOf F");
        let g = DepGraph::build(&kb);
        // Internal: only the ⁺-halves.
        assert_eq!(
            g.atoms[0],
            BTreeSet::from([
                SigAtom::ConceptPos(ConceptName::new("A")),
                SigAtom::ConceptPos(ConceptName::new("B")),
            ])
        );
        // Material: the LHS appears through its ⁻-half (¬(¬C̄) ⊑ D̄).
        assert_eq!(
            g.atoms[1],
            BTreeSet::from([
                SigAtom::ConceptNeg(ConceptName::new("C")),
                SigAtom::ConceptPos(ConceptName::new("D")),
            ])
        );
        // Strong: all four halves (both directions).
        assert_eq!(g.atoms[2].len(), 4);
        assert_eq!(g.kinds[0], AxiomKind::Inclusion(InclusionKind::Internal));
        assert_eq!(g.kinds[1], AxiomKind::Inclusion(InclusionKind::Material));
    }

    #[test]
    fn components_split_disjoint_islands() {
        let kb = kb("A SubClassOf B
             x : A
             C SubClassOf D
             y : C");
        let comps = DepGraph::build(&kb).components();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn module_keeps_the_relevant_island_only() {
        let kb = kb("A SubClassOf B
             x : A
             C SubClassOf D
             y : C
             y : not D");
        let ex = ModuleExtractor::new(&kb);
        let m = ex.extract(&seed_of(&["A", "B"]));
        assert_eq!(m.axioms, BTreeSet::from([0, 1]));
        // The other island's module ignores the first — and a query
        // about C also drops the inclusion *out of* C and the D⁻ fact:
        // neither can force information into C (⊤-locality).
        let m = ex.extract(&seed_of(&["C"]));
        assert_eq!(m.axioms, BTreeSet::from([3]));
        // A query about D pulls in the whole island: the inclusion can
        // push C-facts into D⁺, and `y : not D` feeds D⁻.
        let m = ex.extract(&seed_of(&["D"]));
        assert_eq!(m.axioms, BTreeSet::from([2, 3, 4]));
    }

    #[test]
    fn internal_inclusions_do_not_couple_negative_halves() {
        // A ⊏ B touches A⁺/B⁺ only: a query about ¬A (the A⁻ half)
        // cannot depend on it.
        let kb1 = kb("A SubClassOf B
             x : not A");
        let ex = ModuleExtractor::new(&kb1);
        let mut seed = BTreeSet::from([SigAtom::ConceptNeg(ConceptName::new("A"))]);
        seed.insert(SigAtom::Individual(IndividualName::new("x")));
        let m = ex.extract(&seed);
        assert_eq!(m.axioms, BTreeSet::from([1]));
        // A strong inclusion DOES couple them (contraposition).
        let kb2 = kb("A StrongSubClassOf B
             x : not A");
        let ex = ModuleExtractor::new(&kb2);
        let m = ex.extract(&seed);
        assert_eq!(m.axioms, BTreeSet::from([0, 1]));
    }

    #[test]
    fn never_local_axioms_are_in_every_module() {
        let kb = kb("a != b
             a : {c}
             not r(d, e)
             x : A");
        let ex = ModuleExtractor::new(&kb);
        let m = ex.extract(&BTreeSet::new());
        // ≠, nominal assertions and negative role assertions are never
        // ⊤-local; the plain membership assertion is.
        assert_eq!(m.axioms, BTreeSet::from([0, 1, 2]));
    }

    #[test]
    fn admissions_record_rounds_and_witnesses() {
        let kb = kb("A SubClassOf B
             B SubClassOf C
             x : A");
        let ex = ModuleExtractor::new(&kb);
        // Information flows *toward* the seed: a query about C needs
        // the whole chain (each link can push facts one step up).
        let m = ex.extract(&seed_of(&["C"]));
        assert_eq!(m.axioms, BTreeSet::from([0, 1, 2]));
        let by_axiom: BTreeMap<usize, &Admission> =
            m.admissions.iter().map(|a| (a.axiom, a)).collect();
        // B ⊑ C is forced by the seed; A ⊑ B only once B⁺ flowed in.
        assert_eq!(by_axiom[&1].round, 0);
        assert!(by_axiom[&0].round > 0);
        assert!(by_axiom[&0]
            .via
            .contains(&SigAtom::ConceptPos(ConceptName::new("B"))));
    }

    #[test]
    fn module_is_monotone_in_the_seed() {
        let kb = kb("A SubClassOf B
             B SubClassOf C
             C MaterialSubClassOf D
             x : A
             y : not D
             r(x, y)");
        let ex = ModuleExtractor::new(&kb);
        let small = ex.extract(&seed_of(&["A"]));
        let mut big_seed = seed_of(&["A", "D"]);
        big_seed.insert(SigAtom::Individual(IndividualName::new("y")));
        let big = ex.extract(&big_seed);
        assert!(small.axioms.is_subset(&big.axioms));
        assert!(small.signature.is_subset(&big.signature));
    }

    #[test]
    fn full_signature_seed_covers_every_query_module() {
        let kb = kb("A SubClassOf B
             x : A
             r(x, y)
             u(x, \"v\")");
        let ex = ModuleExtractor::new(&kb);
        let full = ex.extract(&full_signature_seed(&kb));
        for c in ["A", "B"] {
            for i in ["x", "y"] {
                let seed = ex.instance_seed(&IndividualName::new(i), &Concept::atomic(c));
                assert!(ex.extract(&seed).axioms.is_subset(&full.axioms));
            }
        }
    }

    #[test]
    fn induced_module_kb_matches_member_images() {
        let kb = kb("A SubClassOf B
             x : A
             y : C");
        let ex = ModuleExtractor::new(&kb);
        let m = ex.extract(&seed_of(&["B"]));
        let induced = ex.induced_module_kb(&m);
        assert_eq!(induced.len(), 2);
        let printed = dl::printer::print_kb(&induced);
        assert!(printed.contains("A+ SubClassOf B+"), "{printed}");
        assert!(!printed.contains("C+"), "{printed}");
    }

    #[test]
    fn incremental_push_matches_fresh_build() {
        let base = kb("A SubClassOf B
             x : A");
        let mut ex = ModuleExtractor::new(&base);
        let added = parse_kb4("B SubClassOf C\ny : not C").unwrap();
        for ax in added.axioms() {
            ex.push_axiom(ax);
        }
        let full = kb("A SubClassOf B
             x : A
             B SubClassOf C
             y : not C");
        let fresh = ModuleExtractor::new(&full);
        for names in [&["A"][..], &["B"], &["C"], &["A", "C"]] {
            let seed = seed_of(names);
            let inc = ex.extract(&seed);
            let ref_m = fresh.extract(&seed);
            assert_eq!(inc.axioms, ref_m.axioms, "module differs for {names:?}");
            assert_eq!(inc.signature, ref_m.signature);
        }
    }

    #[test]
    fn tombstoned_slot_leaves_every_module() {
        let full = kb("A SubClassOf B
             B SubClassOf C
             x : A");
        let mut ex = ModuleExtractor::new(&full);
        assert!(ex.is_live(1));
        ex.remove_axiom(1);
        assert!(!ex.is_live(1));
        // Slot ids of survivors are unchanged; the dead slot never
        // appears again, matching a fresh extractor over the shrunken KB.
        let shrunk = kb("A SubClassOf B
             x : A");
        let fresh = ModuleExtractor::new(&shrunk);
        // Survivor slot ids: 0 stays 0, 2 maps to 1 in the fresh build.
        let remap = |i: usize| if i == 0 { 0 } else { 1 };
        for names in [&["A"][..], &["B"], &["C"]] {
            let seed = seed_of(names);
            let inc = ex.extract(&seed);
            let ref_m = fresh.extract(&seed);
            assert!(!inc.axioms.contains(&1));
            assert_eq!(
                inc.axioms
                    .iter()
                    .map(|&i| remap(i))
                    .collect::<BTreeSet<_>>(),
                ref_m.axioms,
                "module differs for {names:?}"
            );
        }
    }

    #[test]
    fn empty_seed_module_decides_consistency_axioms_only() {
        // The ∅-seeded module is exactly the never-local core — the part
        // that can make the KB unsatisfiable.
        let kb = kb("A SubClassOf B
             x : A
             a : {b}
             a != b");
        let ex = ModuleExtractor::new(&kb);
        let m = ex.extract(&BTreeSet::new());
        assert_eq!(m.axioms, BTreeSet::from([2, 3]));
    }
}
