//! Multi-tenant concurrent serving: a sharded tenant registry over
//! [`Session`]s, cross-tenant cache sharing, admission control, and a
//! std-only line-protocol TCP front end.
//!
//! This is ROADMAP item 2 ("millions of users"): one process hosting
//! many independent four-valued KBs, answering concurrent requests with
//! bounded resources. Three mechanisms carry the load:
//!
//! * **Sharded registry** — [`Registry`] maps tenant ids to
//!   `RwLock<Session>`s across independently locked shards (the same
//!   layout as [`crate::cache::ShardedMap`]), so requests for different
//!   tenants never contend on one global lock and read-heavy tenants
//!   admit concurrent readers.
//! * **Cross-tenant cache sharing** — [`SharedModuleCache`] keys
//!   per-module `QueryEngine`s, Horn programs and query verdict rows by
//!   a *structural key*: the sorted serialization of the module's
//!   classical-image axioms ([`structural_key`]). Identical modules
//!   across tenants (the common case for fleets cloned from a shared
//!   core ontology) therefore hit one cache entry. Content addressing
//!   makes sharing immune to staleness: a mutated module extracts to a
//!   different axiom set, hence a different key — old entries are
//!   simply never hit again.
//! * **Admission control** — [`Server`] runs a fixed worker pool behind
//!   a bounded queue. A full queue sheds the request with a typed
//!   [`ServeError::Overloaded`] instead of letting latency grow without
//!   bound, every request runs under the registry's
//!   `Config::time_budget`, and a per-request cancellation token
//!   (installed via [`tableau::interrupt`]) lets [`Server::cancel_tenant`]
//!   revoke a hostile tenant's in-flight work without waiting out the
//!   budget — the search observes the token inside `check_limits` and
//!   returns [`tableau::ReasonerError::Cancelled`].
//! * **Cost-aware lanes** — with [`ServeOptions::lanes`] set, admission
//!   first predicts each request's cost with the static
//!   [`crate::hardness`] analyzer (scores cached per module in the
//!   shared cache, so the steady-state prediction is one hash lookup)
//!   and routes requests at or above [`LaneOptions::threshold`] to a
//!   separate *heavy* queue with its own workers, depth, and optional
//!   wall-clock budget. One tenant's pathological modules then saturate
//!   the heavy lane while told/Horn traffic keeps flowing through the
//!   cheap one. Lanes change scheduling only — verdicts are
//!   bit-identical with lanes on or off (`tests/serve_lanes.rs`).
//!
//! The wire protocol is deliberately boring: one request per line
//! (parser4 syntax for axioms), one JSON reply per line (via
//! [`jsonio`]), over `std::net::TcpListener` — the workspace vendors
//! its dependencies, so there is no async runtime. See the README's
//! "Serving" quickstart for the grammar.

use crate::cache::{lock_mutex, read_lock, write_lock, ShardedMap};
use crate::hardness;
use crate::horn::HornProgram;
use crate::incremental::Session;
use crate::kb4::{Axiom4, KnowledgeBase4};
use crate::parser4::parse_kb4;
use dl::axiom::{Axiom, RoleExpr};
use dl::name::{DataRoleName, IndividualName, RoleName};
use dl::Concept;
use fourval::TruthValue;
use jsonio::Value;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::hash::{BuildHasher, RandomState};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tableau::{Config, QueryEngine, ReasonerError};

/// Shard count for the registry — same rationale as
/// [`crate::cache::ShardedMap`]: a small power of two.
const REGISTRY_SHARDS: usize = 16;

/// How long a connection reader sleeps between shutdown-flag polls.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

// ---------------------------------------------------------------------
// Structural keys + the cross-tenant shared cache
// ---------------------------------------------------------------------

/// The content address of a module: its classical-image axioms,
/// serialized and sorted so the key is invariant under axiom order
/// (reorder invariance of verdicts is property-tested in
/// `tests/module_parity.rs`; end-to-end sharing parity in
/// `tests/serve_parity.rs`).
pub fn structural_key<'a>(images: impl IntoIterator<Item = &'a Axiom>) -> Arc<str> {
    let mut lines: Vec<String> = images.into_iter().map(|ax| format!("{ax:?}")).collect();
    lines.sort_unstable();
    Arc::from(lines.join("\n"))
}

/// Counter snapshot of a [`SharedModuleCache`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedCacheStats {
    pub engine_hits: u64,
    pub engine_misses: u64,
    pub horn_hits: u64,
    pub horn_misses: u64,
    pub row_hits: u64,
    pub row_misses: u64,
    pub score_hits: u64,
    pub score_misses: u64,
    pub engines: usize,
    pub horn_programs: usize,
    pub rows: usize,
    pub scores: usize,
}

impl SharedCacheStats {
    /// Fraction of shared-cache lookups that hit, over the reasoning
    /// artifacts (engines, Horn programs, verdict rows). Hardness-score
    /// lookups are admission metadata and excluded so enabling lanes
    /// does not perturb the cache-efficiency signal.
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.engine_hits + self.horn_hits + self.row_hits;
        let total = hits + self.engine_misses + self.horn_misses + self.row_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Cross-tenant cache of per-module reasoning artifacts, content-
/// addressed by [`structural_key`].
///
/// Three maps, all sharded ([`ShardedMap`]):
///
/// * `engines` — built [`QueryEngine`]s per module key;
/// * `horn` — compiled Horn programs (or the memoized "not Horn"
///   verdict) per module key;
/// * `rows` — individual query verdicts per `(module key, probe)` pair,
///   so a repeat question about an identical module asked by a
///   *different* tenant is answered by a hash lookup.
///
/// Plus a fourth, `scores` — static [`crate::hardness`] scores per
/// module key, consumed by cost-aware lane admission. Content
/// addressing gives score invalidation for free: a mutated module has a
/// different key (PR 6's delta machinery already drops the tenant-side
/// entry), so a stale score is simply never looked up again.
///
/// Engines published here are built with a *neutral* config
/// ([`SharedModuleCache::build_config`]): the registry's config with
/// any per-tenant cancellation token stripped, so raising one tenant's
/// token can never cancel another tenant's query running on a shared
/// engine. Per-request cancellation uses the thread-local
/// [`tableau::interrupt`] tokens instead, which work regardless of
/// which engine the search runs on.
pub struct SharedModuleCache {
    build_config: Config,
    engines: ShardedMap<Arc<str>, Arc<QueryEngine>>,
    horn: ShardedMap<Arc<str>, Option<Arc<HornProgram>>>,
    rows: ShardedMap<(Arc<str>, String), bool>,
    scores: ShardedMap<Arc<str>, f64>,
}

impl SharedModuleCache {
    /// A cache whose shared artifacts are built under `config` (with
    /// module scoping and any cancellation token stripped).
    pub fn new(config: Config) -> Self {
        SharedModuleCache {
            build_config: Config {
                module_scoping: false,
                cancel: None,
                ..config
            },
            engines: ShardedMap::new(),
            horn: ShardedMap::new(),
            rows: ShardedMap::new(),
            scores: ShardedMap::new(),
        }
    }

    /// The neutral config shared engines must be built with.
    pub fn build_config(&self) -> &Config {
        &self.build_config
    }

    /// Look up the engine for a module key.
    pub fn engine(&self, key: &Arc<str>) -> Option<Arc<QueryEngine>> {
        self.engines.get(key)
    }

    /// Publish a (neutral-config) engine for a module key.
    pub fn publish_engine(&self, key: Arc<str>, engine: Arc<QueryEngine>) {
        self.engines.insert(key, engine);
    }

    /// Look up the Horn verdict for a module key. `Some(None)` means
    /// the module is memoized as *not* Horn.
    pub fn horn(&self, key: &Arc<str>) -> Option<Option<Arc<HornProgram>>> {
        self.horn.get(key)
    }

    /// Publish a module's Horn program (or its non-Horn verdict).
    pub fn publish_horn(&self, key: Arc<str>, program: Option<Arc<HornProgram>>) {
        self.horn.insert(key, program);
    }

    /// Look up a query verdict row.
    pub fn row(&self, key: &(Arc<str>, String)) -> Option<bool> {
        self.rows.get(key)
    }

    /// Publish a query verdict row.
    pub fn publish_row(&self, key: (Arc<str>, String), verdict: bool) {
        self.rows.insert(key, verdict);
    }

    /// Look up a module's static hardness score.
    pub fn score(&self, key: &Arc<str>) -> Option<f64> {
        self.scores.get(key)
    }

    /// Publish a module's static hardness score.
    pub fn publish_score(&self, key: Arc<str>, score: f64) {
        self.scores.insert(key, score);
    }

    /// Counter snapshot across all four maps.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            engine_hits: self.engines.hits(),
            engine_misses: self.engines.misses(),
            horn_hits: self.horn.hits(),
            horn_misses: self.horn.misses(),
            row_hits: self.rows.hits(),
            row_misses: self.rows.misses(),
            score_hits: self.scores.hits(),
            score_misses: self.scores.misses(),
            engines: self.engines.len(),
            horn_programs: self.horn.len(),
            rows: self.rows.len(),
            scores: self.scores.len(),
        }
    }
}

// ---------------------------------------------------------------------
// The sharded tenant registry
// ---------------------------------------------------------------------

/// Tenant ids mapped to [`Session`]s across `RwLock`-sharded maps, all
/// sessions wired to one [`SharedModuleCache`].
pub struct Registry {
    shards: Vec<RwLock<HashMap<String, Arc<RwLock<Session>>>>>,
    hasher: RandomState,
    shared: Arc<SharedModuleCache>,
    config: Config,
}

impl Registry {
    /// An empty registry whose sessions run under `config`.
    pub fn new(config: Config) -> Self {
        Registry {
            shards: (0..REGISTRY_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            hasher: RandomState::new(),
            shared: Arc::new(SharedModuleCache::new(config.clone())),
            config,
        }
    }

    fn shard(&self, id: &str) -> &RwLock<HashMap<String, Arc<RwLock<Session>>>> {
        let h = self.hasher.hash_one(id);
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Register a tenant over `kb`. Returns `false` (keeping the
    /// existing session) when the id is already taken.
    pub fn register(&self, id: &str, kb: &KnowledgeBase4) -> bool {
        let mut shard = write_lock(self.shard(id));
        if shard.contains_key(id) {
            return false;
        }
        let session = Session::with_shared(kb, self.config.clone(), Arc::clone(&self.shared));
        shard.insert(id.to_string(), Arc::new(RwLock::new(session)));
        true
    }

    /// Drop a tenant. Returns `false` when the id was unknown.
    pub fn remove(&self, id: &str) -> bool {
        write_lock(self.shard(id)).remove(id).is_some()
    }

    /// Is the tenant registered?
    pub fn contains(&self, id: &str) -> bool {
        read_lock(self.shard(id)).contains_key(id)
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_lock(s).len()).sum()
    }

    /// True when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All tenant ids, sorted.
    pub fn tenant_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| read_lock(s).keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    fn session(&self, id: &str) -> Option<Arc<RwLock<Session>>> {
        read_lock(self.shard(id)).get(id).map(Arc::clone)
    }

    /// Run `f` under the tenant's read lock (query verbs).
    pub fn read<R>(&self, id: &str, f: impl FnOnce(&Session) -> R) -> Option<R> {
        let slot = self.session(id)?;
        let guard = read_lock(&slot);
        Some(f(&guard))
    }

    /// Run `f` under the tenant's write lock (mutation verbs).
    pub fn write<R>(&self, id: &str, f: impl FnOnce(&mut Session) -> R) -> Option<R> {
        let slot = self.session(id)?;
        let mut guard = write_lock(&slot);
        Some(f(&mut guard))
    }

    /// The cross-tenant shared cache.
    pub fn shared(&self) -> &SharedModuleCache {
        &self.shared
    }

    /// The config every tenant session runs under.
    pub fn config(&self) -> &Config {
        &self.config
    }
}

// ---------------------------------------------------------------------
// Requests, errors, protocol execution
// ---------------------------------------------------------------------

/// Why a request was rejected or failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Load shedding: the admission queue was full.
    Overloaded { depth: usize },
    /// The server is shutting down.
    ShuttingDown,
    /// The selected tenant is not registered.
    UnknownTenant(String),
    /// No `tenant <id>` was issued on this connection yet.
    NoTenant,
    /// The request line failed to parse.
    Parse(String),
    /// The reasoner gave up (limits, budget or cancellation).
    Reasoning(ReasonerError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "admission queue full ({depth} requests queued)")
            }
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::UnknownTenant(id) => write!(f, "unknown tenant {id:?}"),
            ServeError::NoTenant => write!(f, "no tenant selected (send `tenant <id>` first)"),
            ServeError::Parse(e) => write!(f, "parse error: {e}"),
            ServeError::Reasoning(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// The machine-readable `error` token of the JSON reply.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::ShuttingDown => "shutdown",
            ServeError::UnknownTenant(_) => "unknown-tenant",
            ServeError::NoTenant => "no-tenant",
            ServeError::Parse(_) => "parse",
            ServeError::Reasoning(ReasonerError::Cancelled) => "cancelled",
            ServeError::Reasoning(ReasonerError::TimeBudget(_)) => "budget",
            ServeError::Reasoning(_) => "limit",
        }
    }

    /// The JSON reply line for this error.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("ok", false.into()),
            ("error", self.code().into()),
            ("detail", self.to_string().into()),
        ])
    }
}

/// One admitted unit of work: a protocol line, the tenant it targets,
/// and the connection's declared data roles (parser state).
#[derive(Debug, Clone)]
pub struct Request {
    pub tenant: String,
    pub line: String,
    pub data_roles: BTreeSet<DataRoleName>,
}

fn parse_axiom_line(stmt: &str, declared: &BTreeSet<DataRoleName>) -> Result<Axiom4, ServeError> {
    let mut src = String::new();
    if !declared.is_empty() {
        src.push_str("DataRole:");
        for r in declared {
            src.push(' ');
            src.push_str(r.as_ref());
        }
        src.push('\n');
    }
    src.push_str(stmt);
    let kb = parse_kb4(&src).map_err(|e| ServeError::Parse(e.to_string()))?;
    let mut axioms = kb.axioms().to_vec();
    if axioms.len() != 1 {
        return Err(ServeError::Parse(format!(
            "expected exactly one axiom, got {}",
            axioms.len()
        )));
    }
    Ok(axioms.pop().expect("length checked"))
}

fn parse_concept_arg(src: &str) -> Result<Concept, ServeError> {
    // Reuse the KB parser on a throwaway assertion so concept syntax is
    // exactly parser4's (the CLI takes the same route).
    let probe = format!("__serve_probe : {src}");
    let kb = parse_kb4(&probe).map_err(|e| ServeError::Parse(e.to_string()))?;
    match kb.axioms() {
        [Axiom4::ConceptAssertion(_, c)] => Ok(c.clone()),
        _ => Err(ServeError::Parse(format!("not a concept: {src:?}"))),
    }
}

/// Short wire token for a four-valued verdict.
pub fn truth_token(v: TruthValue) -> &'static str {
    match v {
        TruthValue::True => "t",
        TruthValue::False => "f",
        TruthValue::Both => "both",
        TruthValue::Neither => "neither",
    }
}

fn reasoning(e: ReasonerError) -> ServeError {
    ServeError::Reasoning(e)
}

/// Execute one admitted request against the registry. This is the
/// worker-side half of the protocol — connection-level verbs (`tenant`,
/// `DataRole:`, `cancel`, `quit`) never reach it.
pub fn execute(registry: &Registry, req: &Request) -> Result<Value, ServeError> {
    let (verb, rest) = match req.line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (req.line.as_str(), ""),
    };
    let known = |r: Option<Result<Value, ServeError>>| {
        r.unwrap_or_else(|| Err(ServeError::UnknownTenant(req.tenant.clone())))
    };
    match verb {
        "add" => {
            let ax = parse_axiom_line(rest, &req.data_roles)?;
            known(registry.write(&req.tenant, |s| {
                s.add_axiom(ax.clone())
                    .map_err(|e| ServeError::Parse(e.to_string()))?;
                Ok(Value::object([
                    ("ok", true.into()),
                    ("axioms", s.len().into()),
                ]))
            }))
        }
        "retract" => {
            let ax = parse_axiom_line(rest, &req.data_roles)?;
            known(registry.write(&req.tenant, |s| {
                let removed = s
                    .retract_axiom(&ax)
                    .map_err(|e| ServeError::Parse(e.to_string()))?;
                Ok(Value::object([
                    ("ok", true.into()),
                    ("removed", removed.into()),
                    ("axioms", s.len().into()),
                ]))
            }))
        }
        "query" => {
            let (ind, concept) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| ServeError::Parse("usage: query <individual> <concept>".into()))?;
            let c = parse_concept_arg(concept.trim())?;
            let a = IndividualName::new(ind);
            known(registry.read(&req.tenant, |s| {
                let v = s.query(&a, &c).map_err(reasoning)?;
                Ok(Value::object([
                    ("ok", true.into()),
                    ("verdict", truth_token(v).into()),
                ]))
            }))
        }
        "role" => {
            let mut parts = rest.split_whitespace();
            let (Some(r), Some(a), Some(b), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(ServeError::Parse("usage: role <role> <a> <b>".into()));
            };
            let (r, a, b) = (
                RoleName::new(r),
                IndividualName::new(a),
                IndividualName::new(b),
            );
            known(registry.read(&req.tenant, |s| {
                let v = s.query_role(&r, &a, &b).map_err(reasoning)?;
                Ok(Value::object([
                    ("ok", true.into()),
                    ("verdict", truth_token(v).into()),
                ]))
            }))
        }
        "entails" => {
            let ax = parse_axiom_line(rest, &req.data_roles)?;
            known(registry.read(&req.tenant, |s| {
                let holds = s.entails(&ax).map_err(reasoning)?;
                Ok(Value::object([
                    ("ok", true.into()),
                    ("entailed", holds.into()),
                ]))
            }))
        }
        "check" => known(registry.read(&req.tenant, |s| {
            let sat = s.is_satisfiable().map_err(reasoning)?;
            Ok(Value::object([
                ("ok", true.into()),
                ("satisfiable", sat.into()),
            ]))
        })),
        "stats" => {
            let shared = registry.shared().stats();
            known(registry.read(&req.tenant, |s| {
                let t = s.stats();
                let tenant_lookups = t.entailment_cache_hits
                    + t.entailment_cache_misses
                    + t.engine_cache_hits
                    + t.engine_cache_misses;
                let tenant_hits = t.entailment_cache_hits + t.engine_cache_hits;
                let ratio = if tenant_lookups == 0 {
                    0.0
                } else {
                    tenant_hits as f64 / tenant_lookups as f64
                };
                Ok(Value::object([
                    ("ok", true.into()),
                    ("axioms", s.len().into()),
                    ("cache_hit_ratio", ratio.into()),
                    ("shared_module_hits", (t.shared_module_hits as i64).into()),
                    ("shared_row_hits", (t.shared_row_hits as i64).into()),
                    ("cancelled_searches", (t.cancelled as i64).into()),
                    ("shared_hit_ratio", shared.hit_ratio().into()),
                    ("shared_engines", shared.engines.into()),
                    ("shared_rows", shared.rows.into()),
                ]))
            }))
        }
        _ => Err(ServeError::Parse(format!("unknown verb {verb:?}"))),
    }
}

/// Predict the hardness score of a request's target module without
/// running any search: parse just enough of the line to find the probe
/// seed, then ask the tenant session for its module's (cached) static
/// score. Mutations, `stats`, unknown verbs, unknown tenants and
/// unparseable lines all score `0.0` — they either run no search or
/// fail fast in the worker with the real error reply, so the cheap lane
/// is the right place for them either way.
pub fn predict_score(registry: &Registry, req: &Request) -> f64 {
    let (verb, rest) = match req.line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (req.line.as_str(), ""),
    };
    match verb {
        "query" => {
            let Some((ind, concept)) = rest.split_once(char::is_whitespace) else {
                return 0.0;
            };
            let Ok(c) = parse_concept_arg(concept.trim()) else {
                return 0.0;
            };
            let a = IndividualName::new(ind);
            registry
                .read(&req.tenant, |s| s.predicted_hardness(&a, &c))
                .unwrap_or(0.0)
        }
        "role" => {
            let mut parts = rest.split_whitespace();
            let (Some(r), Some(a), Some(b), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return 0.0;
            };
            let (r, a, b) = (
                RoleName::new(r),
                IndividualName::new(a),
                IndividualName::new(b),
            );
            registry
                .read(&req.tenant, |s| s.predicted_hardness_role(&r, &a, &b))
                .unwrap_or(0.0)
        }
        "entails" => {
            let Ok(ax) = parse_axiom_line(rest, &req.data_roles) else {
                return 0.0;
            };
            registry
                .read(&req.tenant, |s| s.predicted_hardness_axiom(&ax))
                .unwrap_or(0.0)
        }
        "check" => registry
            .read(&req.tenant, |s| s.predicted_hardness_check())
            .unwrap_or(0.0),
        _ => 0.0,
    }
}

// ---------------------------------------------------------------------
// Admission control: bounded queue + worker pool
// ---------------------------------------------------------------------

struct Job {
    id: u64,
    request: Request,
    token: Arc<AtomicBool>,
    reply: mpsc::Sender<Value>,
    enqueued: Instant,
    /// Which lane admitted the job (stats attribution).
    heavy: bool,
    /// Lane wall-clock budget; the executing worker arms the deadline
    /// and the janitor raises the token once it passes.
    budget: Option<Duration>,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Bounded MPMC job queue: `submit` sheds when full, `pop` blocks until
/// a job arrives or the queue closes.
struct Queue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

impl Queue {
    fn new(capacity: usize) -> Self {
        Queue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn submit(&self, job: Job) -> Result<(), ServeError> {
        let mut inner = lock_mutex(&self.inner);
        if inner.closed {
            return Err(ServeError::ShuttingDown);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(ServeError::Overloaded {
                depth: inner.jobs.len(),
            });
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self) -> Option<Job> {
        let mut inner = lock_mutex(&self.inner);
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = crate::cache::recover(self.ready.wait(inner));
        }
    }

    fn close(&self) {
        lock_mutex(&self.inner).closed = true;
        self.ready.notify_all();
    }
}

/// Admission/completion counters, all relaxed atomics (monitoring, not
/// synchronization).
#[derive(Default)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub admitted: AtomicU64,
    /// Requests rejected because the queue was full.
    pub shed: AtomicU64,
    /// Requests that completed with an `ok` reply.
    pub completed: AtomicU64,
    /// Requests that ended in a reasoner error (limits or budget).
    pub failed: AtomicU64,
    /// Requests revoked by a cancellation token.
    pub cancelled: AtomicU64,
    /// Peak queue wait observed, in microseconds.
    pub peak_queue_wait_us: AtomicU64,
    /// Requests admitted into the cheap lane (equals `admitted` when
    /// lanes are off — every request is cheap then).
    pub cheap_admitted: AtomicU64,
    /// Requests admitted into the heavy lane.
    pub heavy_admitted: AtomicU64,
    /// Requests shed by the cheap lane's full queue.
    pub cheap_shed: AtomicU64,
    /// Requests shed by the heavy lane's full queue.
    pub heavy_shed: AtomicU64,
    /// Cheap-lane requests that completed with an `ok` reply.
    pub cheap_completed: AtomicU64,
    /// Heavy-lane requests that completed with an `ok` reply.
    pub heavy_completed: AtomicU64,
}

impl ServeStats {
    /// JSON snapshot (the `stats` protocol verb embeds the registry
    /// side; this is the server side, exposed on shutdown summaries).
    pub fn to_json(&self) -> Value {
        Value::object([
            (
                "admitted",
                (self.admitted.load(Ordering::Relaxed) as i64).into(),
            ),
            ("shed", (self.shed.load(Ordering::Relaxed) as i64).into()),
            (
                "completed",
                (self.completed.load(Ordering::Relaxed) as i64).into(),
            ),
            (
                "failed",
                (self.failed.load(Ordering::Relaxed) as i64).into(),
            ),
            (
                "cancelled",
                (self.cancelled.load(Ordering::Relaxed) as i64).into(),
            ),
            (
                "peak_queue_wait_us",
                (self.peak_queue_wait_us.load(Ordering::Relaxed) as i64).into(),
            ),
            (
                "cheap_admitted",
                (self.cheap_admitted.load(Ordering::Relaxed) as i64).into(),
            ),
            (
                "heavy_admitted",
                (self.heavy_admitted.load(Ordering::Relaxed) as i64).into(),
            ),
            (
                "cheap_shed",
                (self.cheap_shed.load(Ordering::Relaxed) as i64).into(),
            ),
            (
                "heavy_shed",
                (self.heavy_shed.load(Ordering::Relaxed) as i64).into(),
            ),
            (
                "cheap_completed",
                (self.cheap_completed.load(Ordering::Relaxed) as i64).into(),
            ),
            (
                "heavy_completed",
                (self.heavy_completed.load(Ordering::Relaxed) as i64).into(),
            ),
        ])
    }
}

/// Cost-aware lane configuration: how the heavy lane is provisioned
/// and where the cheap/heavy boundary sits.
#[derive(Debug, Clone)]
pub struct LaneOptions {
    /// Worker threads dedicated to the heavy lane.
    pub heavy_workers: usize,
    /// Heavy-lane queue capacity; a full heavy queue sheds (no
    /// spillover into the cheap lane — that would reintroduce exactly
    /// the head-of-line blocking lanes exist to prevent).
    pub heavy_queue_depth: usize,
    /// Optional wall-clock budget per heavy request, enforced by a
    /// janitor thread raising the request's cancellation token at the
    /// deadline (reported on the wire as the usual `budget` error).
    /// `None` leaves heavy requests under the registry config's own
    /// `time_budget` alone — required for verdict parity with lanes
    /// off.
    pub heavy_budget: Option<Duration>,
    /// Requests whose predicted module score reaches this go heavy.
    pub threshold: f64,
}

impl Default for LaneOptions {
    fn default() -> Self {
        LaneOptions {
            heavy_workers: 2,
            heavy_queue_depth: 16,
            heavy_budget: None,
            threshold: hardness::DEFAULT_HEAVY_THRESHOLD,
        }
    }
}

/// Worker-pool sizing and queue depth.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads executing admitted requests.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are shed.
    pub queue_depth: usize,
    /// Cost-aware admission lanes; `None` (the default) keeps the
    /// single-queue behavior, byte-identical to before lanes existed.
    pub lanes: Option<LaneOptions>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            queue_depth: 64,
            lanes: None,
        }
    }
}

// ---------------------------------------------------------------------
// The TCP server
// ---------------------------------------------------------------------

/// One in-flight request: who it belongs to, how to revoke it, and —
/// once a lane-budgeted worker picks it up — when the janitor should.
struct InflightEntry {
    tenant: String,
    token: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

type Inflight = Mutex<HashMap<u64, InflightEntry>>;

/// A line-protocol TCP server over a [`Registry`].
///
/// `bind` spawns the acceptor and worker pool and returns immediately;
/// [`Server::shutdown`] (or drop) revokes in-flight work, closes the
/// queue and joins every thread.
pub struct Server {
    addr: SocketAddr,
    registry: Arc<Registry>,
    stats: Arc<ServeStats>,
    queue: Arc<Queue>,
    heavy_queue: Option<Arc<Queue>>,
    shutdown: Arc<AtomicBool>,
    inflight: Arc<Inflight>,
    conns: Arc<AtomicUsize>,
    acceptor: Option<JoinHandle<()>>,
    janitor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `registry`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServeStats::default());
        let queue = Arc::new(Queue::new(opts.queue_depth));
        let shutdown = Arc::new(AtomicBool::new(false));
        let inflight: Arc<Inflight> = Arc::new(Mutex::new(HashMap::new()));
        let next_id = Arc::new(AtomicU64::new(0));
        let conns = Arc::new(AtomicUsize::new(0));

        let heavy_queue = opts
            .lanes
            .as_ref()
            .map(|l| Arc::new(Queue::new(l.heavy_queue_depth)));

        let spawn_worker = |queue: &Arc<Queue>| {
            let queue = Arc::clone(queue);
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            let inflight = Arc::clone(&inflight);
            std::thread::spawn(move || worker_loop(&queue, &registry, &stats, &inflight))
        };
        let mut workers: Vec<JoinHandle<()>> = (0..opts.workers.max(1))
            .map(|_| spawn_worker(&queue))
            .collect();
        if let (Some(lanes), Some(hq)) = (&opts.lanes, &heavy_queue) {
            workers.extend((0..lanes.heavy_workers.max(1)).map(|_| spawn_worker(hq)));
        }

        // The deadline janitor only exists when a heavy budget can arm
        // deadlines; it polls in-flight entries and raises the token of
        // any request past its deadline.
        let janitor = opts.lanes.as_ref().and_then(|l| l.heavy_budget).map(|_| {
            let shutdown = Arc::clone(&shutdown);
            let inflight = Arc::clone(&inflight);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    let now = Instant::now();
                    for entry in lock_mutex(&inflight).values() {
                        if entry.deadline.is_some_and(|d| d <= now) {
                            entry.token.store(true, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(POLL_INTERVAL);
                }
            })
        });

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            let heavy_queue = heavy_queue.clone();
            let lanes = opts.lanes.clone();
            let stats = Arc::clone(&stats);
            let registry = Arc::clone(&registry);
            let inflight = Arc::clone(&inflight);
            let next_id = Arc::clone(&next_id);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // One request and one reply per round trip:
                            // Nagle buys nothing and its interaction
                            // with delayed ACKs costs tens of ms per
                            // reply, dwarfing the reasoning time.
                            let _ = stream.set_nodelay(true);
                            conns.fetch_add(1, Ordering::Relaxed);
                            let ctx = ConnCtx {
                                queue: Arc::clone(&queue),
                                heavy_queue: heavy_queue.clone(),
                                lanes: lanes.clone(),
                                stats: Arc::clone(&stats),
                                registry: Arc::clone(&registry),
                                inflight: Arc::clone(&inflight),
                                next_id: Arc::clone(&next_id),
                                shutdown: Arc::clone(&shutdown),
                                conns: Arc::clone(&conns),
                            };
                            std::thread::spawn(move || {
                                let counter = Arc::clone(&ctx.conns);
                                let _ = handle_conn(stream, &ctx);
                                counter.fetch_sub(1, Ordering::Relaxed);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => std::thread::sleep(POLL_INTERVAL),
                    }
                }
            })
        };

        Ok(Server {
            addr,
            registry,
            stats,
            queue,
            heavy_queue,
            shutdown,
            inflight,
            conns,
            acceptor: Some(acceptor),
            janitor,
            workers,
        })
    }

    /// The bound address (the chosen port when binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server fronts.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Admission counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Raise the cancellation token of every in-flight request of
    /// `tenant`; returns how many were revoked. The searches observe
    /// the token at the next `check_limits` poll and return
    /// [`ReasonerError::Cancelled`].
    pub fn cancel_tenant(&self, tenant: &str) -> usize {
        cancel_tenant_inflight(&self.inflight, tenant)
    }

    /// Stop accepting, revoke all in-flight work, drain the pool and
    /// join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::Relaxed) {
            return;
        }
        for entry in lock_mutex(&self.inflight).values() {
            entry.token.store(true, Ordering::Relaxed);
        }
        self.queue.close();
        if let Some(hq) = &self.heavy_queue {
            hq.close();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(j) = self.janitor.take() {
            let _ = j.join();
        }
        // Connection readers notice the flag at their next poll; give
        // them a bounded grace period rather than joining detached
        // threads.
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.conns.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
            std::thread::sleep(POLL_INTERVAL);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

struct ConnCtx {
    queue: Arc<Queue>,
    heavy_queue: Option<Arc<Queue>>,
    lanes: Option<LaneOptions>,
    stats: Arc<ServeStats>,
    registry: Arc<Registry>,
    inflight: Arc<Inflight>,
    next_id: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    conns: Arc<AtomicUsize>,
}

fn worker_loop(queue: &Queue, registry: &Registry, stats: &ServeStats, inflight: &Inflight) {
    while let Some(job) = queue.pop() {
        let wait = job.enqueued.elapsed().as_micros() as u64;
        stats.peak_queue_wait_us.fetch_max(wait, Ordering::Relaxed);
        // The lane budget covers execution, not queue wait: arm the
        // deadline only now, as the job leaves the queue.
        let deadline = job.budget.map(|b| Instant::now() + b);
        let reply = if job.token.load(Ordering::Relaxed) {
            // Revoked while still queued: never touch the reasoner.
            Err(ServeError::Reasoning(ReasonerError::Cancelled))
        } else {
            if let Some(d) = deadline {
                if let Some(entry) = lock_mutex(inflight).get_mut(&job.id) {
                    entry.deadline = Some(d);
                }
            }
            let _guard = tableau::interrupt::install(Arc::clone(&job.token));
            execute(registry, &job.request)
        };
        // A janitor revocation surfaces as `Cancelled`; report it as
        // the budget error the client would see from a per-session
        // `Config::time_budget` instead.
        let reply = match (reply, job.budget) {
            (Err(ServeError::Reasoning(ReasonerError::Cancelled)), Some(budget))
                if deadline.is_some_and(|d| Instant::now() >= d) =>
            {
                Err(ServeError::Reasoning(ReasonerError::TimeBudget(budget)))
            }
            (other, _) => other,
        };
        match &reply {
            Ok(_) => {
                stats.completed.fetch_add(1, Ordering::Relaxed);
                if job.heavy {
                    stats.heavy_completed.fetch_add(1, Ordering::Relaxed);
                } else {
                    stats.cheap_completed.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(ServeError::Reasoning(ReasonerError::Cancelled)) => {
                stats.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                stats.failed.fetch_add(1, Ordering::Relaxed);
            }
        };
        lock_mutex(inflight).remove(&job.id);
        let value = reply.unwrap_or_else(|e| e.to_json());
        let _ = job.reply.send(value);
    }
}

fn write_reply(stream: &mut TcpStream, value: &Value) -> std::io::Result<()> {
    // One write_all per reply: `writeln!` straight into the socket
    // would emit the JSON and the terminator as separate segments, and
    // the client cannot act until the last one lands.
    stream.write_all(format!("{value}\n").as_bytes())
}

fn handle_conn(stream: TcpStream, ctx: &ConnCtx) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut tenant: Option<String> = None;
    let mut data_roles: BTreeSet<DataRoleName> = BTreeSet::new();
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),                     // client closed
            Ok(_) if !line.ends_with('\n') => continue, // torn read, keep accumulating
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if ctx.shutdown.load(Ordering::Relaxed) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let raw = std::mem::take(&mut line);
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // Connection-level verbs execute inline; everything else is
        // admitted through the bounded queue.
        if let Some(names) = trimmed.strip_prefix("DataRole:") {
            data_roles.extend(names.split_whitespace().map(DataRoleName::new));
            write_reply(&mut writer, &Value::object([("ok", true.into())]))?;
            continue;
        }
        let (verb, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (trimmed, ""),
        };
        match verb {
            "quit" => {
                write_reply(&mut writer, &Value::object([("ok", true.into())]))?;
                return Ok(());
            }
            "tenant" => {
                if rest.is_empty() {
                    write_reply(
                        &mut writer,
                        &ServeError::Parse("usage: tenant <id>".into()).to_json(),
                    )?;
                    continue;
                }
                let created = ctx.registry.register(rest, &KnowledgeBase4::default());
                tenant = Some(rest.to_string());
                write_reply(
                    &mut writer,
                    &Value::object([
                        ("ok", true.into()),
                        ("tenant", rest.into()),
                        ("created", created.into()),
                    ]),
                )?;
                continue;
            }
            "cancel" => {
                let target = if rest.is_empty() {
                    tenant.as_deref()
                } else {
                    Some(rest)
                };
                let reply = match target {
                    Some(t) => {
                        let revoked = cancel_tenant_inflight(&ctx.inflight, t);
                        Value::object([("ok", true.into()), ("revoked", revoked.into())])
                    }
                    None => ServeError::NoTenant.to_json(),
                };
                write_reply(&mut writer, &reply)?;
                continue;
            }
            _ => {}
        }
        let Some(tenant_id) = tenant.clone() else {
            write_reply(&mut writer, &ServeError::NoTenant.to_json())?;
            continue;
        };
        let request = Request {
            tenant: tenant_id.clone(),
            line: trimmed.to_string(),
            data_roles: data_roles.clone(),
        };
        // Cost-aware lane selection: static analysis only, no search.
        let heavy = ctx
            .lanes
            .as_ref()
            .is_some_and(|l| predict_score(&ctx.registry, &request) >= l.threshold);
        let (queue, budget) = if heavy {
            (
                ctx.heavy_queue.as_deref().unwrap_or(&ctx.queue),
                ctx.lanes.as_ref().and_then(|l| l.heavy_budget),
            )
        } else {
            (&*ctx.queue, None)
        };
        let (tx, rx) = mpsc::channel();
        let id = ctx.next_id.fetch_add(1, Ordering::Relaxed);
        let token = Arc::new(AtomicBool::new(false));
        lock_mutex(&ctx.inflight).insert(
            id,
            InflightEntry {
                tenant: tenant_id,
                token: Arc::clone(&token),
                deadline: None,
            },
        );
        let job = Job {
            id,
            request,
            token,
            reply: tx,
            enqueued: Instant::now(),
            heavy,
            budget,
        };
        match queue.submit(job) {
            Ok(()) => {
                ctx.stats.admitted.fetch_add(1, Ordering::Relaxed);
                if heavy {
                    ctx.stats.heavy_admitted.fetch_add(1, Ordering::Relaxed);
                } else {
                    ctx.stats.cheap_admitted.fetch_add(1, Ordering::Relaxed);
                }
                match rx.recv() {
                    Ok(value) => write_reply(&mut writer, &value)?,
                    // Worker pool died mid-request (shutdown drained us).
                    Err(_) => write_reply(&mut writer, &ServeError::ShuttingDown.to_json())?,
                }
            }
            Err(e) => {
                lock_mutex(&ctx.inflight).remove(&id);
                if matches!(e, ServeError::Overloaded { .. }) {
                    ctx.stats.shed.fetch_add(1, Ordering::Relaxed);
                    if heavy {
                        ctx.stats.heavy_shed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        ctx.stats.cheap_shed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                write_reply(&mut writer, &e.to_json())?;
            }
        }
    }
}

fn cancel_tenant_inflight(inflight: &Inflight, tenant: &str) -> usize {
    let guard = lock_mutex(inflight);
    let mut revoked = 0;
    for entry in guard.values() {
        if entry.tenant == tenant {
            entry.token.store(true, Ordering::Relaxed);
            revoked += 1;
        }
    }
    revoked
}

/// A deterministic budget-exhausting KB: an `∃`-doubling tree whose
/// level-distinct concepts defeat pairwise blocking for `depth` levels,
/// so a consistency search explores up to `2^depth` nodes and only a
/// limit, the time budget or a cancellation token stops it. Used by the
/// hostile-tenant scenarios in `tests/serve_parity.rs` and
/// `benches/serving_saturation.rs`.
pub fn hostile_kb(depth: usize) -> KnowledgeBase4 {
    let mut axioms = Vec::new();
    let (r, s) = (RoleName::new("hr"), RoleName::new("hs"));
    for i in 0..depth {
        let here = Concept::atomic(format!("HL{i}"));
        let next = Concept::atomic(format!("HL{}", i + 1));
        // The trailing `≤` restriction is semantically inert (no `hq`
        // successor ever exists) but makes the axiom *never* `⊤`-local
        // — number restrictions are conservatively global — so module
        // scoping cannot drop the tree from any of this tenant's
        // probes, and its `∃`-heavy shape is rejected by the Horn
        // classifier. Every query against this tenant therefore really
        // runs the diverging tableau.
        let both = Concept::some(RoleExpr::named(r.clone()), next.clone())
            .and(Concept::some(RoleExpr::named(s.clone()), next))
            .and(Concept::at_most(3, RoleExpr::named(RoleName::new("hq"))));
        axioms.push(Axiom4::ConceptInclusion(
            crate::inclusion::InclusionKind::Internal,
            here,
            both,
        ));
    }
    axioms.push(Axiom4::ConceptAssertion(
        IndividualName::new("hostile"),
        Concept::atomic("HL0"),
    ));
    KnowledgeBase4::from_axioms(axioms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn serving_types_are_shareable() {
        assert_send_sync::<Registry>();
        assert_send_sync::<SharedModuleCache>();
        assert_send_sync::<Session>();
        assert_send_sync::<ServeStats>();
    }

    #[test]
    fn structural_key_is_order_invariant() {
        let kb = parse_kb4("A SubClassOf B\nB SubClassOf C\nx : A").expect("parse");
        let fwd: Vec<Axiom> = crate::transform::transform_kb(&kb).axioms().to_vec();
        let mut rev = fwd.clone();
        rev.reverse();
        assert_eq!(structural_key(fwd.iter()), structural_key(rev.iter()));
        let other = parse_kb4("A SubClassOf B\nx : A").expect("parse");
        let other: Vec<Axiom> = crate::transform::transform_kb(&other).axioms().to_vec();
        assert_ne!(structural_key(fwd.iter()), structural_key(other.iter()));
    }

    fn fleet_registry(tenants: usize) -> Registry {
        let registry = Registry::new(Config::default());
        let kb = parse_kb4(
            "CoreA SubClassOf CoreB
             CoreB SubClassOf CoreC
             corex : CoreA
             corex : not CoreC",
        )
        .expect("parse");
        for t in 0..tenants {
            assert!(registry.register(&format!("t{t}"), &kb));
        }
        registry
    }

    #[test]
    fn identical_modules_share_one_cache_entry() {
        let registry = fleet_registry(4);
        let a = IndividualName::new("corex");
        // A compound concept: atomic probes are answered by the told
        // fast path and would never exercise the module caches.
        let c = Concept::atomic("CoreA").and(Concept::atomic("CoreC"));
        let mut verdicts = Vec::new();
        for t in 0..4 {
            let v = registry
                .read(&format!("t{t}"), |s| s.query(&a, &c))
                .expect("tenant registered")
                .expect("within limits");
            verdicts.push(v);
        }
        assert!(verdicts.windows(2).all(|w| w[0] == w[1]));
        let shared = registry.shared().stats();
        assert!(
            shared.engine_hits + shared.horn_hits + shared.row_hits >= 3,
            "later tenants must adopt the first tenant's artifacts: {shared:?}"
        );
        // Per-tenant counters tell the same story from the other side.
        let adopted: u64 = (1..4)
            .map(|t| {
                registry
                    .read(&format!("t{t}"), |s| s.stats())
                    .expect("registered")
            })
            .map(|s| s.shared_module_hits + s.shared_row_hits)
            .sum();
        assert!(adopted >= 3, "tenants 1..4 each adopt shared state");
    }

    #[test]
    fn mutated_tenant_diverges_from_shared_entries_safely() {
        let registry = fleet_registry(2);
        let a = IndividualName::new("corex");
        let b = Concept::atomic("CoreA").and(Concept::atomic("CoreB"));
        let before = registry
            .read("t0", |s| s.query(&a, &b))
            .expect("registered")
            .expect("limits");
        // t1 retracts the membership: its module changes content, hence
        // key, so t0's shared entries must keep answering unchanged.
        registry
            .write("t1", |s| {
                s.retract_axiom(&Axiom4::ConceptAssertion(
                    a.clone(),
                    Concept::atomic("CoreA"),
                ))
            })
            .expect("registered")
            .expect("in-memory retract");
        let t1 = registry
            .read("t1", |s| s.query(&a, &b))
            .expect("registered")
            .expect("limits");
        let t0 = registry
            .read("t0", |s| s.query(&a, &b))
            .expect("registered")
            .expect("limits");
        assert_eq!(t0, before, "unmutated tenant unaffected by t1's retract");
        assert_ne!(t1, before, "retract changes t1's verdict");
    }

    #[test]
    fn queue_sheds_when_full_and_closes_cleanly() {
        let q = Queue::new(1);
        let (tx, _rx) = mpsc::channel();
        let mk = |id| Job {
            id,
            request: Request {
                tenant: "t".into(),
                line: "check".into(),
                data_roles: BTreeSet::new(),
            },
            token: Arc::new(AtomicBool::new(false)),
            reply: tx.clone(),
            enqueued: Instant::now(),
            heavy: false,
            budget: None,
        };
        assert!(q.submit(mk(0)).is_ok());
        assert!(matches!(
            q.submit(mk(1)),
            Err(ServeError::Overloaded { depth: 1 })
        ));
        assert!(q.pop().is_some());
        q.close();
        assert!(matches!(q.submit(mk(2)), Err(ServeError::ShuttingDown)));
        assert!(q.pop().is_none());
    }

    /// Scripted-interleaving check for the queue's blocking hand-off.
    /// The CI miri job runs every test whose name contains
    /// `interleave`, so the round count scales down under the
    /// interpreter; natively the rounds sweep enough schedules that a
    /// lost notify or a double-pop would show up as a hang or a
    /// duplicated id.
    #[test]
    fn interleaved_submit_pop_close_neither_loses_nor_duplicates() {
        use std::sync::mpsc::Sender;

        const ROUNDS: usize = if cfg!(miri) { 3 } else { 50 };
        const PER_PRODUCER: u64 = if cfg!(miri) { 4 } else { 64 };
        for _ in 0..ROUNDS {
            let q = Queue::new(4);
            let (tx, _rx) = mpsc::channel();
            let mk = |id: u64, tx: &Sender<_>| Job {
                id,
                request: Request {
                    tenant: "t".into(),
                    line: "check".into(),
                    data_roles: BTreeSet::new(),
                },
                token: Arc::new(AtomicBool::new(false)),
                reply: tx.clone(),
                enqueued: Instant::now(),
                heavy: false,
                budget: None,
            };
            let accepted = Mutex::new(Vec::new());
            let popped = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for p in 0..2u64 {
                    let (q, accepted, tx) = (&q, &accepted, &tx);
                    scope.spawn(move || {
                        for i in 0..PER_PRODUCER {
                            let id = p * PER_PRODUCER + i;
                            // Retry shed submissions: consumers drain
                            // concurrently, so capacity reopens.
                            loop {
                                match q.submit(mk(id, tx)) {
                                    Ok(()) => break,
                                    Err(ServeError::Overloaded { .. }) => {
                                        std::thread::yield_now();
                                    }
                                    Err(e) => panic!("unexpected submit error: {e:?}"),
                                }
                            }
                        }
                        crate::cache::lock_mutex(accepted)
                            .extend((0..PER_PRODUCER).map(|i| p * PER_PRODUCER + i));
                    });
                }
                for _ in 0..2 {
                    let (q, popped) = (&q, &popped);
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        // Blocking pops until close; None only after
                        // the queue is closed AND drained.
                        while let Some(job) = q.pop() {
                            got.push(job.id);
                        }
                        crate::cache::lock_mutex(popped).extend(got);
                    });
                }
                // Close only after every producer is done: wait until
                // all ids have been accepted, then close to release
                // the (possibly blocked) consumers.
                loop {
                    if crate::cache::lock_mutex(&accepted).len() == 2 * PER_PRODUCER as usize {
                        break;
                    }
                    std::thread::yield_now();
                }
                q.close();
            });
            let mut accepted = crate::cache::lock_mutex(&accepted).clone();
            let mut popped = crate::cache::lock_mutex(&popped).clone();
            accepted.sort_unstable();
            popped.sort_unstable();
            assert_eq!(accepted, popped, "jobs lost or duplicated across the queue");
        }
    }

    #[test]
    fn execute_runs_every_verb() {
        let registry = Registry::new(Config::default());
        registry.register("t", &parse_kb4("A SubClassOf B\nx : A").expect("parse"));
        let req = |line: &str| Request {
            tenant: "t".into(),
            line: line.into(),
            data_roles: BTreeSet::new(),
        };
        let v = execute(&registry, &req("query x B")).expect("query");
        assert_eq!(v.get("verdict").and_then(Value::as_str), Some("t"));
        let v = execute(&registry, &req("check")).expect("check");
        assert_eq!(v.get("satisfiable").and_then(Value::as_bool), Some(true));
        let v = execute(&registry, &req("entails A SubClassOf B")).expect("entails");
        assert_eq!(v.get("entailed").and_then(Value::as_bool), Some(true));
        let v = execute(&registry, &req("add y : A")).expect("add");
        assert_eq!(v.get("axioms").and_then(Value::as_i64), Some(3));
        let v = execute(&registry, &req("query y B")).expect("query after add");
        assert_eq!(v.get("verdict").and_then(Value::as_str), Some("t"));
        let v = execute(&registry, &req("retract y : A")).expect("retract");
        assert_eq!(v.get("removed").and_then(Value::as_bool), Some(true));
        let v = execute(&registry, &req("role r x y")).expect("role");
        assert_eq!(v.get("verdict").and_then(Value::as_str), Some("neither"));
        let v = execute(&registry, &req("stats")).expect("stats");
        assert!(v.get("cache_hit_ratio").and_then(Value::as_f64).is_some());
        assert!(matches!(
            execute(&registry, &req("frobnicate")),
            Err(ServeError::Parse(_))
        ));
        assert!(matches!(
            execute(
                &registry,
                &Request {
                    tenant: "nope".into(),
                    line: "check".into(),
                    data_roles: BTreeSet::new(),
                }
            ),
            Err(ServeError::UnknownTenant(_))
        ));
    }

    #[test]
    fn server_roundtrip_on_ephemeral_port() {
        let registry = Arc::new(Registry::new(Config::default()));
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServeOptions::default(),
        )
        .expect("bind");
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let mut ask = |line: &str| -> Value {
            writeln!(writer, "{line}").expect("send");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("reply");
            Value::parse(&reply).expect("json reply")
        };
        assert_eq!(
            ask("check").get("error").and_then(Value::as_str),
            Some("no-tenant")
        );
        assert_eq!(
            ask("tenant demo").get("created").and_then(Value::as_bool),
            Some(true)
        );
        ask("add Penguin SubClassOf Bird");
        ask("add tweety : Penguin");
        assert_eq!(
            ask("query tweety Bird")
                .get("verdict")
                .and_then(Value::as_str),
            Some("t")
        );
        assert_eq!(ask("quit").get("ok").and_then(Value::as_bool), Some(true));
        assert!(server.stats().admitted.load(Ordering::Relaxed) >= 3);
        server.shutdown();
    }

    #[test]
    fn predict_score_separates_cheap_and_heavy_modules() {
        let registry = Registry::new(Config::default());
        registry.register("easy", &parse_kb4("A SubClassOf B\nx : A").expect("parse"));
        registry.register("hard", &hostile_kb(6));
        let req = |tenant: &str, line: &str| Request {
            tenant: tenant.into(),
            line: line.into(),
            data_roles: BTreeSet::new(),
        };
        let easy = predict_score(&registry, &req("easy", "query x B"));
        let hard = predict_score(&registry, &req("hard", "check"));
        assert!(
            easy < hardness::DEFAULT_HEAVY_THRESHOLD,
            "Horn chain classified heavy: {easy}"
        );
        assert!(
            hard >= hardness::DEFAULT_HEAVY_THRESHOLD,
            "hostile ∃-tree classified cheap: {hard}"
        );
        // Mutations, stats, unknown tenants and garbage stay cheap.
        assert_eq!(predict_score(&registry, &req("hard", "add y : HL0")), 0.0);
        assert_eq!(predict_score(&registry, &req("hard", "stats")), 0.0);
        assert_eq!(predict_score(&registry, &req("nope", "check")), 0.0);
        assert_eq!(predict_score(&registry, &req("hard", "query")), 0.0);
        // Repeat predictions are answered by the shared score cache.
        let again = predict_score(&registry, &req("hard", "check"));
        assert_eq!(again, hard);
        assert!(registry.shared().stats().scores >= 1);
    }

    #[test]
    fn lanes_route_heavy_requests_and_enforce_the_lane_budget() {
        let config = Config {
            max_nodes: usize::MAX,
            max_rule_applications: u64::MAX,
            time_budget: Some(Duration::from_secs(20)), // backstop only
            ..Config::default()
        };
        let registry = Arc::new(Registry::new(config));
        registry.register("evil", &hostile_kb(40));
        registry.register("nice", &parse_kb4("A SubClassOf B\nx : A").expect("parse"));
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServeOptions {
                lanes: Some(LaneOptions {
                    heavy_budget: Some(Duration::from_millis(80)),
                    ..LaneOptions::default()
                }),
                ..ServeOptions::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        let roundtrip = |lines: &[&str]| -> Vec<Value> {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            lines
                .iter()
                .map(|line| {
                    writeln!(writer, "{line}").expect("send");
                    let mut reply = String::new();
                    reader.read_line(&mut reply).expect("reply");
                    Value::parse(&reply).expect("json reply")
                })
                .collect()
        };
        let started = Instant::now();
        let evil = roundtrip(&["tenant evil", "check"]);
        assert_eq!(
            evil[1].get("error").and_then(Value::as_str),
            Some("budget"),
            "heavy lane budget not enforced: {:?}",
            evil[1]
        );
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "lane budget must preempt the 20s backstop"
        );
        let nice = roundtrip(&["tenant nice", "query x B"]);
        assert_eq!(nice[1].get("verdict").and_then(Value::as_str), Some("t"));
        assert!(server.stats().heavy_admitted.load(Ordering::Relaxed) >= 1);
        assert!(server.stats().cheap_admitted.load(Ordering::Relaxed) >= 1);
        assert!(server.stats().cheap_completed.load(Ordering::Relaxed) >= 1);
        server.shutdown();
    }

    #[test]
    fn cancel_tenant_revokes_a_running_hostile_request() {
        let config = Config {
            max_nodes: usize::MAX,
            max_rule_applications: u64::MAX,
            time_budget: Some(Duration::from_secs(20)), // backstop only
            ..Config::default()
        };
        let registry = Arc::new(Registry::new(config));
        registry.register("evil", &hostile_kb(40));
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServeOptions::default(),
        )
        .expect("bind");
        let addr = server.local_addr();
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut reply = String::new();
            writeln!(writer, "tenant evil").expect("send");
            reader.read_line(&mut reply).expect("tenant reply");
            reply.clear();
            let started = Instant::now();
            writeln!(writer, "check").expect("send");
            reader.read_line(&mut reply).expect("check reply");
            (Value::parse(&reply).expect("json"), started.elapsed())
        });
        // Let the hostile search start, then revoke it.
        let mut revoked = 0;
        for _ in 0..100 {
            std::thread::sleep(Duration::from_millis(20));
            revoked = server.cancel_tenant("evil");
            if revoked > 0 {
                break;
            }
        }
        assert!(revoked > 0, "the hostile request never became in-flight");
        let (reply, elapsed) = client.join().expect("client");
        assert_eq!(
            reply.get("error").and_then(Value::as_str),
            Some("cancelled")
        );
        assert!(
            elapsed < Duration::from_secs(10),
            "cancellation must preempt the 20s budget, took {elapsed:?}"
        );
        assert!(server.stats().cancelled.load(Ordering::Relaxed) >= 1);
        server.shutdown();
    }
}
