//! Four-valued interpretations and satisfaction — Definitions 2–3 and
//! Tables 2–3 of the paper, over *finite* domains.
//!
//! This module is the semantic ground truth of the crate: the model
//! enumerator (`fourmodels`) and the property tests for Lemma 5 /
//! Theorem 6 all evaluate against it.
//!
//! ## Documented divergences from the paper's tables
//!
//! * **Roles as general relations.** Table 2 writes role denotations as
//!   products `<P₁×P₂, N₁×N₂>`; we interpret roles as arbitrary pairs of
//!   relations `<P, N> ⊆ Δ×Δ × Δ×Δ`, which is strictly more general and
//!   is what Definitions 8–9 actually require (`R⁼` is the complement of
//!   `N`, regardless of product structure).
//! * **Nominals.** Table 2 leaves the negative part of `{o₁,…}` as an
//!   unconstrained `N`; we fix `N = Δ ∖ {o₁,…}` (nominals are
//!   definitionally classical), which matches the transformation's
//!   treatment of nominals as untouched.
//! * **Role material inclusion.** Table 3 prints
//!   `Δ×Δ ∖ proj⁺(R₁) ⊆ proj⁺(R₂)`; the proof of Theorem 6 uses
//!   `proj⁻(R₁)`, so we implement `Δ×Δ ∖ proj⁻(R₁) ⊆ proj⁺(R₂)` (the
//!   `proj⁺` in the table is a typo — with it, material inclusion would
//!   not even be reflexive).
//! * **Datatype restrictions.** Table 2's datatype rows contain obvious
//!   transcription slips (`proj⁻(U) ⇒ y ∈ D` for the *negative* part of
//!   `∃U.D`); we mirror the object-role rows, with datatype concepts kept
//!   two-valued as §4 prescribes: the negative filler condition is `v ∉ D`.
//! * **Transitivity** `R = (R)⁺` is read on the positive part (that is
//!   what `Trans(R⁺)` in Definition 6 preserves).

use crate::inclusion::InclusionKind;
use crate::kb4::{Axiom4, KnowledgeBase4};
use dl::datatype::{DataRange, DataValue};
use dl::name::{ConceptName, DataRoleName, IndividualName, RoleName};
use dl::{Concept, RoleExpr};
use fourval::{SetPair, TruthValue};
use std::collections::{BTreeMap, BTreeSet};

/// A domain element.
pub type Elem = u32;

/// A role denotation `<P, N>` with `P, N ⊆ Δ×Δ`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RolePair {
    /// Pairs with positive information.
    pub pos: BTreeSet<(Elem, Elem)>,
    /// Pairs with negative information.
    pub neg: BTreeSet<(Elem, Elem)>,
}

/// A datatype-role denotation `<P, N>` with `P, N ⊆ Δ×Δ_D`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataRolePair {
    /// Pairs with positive information.
    pub pos: BTreeSet<(Elem, DataValue)>,
    /// Pairs with negative information.
    pub neg: BTreeSet<(Elem, DataValue)>,
}

/// A four-valued interpretation `I = (Δ, ·^I)` over a finite domain.
///
/// The datatype side uses an explicit finite *active data domain* — the
/// values quantified over when evaluating datatype restrictions and
/// material datatype-role inclusions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interp4 {
    domain: BTreeSet<Elem>,
    data_domain: BTreeSet<DataValue>,
    concepts: BTreeMap<ConceptName, SetPair<Elem>>,
    roles: BTreeMap<RoleName, RolePair>,
    data_roles: BTreeMap<DataRoleName, DataRolePair>,
    individuals: BTreeMap<IndividualName, Elem>,
}

impl Interp4 {
    /// An interpretation with domain `{0, …, n−1}`.
    pub fn with_domain_size(n: u32) -> Self {
        Interp4 {
            domain: (0..n).collect(),
            ..Default::default()
        }
    }

    /// The object domain.
    pub fn domain(&self) -> &BTreeSet<Elem> {
        &self.domain
    }

    /// The active data domain.
    pub fn data_domain(&self) -> &BTreeSet<DataValue> {
        &self.data_domain
    }

    /// Add a value to the active data domain.
    pub fn add_data_value(&mut self, v: DataValue) {
        self.data_domain.insert(v);
    }

    /// Map an individual name to a domain element.
    pub fn set_individual(&mut self, name: impl Into<IndividualName>, e: Elem) {
        assert!(self.domain.contains(&e), "element {e} outside the domain");
        self.individuals.insert(name.into(), e);
    }

    /// The element an individual denotes.
    pub fn individual(&self, name: &IndividualName) -> Option<Elem> {
        self.individuals.get(name).copied()
    }

    /// Iterate over the individual mapping.
    pub fn individuals(&self) -> impl Iterator<Item = (&IndividualName, Elem)> {
        self.individuals.iter().map(|(n, &e)| (n, e))
    }

    /// Assign an atomic concept's `<P, N>` pair.
    pub fn set_concept(&mut self, name: impl Into<ConceptName>, pair: SetPair<Elem>) {
        self.concepts.insert(name.into(), pair);
    }

    /// An atomic concept's pair (defaults to `<∅, ∅>`).
    pub fn concept(&self, name: &ConceptName) -> SetPair<Elem> {
        self.concepts.get(name).cloned().unwrap_or_default()
    }

    /// Assign a role's `<P, N>` pair.
    pub fn set_role(&mut self, name: impl Into<RoleName>, pair: RolePair) {
        self.roles.insert(name.into(), pair);
    }

    /// A named role's pair (defaults to empty).
    pub fn role(&self, name: &RoleName) -> RolePair {
        self.roles.get(name).cloned().unwrap_or_default()
    }

    /// Assign a datatype role's `<P, N>` pair, adding mentioned values to
    /// the active data domain.
    pub fn set_data_role(&mut self, name: impl Into<DataRoleName>, pair: DataRolePair) {
        for (_, v) in pair.pos.iter().chain(pair.neg.iter()) {
            self.data_domain.insert(v.clone());
        }
        self.data_roles.insert(name.into(), pair);
    }

    /// A datatype role's pair (defaults to empty).
    pub fn data_role(&self, name: &DataRoleName) -> DataRolePair {
        self.data_roles.get(name).cloned().unwrap_or_default()
    }

    /// Positive pairs of a role expression, with inverse handled by
    /// swapping.
    pub fn role_pos(&self, role: &RoleExpr) -> BTreeSet<(Elem, Elem)> {
        let pairs = self.role(role.name()).pos;
        if role.is_inverse() {
            pairs.into_iter().map(|(a, b)| (b, a)).collect()
        } else {
            pairs
        }
    }

    /// Negative pairs of a role expression.
    pub fn role_neg(&self, role: &RoleExpr) -> BTreeSet<(Elem, Elem)> {
        let pairs = self.role(role.name()).neg;
        if role.is_inverse() {
            pairs.into_iter().map(|(a, b)| (b, a)).collect()
        } else {
            pairs
        }
    }

    /// Evaluate a concept to its `<P, N>` pair (Table 2).
    pub fn eval(&self, c: &Concept) -> SetPair<Elem> {
        match c {
            Concept::Top => SetPair::top(self.domain.iter().copied()),
            Concept::Bottom => SetPair::bottom(self.domain.iter().copied()),
            Concept::Atomic(a) => self.concept(a),
            Concept::Not(inner) => self.eval(inner).neg(),
            Concept::And(l, r) => self.eval(l).and(&self.eval(r)),
            Concept::Or(l, r) => self.eval(l).or(&self.eval(r)),
            Concept::OneOf(os) => {
                let pos: BTreeSet<Elem> = os.iter().filter_map(|o| self.individual(o)).collect();
                let neg: BTreeSet<Elem> = self.domain.difference(&pos).copied().collect();
                SetPair { pos, neg }
            }
            Concept::Some(role, filler) => {
                let rp = self.role_pos(role);
                let fp = self.eval(filler);
                let pos = self
                    .domain
                    .iter()
                    .copied()
                    .filter(|&x| {
                        self.domain
                            .iter()
                            .any(|&y| rp.contains(&(x, y)) && fp.pos.contains(&y))
                    })
                    .collect();
                let neg = self
                    .domain
                    .iter()
                    .copied()
                    .filter(|&x| {
                        self.domain
                            .iter()
                            .all(|&y| !rp.contains(&(x, y)) || fp.neg.contains(&y))
                    })
                    .collect();
                SetPair { pos, neg }
            }
            Concept::All(role, filler) => {
                let rp = self.role_pos(role);
                let fp = self.eval(filler);
                let pos = self
                    .domain
                    .iter()
                    .copied()
                    .filter(|&x| {
                        self.domain
                            .iter()
                            .all(|&y| !rp.contains(&(x, y)) || fp.pos.contains(&y))
                    })
                    .collect();
                let neg = self
                    .domain
                    .iter()
                    .copied()
                    .filter(|&x| {
                        self.domain
                            .iter()
                            .any(|&y| rp.contains(&(x, y)) && fp.neg.contains(&y))
                    })
                    .collect();
                SetPair { pos, neg }
            }
            Concept::AtLeast(n, role) => {
                let rp = self.role_pos(role);
                let rn = self.role_neg(role);
                let n = *n as usize;
                let pos = self
                    .domain
                    .iter()
                    .copied()
                    .filter(|&x| {
                        self.domain
                            .iter()
                            .filter(|&&y| rp.contains(&(x, y)))
                            .count()
                            >= n
                    })
                    .collect();
                let neg = self
                    .domain
                    .iter()
                    .copied()
                    .filter(|&x| {
                        self.domain
                            .iter()
                            .filter(|&&y| !rn.contains(&(x, y)))
                            .count()
                            < n
                    })
                    .collect();
                SetPair { pos, neg }
            }
            Concept::AtMost(n, role) => {
                let rp = self.role_pos(role);
                let rn = self.role_neg(role);
                let n = *n as usize;
                let pos = self
                    .domain
                    .iter()
                    .copied()
                    .filter(|&x| {
                        self.domain
                            .iter()
                            .filter(|&&y| !rn.contains(&(x, y)))
                            .count()
                            <= n
                    })
                    .collect();
                let neg = self
                    .domain
                    .iter()
                    .copied()
                    .filter(|&x| {
                        self.domain
                            .iter()
                            .filter(|&&y| rp.contains(&(x, y)))
                            .count()
                            > n
                    })
                    .collect();
                SetPair { pos, neg }
            }
            Concept::DataSome(u, d) => self.eval_data_restriction(u, d, true),
            Concept::DataAll(u, d) => self.eval_data_restriction(u, d, false),
            Concept::DataAtLeast(n, u) => self.eval_data_card(u, *n as usize, true),
            Concept::DataAtMost(n, u) => self.eval_data_card(u, *n as usize, false),
        }
    }

    fn eval_data_restriction(
        &self,
        u: &DataRoleName,
        d: &DataRange,
        exists: bool,
    ) -> SetPair<Elem> {
        let up = self.data_role(u).pos;
        let some_in = |x: Elem, in_d: bool| {
            self.data_domain
                .iter()
                .any(|v| up.contains(&(x, v.clone())) && d.contains(v) == in_d)
        };
        let all_in = |x: Elem, in_d: bool| {
            self.data_domain
                .iter()
                .all(|v| !up.contains(&(x, v.clone())) || d.contains(v) == in_d)
        };
        let (pos, neg): (BTreeSet<Elem>, BTreeSet<Elem>) = if exists {
            (
                self.domain
                    .iter()
                    .copied()
                    .filter(|&x| some_in(x, true))
                    .collect(),
                self.domain
                    .iter()
                    .copied()
                    .filter(|&x| all_in(x, false))
                    .collect(),
            )
        } else {
            (
                self.domain
                    .iter()
                    .copied()
                    .filter(|&x| all_in(x, true))
                    .collect(),
                self.domain
                    .iter()
                    .copied()
                    .filter(|&x| some_in(x, false))
                    .collect(),
            )
        };
        SetPair { pos, neg }
    }

    fn eval_data_card(&self, u: &DataRoleName, n: usize, at_least: bool) -> SetPair<Elem> {
        let up = self.data_role(u).pos;
        let un = self.data_role(u).neg;
        let count_pos = |x: Elem| {
            self.data_domain
                .iter()
                .filter(|v| up.contains(&(x, (*v).clone())))
                .count()
        };
        let count_not_neg = |x: Elem| {
            self.data_domain
                .iter()
                .filter(|v| !un.contains(&(x, (*v).clone())))
                .count()
        };
        let (pos, neg): (BTreeSet<Elem>, BTreeSet<Elem>) = if at_least {
            (
                self.domain
                    .iter()
                    .copied()
                    .filter(|&x| count_pos(x) >= n)
                    .collect(),
                self.domain
                    .iter()
                    .copied()
                    .filter(|&x| count_not_neg(x) < n)
                    .collect(),
            )
        } else {
            (
                self.domain
                    .iter()
                    .copied()
                    .filter(|&x| count_not_neg(x) <= n)
                    .collect(),
                self.domain
                    .iter()
                    .copied()
                    .filter(|&x| count_pos(x) > n)
                    .collect(),
            )
        };
        SetPair { pos, neg }
    }

    /// The four-valued membership status of an individual in a concept
    /// (Definition 3).
    pub fn truth_of(&self, c: &Concept, a: &IndividualName) -> Option<TruthValue> {
        let e = self.individual(a)?;
        Some(self.eval(c).status(&e))
    }

    /// Does the interpretation satisfy one axiom (Table 3)?
    pub fn satisfies_axiom(&self, ax: &Axiom4) -> bool {
        match ax {
            Axiom4::ConceptInclusion(kind, c, d) => {
                let cp = self.eval(c);
                let dp = self.eval(d);
                match kind {
                    InclusionKind::Material => self
                        .domain
                        .iter()
                        .all(|x| cp.neg.contains(x) || dp.pos.contains(x)),
                    InclusionKind::Internal => cp.pos.is_subset(&dp.pos),
                    InclusionKind::Strong => cp.pos.is_subset(&dp.pos) && dp.neg.is_subset(&cp.neg),
                }
            }
            Axiom4::RoleInclusion(kind, r, s) => {
                let (rp, rn) = (self.role_pos(r), self.role_neg(r));
                let (sp, sn) = (self.role_pos(s), self.role_neg(s));
                match kind {
                    InclusionKind::Material => self.domain.iter().all(|&x| {
                        self.domain
                            .iter()
                            .all(|&y| rn.contains(&(x, y)) || sp.contains(&(x, y)))
                    }),
                    InclusionKind::Internal => rp.is_subset(&sp),
                    InclusionKind::Strong => rp.is_subset(&sp) && sn.is_subset(&rn),
                }
            }
            Axiom4::DataRoleInclusion(kind, u, v) => {
                let (up, un) = (self.data_role(u).pos, self.data_role(u).neg);
                let (vp, vn) = (self.data_role(v).pos, self.data_role(v).neg);
                match kind {
                    InclusionKind::Material => self.domain.iter().all(|&x| {
                        self.data_domain
                            .iter()
                            .all(|w| un.contains(&(x, w.clone())) || vp.contains(&(x, w.clone())))
                    }),
                    InclusionKind::Internal => up.is_subset(&vp),
                    InclusionKind::Strong => up.is_subset(&vp) && vn.is_subset(&un),
                }
            }
            Axiom4::Transitive(r) => {
                let p = self.role(r).pos;
                p.iter().all(|&(x, y)| {
                    p.iter()
                        .filter(|&&(y2, _)| y2 == y)
                        .all(|&(_, z)| p.contains(&(x, z)))
                })
            }
            Axiom4::ConceptAssertion(a, c) => match self.individual(a) {
                Some(e) => self.eval(c).pos.contains(&e),
                None => false,
            },
            Axiom4::RoleAssertion(r, a, b) => match (self.individual(a), self.individual(b)) {
                (Some(x), Some(y)) => self.role(r).pos.contains(&(x, y)),
                _ => false,
            },
            Axiom4::NegativeRoleAssertion(r, a, b) => {
                match (self.individual(a), self.individual(b)) {
                    (Some(x), Some(y)) => self.role(r).neg.contains(&(x, y)),
                    _ => false,
                }
            }
            Axiom4::DataAssertion(u, a, v) => match self.individual(a) {
                Some(x) => self.data_role(u).pos.contains(&(x, v.clone())),
                None => false,
            },
            Axiom4::SameIndividual(a, b) => match (self.individual(a), self.individual(b)) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
            Axiom4::DifferentIndividuals(a, b) => match (self.individual(a), self.individual(b)) {
                (Some(x), Some(y)) => x != y,
                _ => false,
            },
        }
    }

    /// Does the interpretation satisfy the whole KB?
    pub fn satisfies(&self, kb: &KnowledgeBase4) -> bool {
        kb.axioms().iter().all(|ax| self.satisfies_axiom(ax))
    }

    /// Is every assignment classical (`P ∩ N = ∅`, `P ∪ N = Δ`)? Such
    /// interpretations are exactly the embedded two-valued ones.
    pub fn is_classical(&self) -> bool {
        let full: BTreeSet<(Elem, Elem)> = self
            .domain
            .iter()
            .flat_map(|&x| self.domain.iter().map(move |&y| (x, y)))
            .collect();
        self.concepts.values().all(|p| p.is_classical(&self.domain))
            && self.roles.values().all(|r| {
                r.pos.is_disjoint(&r.neg)
                    && r.pos.union(&r.neg).copied().collect::<BTreeSet<_>>() == full
            })
    }
}

// ——— JSON codec (companion to `crate::json`) ————————————————————————
//
// The codec lives here because it needs the private fields; `crate::json`
// holds the shared `DataValue` encoding and the KB envelopes.

impl Interp4 {
    /// Serialize to a structured JSON value (domains, name maps, and the
    /// `<P, N>` projections spelled out).
    pub fn to_json(&self) -> jsonio::Value {
        use jsonio::Value;
        let elems = |s: &BTreeSet<Elem>| -> Value {
            s.iter().map(|&e| Value::from(e)).collect::<Vec<_>>().into()
        };
        let pairs = |s: &BTreeSet<(Elem, Elem)>| -> Value {
            s.iter()
                .map(|&(a, b)| Value::from(vec![Value::from(a), Value::from(b)]))
                .collect::<Vec<_>>()
                .into()
        };
        let data_pairs = |s: &BTreeSet<(Elem, DataValue)>| -> Value {
            s.iter()
                .map(|(a, v)| {
                    Value::from(vec![Value::from(*a), crate::json::data_value_to_json(v)])
                })
                .collect::<Vec<_>>()
                .into()
        };
        Value::object([
            ("domain", elems(&self.domain)),
            (
                "data_domain",
                self.data_domain
                    .iter()
                    .map(crate::json::data_value_to_json)
                    .collect::<Vec<_>>()
                    .into(),
            ),
            (
                "individuals",
                Value::Object(
                    self.individuals
                        .iter()
                        .map(|(n, &e)| (n.as_str().to_string(), Value::from(e)))
                        .collect(),
                ),
            ),
            (
                "concepts",
                Value::Object(
                    self.concepts
                        .iter()
                        .map(|(n, p)| {
                            (
                                n.as_str().to_string(),
                                Value::object([("pos", elems(&p.pos)), ("neg", elems(&p.neg))]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "roles",
                Value::Object(
                    self.roles
                        .iter()
                        .map(|(n, r)| {
                            (
                                n.as_str().to_string(),
                                Value::object([("pos", pairs(&r.pos)), ("neg", pairs(&r.neg))]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "data_roles",
                Value::Object(
                    self.data_roles
                        .iter()
                        .map(|(n, r)| {
                            (
                                n.as_str().to_string(),
                                Value::object([
                                    ("pos", data_pairs(&r.pos)),
                                    ("neg", data_pairs(&r.neg)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserialize from the structured JSON form produced by
    /// [`Interp4::to_json`].
    pub fn from_json(v: &jsonio::Value) -> Result<Self, String> {
        use jsonio::Value;
        fn elem(v: &Value) -> Result<Elem, String> {
            v.as_i64()
                .and_then(|i| u32::try_from(i).ok())
                .ok_or_else(|| format!("not a domain element: {v}"))
        }
        fn elem_set(v: Option<&Value>, what: &str) -> Result<BTreeSet<Elem>, String> {
            v.and_then(Value::as_array)
                .ok_or_else(|| format!("missing `{what}` array"))?
                .iter()
                .map(elem)
                .collect()
        }
        fn pair_set(v: Option<&Value>, what: &str) -> Result<BTreeSet<(Elem, Elem)>, String> {
            v.and_then(Value::as_array)
                .ok_or_else(|| format!("missing `{what}` array"))?
                .iter()
                .map(|p| match p.as_array() {
                    Some([a, b]) => Ok((elem(a)?, elem(b)?)),
                    _ => Err(format!("not a pair: {p}")),
                })
                .collect()
        }
        fn data_pair_set(
            v: Option<&Value>,
            what: &str,
        ) -> Result<BTreeSet<(Elem, DataValue)>, String> {
            v.and_then(Value::as_array)
                .ok_or_else(|| format!("missing `{what}` array"))?
                .iter()
                .map(|p| match p.as_array() {
                    Some([a, w]) => Ok((elem(a)?, crate::json::data_value_from_json(w)?)),
                    _ => Err(format!("not a data pair: {p}")),
                })
                .collect()
        }
        let obj = v
            .as_object()
            .ok_or_else(|| "expected an interpretation object".to_string())?;
        let mut out = Interp4 {
            domain: elem_set(obj.get("domain"), "domain")?,
            ..Default::default()
        };
        for w in obj
            .get("data_domain")
            .and_then(Value::as_array)
            .ok_or_else(|| "missing `data_domain` array".to_string())?
        {
            out.data_domain
                .insert(crate::json::data_value_from_json(w)?);
        }
        let named = |key: &str| -> Result<&BTreeMap<String, Value>, String> {
            obj.get(key)
                .and_then(Value::as_object)
                .ok_or_else(|| format!("missing `{key}` map"))
        };
        for (n, e) in named("individuals")? {
            let e = elem(e)?;
            if !out.domain.contains(&e) {
                return Err(format!("individual {n} maps outside the domain"));
            }
            out.individuals.insert(IndividualName::new(n), e);
        }
        for (n, p) in named("concepts")? {
            out.concepts.insert(
                ConceptName::new(n),
                SetPair {
                    pos: elem_set(p.get("pos"), "pos")?,
                    neg: elem_set(p.get("neg"), "neg")?,
                },
            );
        }
        for (n, r) in named("roles")? {
            out.roles.insert(
                RoleName::new(n),
                RolePair {
                    pos: pair_set(r.get("pos"), "pos")?,
                    neg: pair_set(r.get("neg"), "neg")?,
                },
            );
        }
        for (n, r) in named("data_roles")? {
            out.data_roles.insert(
                DataRoleName::new(n),
                DataRolePair {
                    pos: data_pair_set(r.get("pos"), "pos")?,
                    neg: data_pair_set(r.get("neg"), "neg")?,
                },
            );
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(pos: &[Elem], neg: &[Elem]) -> SetPair<Elem> {
        SetPair::new(pos.iter().copied(), neg.iter().copied())
    }

    /// The model of the paper's Example 1.
    fn example1_model() -> Interp4 {
        let mut i = Interp4::with_domain_size(3);
        i.set_individual("john", 0);
        i.set_individual("mary", 1);
        i.set_individual("bill", 2);
        i.set_concept("Doctor", pair(&[0, 2], &[0]));
        i.set_concept("Patient", pair(&[1], &[]));
        i.set_role(
            "hasPatient",
            RolePair {
                pos: BTreeSet::from([(2, 1)]),
                neg: BTreeSet::new(),
            },
        );
        i
    }

    #[test]
    fn example1_contradiction_is_localized() {
        let i = example1_model();
        let doctor = Concept::atomic("Doctor");
        assert_eq!(
            i.truth_of(&doctor, &IndividualName::new("john")),
            Some(TruthValue::Both)
        );
        assert_eq!(
            i.truth_of(&doctor, &IndividualName::new("bill")),
            Some(TruthValue::True)
        );
        assert_eq!(
            i.truth_of(&doctor, &IndividualName::new("mary")),
            Some(TruthValue::Neither)
        );
    }

    #[test]
    fn example1_model_satisfies_kb() {
        let i = example1_model();
        let kb = KnowledgeBase4::from_axioms([
            Axiom4::ConceptInclusion(
                InclusionKind::Internal,
                Concept::some(RoleExpr::named("hasPatient"), Concept::atomic("Patient")),
                Concept::atomic("Doctor"),
            ),
            Axiom4::ConceptAssertion(IndividualName::new("john"), Concept::atomic("Doctor")),
            Axiom4::ConceptAssertion(IndividualName::new("john"), Concept::atomic("Doctor").not()),
            Axiom4::ConceptAssertion(IndividualName::new("mary"), Concept::atomic("Patient")),
            Axiom4::RoleAssertion(
                RoleName::new("hasPatient"),
                IndividualName::new("bill"),
                IndividualName::new("mary"),
            ),
        ]);
        assert!(i.satisfies(&kb));
    }

    #[test]
    fn exists_restriction_four_valued_semantics() {
        let i = example1_model();
        let c = Concept::some(RoleExpr::named("hasPatient"), Concept::atomic("Patient"));
        let p = i.eval(&c);
        // bill has a patient; john/mary have no hasPatient-successors at
        // all, so they are vacuously in the *negative* part (∀y …⇒ y∈N).
        assert!(p.pos.contains(&2));
        assert!(p.neg.contains(&0) && p.neg.contains(&1));
        assert!(!p.neg.contains(&2)); // mary ∉ proj⁻(Patient)
    }

    #[test]
    fn top_bottom_identities_prop3_hold_for_eval() {
        let i = example1_model();
        let c = Concept::atomic("Doctor");
        assert_eq!(i.eval(&c.clone().and(Concept::Top)), i.eval(&c));
        assert_eq!(i.eval(&c.clone().or(Concept::Top)), i.eval(&Concept::Top));
        assert_eq!(
            i.eval(&c.clone().and(Concept::Bottom)),
            i.eval(&Concept::Bottom)
        );
        assert_eq!(i.eval(&c.clone().or(Concept::Bottom)), i.eval(&c));
    }

    #[test]
    fn de_morgan_prop4_holds_for_eval() {
        let i = example1_model();
        let c = Concept::atomic("Doctor");
        let d = Concept::atomic("Patient");
        assert_eq!(
            i.eval(&c.clone().or(d.clone()).not()),
            i.eval(&c.clone().not().and(d.clone().not()))
        );
        assert_eq!(
            i.eval(&c.clone().and(d.clone()).not()),
            i.eval(&c.clone().not().or(d.clone().not()))
        );
        let r = RoleExpr::named("hasPatient");
        assert_eq!(
            i.eval(&Concept::all(r.clone(), d.clone()).not()),
            i.eval(&Concept::some(r.clone(), d.clone().not()))
        );
        assert_eq!(
            i.eval(&Concept::at_least(2, r.clone()).not()),
            i.eval(&Concept::at_most(1, r.clone()))
        );
        assert_eq!(
            i.eval(&Concept::at_most(1, r.clone()).not()),
            i.eval(&Concept::at_least(2, r))
        );
    }

    #[test]
    fn inclusion_kinds_differ_on_contradictory_models() {
        // Δ={0}; C = <{0},{0}>, D = <∅,∅>.
        let mut i = Interp4::with_domain_size(1);
        i.set_concept("C", pair(&[0], &[0]));
        i.set_concept("D", pair(&[], &[]));
        let c = Concept::atomic("C");
        let d = Concept::atomic("D");
        // Material: Δ∖N(C) = ∅ ⊆ P(D): satisfied (the exception excuses).
        assert!(i.satisfies_axiom(&Axiom4::ConceptInclusion(
            InclusionKind::Material,
            c.clone(),
            d.clone()
        )));
        // Internal: P(C)={0} ⊄ P(D)=∅: violated.
        assert!(!i.satisfies_axiom(&Axiom4::ConceptInclusion(
            InclusionKind::Internal,
            c.clone(),
            d.clone()
        )));
        // Strong: also violated.
        assert!(!i.satisfies_axiom(&Axiom4::ConceptInclusion(InclusionKind::Strong, c, d)));
    }

    #[test]
    fn strong_requires_contraposition() {
        // P(C)=∅⊆P(D); N(D)={0} ⊄ N(C)=∅ → internal holds, strong fails.
        let mut i = Interp4::with_domain_size(1);
        i.set_concept("C", pair(&[], &[]));
        i.set_concept("D", pair(&[], &[0]));
        let (c, d) = (Concept::atomic("C"), Concept::atomic("D"));
        assert!(i.satisfies_axiom(&Axiom4::ConceptInclusion(
            InclusionKind::Internal,
            c.clone(),
            d.clone()
        )));
        assert!(!i.satisfies_axiom(&Axiom4::ConceptInclusion(InclusionKind::Strong, c, d)));
    }

    #[test]
    fn nominal_evaluation_is_classical() {
        let i = example1_model();
        let c = Concept::one_of([IndividualName::new("john")]);
        let p = i.eval(&c);
        assert_eq!(p, pair(&[0], &[1, 2]));
    }

    #[test]
    fn transitivity_checks_positive_closure() {
        let mut i = Interp4::with_domain_size(3);
        i.set_role(
            "r",
            RolePair {
                pos: BTreeSet::from([(0, 1), (1, 2)]),
                neg: BTreeSet::new(),
            },
        );
        assert!(!i.satisfies_axiom(&Axiom4::Transitive(RoleName::new("r"))));
        i.set_role(
            "r",
            RolePair {
                pos: BTreeSet::from([(0, 1), (1, 2), (0, 2)]),
                neg: BTreeSet::new(),
            },
        );
        assert!(i.satisfies_axiom(&Axiom4::Transitive(RoleName::new("r"))));
    }

    #[test]
    fn inverse_roles_swap_pairs() {
        let mut i = Interp4::with_domain_size(2);
        i.set_role(
            "r",
            RolePair {
                pos: BTreeSet::from([(0, 1)]),
                neg: BTreeSet::from([(1, 0)]),
            },
        );
        let inv = RoleExpr::named("r").inverse();
        assert!(i.role_pos(&inv).contains(&(1, 0)));
        assert!(i.role_neg(&inv).contains(&(0, 1)));
    }

    #[test]
    fn negative_role_assertions() {
        let mut i = Interp4::with_domain_size(2);
        i.set_individual("a", 0);
        i.set_individual("b", 1);
        i.set_role(
            "r",
            RolePair {
                pos: BTreeSet::new(),
                neg: BTreeSet::from([(0, 1)]),
            },
        );
        assert!(i.satisfies_axiom(&Axiom4::NegativeRoleAssertion(
            RoleName::new("r"),
            IndividualName::new("a"),
            IndividualName::new("b"),
        )));
        assert!(!i.satisfies_axiom(&Axiom4::RoleAssertion(
            RoleName::new("r"),
            IndividualName::new("a"),
            IndividualName::new("b"),
        )));
    }

    #[test]
    fn data_restrictions_active_domain() {
        let mut i = Interp4::with_domain_size(1);
        i.set_individual("a", 0);
        i.set_data_role(
            "age",
            DataRolePair {
                pos: BTreeSet::from([(0, DataValue::Integer(12))]),
                neg: BTreeSet::new(),
            },
        );
        let minor = Concept::DataSome(
            DataRoleName::new("age"),
            DataRange::IntRange {
                min: Some(0),
                max: Some(17),
            },
        );
        let p = i.eval(&minor);
        assert!(p.pos.contains(&0));
        let adult = Concept::DataSome(
            DataRoleName::new("age"),
            DataRange::IntRange {
                min: Some(18),
                max: None,
            },
        );
        let p = i.eval(&adult);
        assert!(!p.pos.contains(&0));
        assert!(p.neg.contains(&0)); // all age-successors (just 12) miss [18..]
    }

    #[test]
    fn classicality_detection() {
        let mut i = Interp4::with_domain_size(2);
        i.set_concept("A", pair(&[0], &[1]));
        assert!(i.is_classical());
        i.set_concept("B", pair(&[0], &[0, 1]));
        assert!(!i.is_classical());
    }

    #[test]
    fn json_codec_round_trips() {
        let mut i = example1_model();
        i.set_data_role(
            "age",
            DataRolePair {
                pos: BTreeSet::from([(0, DataValue::Integer(40))]),
                neg: BTreeSet::from([(1, DataValue::Str("n/a".into()))]),
            },
        );
        let json = i.to_json().to_string();
        let back = Interp4::from_json(&jsonio::Value::parse(&json).unwrap()).unwrap();
        assert_eq!(back, i);
    }

    #[test]
    fn json_codec_rejects_out_of_domain_individuals() {
        let i = example1_model();
        let mut v = i.to_json();
        if let jsonio::Value::Object(obj) = &mut v {
            obj.insert(
                "individuals".to_string(),
                jsonio::Value::object([("zed", 99u32.into())]),
            );
        }
        assert!(Interp4::from_json(&v).is_err());
    }

    #[test]
    fn material_role_inclusion_reflexivity_sanity() {
        // With the paper's literal Table-3 text (proj⁺), R ↦ R would fail
        // on any model where R has unknown pairs; with the corrected
        // proj⁻ reading it holds exactly when no pair is ⊥.
        let mut i = Interp4::with_domain_size(1);
        i.set_role(
            "r",
            RolePair {
                pos: BTreeSet::new(),
                neg: BTreeSet::from([(0, 0)]),
            },
        );
        let ax = Axiom4::RoleInclusion(
            InclusionKind::Material,
            RoleExpr::named("r"),
            RoleExpr::named("r"),
        );
        assert!(i.satisfies_axiom(&ax));
    }
}
