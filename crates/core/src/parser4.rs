//! Concrete syntax for SHOIN(D)4 — the `dl` Manchester-like syntax plus
//! the three inclusion kinds and negative role assertions:
//!
//! ```text
//! # material (exception-tolerant), internal (= classical SubClassOf),
//! # strong (contraposable):
//! Bird and (hasWing some Wing) MaterialSubClassOf Fly
//! Penguin SubClassOf Bird
//! Penguin StrongSubClassOf Vertebrate
//!
//! hasSon MaterialSubRoleOf hasChild
//! hasSon SubRoleOf hasChild
//! hasSon StrongSubRoleOf hasChild
//! age MaterialSubDataRoleOf attr      # and Sub/Strong variants
//!
//! not hasFriend(a, b)                  # negative role assertion ¬R(a,b)
//! ```
//!
//! Everything else (assertions, `Transitive(·)`, `DataRole:` declarations,
//! comments) is the `dl` syntax, one statement per line.

use crate::inclusion::InclusionKind;
use crate::kb4::{Axiom4, KnowledgeBase4};
use dl::parser::{parse_kb, ParseError};
use dl::Axiom;

fn adjust_line(mut e: ParseError, actual_line: usize) -> ParseError {
    e.line = actual_line;
    e
}

/// Parse one concept in the context of the accumulated `DataRole:`
/// declarations, by wrapping it in a dummy assertion.
fn parse_concept_with_decls(
    decls: &str,
    src: &str,
    line: usize,
) -> Result<dl::Concept, ParseError> {
    let wrapped = format!("{decls}__dummy : {src}");
    let kb = parse_kb(&wrapped).map_err(|e| adjust_line(e, line))?;
    match kb.axioms().last() {
        Some(Axiom::ConceptAssertion(_, c)) => Ok(c.clone()),
        _ => Err(ParseError {
            line,
            message: format!("expected a concept expression, got `{src}`"),
        }),
    }
}

fn parse_role_side(src: &str, line: usize) -> Result<dl::RoleExpr, ParseError> {
    let toks: Vec<&str> = src.split_whitespace().collect();
    match toks.as_slice() {
        [name] => Ok(dl::RoleExpr::named(*name)),
        ["inverse", name] => Ok(dl::RoleExpr::named(*name).inverse()),
        _ => Err(ParseError {
            line,
            message: format!("expected a role (optionally `inverse R`), got `{src}`"),
        }),
    }
}

/// Parse a SHOIN(D)4 knowledge base.
pub fn parse_kb4(input: &str) -> Result<KnowledgeBase4, ParseError> {
    // Pre-pass: gather DataRole declarations so concept sub-parses see
    // them regardless of position.
    let mut decls = String::new();
    for raw in input.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with("DataRole:") {
            decls.push_str(line);
            decls.push('\n');
        }
    }

    let mut axioms = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }

        // 4-valued concept inclusions.
        let mut handled = false;
        for (kw, kind) in [
            ("MaterialSubClassOf", InclusionKind::Material),
            ("StrongSubClassOf", InclusionKind::Strong),
        ] {
            if let Some(pos) = find_keyword(line, kw) {
                let (lhs, rhs) = (&line[..pos], &line[pos + kw.len()..]);
                let c = parse_concept_with_decls(&decls, lhs.trim(), lineno)?;
                let d = parse_concept_with_decls(&decls, rhs.trim(), lineno)?;
                axioms.push(Axiom4::ConceptInclusion(kind, c, d));
                handled = true;
                break;
            }
        }
        if handled {
            continue;
        }

        // 4-valued role inclusions.
        for (kw, kind) in [
            ("MaterialSubRoleOf", InclusionKind::Material),
            ("StrongSubRoleOf", InclusionKind::Strong),
        ] {
            if let Some(pos) = find_keyword(line, kw) {
                let r = parse_role_side(line[..pos].trim(), lineno)?;
                let s = parse_role_side(line[pos + kw.len()..].trim(), lineno)?;
                axioms.push(Axiom4::RoleInclusion(kind, r, s));
                handled = true;
                break;
            }
        }
        if handled {
            continue;
        }

        // 4-valued data-role inclusions.
        for (kw, kind) in [
            ("MaterialSubDataRoleOf", InclusionKind::Material),
            ("StrongSubDataRoleOf", InclusionKind::Strong),
        ] {
            if let Some(pos) = find_keyword(line, kw) {
                let u = line[..pos].trim();
                let v = line[pos + kw.len()..].trim();
                if u.split_whitespace().count() != 1 || v.split_whitespace().count() != 1 {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("expected `U {kw} V` with simple names"),
                    });
                }
                axioms.push(Axiom4::DataRoleInclusion(
                    kind,
                    dl::DataRoleName::new(u),
                    dl::DataRoleName::new(v),
                ));
                handled = true;
                break;
            }
        }
        if handled {
            continue;
        }

        // Negative role assertion: `not r(a, b)`.
        if let Some(rest) = line.strip_prefix("not ") {
            let rest = rest.trim();
            if let Some((role, args)) = rest.split_once('(') {
                let role = role.trim();
                if let Some(args) = args.strip_suffix(')') {
                    let parts: Vec<&str> = args.split(',').map(str::trim).collect();
                    if role.chars().all(|ch| ch.is_alphanumeric() || ch == '_')
                        && parts.len() == 2
                        && parts.iter().all(|p| {
                            !p.is_empty() && p.chars().next().is_some_and(char::is_alphabetic)
                        })
                    {
                        axioms.push(Axiom4::NegativeRoleAssertion(
                            dl::RoleName::new(role),
                            dl::IndividualName::new(parts[0]),
                            dl::IndividualName::new(parts[1]),
                        ));
                        continue;
                    }
                }
            }
            // Fall through: `not …` that is not a role assertion is a
            // syntax error at statement level.
            return Err(ParseError {
                line: lineno,
                message: "a statement cannot start with `not` (did you mean \
                          `not r(a, b)`?)"
                    .to_string(),
            });
        }

        if line.starts_with("DataRole:") || line.starts_with("Role:") {
            continue; // declarations already folded into `decls`
        }

        // Everything else: delegate to the classical parser with the
        // declarations in scope; classical inclusions read as internal.
        let wrapped = format!("{decls}{line}");
        let kb = parse_kb(&wrapped).map_err(|e| adjust_line(e, lineno))?;
        axioms.extend(
            kb.axioms()
                .iter()
                .map(|ax| Axiom4::from_classical(ax, InclusionKind::Internal)),
        );
    }
    Ok(KnowledgeBase4::from_axioms(axioms))
}

/// Find a keyword as a whitespace-delimited token, returning its byte
/// offset.
fn find_keyword(line: &str, kw: &str) -> Option<usize> {
    let mut start = 0;
    for token in line.split_whitespace() {
        let pos = line[start..].find(token).expect("token came from line") + start;
        if token == kw {
            return Some(pos);
        }
        start = pos + token.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::Concept;

    #[test]
    fn parses_all_three_inclusion_kinds() {
        let kb = parse_kb4(
            "A MaterialSubClassOf B
             C SubClassOf D
             E StrongSubClassOf F",
        )
        .unwrap();
        let kinds: Vec<InclusionKind> = kb
            .axioms()
            .iter()
            .filter_map(|ax| match ax {
                Axiom4::ConceptInclusion(k, ..) => Some(*k),
                _ => None,
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                InclusionKind::Material,
                InclusionKind::Internal,
                InclusionKind::Strong
            ]
        );
    }

    #[test]
    fn complex_sides_parse() {
        let kb = parse_kb4("Bird and (hasWing some Wing) MaterialSubClassOf Fly or Glide").unwrap();
        let Axiom4::ConceptInclusion(InclusionKind::Material, lhs, rhs) = &kb.axioms()[0] else {
            panic!()
        };
        assert_eq!(lhs.size(), 4);
        assert_eq!(rhs, &Concept::atomic("Fly").or(Concept::atomic("Glide")));
    }

    #[test]
    fn role_inclusions_with_inverse() {
        let kb = parse_kb4(
            "r MaterialSubRoleOf s
             inverse r StrongSubRoleOf t",
        )
        .unwrap();
        assert!(matches!(
            &kb.axioms()[0],
            Axiom4::RoleInclusion(InclusionKind::Material, ..)
        ));
        let Axiom4::RoleInclusion(InclusionKind::Strong, r, _) = &kb.axioms()[1] else {
            panic!()
        };
        assert!(r.is_inverse());
    }

    #[test]
    fn data_role_inclusions() {
        let kb = parse_kb4("u MaterialSubDataRoleOf v\nu StrongSubDataRoleOf w").unwrap();
        assert_eq!(kb.len(), 2);
    }

    #[test]
    fn negative_role_assertion() {
        let kb = parse_kb4("not hasFriend(a, b)").unwrap();
        assert_eq!(
            kb.axioms()[0],
            Axiom4::NegativeRoleAssertion(
                dl::RoleName::new("hasFriend"),
                dl::IndividualName::new("a"),
                dl::IndividualName::new("b"),
            )
        );
    }

    #[test]
    fn classical_statements_delegate() {
        let kb = parse_kb4(
            "Transitive(anc)
             a : A and not B
             r(a, b)
             a != b",
        )
        .unwrap();
        assert_eq!(kb.len(), 4);
        assert!(matches!(&kb.axioms()[0], Axiom4::Transitive(_)));
    }

    #[test]
    fn data_role_declarations_apply_to_material_lines() {
        let kb = parse_kb4(
            "DataRole: age
             Adult MaterialSubClassOf age some integer[18..]",
        )
        .unwrap();
        let Axiom4::ConceptInclusion(_, _, rhs) = &kb.axioms()[0] else {
            panic!()
        };
        assert!(matches!(rhs, Concept::DataSome(..)));
    }

    #[test]
    fn error_line_numbers_survive_delegation() {
        let err = parse_kb4("A SubClassOf B\nA SubClassOf").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_kb4("A MaterialSubClassOf (B").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn stray_not_statement_rejected() {
        assert!(parse_kb4("not A SubClassOf B").is_err());
    }

    #[test]
    fn paper_example_3_tbox4() {
        let kb = parse_kb4(
            "Bird and (hasWing some Wing) MaterialSubClassOf Fly
             Penguin SubClassOf Bird
             Penguin SubClassOf hasWing some Wing
             Penguin SubClassOf not Fly
             tweety : Bird
             tweety : Penguin
             w : Wing
             hasWing(tweety, w)",
        )
        .unwrap();
        assert_eq!(kb.tbox().count(), 4);
        assert_eq!(kb.abox().count(), 4);
    }
}
