//! Told information: the syntactic told-subsumption graph over atomic
//! concepts (with axiom provenance on every edge), membership closure, a
//! union-find for individual equality — and [`ToldIndex`], the sound
//! fast path the batch reasoner consults before invoking the tableau.
//!
//! This machinery originated in the `ontolint` static-analysis crate
//! (which re-exports it for compatibility); it lives here so the
//! reasoner can reuse it without a dependency cycle.
//!
//! ## Soundness of the fast path
//!
//! The told fragment only reads inclusions whose sides are atomic (or a
//! negated atomic on the right). Under the Definition 5–7 translation,
//! an internal/strong `A ⊑ B` becomes `A⁺ ⊑ B⁺` in the induced classical
//! KB (strong additionally contraposes `B⁻ ⊑ A⁻`), an assertion `a : A`
//! becomes `a : A⁺` and `a : ¬A` becomes `a : A⁻`. So every membership
//! the non-material closure derives is a *logical consequence* of the
//! induced KB — a told verdict of "positive information present" (resp.
//! negative) is exactly a certificate that the corresponding classical
//! entailment check would answer `true`.
//!
//! **Material inclusions are never followed**, and this exclusion is
//! load-bearing, not stylistic. `A ↦ B` images to `¬A⁻ ⊑ B⁺`, which
//! quantifies over `Δ ∖ proj⁻(A)` — a *superset* of `proj⁺(A)`. From
//! `x : A` (i.e. `x : A⁺`) nothing stops a model from also placing
//! `x ∈ A⁻`, escaping the inclusion entirely, so `K̄ ⊭ B⁺(x)`: following
//! the material edge would certify a non-consequence (the executable
//! counterexample is `material_link_is_not_a_certificate` below). The
//! Horn fast path (`crate::horn`) inherits the same line — a material
//! image carries `¬` in its body, which the Horn fragment classifier
//! rejects, so no saturation rule is ever read off a material inclusion.
//! The fast path also never claims *absence* of information — absence
//! always falls back to the tableau.

use crate::cache::{lock_mutex, recover};
use crate::inclusion::InclusionKind;
use crate::kb4::{Axiom4, KnowledgeBase4};
use dl::name::{ConceptName, IndividualName};
use dl::Concept;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// One told-subsumption edge `from ⟶ to`, read off an inclusion axiom
/// whose sides are atomic (or a negated atomic on the right).
#[derive(Debug, Clone)]
pub struct Edge {
    /// Target concept name.
    pub to: ConceptName,
    /// The inclusion kind of the originating axiom.
    pub kind: InclusionKind,
    /// Index of the originating axiom in `kb.axioms()`.
    pub axiom: usize,
}

/// The told-subsumption graph of a KB: only inclusions between atomic
/// concepts (positive edges, `A ⟶ B`) or from an atomic to a negated
/// atomic (negative edges, `A ⟶ ¬B`) are represented — the fragment on
/// which closure is sound without any real reasoning.
#[derive(Debug, Default)]
pub struct ToldGraph {
    /// `A ⊑ B`: positive information flows forward.
    pub pos_edges: BTreeMap<ConceptName, Vec<Edge>>,
    /// `A ⊑ ¬B`: positive information about `A` is negative about `B`.
    pub neg_edges: BTreeMap<ConceptName, Vec<Edge>>,
    /// Reverse of `pos_edges`, for the contrapositive (strong) direction.
    pub rev_pos_edges: BTreeMap<ConceptName, Vec<Edge>>,
}

impl ToldGraph {
    /// Read the told edges off the KB.
    pub fn build(kb: &KnowledgeBase4) -> ToldGraph {
        let mut g = ToldGraph::default();
        for (i, ax) in kb.axioms().iter().enumerate() {
            g.insert_axiom(i, ax);
        }
        g
    }

    /// Add the told edges of one axiom (indexed `i`); returns whether
    /// the axiom has the told shape (atomic ⊑ atomic / ¬atomic) and so
    /// contributed anything.
    pub fn insert_axiom(&mut self, i: usize, ax: &Axiom4) -> bool {
        let Axiom4::ConceptInclusion(kind, lhs, rhs) = ax else {
            return false;
        };
        let Concept::Atomic(from) = lhs else {
            return false;
        };
        match rhs {
            Concept::Atomic(to) => {
                self.pos_edges.entry(from.clone()).or_default().push(Edge {
                    to: to.clone(),
                    kind: *kind,
                    axiom: i,
                });
                self.rev_pos_edges
                    .entry(to.clone())
                    .or_default()
                    .push(Edge {
                        to: from.clone(),
                        kind: *kind,
                        axiom: i,
                    });
                true
            }
            Concept::Not(inner) => {
                if let Concept::Atomic(to) = &**inner {
                    self.neg_edges.entry(from.clone()).or_default().push(Edge {
                        to: to.clone(),
                        kind: *kind,
                        axiom: i,
                    });
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Remove the edges that axiom `i` contributed (the inverse of
    /// [`ToldGraph::insert_axiom`]); returns whether anything matched.
    pub fn remove_axiom(&mut self, i: usize, ax: &Axiom4) -> bool {
        let Axiom4::ConceptInclusion(_, lhs, rhs) = ax else {
            return false;
        };
        let Concept::Atomic(from) = lhs else {
            return false;
        };
        let drop_edges = |map: &mut BTreeMap<ConceptName, Vec<Edge>>, key: &ConceptName| {
            if let Some(es) = map.get_mut(key) {
                es.retain(|e| e.axiom != i);
                if es.is_empty() {
                    map.remove(key);
                }
            }
        };
        match rhs {
            Concept::Atomic(to) => {
                drop_edges(&mut self.pos_edges, from);
                drop_edges(&mut self.rev_pos_edges, to);
                true
            }
            Concept::Not(inner) => {
                if let Concept::Atomic(_) = &**inner {
                    drop_edges(&mut self.neg_edges, from);
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }
}

/// A derived membership fact with its provenance.
#[derive(Debug, Clone)]
pub struct Derived {
    /// Axiom indices whose conjunction justifies the fact.
    pub axioms: Vec<usize>,
    /// Did the derivation pass through a `Material` inclusion? (If so the
    /// conclusion is defeasible — material inclusions tolerate exceptions.)
    pub via_material: bool,
    /// Was the fact asserted directly (no inclusion edge used)?
    pub direct: bool,
}

/// Closure of one individual's told concept memberships.
///
/// `pos` holds names `B` with derived positive information (`a ∈ pos(B)`),
/// `neg` names with derived negative information (`a ∈ neg(B)`). With
/// `allow_material = false` every derivation is a sound consequence of the
/// four-valued semantics; with `true`, material links are followed too and
/// the result is only a "likely" consequence.
pub fn close_memberships(
    graph: &ToldGraph,
    pos_seeds: &[(ConceptName, usize)],
    neg_seeds: &[(ConceptName, usize)],
    allow_material: bool,
) -> (
    BTreeMap<ConceptName, Derived>,
    BTreeMap<ConceptName, Derived>,
) {
    let follow = |kind: InclusionKind| allow_material || kind != InclusionKind::Material;
    let mut pos: BTreeMap<ConceptName, Derived> = BTreeMap::new();
    let mut neg: BTreeMap<ConceptName, Derived> = BTreeMap::new();
    let mut queue: VecDeque<(ConceptName, bool)> = VecDeque::new();
    for (name, ax) in pos_seeds {
        pos.entry(name.clone()).or_insert_with(|| {
            queue.push_back((name.clone(), true));
            Derived {
                axioms: vec![*ax],
                via_material: false,
                direct: true,
            }
        });
    }
    for (name, ax) in neg_seeds {
        neg.entry(name.clone()).or_insert_with(|| {
            queue.push_back((name.clone(), false));
            Derived {
                axioms: vec![*ax],
                via_material: false,
                direct: true,
            }
        });
    }
    while let Some((name, positive)) = queue.pop_front() {
        if positive {
            let from = pos[&name].clone();
            // a ∈ pos(A), A ⊑ B  ⟹  a ∈ pos(B).
            for e in graph.pos_edges.get(&name).into_iter().flatten() {
                if follow(e.kind) && !pos.contains_key(&e.to) {
                    pos.insert(e.to.clone(), extend(&from, e));
                    queue.push_back((e.to.clone(), true));
                }
            }
            // a ∈ pos(A), A ⊑ ¬B  ⟹  a ∈ neg(B).
            for e in graph.neg_edges.get(&name).into_iter().flatten() {
                if follow(e.kind) && !neg.contains_key(&e.to) {
                    neg.insert(e.to.clone(), extend(&from, e));
                    queue.push_back((e.to.clone(), false));
                }
            }
        } else {
            // a ∈ neg(B), A → B strong  ⟹  a ∈ neg(A) (contraposition;
            // only strong inclusions propagate negative information back).
            let from = neg[&name].clone();
            for e in graph.rev_pos_edges.get(&name).into_iter().flatten() {
                if e.kind == InclusionKind::Strong && !neg.contains_key(&e.to) {
                    neg.insert(e.to.clone(), extend(&from, e));
                    queue.push_back((e.to.clone(), false));
                }
            }
        }
    }
    (pos, neg)
}

fn extend(from: &Derived, e: &Edge) -> Derived {
    let mut axioms = from.axioms.clone();
    axioms.push(e.axiom);
    Derived {
        axioms,
        via_material: from.via_material || e.kind == InclusionKind::Material,
        direct: false,
    }
}

/// Strongly connected components (size ≥ 2) of the positive told graph —
/// the cyclic-subsumption detector. Kosaraju's algorithm, iterative.
pub fn told_cycles(graph: &ToldGraph) -> Vec<BTreeSet<ConceptName>> {
    let mut nodes: BTreeSet<ConceptName> = BTreeSet::new();
    for (from, es) in &graph.pos_edges {
        nodes.insert(from.clone());
        nodes.extend(es.iter().map(|e| e.to.clone()));
    }
    // First pass: finish order on the forward graph.
    let mut finished: Vec<ConceptName> = Vec::new();
    let mut seen: BTreeSet<ConceptName> = BTreeSet::new();
    for start in &nodes {
        if seen.contains(start) {
            continue;
        }
        let mut stack = vec![(start.clone(), false)];
        while let Some((n, expanded)) = stack.pop() {
            if expanded {
                finished.push(n);
                continue;
            }
            if !seen.insert(n.clone()) {
                continue;
            }
            stack.push((n.clone(), true));
            for e in graph.pos_edges.get(&n).into_iter().flatten() {
                if !seen.contains(&e.to) {
                    stack.push((e.to.clone(), false));
                }
            }
        }
    }
    // Second pass: components on the reverse graph, in reverse finish order.
    let mut out = Vec::new();
    let mut assigned: BTreeSet<ConceptName> = BTreeSet::new();
    for root in finished.iter().rev() {
        if assigned.contains(root) {
            continue;
        }
        let mut component = BTreeSet::new();
        let mut stack = vec![root.clone()];
        while let Some(n) = stack.pop() {
            if !assigned.insert(n.clone()) {
                continue;
            }
            component.insert(n.clone());
            for e in graph.rev_pos_edges.get(&n).into_iter().flatten() {
                if !assigned.contains(&e.to) {
                    stack.push(e.to.clone());
                }
            }
        }
        if component.len() >= 2 {
            out.push(component);
        }
    }
    out
}

/// A union-find over individual names, tracking the axiom indices that
/// justify each merge (coarsely: all axioms that merged into a class).
#[derive(Debug, Default)]
pub struct UnionFind {
    parent: BTreeMap<String, String>,
    axioms: BTreeMap<String, BTreeSet<usize>>,
}

impl UnionFind {
    /// Root of `x`'s class (path-halving on the string keys).
    pub fn find(&mut self, x: &str) -> String {
        let mut cur = x.to_string();
        loop {
            match self.parent.get(&cur) {
                Some(p) if *p != cur => {
                    let gp = self.parent.get(p).cloned().unwrap_or_else(|| p.clone());
                    self.parent.insert(cur.clone(), gp.clone());
                    cur = gp;
                }
                Some(_) => return cur,
                None => {
                    self.parent.insert(cur.clone(), cur.clone());
                    return cur;
                }
            }
        }
    }

    /// Merge the classes of `a` and `b`, recording the justifying axiom.
    pub fn union(&mut self, a: &str, b: &str, axiom: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            self.axioms.entry(ra).or_default().insert(axiom);
            return;
        }
        let moved = self.axioms.remove(&rb).unwrap_or_default();
        self.parent.insert(rb, ra.clone());
        let entry = self.axioms.entry(ra).or_default();
        entry.extend(moved);
        entry.insert(axiom);
    }

    /// Are `a` and `b` in the same class?
    pub fn connected(&mut self, a: &str, b: &str) -> bool {
        self.find(a) == self.find(b)
    }

    /// The merge axioms recorded for `x`'s class.
    pub fn class_axioms(&mut self, x: &str) -> Vec<usize> {
        let root = self.find(x);
        self.axioms
            .get(&root)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }
}

/// Positive and negative atomic seeds `(name, axiom index)` of one
/// individual-equality class.
pub type SeedLists = (Vec<(ConceptName, usize)>, Vec<(ConceptName, usize)>);

/// The two membership closures of one individual-equality class.
#[derive(Debug, Default)]
pub struct Closure {
    /// Names with derived *positive* information.
    pub pos: BTreeMap<ConceptName, Derived>,
    /// Names with derived *negative* information.
    pub neg: BTreeMap<ConceptName, Derived>,
}

/// A precomputed told-information index over a SHOIN(D)4 KB: equality
/// classes, per-class assertion seeds, and lazily-computed non-material
/// membership/subsumer closures. All query methods take `&self` (the
/// closure caches sit behind mutexes) so one index can serve a whole
/// thread pool.
#[derive(Debug)]
pub struct ToldIndex {
    graph: ToldGraph,
    /// Individual → its equality-class representative.
    canon: BTreeMap<IndividualName, String>,
    /// Class representative → (positive, negative) atomic seeds.
    seeds: BTreeMap<String, SeedLists>,
    memberships: Mutex<HashMap<String, Arc<Closure>>>,
    subsumers: Mutex<HashMap<ConceptName, Arc<BTreeSet<ConceptName>>>>,
}

impl ToldIndex {
    /// Scan the KB once: equality classes, assertion seeds, told edges.
    pub fn build(kb: &KnowledgeBase4) -> ToldIndex {
        Self::build_indexed(kb.axioms().iter().enumerate())
    }

    /// Build from explicitly indexed axioms. The indices become the
    /// provenance ids on every edge and seed, so a caller with a
    /// tombstoned slot store (an incremental session) can keep its slot
    /// ids authoritative and later retract by id.
    pub fn build_indexed<'a>(axioms: impl Iterator<Item = (usize, &'a Axiom4)>) -> ToldIndex {
        let axioms: Vec<(usize, &Axiom4)> = axioms.collect();
        let mut uf = UnionFind::default();
        let mut individuals: BTreeSet<IndividualName> = BTreeSet::new();
        for (i, ax) in &axioms {
            match ax {
                Axiom4::SameIndividual(a, b) => {
                    uf.union(a.as_str(), b.as_str(), *i);
                    individuals.insert(a.clone());
                    individuals.insert(b.clone());
                }
                Axiom4::ConceptAssertion(a, _) => {
                    individuals.insert(a.clone());
                }
                _ => {}
            }
        }
        let mut canon = BTreeMap::new();
        for o in &individuals {
            canon.insert(o.clone(), uf.find(o.as_str()));
        }
        let mut seeds: BTreeMap<String, SeedLists> = BTreeMap::new();
        let mut graph = ToldGraph::default();
        for (i, ax) in &axioms {
            if let Axiom4::ConceptAssertion(a, c) = ax {
                let root = canon[a].clone();
                let entry = seeds.entry(root).or_default();
                seed_atoms(c, true, *i, entry);
            }
            graph.insert_axiom(*i, ax);
        }
        ToldIndex {
            graph,
            canon,
            seeds,
            memberships: Mutex::new(HashMap::new()),
            subsumers: Mutex::new(HashMap::new()),
        }
    }

    /// Incrementally fold one added axiom (slot id `id`) into the
    /// index. Returns the number of memoized rows (membership closures,
    /// subsumer sets) that had to be dropped, or `None` when the axiom
    /// restructures the equality-class partition (a `SameIndividual`
    /// merge) and the caller must rebuild the index.
    pub fn note_added(&mut self, id: usize, ax: &Axiom4) -> Option<usize> {
        match ax {
            Axiom4::SameIndividual(..) => None,
            Axiom4::ConceptAssertion(a, c) => {
                let root = self.root_of(a);
                let mut fresh = SeedLists::default();
                seed_atoms(c, true, id, &mut fresh);
                if fresh.0.is_empty() && fresh.1.is_empty() {
                    return Some(0);
                }
                let entry = self.seeds.entry(root.clone()).or_default();
                entry.0.extend(fresh.0);
                entry.1.extend(fresh.1);
                Some(self.drop_membership_row(&root))
            }
            _ => {
                if self.graph.insert_axiom(id, ax) {
                    // A new told edge can extend any closure, so every
                    // memoized row is conservatively dropped.
                    Some(self.drop_all_rows())
                } else {
                    Some(0)
                }
            }
        }
    }

    /// Incrementally remove one retracted axiom (slot id `id`) from the
    /// index. Same contract as [`ToldIndex::note_added`].
    pub fn note_retracted(&mut self, id: usize, ax: &Axiom4) -> Option<usize> {
        match ax {
            Axiom4::SameIndividual(..) => None,
            Axiom4::ConceptAssertion(a, _) => {
                let root = self.root_of(a);
                if let Some(entry) = self.seeds.get_mut(&root) {
                    entry.0.retain(|(_, ax_id)| *ax_id != id);
                    entry.1.retain(|(_, ax_id)| *ax_id != id);
                    if entry.0.is_empty() && entry.1.is_empty() {
                        self.seeds.remove(&root);
                    }
                }
                Some(self.drop_membership_row(&root))
            }
            _ => {
                if self.graph.remove_axiom(id, ax) {
                    Some(self.drop_all_rows())
                } else {
                    Some(0)
                }
            }
        }
    }

    /// The equality-class representative of `a` (identity for
    /// individuals no merge ever touched).
    fn root_of(&self, a: &IndividualName) -> String {
        self.canon
            .get(a)
            .cloned()
            .unwrap_or_else(|| a.as_str().to_string())
    }

    /// Drop the memoized membership closure of one class; returns how
    /// many rows that was (0 or 1).
    fn drop_membership_row(&mut self, root: &str) -> usize {
        match recover(self.memberships.get_mut()).remove(root) {
            Some(_) => 1,
            None => 0,
        }
    }

    /// Drop every memoized row; returns how many there were.
    fn drop_all_rows(&mut self) -> usize {
        let memberships = recover(self.memberships.get_mut());
        let mut n = memberships.len();
        memberships.clear();
        let subsumers = recover(self.subsumers.get_mut());
        n += subsumers.len();
        subsumers.clear();
        n
    }

    /// How many memoized rows (membership closures + subsumer sets) the
    /// index currently holds — what a full rebuild throws away.
    pub fn memoized_rows(&self) -> usize {
        lock_mutex(&self.memberships).len() + lock_mutex(&self.subsumers).len()
    }

    /// The underlying told graph.
    pub fn graph(&self) -> &ToldGraph {
        &self.graph
    }

    fn closure_of(&self, a: &IndividualName) -> Arc<Closure> {
        let root = self
            .canon
            .get(a)
            .cloned()
            .unwrap_or_else(|| a.as_str().to_string());
        if let Some(hit) = lock_mutex(&self.memberships).get(&root) {
            return hit.clone();
        }
        let closure = match self.seeds.get(&root) {
            Some((pos_seeds, neg_seeds)) => {
                let (pos, neg) = close_memberships(&self.graph, pos_seeds, neg_seeds, false);
                Arc::new(Closure { pos, neg })
            }
            None => Arc::new(Closure::default()),
        };
        lock_mutex(&self.memberships)
            .entry(root)
            .or_insert(closure)
            .clone()
    }

    /// Syntactically-certain verdict on `a` and atomic `c`: the pair
    /// `(positive information derivable, negative information derivable)`.
    /// `false` means "no told certificate", **not** "no information" —
    /// callers must fall back to the tableau for the `false` sides.
    pub fn verdict(&self, a: &IndividualName, c: &ConceptName) -> (bool, bool) {
        let closure = self.closure_of(a);
        (closure.pos.contains_key(c), closure.neg.contains_key(c))
    }

    /// Is `sup` a told subsumer of `sub` (a non-material inclusion chain
    /// `sub ⟶ … ⟶ sup`, reflexively)? A `true` answer certifies the
    /// internal-inclusion entailment `sub ⊏ sup`; `false` says nothing.
    pub fn told_subsumes(&self, sub: &ConceptName, sup: &ConceptName) -> bool {
        if sub == sup {
            return true;
        }
        if let Some(hit) = lock_mutex(&self.subsumers).get(sub) {
            return hit.contains(sup);
        }
        let mut reach: BTreeSet<ConceptName> = BTreeSet::new();
        let mut stack = vec![sub.clone()];
        reach.insert(sub.clone());
        while let Some(n) = stack.pop() {
            for e in self.graph.pos_edges.get(&n).into_iter().flatten() {
                if e.kind != InclusionKind::Material && reach.insert(e.to.clone()) {
                    stack.push(e.to.clone());
                }
            }
        }
        let reach = Arc::new(reach);
        let hit = reach.contains(sup);
        lock_mutex(&self.subsumers).insert(sub.clone(), reach);
        hit
    }
}

/// Decompose an asserted concept into the atomic told seeds it certainly
/// implies: `A` seeds positive `A`, `¬A` seeds negative `A`, conjunctions
/// distribute over assertion, and `¬(C ⊔ D)` is `¬C ⊓ ¬D`. Anything else
/// contributes nothing (the tableau handles it).
fn seed_atoms(c: &Concept, positive: bool, axiom: usize, out: &mut SeedLists) {
    match (c, positive) {
        (Concept::Atomic(a), true) => out.0.push((a.clone(), axiom)),
        (Concept::Atomic(a), false) => out.1.push((a.clone(), axiom)),
        (Concept::Not(inner), _) => seed_atoms(inner, !positive, axiom, out),
        (Concept::And(l, r), true) | (Concept::Or(l, r), false) => {
            seed_atoms(l, positive, axiom, out);
            seed_atoms(r, positive, axiom, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_kb4;

    #[test]
    fn closure_follows_internal_chains() {
        let kb = parse_kb4("A SubClassOf B\nB SubClassOf C\nx : A").unwrap();
        let g = ToldGraph::build(&kb);
        let (pos, neg) = close_memberships(&g, &[(ConceptName::new("A"), 2)], &[], false);
        assert!(pos.contains_key(&ConceptName::new("C")));
        assert_eq!(pos[&ConceptName::new("C")].axioms, vec![2, 0, 1]);
        assert!(neg.is_empty());
    }

    #[test]
    fn closure_skips_material_unless_allowed() {
        let kb = parse_kb4("A MaterialSubClassOf B\nx : A").unwrap();
        let g = ToldGraph::build(&kb);
        let seeds = [(ConceptName::new("A"), 1)];
        let (pos, _) = close_memberships(&g, &seeds, &[], false);
        assert!(!pos.contains_key(&ConceptName::new("B")));
        let (pos, _) = close_memberships(&g, &seeds, &[], true);
        assert!(pos[&ConceptName::new("B")].via_material);
    }

    #[test]
    fn strong_inclusions_contrapose() {
        // A → B and a ∈ neg(B) gives a ∈ neg(A).
        let kb = parse_kb4("A StrongSubClassOf B\nx : not B").unwrap();
        let g = ToldGraph::build(&kb);
        let (_, neg) = close_memberships(&g, &[], &[(ConceptName::new("B"), 1)], false);
        assert!(neg.contains_key(&ConceptName::new("A")));
    }

    #[test]
    fn internal_inclusions_do_not_contrapose() {
        let kb = parse_kb4("A SubClassOf B\nx : not B").unwrap();
        let g = ToldGraph::build(&kb);
        let (_, neg) = close_memberships(&g, &[], &[(ConceptName::new("B"), 1)], false);
        assert!(!neg.contains_key(&ConceptName::new("A")));
    }

    #[test]
    fn cycles_found_as_components() {
        let kb =
            parse_kb4("A SubClassOf B\nB SubClassOf C\nC SubClassOf A\nD SubClassOf A").unwrap();
        let g = ToldGraph::build(&kb);
        let cycles = told_cycles(&g);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 3);
        assert!(!cycles[0].contains(&ConceptName::new("D")));
    }

    #[test]
    fn union_find_merges_and_tracks_axioms() {
        let mut uf = UnionFind::default();
        uf.union("a", "b", 0);
        uf.union("c", "d", 1);
        assert!(uf.connected("a", "b"));
        assert!(!uf.connected("a", "c"));
        uf.union("b", "c", 2);
        assert!(uf.connected("a", "d"));
        assert_eq!(uf.class_axioms("d"), vec![0, 1, 2]);
    }

    #[test]
    fn index_verdicts_cover_chains_equalities_and_conjunctions() {
        let kb = parse_kb4(
            "A SubClassOf B
             B SubClassOf C
             A SubClassOf not D
             x : A and E
             x = y",
        )
        .unwrap();
        let idx = ToldIndex::build(&kb);
        let y = IndividualName::new("y");
        assert_eq!(idx.verdict(&y, &ConceptName::new("C")), (true, false));
        assert_eq!(idx.verdict(&y, &ConceptName::new("D")), (false, true));
        assert_eq!(idx.verdict(&y, &ConceptName::new("E")), (true, false));
        // Unseen individual / concept: no certificate either way.
        assert_eq!(
            idx.verdict(&IndividualName::new("ghost"), &ConceptName::new("A")),
            (false, false)
        );
    }

    #[test]
    fn index_never_follows_material_links() {
        let kb = parse_kb4("A MaterialSubClassOf B\nx : A").unwrap();
        let idx = ToldIndex::build(&kb);
        let x = IndividualName::new("x");
        assert_eq!(idx.verdict(&x, &ConceptName::new("A")), (true, false));
        assert_eq!(idx.verdict(&x, &ConceptName::new("B")), (false, false));
        assert!(!idx.told_subsumes(&ConceptName::new("A"), &ConceptName::new("B")));
    }

    #[test]
    fn material_link_is_not_a_certificate() {
        // The soundness counterexample behind the material exclusion:
        // `A ↦ B, x : A` does NOT classically entail `B⁺(x)` — the
        // image `¬A⁻ ⊑ B⁺` lets a model put x in A⁻ and escape — so a
        // told (or Horn) fast path that followed the material edge
        // would claim an entailment the tableau refutes.
        let kb = parse_kb4("A MaterialSubClassOf B\nx : A").unwrap();
        let idx = ToldIndex::build(&kb);
        let x = IndividualName::new("x");
        assert_eq!(idx.verdict(&x, &ConceptName::new("B")), (false, false));
        // The ground truth, straight from the tableau (told/horn paths
        // disabled so nothing can mask a regression here).
        let r = crate::Reasoner4::with_options(
            &kb,
            tableau::Config {
                horn_path: false,
                ..tableau::Config::default()
            },
            crate::reasoner4::QueryOptions::baseline(),
        );
        assert!(!r.has_positive_info(&x, &Concept::atomic("B")).unwrap());
        // An *internal* edge from the same shape IS a certificate.
        let kb = parse_kb4("A SubClassOf B\nx : A").unwrap();
        assert_eq!(
            ToldIndex::build(&kb).verdict(&x, &ConceptName::new("B")),
            (true, false)
        );
        let r = crate::Reasoner4::with_options(
            &kb,
            tableau::Config {
                horn_path: false,
                ..tableau::Config::default()
            },
            crate::reasoner4::QueryOptions::baseline(),
        );
        assert!(r.has_positive_info(&x, &Concept::atomic("B")).unwrap());
    }

    #[test]
    fn incremental_notes_match_a_fresh_index() {
        let base = parse_kb4("A SubClassOf B\nx : A").unwrap();
        let mut idx = ToldIndex::build(&base);
        let x = IndividualName::new("x");
        // Warm the caches so invalidation has something to drop.
        assert_eq!(idx.verdict(&x, &ConceptName::new("B")), (true, false));
        assert!(idx.told_subsumes(&ConceptName::new("A"), &ConceptName::new("B")));

        // Add a chain link (slot id 2) and a fresh assertion (slot 3).
        let link = parse_kb4("B SubClassOf C").unwrap().axioms()[0].clone();
        assert!(idx.note_added(2, &link).unwrap() > 0);
        let fact = parse_kb4("y : not C").unwrap().axioms()[0].clone();
        idx.note_added(3, &fact).unwrap();
        let full = parse_kb4("A SubClassOf B\nx : A\nB SubClassOf C\ny : not C").unwrap();
        let fresh = ToldIndex::build(&full);
        for i in ["x", "y"] {
            for c in ["A", "B", "C"] {
                let (i, c) = (IndividualName::new(i), ConceptName::new(c));
                assert_eq!(idx.verdict(&i, &c), fresh.verdict(&i, &c), "{i:?}:{c:?}");
            }
        }
        assert!(idx.told_subsumes(&ConceptName::new("A"), &ConceptName::new("C")));

        // Retract the link again: back to the base verdicts.
        assert!(idx.note_retracted(2, &link).unwrap() > 0);
        idx.note_retracted(3, &fact).unwrap();
        let back = ToldIndex::build(&base);
        for c in ["A", "B", "C"] {
            let c = ConceptName::new(c);
            assert_eq!(idx.verdict(&x, &c), back.verdict(&x, &c), "{c:?}");
        }
        assert!(!idx.told_subsumes(&ConceptName::new("A"), &ConceptName::new("C")));

        // Equality merges demand a rebuild.
        let same = parse_kb4("x = y").unwrap().axioms()[0].clone();
        assert!(idx.note_added(4, &same).is_none());
    }

    #[test]
    fn build_indexed_keeps_caller_ids_as_provenance() {
        let kb = parse_kb4("A SubClassOf B\nx : A").unwrap();
        // Sparse slot ids, as a session with tombstones would have.
        let idx = ToldIndex::build_indexed([7usize, 12].into_iter().zip(kb.axioms()));
        let x = IndividualName::new("x");
        assert_eq!(idx.verdict(&x, &ConceptName::new("B")), (true, false));
        let edges = &idx.graph().pos_edges[&ConceptName::new("A")];
        assert_eq!(edges[0].axiom, 7);
    }

    #[test]
    fn told_subsumers_are_reflexive_transitive() {
        let kb = parse_kb4("A SubClassOf B\nB StrongSubClassOf C").unwrap();
        let idx = ToldIndex::build(&kb);
        let (a, b, c) = (
            ConceptName::new("A"),
            ConceptName::new("B"),
            ConceptName::new("C"),
        );
        assert!(idx.told_subsumes(&a, &a));
        assert!(idx.told_subsumes(&a, &c));
        assert!(idx.told_subsumes(&b, &c));
        assert!(!idx.told_subsumes(&c, &a));
    }
}
