//! The three inclusion kinds of SHOIN(D)4 (§3.1 of the paper).

use std::fmt;

/// Which implication of `FOUR` an inclusion axiom corresponds to.
///
/// Exactness increases `Material < Internal < Strong`:
///
/// * `Material` (`C ↦ D`): *birds fly* — admits exceptions; an individual
///   contradictorily asserted to be a non-bird escapes the conclusion.
/// * `Internal` (`C ⊏ D`): *every bird must fly* — no exceptions, but
///   learning something cannot fly says nothing about its birdhood.
/// * `Strong` (`C → D`): exception-free **and** contraposable — a
///   non-flyer is a non-bird.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InclusionKind {
    /// `C ↦ D` — `¬C ⊔ D` reading; tolerates exceptions.
    Material,
    /// `C ⊏ D` — the four-valued counterpart of the classical `⊑`.
    Internal,
    /// `C → D` — internal plus contraposition.
    Strong,
}

impl InclusionKind {
    /// All three kinds, in increasing exactness.
    pub const ALL: [InclusionKind; 3] = [
        InclusionKind::Material,
        InclusionKind::Internal,
        InclusionKind::Strong,
    ];

    /// The paper's symbol for this inclusion.
    pub const fn symbol(self) -> &'static str {
        match self {
            InclusionKind::Material => "↦",
            InclusionKind::Internal => "⊏",
            InclusionKind::Strong => "→",
        }
    }

    /// The concrete-syntax keyword used by [`crate::parse_kb4`].
    pub const fn keyword(self) -> &'static str {
        match self {
            InclusionKind::Material => "MaterialSubClassOf",
            InclusionKind::Internal => "SubClassOf",
            InclusionKind::Strong => "StrongSubClassOf",
        }
    }

    /// Does this kind imply the conclusions of `other` in every model?
    /// (Strong ⇒ Internal; Material is incomparable to both — it neither
    /// implies nor is implied by the exception-free kinds.)
    pub fn at_least_as_exact_as(self, other: InclusionKind) -> bool {
        self == other || (self == InclusionKind::Strong && other == InclusionKind::Internal)
    }
}

impl fmt::Display for InclusionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_match_the_paper() {
        assert_eq!(InclusionKind::Material.symbol(), "↦");
        assert_eq!(InclusionKind::Internal.symbol(), "⊏");
        assert_eq!(InclusionKind::Strong.symbol(), "→");
    }

    #[test]
    fn exactness_partial_order() {
        use InclusionKind::*;
        assert!(Strong.at_least_as_exact_as(Internal));
        assert!(!Internal.at_least_as_exact_as(Strong));
        assert!(!Material.at_least_as_exact_as(Internal));
        assert!(!Internal.at_least_as_exact_as(Material));
        for k in InclusionKind::ALL {
            assert!(k.at_least_as_exact_as(k));
        }
    }
}
