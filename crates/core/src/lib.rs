//! **SHOIN(D)4** — the four-valued paraconsistent description logic of
//! *"Inferring with Inconsistent OWL DL Ontology: A Multi-valued Logic
//! Approach"* (Ma, Lin & Lin, 2006), implemented end to end.
//!
//! A SHOIN(D)4 knowledge base looks like OWL DL but offers **three kinds
//! of inclusion** (§3.1 of the paper):
//!
//! * *material* `C ↦ D` — allows exceptions (birds fly, penguins are the
//!   exception);
//! * *internal* `C ⊏ D` — exception-free, the four-valued reading of the
//!   classical `⊑`;
//! * *strong* `C → D` — exception-free *and* contraposable.
//!
//! Its semantics assigns every concept a pair `<P, N>` of support sets
//! (Tables 2–3), so a contradiction about `john` stays *localized*: the KB
//! keeps a model and keeps answering useful queries (Examples 1–4).
//!
//! The implementation follows the paper's pipeline exactly:
//!
//! 1. [`kb4`] — the four-valued language (syntax);
//! 2. [`interp4`] — four-valued interpretations and satisfaction
//!    (Tables 2 and 3, Definitions 2–3);
//! 3. [`transform`] — the polynomial translation to classical SHOIN(D)
//!    (Definitions 5–7): `A` becomes `A⁺`/`A⁻`, `R` becomes `R⁺`/`R⁼`;
//! 4. [`induced`] — the model correspondences of Definitions 8–9 that
//!    prove the translation faithful (Lemma 5 / Theorem 6);
//! 5. [`reasoner4`] — paraconsistent reasoning services executed by the
//!    classical [`tableau`] reasoner via Corollary 7.
//!
//! # Example (the paper's Example 1)
//!
//! ```
//! use shoin4::{parse_kb4, Reasoner4};
//!
//! let kb = parse_kb4(
//!     "hasPatient some Patient SubClassOf Doctor
//!      john : Doctor
//!      john : not Doctor
//!      mary : Patient
//!      hasPatient(bill, mary)",
//! ).unwrap();
//! let r = Reasoner4::new(&kb);
//! let doctor = dl::Concept::atomic("Doctor");
//! let bill = dl::IndividualName::new("bill");
//! // The contradiction about john does not destroy the inference
//! // that bill is a doctor...
//! assert!(r.has_positive_info(&bill, &doctor).unwrap());
//! // ...and does not smear negative information onto bill.
//! assert!(!r.has_negative_info(&bill, &doctor).unwrap());
//! ```

pub mod analysis;
pub mod cache;
pub mod dataflow;
pub mod hardness;
pub mod horn;
pub mod inclusion;
pub mod incremental;
pub mod induced;
pub mod interp4;
pub mod json;
pub mod kb4;
pub mod parser4;
pub mod printer4;
pub mod reasoner4;
pub mod serve;
pub mod told;
pub mod transform;

pub use inclusion::InclusionKind;
pub use incremental::Session;
pub use interp4::Interp4;
pub use kb4::{Axiom4, KnowledgeBase4};
pub use parser4::parse_kb4;
pub use printer4::print_kb4;
pub use reasoner4::Reasoner4;
pub use transform::{transform_concept, transform_kb, transform_neg_concept};
